/root/repo/target-base/debug/deps/oppic_analyzer-c61c350ed7db896e.d: crates/analyzer/src/lib.rs crates/analyzer/src/audit.rs crates/analyzer/src/diag.rs crates/analyzer/src/shadow.rs crates/analyzer/src/static_check.rs crates/analyzer/src/telemetry_audit.rs

/root/repo/target-base/debug/deps/liboppic_analyzer-c61c350ed7db896e.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/audit.rs crates/analyzer/src/diag.rs crates/analyzer/src/shadow.rs crates/analyzer/src/static_check.rs crates/analyzer/src/telemetry_audit.rs

/root/repo/target-base/debug/deps/liboppic_analyzer-c61c350ed7db896e.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/audit.rs crates/analyzer/src/diag.rs crates/analyzer/src/shadow.rs crates/analyzer/src/static_check.rs crates/analyzer/src/telemetry_audit.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/audit.rs:
crates/analyzer/src/diag.rs:
crates/analyzer/src/shadow.rs:
crates/analyzer/src/static_check.rs:
crates/analyzer/src/telemetry_audit.rs:
