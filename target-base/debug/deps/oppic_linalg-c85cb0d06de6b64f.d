/root/repo/target-base/debug/deps/oppic_linalg-c85cb0d06de6b64f.d: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/csr.rs crates/linalg/src/dense.rs

/root/repo/target-base/debug/deps/liboppic_linalg-c85cb0d06de6b64f.rlib: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/csr.rs crates/linalg/src/dense.rs

/root/repo/target-base/debug/deps/liboppic_linalg-c85cb0d06de6b64f.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cg.rs crates/linalg/src/csr.rs crates/linalg/src/dense.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cg.rs:
crates/linalg/src/csr.rs:
crates/linalg/src/dense.rs:
