/root/repo/target-base/debug/deps/oppic_fempic-ab853ce6a3e55630.d: crates/fempic/src/lib.rs crates/fempic/src/collisions.rs crates/fempic/src/config.rs crates/fempic/src/conform.rs crates/fempic/src/fields.rs crates/fempic/src/sim.rs crates/fempic/src/validate.rs

/root/repo/target-base/debug/deps/liboppic_fempic-ab853ce6a3e55630.rlib: crates/fempic/src/lib.rs crates/fempic/src/collisions.rs crates/fempic/src/config.rs crates/fempic/src/conform.rs crates/fempic/src/fields.rs crates/fempic/src/sim.rs crates/fempic/src/validate.rs

/root/repo/target-base/debug/deps/liboppic_fempic-ab853ce6a3e55630.rmeta: crates/fempic/src/lib.rs crates/fempic/src/collisions.rs crates/fempic/src/config.rs crates/fempic/src/conform.rs crates/fempic/src/fields.rs crates/fempic/src/sim.rs crates/fempic/src/validate.rs

crates/fempic/src/lib.rs:
crates/fempic/src/collisions.rs:
crates/fempic/src/config.rs:
crates/fempic/src/conform.rs:
crates/fempic/src/fields.rs:
crates/fempic/src/sim.rs:
crates/fempic/src/validate.rs:
