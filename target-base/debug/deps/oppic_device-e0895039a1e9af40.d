/root/repo/target-base/debug/deps/oppic_device-e0895039a1e9af40.d: crates/device/src/lib.rs crates/device/src/buffer.rs crates/device/src/exec.rs crates/device/src/spec.rs

/root/repo/target-base/debug/deps/liboppic_device-e0895039a1e9af40.rlib: crates/device/src/lib.rs crates/device/src/buffer.rs crates/device/src/exec.rs crates/device/src/spec.rs

/root/repo/target-base/debug/deps/liboppic_device-e0895039a1e9af40.rmeta: crates/device/src/lib.rs crates/device/src/buffer.rs crates/device/src/exec.rs crates/device/src/spec.rs

crates/device/src/lib.rs:
crates/device/src/buffer.rs:
crates/device/src/exec.rs:
crates/device/src/spec.rs:
