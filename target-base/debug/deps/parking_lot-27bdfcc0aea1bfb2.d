/root/repo/target-base/debug/deps/parking_lot-27bdfcc0aea1bfb2.d: shims/parking_lot/src/lib.rs

/root/repo/target-base/debug/deps/libparking_lot-27bdfcc0aea1bfb2.rlib: shims/parking_lot/src/lib.rs

/root/repo/target-base/debug/deps/libparking_lot-27bdfcc0aea1bfb2.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
