/root/repo/target-base/debug/deps/oppic_mesh-e03d21732c5f0074.d: crates/mesh/src/lib.rs crates/mesh/src/connectivity.rs crates/mesh/src/entities.rs crates/mesh/src/geometry.rs crates/mesh/src/hex.rs crates/mesh/src/io.rs crates/mesh/src/overlay.rs crates/mesh/src/tet.rs

/root/repo/target-base/debug/deps/liboppic_mesh-e03d21732c5f0074.rlib: crates/mesh/src/lib.rs crates/mesh/src/connectivity.rs crates/mesh/src/entities.rs crates/mesh/src/geometry.rs crates/mesh/src/hex.rs crates/mesh/src/io.rs crates/mesh/src/overlay.rs crates/mesh/src/tet.rs

/root/repo/target-base/debug/deps/liboppic_mesh-e03d21732c5f0074.rmeta: crates/mesh/src/lib.rs crates/mesh/src/connectivity.rs crates/mesh/src/entities.rs crates/mesh/src/geometry.rs crates/mesh/src/hex.rs crates/mesh/src/io.rs crates/mesh/src/overlay.rs crates/mesh/src/tet.rs

crates/mesh/src/lib.rs:
crates/mesh/src/connectivity.rs:
crates/mesh/src/entities.rs:
crates/mesh/src/geometry.rs:
crates/mesh/src/hex.rs:
crates/mesh/src/io.rs:
crates/mesh/src/overlay.rs:
crates/mesh/src/tet.rs:
