/root/repo/target-base/debug/deps/oppic_mpi-1d1a8f18d2901c95.d: crates/mpi/src/lib.rs crates/mpi/src/comm.rs crates/mpi/src/exchange.rs crates/mpi/src/fault.rs crates/mpi/src/halo.rs crates/mpi/src/partition.rs crates/mpi/src/solve.rs

/root/repo/target-base/debug/deps/liboppic_mpi-1d1a8f18d2901c95.rlib: crates/mpi/src/lib.rs crates/mpi/src/comm.rs crates/mpi/src/exchange.rs crates/mpi/src/fault.rs crates/mpi/src/halo.rs crates/mpi/src/partition.rs crates/mpi/src/solve.rs

/root/repo/target-base/debug/deps/liboppic_mpi-1d1a8f18d2901c95.rmeta: crates/mpi/src/lib.rs crates/mpi/src/comm.rs crates/mpi/src/exchange.rs crates/mpi/src/fault.rs crates/mpi/src/halo.rs crates/mpi/src/partition.rs crates/mpi/src/solve.rs

crates/mpi/src/lib.rs:
crates/mpi/src/comm.rs:
crates/mpi/src/exchange.rs:
crates/mpi/src/fault.rs:
crates/mpi/src/halo.rs:
crates/mpi/src/partition.rs:
crates/mpi/src/solve.rs:
