/root/repo/target-base/debug/deps/rayon-adb0966ba676c5ca.d: shims/rayon/src/lib.rs shims/rayon/src/iter.rs shims/rayon/src/pool.rs shims/rayon/src/slice.rs

/root/repo/target-base/debug/deps/librayon-adb0966ba676c5ca.rlib: shims/rayon/src/lib.rs shims/rayon/src/iter.rs shims/rayon/src/pool.rs shims/rayon/src/slice.rs

/root/repo/target-base/debug/deps/librayon-adb0966ba676c5ca.rmeta: shims/rayon/src/lib.rs shims/rayon/src/iter.rs shims/rayon/src/pool.rs shims/rayon/src/slice.rs

shims/rayon/src/lib.rs:
shims/rayon/src/iter.rs:
shims/rayon/src/pool.rs:
shims/rayon/src/slice.rs:
