/root/repo/target-base/debug/deps/oppic_core-12276f12046e0d9f.d: crates/core/src/lib.rs crates/core/src/access.rs crates/core/src/checkpoint.rs crates/core/src/dat.rs crates/core/src/decl.rs crates/core/src/macros.rs crates/core/src/deposit.rs crates/core/src/json.rs crates/core/src/move_engine.rs crates/core/src/params.rs crates/core/src/parloop.rs crates/core/src/particles.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/sim.rs crates/core/src/telemetry.rs

/root/repo/target-base/debug/deps/liboppic_core-12276f12046e0d9f.rlib: crates/core/src/lib.rs crates/core/src/access.rs crates/core/src/checkpoint.rs crates/core/src/dat.rs crates/core/src/decl.rs crates/core/src/macros.rs crates/core/src/deposit.rs crates/core/src/json.rs crates/core/src/move_engine.rs crates/core/src/params.rs crates/core/src/parloop.rs crates/core/src/particles.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/sim.rs crates/core/src/telemetry.rs

/root/repo/target-base/debug/deps/liboppic_core-12276f12046e0d9f.rmeta: crates/core/src/lib.rs crates/core/src/access.rs crates/core/src/checkpoint.rs crates/core/src/dat.rs crates/core/src/decl.rs crates/core/src/macros.rs crates/core/src/deposit.rs crates/core/src/json.rs crates/core/src/move_engine.rs crates/core/src/params.rs crates/core/src/parloop.rs crates/core/src/particles.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/sim.rs crates/core/src/telemetry.rs

crates/core/src/lib.rs:
crates/core/src/access.rs:
crates/core/src/checkpoint.rs:
crates/core/src/dat.rs:
crates/core/src/decl.rs:
crates/core/src/macros.rs:
crates/core/src/deposit.rs:
crates/core/src/json.rs:
crates/core/src/move_engine.rs:
crates/core/src/params.rs:
crates/core/src/parloop.rs:
crates/core/src/particles.rs:
crates/core/src/plan.rs:
crates/core/src/profile.rs:
crates/core/src/sim.rs:
crates/core/src/telemetry.rs:
