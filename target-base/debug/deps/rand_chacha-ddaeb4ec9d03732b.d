/root/repo/target-base/debug/deps/rand_chacha-ddaeb4ec9d03732b.d: shims/rand_chacha/src/lib.rs

/root/repo/target-base/debug/deps/librand_chacha-ddaeb4ec9d03732b.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target-base/debug/deps/librand_chacha-ddaeb4ec9d03732b.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
