/root/repo/target-base/debug/deps/oppic_conformance-373c1374196466c8.d: crates/conformance/src/lib.rs crates/conformance/src/chaos.rs crates/conformance/src/matrix.rs crates/conformance/src/oracle.rs crates/conformance/src/report.rs crates/conformance/src/runner.rs crates/conformance/src/shrink.rs

/root/repo/target-base/debug/deps/oppic_conformance-373c1374196466c8: crates/conformance/src/lib.rs crates/conformance/src/chaos.rs crates/conformance/src/matrix.rs crates/conformance/src/oracle.rs crates/conformance/src/report.rs crates/conformance/src/runner.rs crates/conformance/src/shrink.rs

crates/conformance/src/lib.rs:
crates/conformance/src/chaos.rs:
crates/conformance/src/matrix.rs:
crates/conformance/src/oracle.rs:
crates/conformance/src/report.rs:
crates/conformance/src/runner.rs:
crates/conformance/src/shrink.rs:
