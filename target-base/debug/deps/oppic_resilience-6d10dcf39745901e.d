/root/repo/target-base/debug/deps/oppic_resilience-6d10dcf39745901e.d: crates/resilience/src/lib.rs crates/resilience/src/envelope.rs crates/resilience/src/migrate.rs crates/resilience/src/recovery.rs crates/resilience/src/retry.rs

/root/repo/target-base/debug/deps/liboppic_resilience-6d10dcf39745901e.rlib: crates/resilience/src/lib.rs crates/resilience/src/envelope.rs crates/resilience/src/migrate.rs crates/resilience/src/recovery.rs crates/resilience/src/retry.rs

/root/repo/target-base/debug/deps/liboppic_resilience-6d10dcf39745901e.rmeta: crates/resilience/src/lib.rs crates/resilience/src/envelope.rs crates/resilience/src/migrate.rs crates/resilience/src/recovery.rs crates/resilience/src/retry.rs

crates/resilience/src/lib.rs:
crates/resilience/src/envelope.rs:
crates/resilience/src/migrate.rs:
crates/resilience/src/recovery.rs:
crates/resilience/src/retry.rs:
