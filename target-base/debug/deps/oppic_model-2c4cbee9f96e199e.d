/root/repo/target-base/debug/deps/oppic_model-2c4cbee9f96e199e.d: crates/model/src/lib.rs crates/model/src/power.rs crates/model/src/roofline.rs crates/model/src/scaling.rs crates/model/src/system.rs

/root/repo/target-base/debug/deps/liboppic_model-2c4cbee9f96e199e.rlib: crates/model/src/lib.rs crates/model/src/power.rs crates/model/src/roofline.rs crates/model/src/scaling.rs crates/model/src/system.rs

/root/repo/target-base/debug/deps/liboppic_model-2c4cbee9f96e199e.rmeta: crates/model/src/lib.rs crates/model/src/power.rs crates/model/src/roofline.rs crates/model/src/scaling.rs crates/model/src/system.rs

crates/model/src/lib.rs:
crates/model/src/power.rs:
crates/model/src/roofline.rs:
crates/model/src/scaling.rs:
crates/model/src/system.rs:
