/root/repo/target-base/debug/deps/oppic_cabana-0f5a59d88956d3e9.d: crates/cabana/src/lib.rs crates/cabana/src/common.rs crates/cabana/src/config.rs crates/cabana/src/conform.rs crates/cabana/src/dsl.rs crates/cabana/src/engine.rs crates/cabana/src/structured.rs crates/cabana/src/validate.rs

/root/repo/target-base/debug/deps/liboppic_cabana-0f5a59d88956d3e9.rlib: crates/cabana/src/lib.rs crates/cabana/src/common.rs crates/cabana/src/config.rs crates/cabana/src/conform.rs crates/cabana/src/dsl.rs crates/cabana/src/engine.rs crates/cabana/src/structured.rs crates/cabana/src/validate.rs

/root/repo/target-base/debug/deps/liboppic_cabana-0f5a59d88956d3e9.rmeta: crates/cabana/src/lib.rs crates/cabana/src/common.rs crates/cabana/src/config.rs crates/cabana/src/conform.rs crates/cabana/src/dsl.rs crates/cabana/src/engine.rs crates/cabana/src/structured.rs crates/cabana/src/validate.rs

crates/cabana/src/lib.rs:
crates/cabana/src/common.rs:
crates/cabana/src/config.rs:
crates/cabana/src/conform.rs:
crates/cabana/src/dsl.rs:
crates/cabana/src/engine.rs:
crates/cabana/src/structured.rs:
crates/cabana/src/validate.rs:
