/root/repo/target-base/debug/deps/oppic_bench-9bb1849faf22cd7e.d: crates/bench/src/lib.rs crates/bench/src/analysis.rs crates/bench/src/distributed.rs crates/bench/src/report.rs crates/bench/src/telemetry_report.rs

/root/repo/target-base/debug/deps/liboppic_bench-9bb1849faf22cd7e.rlib: crates/bench/src/lib.rs crates/bench/src/analysis.rs crates/bench/src/distributed.rs crates/bench/src/report.rs crates/bench/src/telemetry_report.rs

/root/repo/target-base/debug/deps/liboppic_bench-9bb1849faf22cd7e.rmeta: crates/bench/src/lib.rs crates/bench/src/analysis.rs crates/bench/src/distributed.rs crates/bench/src/report.rs crates/bench/src/telemetry_report.rs

crates/bench/src/lib.rs:
crates/bench/src/analysis.rs:
crates/bench/src/distributed.rs:
crates/bench/src/report.rs:
crates/bench/src/telemetry_report.rs:
