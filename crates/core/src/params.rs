//! Run-time parameter files — the paper artifact drives each app with
//! `<app_binary> <config_file>`; this module parses that config format:
//! `key = value` lines, `#` comments, whitespace-insensitive.

use std::collections::HashMap;
use std::path::Path;

/// Parsed parameter set with typed, defaulted getters.
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: HashMap<String, String>,
}

impl Params {
    /// Parse from text. Later duplicates override earlier ones.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut values = HashMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected 'key = value', got {raw:?}",
                    lineno + 1
                ));
            };
            let key = k.trim();
            if key.is_empty() {
                return Err(format!("line {}: empty key", lineno + 1));
            }
            values.insert(key.to_string(), v.trim().to_string());
        }
        Ok(Params { values })
    }

    /// Load from a file path.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, String> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
        Self::parse(&text)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Raw string value.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{key} = {v:?}: {e}")),
        }
    }

    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{key} = {v:?}: {e}")),
        }
    }

    pub fn get_bool(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.values.get(key).map(String::as_str) {
            None => Ok(default),
            Some("true") | Some("1") | Some("yes") => Ok(true),
            Some("false") | Some("0") | Some("no") => Ok(false),
            Some(v) => Err(format!("{key} = {v:?}: expected a boolean")),
        }
    }

    /// Keys that were set (for echo/validation).
    pub fn keys(&self) -> Vec<&str> {
        let mut k: Vec<&str> = self.values.keys().map(String::as_str).collect();
        k.sort_unstable();
        k
    }

    /// Reject unknown keys — catches config typos early, like the
    /// artifact's apps do.
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.values.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "unknown parameter '{k}' (known: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let p =
            Params::parse("nx = 10\n# comment\n dt=0.5  # trailing\n\nname = duct run\n").unwrap();
        assert_eq!(p.get_usize("nx", 0).unwrap(), 10);
        assert_eq!(p.get_f64("dt", 0.0).unwrap(), 0.5);
        assert_eq!(p.get_str("name", ""), "duct run");
        assert!(p.contains("nx"));
        assert!(!p.contains("ny"));
    }

    #[test]
    fn defaults_apply() {
        let p = Params::parse("").unwrap();
        assert_eq!(p.get_usize("nx", 7).unwrap(), 7);
        assert_eq!(p.get_f64("dt", 1.5).unwrap(), 1.5);
        assert!(p.get_bool("flag", true).unwrap());
    }

    #[test]
    fn bool_forms() {
        let p = Params::parse("a = true\nb = 0\nc = yes\n").unwrap();
        assert!(p.get_bool("a", false).unwrap());
        assert!(!p.get_bool("b", true).unwrap());
        assert!(p.get_bool("c", false).unwrap());
        let bad = Params::parse("d = maybe").unwrap();
        assert!(bad.get_bool("d", false).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Params::parse("just a line").is_err());
        assert!(Params::parse("= 3").is_err());
        let p = Params::parse("nx = ten").unwrap();
        assert!(p.get_usize("nx", 0).is_err());
    }

    #[test]
    fn later_keys_override() {
        let p = Params::parse("nx = 1\nnx = 2\n").unwrap();
        assert_eq!(p.get_usize("nx", 0).unwrap(), 2);
    }

    #[test]
    fn unknown_key_detection() {
        let p = Params::parse("nx = 1\ntypo = 2\n").unwrap();
        assert!(p.check_known(&["nx", "ny"]).is_err());
        assert!(p.check_known(&["nx", "typo"]).is_ok());
        assert_eq!(p.keys(), vec!["nx", "typo"]);
    }
}
