//! Declaration registry — the paper's `opp_decl_set` / `opp_decl_map`
//! surface (Figure 4).
//!
//! The registry does not own simulation data (that stays in typed
//! structures the executors can specialise over); it records the mesh
//! topology metadata so that:
//!
//! * declarations can be validated (map endpoints exist, arities agree,
//!   map payload values are in range),
//! * the model/partitioning layers can enumerate what must be
//!   partitioned and haloed, and
//! * a human-readable summary of the declared "science source" can be
//!   printed, mirroring the DSL's separation-of-concerns pitch.

use std::collections::HashMap;

/// A set declaration: mesh sets carry just a size; particle sets also
/// name the mesh set their particles live on (`opp_decl_particle_set`).
#[derive(Debug, Clone)]
pub struct SetDecl {
    pub name: String,
    pub size: usize,
    /// `Some(mesh_set)` for particle sets.
    pub cells_set: Option<String>,
}

/// A map declaration (`opp_decl_map`): `from` set → `to` set with fixed
/// arity. Particle→cell maps are dynamic (arity 1, from a particle set).
#[derive(Debug, Clone)]
pub struct MapDecl {
    pub name: String,
    pub from: String,
    pub to: String,
    pub arity: usize,
}

/// A dat declaration (`opp_decl_dat`): data of dimension `dim` on `set`.
#[derive(Debug, Clone)]
pub struct DatDecl {
    pub name: String,
    pub set: String,
    pub dim: usize,
}

/// The declaration registry for one simulation.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    sets: HashMap<String, SetDecl>,
    maps: HashMap<String, MapDecl>,
    dats: HashMap<String, DatDecl>,
    order: Vec<String>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// `opp_decl_set(size, name)`.
    pub fn decl_set(&mut self, name: impl Into<String>, size: usize) -> Result<(), String> {
        let name = name.into();
        if self.sets.contains_key(&name) {
            return Err(format!("set '{name}' declared twice"));
        }
        self.order.push(format!("set:{name}"));
        self.sets.insert(
            name.clone(),
            SetDecl {
                name,
                size,
                cells_set: None,
            },
        );
        Ok(())
    }

    /// `opp_decl_particle_set(name, cells_set [, count])`.
    pub fn decl_particle_set(
        &mut self,
        name: impl Into<String>,
        cells_set: &str,
        count: usize,
    ) -> Result<(), String> {
        let name = name.into();
        if !self.sets.contains_key(cells_set) {
            return Err(format!(
                "particle set '{name}' references unknown set '{cells_set}'"
            ));
        }
        if self.sets.contains_key(&name) {
            return Err(format!("set '{name}' declared twice"));
        }
        self.order.push(format!("pset:{name}"));
        self.sets.insert(
            name.clone(),
            SetDecl {
                name,
                size: count,
                cells_set: Some(cells_set.to_string()),
            },
        );
        Ok(())
    }

    /// `opp_decl_map(from, to, arity, data, name)` — `data` is checked
    /// for range if provided (dynamic particle maps pass `None`,
    /// matching the paper's `nullptr` convention).
    pub fn decl_map(
        &mut self,
        name: impl Into<String>,
        from: &str,
        to: &str,
        arity: usize,
        data: Option<&[i32]>,
    ) -> Result<(), String> {
        let name = name.into();
        let from_set = self
            .sets
            .get(from)
            .ok_or_else(|| format!("map '{name}': unknown from-set '{from}'"))?;
        let to_set = self
            .sets
            .get(to)
            .ok_or_else(|| format!("map '{name}': unknown to-set '{to}'"))?;
        if self.maps.contains_key(&name) {
            return Err(format!("map '{name}' declared twice"));
        }
        if from_set.cells_set.is_some() && arity != 1 {
            return Err(format!(
                "map '{name}': a particle is always mapped to exactly one mesh element (arity 1)"
            ));
        }
        if let Some(d) = data {
            if d.len() != from_set.size * arity {
                return Err(format!(
                    "map '{name}': payload length {} != {} elements × arity {arity}",
                    d.len(),
                    from_set.size
                ));
            }
            for (k, &v) in d.iter().enumerate() {
                if v >= 0 && v as usize >= to_set.size {
                    return Err(format!(
                        "map '{name}': entry {k} = {v} out of range for set '{to}' (size {})",
                        to_set.size
                    ));
                }
            }
        }
        self.order.push(format!("map:{name}"));
        self.maps.insert(
            name.clone(),
            MapDecl {
                name,
                from: from.into(),
                to: to.into(),
                arity,
            },
        );
        Ok(())
    }

    /// `opp_decl_dat(set, dim, type, data, name)`.
    pub fn decl_dat(
        &mut self,
        name: impl Into<String>,
        set: &str,
        dim: usize,
    ) -> Result<(), String> {
        let name = name.into();
        if !self.sets.contains_key(set) {
            return Err(format!("dat '{name}': unknown set '{set}'"));
        }
        if self.dats.contains_key(&name) {
            return Err(format!("dat '{name}' declared twice"));
        }
        if dim == 0 {
            return Err(format!("dat '{name}': dim must be positive"));
        }
        self.order.push(format!("dat:{name}"));
        self.dats.insert(
            name.clone(),
            DatDecl {
                name,
                set: set.into(),
                dim,
            },
        );
        Ok(())
    }

    pub fn set(&self, name: &str) -> Option<&SetDecl> {
        self.sets.get(name)
    }

    pub fn map(&self, name: &str) -> Option<&MapDecl> {
        self.maps.get(name)
    }

    pub fn dat(&self, name: &str) -> Option<&DatDecl> {
        self.dats.get(name)
    }

    /// All dats declared on a given set (halo machinery uses this to
    /// know what to exchange).
    pub fn dats_on(&self, set: &str) -> Vec<&DatDecl> {
        let mut v: Vec<&DatDecl> = self.dats.values().filter(|d| d.set == set).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Degrees of freedom per element of a set — the paper quotes these
    /// per app (Mini-FEM-PIC: 1 DOF/cell, 2 DOF/node, 7 DOF/particle).
    pub fn dofs_on(&self, set: &str) -> usize {
        self.dats
            .values()
            .filter(|d| d.set == set)
            .map(|d| d.dim)
            .sum()
    }

    /// Human-readable summary in declaration order.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for key in &self.order {
            let (kind, name) = key.split_once(':').expect("registry keys are kind:name");
            match kind {
                "set" => {
                    let d = &self.sets[name];
                    s.push_str(&format!("set       {:<24} size {}\n", d.name, d.size));
                }
                "pset" => {
                    let d = &self.sets[name];
                    s.push_str(&format!(
                        "particles {:<24} on {} (initial {})\n",
                        d.name,
                        d.cells_set.as_deref().unwrap_or("?"),
                        d.size
                    ));
                }
                "map" => {
                    let d = &self.maps[name];
                    s.push_str(&format!(
                        "map       {:<24} {} -> {} arity {}\n",
                        d.name, d.from, d.to, d.arity
                    ));
                }
                "dat" => {
                    let d = &self.dats[name];
                    s.push_str(&format!(
                        "dat       {:<24} on {} dim {}\n",
                        d.name, d.set, d.dim
                    ));
                }
                _ => unreachable!("unknown registry key kind"),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4_registry() -> Registry {
        // The exact declarations of Figure 4 in the paper.
        let mut r = Registry::new();
        r.decl_set("nodes", 16).unwrap();
        r.decl_set("cells", 9).unwrap();
        r.decl_particle_set("x", "cells", 0).unwrap();
        r.decl_particle_set("gam", "cells", 100_000).unwrap();
        r
    }

    #[test]
    fn figure4_declarations() {
        let mut r = figure4_registry();
        let c2n: Vec<i32> = (0..9 * 4).map(|i| i % 16).collect();
        r.decl_map("cell_to_nodes_map", "cells", "nodes", 4, Some(&c2n))
            .unwrap();
        r.decl_map("particles_to_cells_index", "x", "cells", 1, None)
            .unwrap();
        r.decl_dat("electric field", "cells", 1).unwrap();
        r.decl_dat("node potential", "nodes", 2).unwrap();
        r.decl_dat("particle position", "x", 1).unwrap();
        assert_eq!(r.set("cells").unwrap().size, 9);
        assert_eq!(r.map("cell_to_nodes_map").unwrap().arity, 4);
        assert_eq!(r.dats_on("cells").len(), 1);
        let s = r.summary();
        assert!(s.contains("cell_to_nodes_map"));
        assert!(s.contains("particles x") || s.contains("particles"));
    }

    #[test]
    fn duplicate_set_rejected() {
        let mut r = figure4_registry();
        assert!(r.decl_set("nodes", 5).is_err());
        assert!(r.decl_particle_set("x", "cells", 0).is_err());
    }

    #[test]
    fn particle_map_must_have_arity_1() {
        let mut r = figure4_registry();
        let err = r.decl_map("bad", "x", "cells", 4, None).unwrap_err();
        assert!(err.contains("exactly one mesh element"));
    }

    #[test]
    fn map_payload_validated() {
        let mut r = figure4_registry();
        // Wrong length.
        assert!(r
            .decl_map("m1", "cells", "nodes", 4, Some(&[0, 1, 2]))
            .is_err());
        // Out of range entry.
        let mut c2n = vec![0i32; 36];
        c2n[7] = 16; // nodes has size 16 -> max valid 15
        assert!(r.decl_map("m2", "cells", "nodes", 4, Some(&c2n)).is_err());
        // -1 entries are fine (boundary convention).
        let c2c = vec![-1i32; 36];
        assert!(r.decl_map("m3", "cells", "cells", 4, Some(&c2c)).is_ok());
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let mut r = figure4_registry();
        assert!(r.decl_map("m", "cells", "faces", 3, None).is_err());
        assert!(r.decl_dat("d", "faces", 1).is_err());
        assert!(r.decl_particle_set("p", "faces", 0).is_err());
    }

    #[test]
    fn dof_accounting_matches_paper() {
        // Mini-FEM-PIC: 1 DOF/cell (electric field is stored as dim 3
        // in our version but the paper's counting is per-dat here we
        // just verify the sum works), 2 DOF/node, 7 DOF/particle.
        let mut r = figure4_registry();
        r.decl_dat("node potential", "nodes", 2).unwrap();
        r.decl_dat("pos", "x", 3).unwrap();
        r.decl_dat("vel", "x", 3).unwrap();
        r.decl_dat("charge", "x", 1).unwrap();
        assert_eq!(r.dofs_on("nodes"), 2);
        assert_eq!(r.dofs_on("x"), 7);
    }

    #[test]
    fn zero_dim_dat_rejected() {
        let mut r = figure4_registry();
        assert!(r.decl_dat("d", "cells", 0).is_err());
    }
}
