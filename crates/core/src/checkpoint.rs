//! Checkpoint/restart — binary snapshots of simulation state.
//!
//! Long PIC campaigns checkpoint; the DSL owns the particle store, so
//! it owns the serialization too. The format is a minimal tagged
//! little-endian container (no external serializer): a magic header,
//! then length-prefixed sections, then a CRC-64 footer. [`crate::
//! particles::ParticleDats`] and [`crate::dat::Dat`] round-trip
//! losslessly (bit-exact f64).
//!
//! Format v2 appends an integrity footer (`OPPICEND` + CRC-64 over
//! every preceding byte, header included). Readers may consume a
//! stream without checking it, but [`BinReader::verify_footer`]
//! rejects truncated or bit-flipped files with a clear error instead
//! of misparsing — restore paths in the apps call it before applying
//! any state.

use crate::dat::Dat;
use crate::particles::ParticleDats;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"OPPICCKP";
const FOOTER_MAGIC: &[u8; 8] = b"OPPICEND";
const VERSION: u32 = 2;

/// CRC-64/XZ lookup table (reflected, poly 0xC96C5795D7870F42),
/// built at compile time.
const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xC96C5795D7870F42
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// Streaming CRC-64/XZ accumulator. `Crc64::new()` → `update` →
/// `value()`; also usable one-shot via [`crc64`].
#[derive(Clone, Copy, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    pub fn new() -> Self {
        Crc64 { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    pub fn value(&self) -> u64 {
        !self.state
    }
}

/// One-shot CRC-64/XZ of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.value()
}

/// Little-endian primitive writers with a running CRC-64.
pub struct BinWriter<W: Write> {
    w: W,
    crc: Crc64,
}

impl<W: Write> BinWriter<W> {
    /// Start a checkpoint stream (writes the header).
    pub fn new(w: W) -> io::Result<Self> {
        let mut bw = BinWriter {
            w,
            crc: Crc64::new(),
        };
        bw.put(MAGIC)?;
        bw.put(&VERSION.to_le_bytes())?;
        Ok(bw)
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.crc.update(bytes);
        self.w.write_all(bytes)
    }

    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    pub fn u128(&mut self, v: u128) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    pub fn f64_slice(&mut self, v: &[f64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for x in v {
            self.put(&x.to_le_bytes())?;
        }
        Ok(())
    }

    pub fn i32_slice(&mut self, v: &[i32]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for x in v {
            self.put(&x.to_le_bytes())?;
        }
        Ok(())
    }

    pub fn string(&mut self, s: &str) -> io::Result<()> {
        self.u64(s.len() as u64)?;
        self.put(s.as_bytes())
    }

    /// Seal the stream: writes the footer (magic + CRC-64 over every
    /// byte written so far, header included) and flushes.
    pub fn finish(mut self) -> io::Result<W> {
        let crc = self.crc.value();
        // The footer itself is outside the checksummed region.
        self.w.write_all(FOOTER_MAGIC)?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Little-endian primitive readers with honest error reporting and a
/// running CRC-64 mirror of the writer's.
pub struct BinReader<R: Read> {
    r: R,
    crc: Crc64,
}

impl<R: Read> BinReader<R> {
    /// Open a checkpoint stream (validates the header).
    pub fn new(r: R) -> io::Result<Self> {
        let mut br = BinReader {
            r,
            crc: Crc64::new(),
        };
        let mut magic = [0u8; 8];
        br.take(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an OP-PIC checkpoint",
            ));
        }
        let mut v = [0u8; 4];
        br.take(&mut v)?;
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        Ok(br)
    }

    fn take(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.r.read_exact(buf)?;
        self.crc.update(buf);
        Ok(())
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn u128(&mut self) -> io::Result<u128> {
        let mut b = [0u8; 16];
        self.take(&mut b)?;
        Ok(u128::from_le_bytes(b))
    }

    pub fn f64_slice(&mut self) -> io::Result<Vec<f64>> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 24));
        let mut b = [0u8; 8];
        for _ in 0..n {
            self.take(&mut b)?;
            out.push(f64::from_le_bytes(b));
        }
        Ok(out)
    }

    pub fn i32_slice(&mut self) -> io::Result<Vec<i32>> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 24));
        let mut b = [0u8; 4];
        for _ in 0..n {
            self.take(&mut b)?;
            out.push(i32::from_le_bytes(b));
        }
        Ok(out)
    }

    pub fn string(&mut self) -> io::Result<String> {
        let n = self.u64()? as usize;
        let mut b = vec![0u8; n];
        self.take(&mut b)?;
        String::from_utf8(b).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Consume and validate the integrity footer. Call after the last
    /// payload section; rejects truncated files (missing footer) and
    /// any bit corruption in the bytes read so far (CRC mismatch).
    pub fn verify_footer(&mut self) -> io::Result<()> {
        let computed = self.crc.value();
        let mut magic = [0u8; 8];
        self.r.read_exact(&mut magic).map_err(|e| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("checkpoint truncated: footer missing ({e})"),
            )
        })?;
        if &magic != FOOTER_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint corrupt: footer magic mismatch (truncated or overwritten stream)",
            ));
        }
        let mut c = [0u8; 8];
        self.r.read_exact(&mut c).map_err(|e| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("checkpoint truncated: footer CRC missing ({e})"),
            )
        })?;
        let stored = u64::from_le_bytes(c);
        if stored != computed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint corrupt: CRC-64 mismatch (stored {stored:#018x}, \
                     computed {computed:#018x})"
                ),
            ));
        }
        Ok(())
    }
}

impl ParticleDats {
    /// Serialize the full store (schema + data).
    pub fn write_checkpoint<W: Write>(&self, w: &mut BinWriter<W>) -> io::Result<()> {
        w.u64(self.n_cols() as u64)?;
        for id in self.columns() {
            w.string(self.name(id))?;
            w.u64(self.dim(id) as u64)?;
            w.f64_slice(self.col(id))?;
        }
        w.i32_slice(self.cells())
    }

    /// Deserialize a store written by
    /// [`ParticleDats::write_checkpoint`].
    pub fn read_checkpoint<R: Read>(r: &mut BinReader<R>) -> io::Result<Self> {
        let n_cols = r.u64()? as usize;
        let mut ps = ParticleDats::new();
        let mut cols: Vec<(crate::particles::ColId, Vec<f64>)> = Vec::with_capacity(n_cols);
        let mut n_particles = None;
        for _ in 0..n_cols {
            let name = r.string()?;
            let dim = r.u64()? as usize;
            let data = r.f64_slice()?;
            if dim == 0 || data.len() % dim != 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "ragged column"));
            }
            let np = data.len() / dim;
            match n_particles {
                None => n_particles = Some(np),
                Some(p) if p != np => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "inconsistent column lengths",
                    ));
                }
                _ => {}
            }
            let id = ps.decl_dat(name, dim);
            cols.push((id, data));
        }
        let cells = r.i32_slice()?;
        let np = n_particles.unwrap_or(cells.len());
        if cells.len() != np {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cell map length mismatch",
            ));
        }
        ps.inject_into(&cells);
        for (id, data) in cols {
            ps.col_mut(id).copy_from_slice(&data);
        }
        Ok(ps)
    }
}

impl Dat {
    /// Serialize (name + dim + data).
    pub fn write_checkpoint<W: Write>(&self, w: &mut BinWriter<W>) -> io::Result<()> {
        w.string(self.name())?;
        w.u64(self.dim() as u64)?;
        w.f64_slice(self.raw())
    }

    /// Deserialize a dat written by [`Dat::write_checkpoint`].
    pub fn read_checkpoint<R: Read>(r: &mut BinReader<R>) -> io::Result<Self> {
        let name = r.string()?;
        let dim = r.u64()? as usize;
        let data = r.f64_slice()?;
        if dim == 0 || data.len() % dim != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "ragged dat"));
        }
        Ok(Dat::from_vec(name, dim, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dat_round_trip_is_bit_exact() {
        let d = Dat::from_fn("field", 5, 3, |i, c| (i as f64 + 0.1 * c as f64) * 1e-7);
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        d.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();
        let mut r = BinReader::new(buf.as_slice()).unwrap();
        let back = Dat::read_checkpoint(&mut r).unwrap();
        r.verify_footer().unwrap();
        assert_eq!(back.name(), "field");
        assert_eq!(back.dim(), 3);
        assert_eq!(back.raw(), d.raw());
    }

    #[test]
    fn particle_store_round_trip() {
        let mut ps = ParticleDats::new();
        let pos = ps.decl_dat("pos", 3);
        let q = ps.decl_dat("q", 1);
        ps.inject(7, 2);
        for i in 0..7 {
            ps.el_mut(pos, i)[0] = i as f64 * 0.25;
            ps.el_mut(q, i)[0] = -(i as f64);
            ps.cells_mut()[i] = (i * 3) as i32;
        }
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        ps.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();
        let mut r = BinReader::new(buf.as_slice()).unwrap();
        let back = ParticleDats::read_checkpoint(&mut r).unwrap();
        r.verify_footer().unwrap();
        assert_eq!(back.len(), 7);
        assert_eq!(back.dofs(), 4);
        assert_eq!(back.cells(), ps.cells());
        let bpos = back.col_id("pos").unwrap();
        assert_eq!(back.col(bpos), ps.col(pos));
        let bq = back.col_id("q").unwrap();
        assert_eq!(back.col(bq), ps.col(q));
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        assert!(BinReader::new(&b"NOTACKPT0000"[..]).is_err());
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        let d = Dat::zeros("x", 10, 2);
        d.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();
        let cut = buf.len() / 2;
        let mut r = BinReader::new(&buf[..cut]).unwrap();
        assert!(Dat::read_checkpoint(&mut r).is_err());
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        w.u64(42).unwrap();
        w.u128(1 << 100).unwrap();
        w.string("hello").unwrap();
        w.i32_slice(&[-1, 2, 3]).unwrap();
        w.finish().unwrap();
        let mut r = BinReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.i32_slice().unwrap(), vec![-1, 2, 3]);
        r.verify_footer().unwrap();
    }

    #[test]
    fn crc64_matches_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    /// Satellite: any single bit flip in the payload must be rejected
    /// by the footer check, even though the section parser may accept
    /// the mutated bytes.
    #[test]
    fn footer_rejects_bit_flipped_payload() {
        let d = Dat::from_fn("phi", 16, 1, |i, _| i as f64 * 0.5 - 3.0);
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        d.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();

        // Flip one bit in each byte position of the checksummed
        // region (header + payload, everything before the footer).
        let footer_start = buf.len() - 16;
        for pos in [12, footer_start / 2, footer_start - 1] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            let outcome = BinReader::new(bad.as_slice()).and_then(|mut r| {
                let _ = Dat::read_checkpoint(&mut r)?;
                r.verify_footer()
            });
            assert!(outcome.is_err(), "bit flip at byte {pos} not detected");
        }
    }

    /// Satellite: a truncated file fails the footer check with a
    /// clear error rather than silently yielding a short state.
    #[test]
    fn footer_rejects_truncated_file() {
        let d = Dat::from_fn("rho", 8, 1, |i, _| (i * i) as f64);
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        d.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();

        // Cut inside the footer: the payload parses but the footer is
        // incomplete.
        let cut = buf.len() - 5;
        let mut r = BinReader::new(&buf[..cut]).unwrap();
        let _ = Dat::read_checkpoint(&mut r).unwrap();
        let err = r.verify_footer().unwrap_err();
        assert!(
            err.to_string().contains("truncated"),
            "unexpected error: {err}"
        );

        // Cut before the footer so the stale tail is misread as a
        // footer: magic mismatch.
        let mut r2 = BinReader::new(&buf[..buf.len() - 17]).unwrap();
        // read a deliberately-short prefix then ask for the footer.
        let _ = r2.u64().unwrap();
        assert!(r2.verify_footer().is_err());
    }
}
