//! Checkpoint/restart — binary snapshots of simulation state.
//!
//! Long PIC campaigns checkpoint; the DSL owns the particle store, so
//! it owns the serialization too. The format is a minimal tagged
//! little-endian container (no external serializer): a magic header,
//! then length-prefixed sections. [`crate::particles::ParticleDats`]
//! and [`crate::dat::Dat`] round-trip losslessly (bit-exact f64).

use crate::dat::Dat;
use crate::particles::ParticleDats;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"OPPICCKP";
const VERSION: u32 = 1;

/// Little-endian primitive writers.
pub struct BinWriter<W: Write> {
    w: W,
}

impl<W: Write> BinWriter<W> {
    /// Start a checkpoint stream (writes the header).
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        Ok(BinWriter { w })
    }

    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }

    pub fn u128(&mut self, v: u128) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }

    pub fn f64_slice(&mut self, v: &[f64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for x in v {
            self.w.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }

    pub fn i32_slice(&mut self, v: &[i32]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for x in v {
            self.w.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }

    pub fn string(&mut self, s: &str) -> io::Result<()> {
        self.u64(s.len() as u64)?;
        self.w.write_all(s.as_bytes())
    }

    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Little-endian primitive readers with honest error reporting.
pub struct BinReader<R: Read> {
    r: R,
}

impl<R: Read> BinReader<R> {
    /// Open a checkpoint stream (validates the header).
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an OP-PIC checkpoint",
            ));
        }
        let mut v = [0u8; 4];
        r.read_exact(&mut v)?;
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        Ok(BinReader { r })
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn u128(&mut self) -> io::Result<u128> {
        let mut b = [0u8; 16];
        self.r.read_exact(&mut b)?;
        Ok(u128::from_le_bytes(b))
    }

    pub fn f64_slice(&mut self) -> io::Result<Vec<f64>> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 24));
        let mut b = [0u8; 8];
        for _ in 0..n {
            self.r.read_exact(&mut b)?;
            out.push(f64::from_le_bytes(b));
        }
        Ok(out)
    }

    pub fn i32_slice(&mut self) -> io::Result<Vec<i32>> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 24));
        let mut b = [0u8; 4];
        for _ in 0..n {
            self.r.read_exact(&mut b)?;
            out.push(i32::from_le_bytes(b));
        }
        Ok(out)
    }

    pub fn string(&mut self) -> io::Result<String> {
        let n = self.u64()? as usize;
        let mut b = vec![0u8; n];
        self.r.read_exact(&mut b)?;
        String::from_utf8(b).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl ParticleDats {
    /// Serialize the full store (schema + data).
    pub fn write_checkpoint<W: Write>(&self, w: &mut BinWriter<W>) -> io::Result<()> {
        w.u64(self.n_cols() as u64)?;
        for id in self.columns() {
            w.string(self.name(id))?;
            w.u64(self.dim(id) as u64)?;
            w.f64_slice(self.col(id))?;
        }
        w.i32_slice(self.cells())
    }

    /// Deserialize a store written by
    /// [`ParticleDats::write_checkpoint`].
    pub fn read_checkpoint<R: Read>(r: &mut BinReader<R>) -> io::Result<Self> {
        let n_cols = r.u64()? as usize;
        let mut ps = ParticleDats::new();
        let mut cols: Vec<(crate::particles::ColId, Vec<f64>)> = Vec::with_capacity(n_cols);
        let mut n_particles = None;
        for _ in 0..n_cols {
            let name = r.string()?;
            let dim = r.u64()? as usize;
            let data = r.f64_slice()?;
            if dim == 0 || data.len() % dim != 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "ragged column"));
            }
            let np = data.len() / dim;
            match n_particles {
                None => n_particles = Some(np),
                Some(p) if p != np => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "inconsistent column lengths",
                    ));
                }
                _ => {}
            }
            let id = ps.decl_dat(name, dim);
            cols.push((id, data));
        }
        let cells = r.i32_slice()?;
        let np = n_particles.unwrap_or(cells.len());
        if cells.len() != np {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cell map length mismatch",
            ));
        }
        ps.inject_into(&cells);
        for (id, data) in cols {
            ps.col_mut(id).copy_from_slice(&data);
        }
        Ok(ps)
    }
}

impl Dat {
    /// Serialize (name + dim + data).
    pub fn write_checkpoint<W: Write>(&self, w: &mut BinWriter<W>) -> io::Result<()> {
        w.string(self.name())?;
        w.u64(self.dim() as u64)?;
        w.f64_slice(self.raw())
    }

    /// Deserialize a dat written by [`Dat::write_checkpoint`].
    pub fn read_checkpoint<R: Read>(r: &mut BinReader<R>) -> io::Result<Self> {
        let name = r.string()?;
        let dim = r.u64()? as usize;
        let data = r.f64_slice()?;
        if dim == 0 || data.len() % dim != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "ragged dat"));
        }
        Ok(Dat::from_vec(name, dim, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dat_round_trip_is_bit_exact() {
        let d = Dat::from_fn("field", 5, 3, |i, c| (i as f64 + 0.1 * c as f64) * 1e-7);
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        d.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();
        let mut r = BinReader::new(buf.as_slice()).unwrap();
        let back = Dat::read_checkpoint(&mut r).unwrap();
        assert_eq!(back.name(), "field");
        assert_eq!(back.dim(), 3);
        assert_eq!(back.raw(), d.raw());
    }

    #[test]
    fn particle_store_round_trip() {
        let mut ps = ParticleDats::new();
        let pos = ps.decl_dat("pos", 3);
        let q = ps.decl_dat("q", 1);
        ps.inject(7, 2);
        for i in 0..7 {
            ps.el_mut(pos, i)[0] = i as f64 * 0.25;
            ps.el_mut(q, i)[0] = -(i as f64);
            ps.cells_mut()[i] = (i * 3) as i32;
        }
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        ps.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();
        let mut r = BinReader::new(buf.as_slice()).unwrap();
        let back = ParticleDats::read_checkpoint(&mut r).unwrap();
        assert_eq!(back.len(), 7);
        assert_eq!(back.dofs(), 4);
        assert_eq!(back.cells(), ps.cells());
        let bpos = back.col_id("pos").unwrap();
        assert_eq!(back.col(bpos), ps.col(pos));
        let bq = back.col_id("q").unwrap();
        assert_eq!(back.col(bq), ps.col(q));
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        assert!(BinReader::new(&b"NOTACKPT0000"[..]).is_err());
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        let d = Dat::zeros("x", 10, 2);
        d.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap();
        let cut = buf.len() / 2;
        let mut r = BinReader::new(&buf[..cut]).unwrap();
        assert!(Dat::read_checkpoint(&mut r).is_err());
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf).unwrap();
        w.u64(42).unwrap();
        w.u128(1 << 100).unwrap();
        w.string("hello").unwrap();
        w.i32_slice(&[-1, 2, 3]).unwrap();
        w.finish().unwrap();
        let mut r = BinReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.i32_slice().unwrap(), vec![-1, 2, 3]);
    }
}
