//! Structured runtime telemetry — the measurement layer behind the
//! paper's evaluation ("OP-PIC code instrumentation", Section 4.1.2).
//!
//! The paper's per-kernel runtime breakdowns (Fig. 9) and roofline
//! points (Figs. 10–11) come from instrumenting every DSL loop. This
//! module is that instrumentation, grown past a flat wall-clock
//! profiler into three coordinated pieces:
//!
//! * **Spans** — nestable timed scopes (`step > Move`,
//!   `step > DepositCharge`). A [`Span`] guard records into the
//!   per-kernel aggregate on drop and emits one JSONL event per close.
//!   Balance is structural: the guard truncates the span stack back to
//!   its own depth, so panic-unwind and leaked inner guards cannot
//!   desynchronise it.
//! * **Counters and histograms** — monotonic event counts (particles
//!   moved/removed/injected, hole-fill swaps, CSR rebuilds, auto-tuner
//!   decisions) and log₂-bucketed distributions (move hops per
//!   particle, cell segment lengths). [`Histogram`] uses atomic buckets
//!   so parallel loop bodies can record without locks, and snapshots
//!   merge associatively (property-tested).
//! * **Sinks** — an optional JSON Lines writer (`--telemetry out.jsonl`)
//!   emitting a run-header record (config hash, build profile, thread
//!   count), one event per span close, one summary per step, and a
//!   run-footer with final aggregates; plus the end-of-run human table
//!   ([`Telemetry::breakdown_table`]) that subsumes the old profiler
//!   breakdown.
//!
//! The DSL executors (`parloop`, `move_engine`, `deposit`, `particles`)
//! publish counters through a scoped thread-local handle
//! ([`Telemetry::make_current`] / [`current`]): an application step
//! installs its telemetry for the duration of the step and the
//! executors pick it up without signature changes. When no telemetry is
//! current the hooks cost one thread-local read and a branch — not
//! measurable in the criterion deposit bench.
//!
//! [`crate::profile::Profiler`] survives as a thin compatibility facade
//! over this layer; existing call sites and the paper-figure binaries
//! keep working unchanged.

use crate::json;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Event-stream schema version, carried in the run-header record.
pub const SCHEMA_VERSION: u64 = 1;

/// Default cap on retained decision traces (satellite: the old
/// `Profiler` kept every trace for the whole run).
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// Sentinel for "not inside a step".
const NO_STEP: u64 = u64::MAX;

/// Broad classification of a kernel, used to group the breakdown plots
/// the way the paper does (field solve vs particle work vs comm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    FieldSolve,
    WeightFields,
    Move,
    Deposit,
    Inject,
    Comm,
    Other,
}

impl KernelClass {
    /// Stable string form used in the JSONL footer / report CSV.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelClass::FieldSolve => "FieldSolve",
            KernelClass::WeightFields => "WeightFields",
            KernelClass::Move => "Move",
            KernelClass::Deposit => "Deposit",
            KernelClass::Inject => "Inject",
            KernelClass::Comm => "Comm",
            KernelClass::Other => "Other",
        }
    }

    /// Inverse of [`Self::as_str`] (used by the report tool).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "FieldSolve" => KernelClass::FieldSolve,
            "WeightFields" => KernelClass::WeightFields,
            "Move" => KernelClass::Move,
            "Deposit" => KernelClass::Deposit,
            "Inject" => KernelClass::Inject,
            "Comm" => KernelClass::Comm,
            "Other" => KernelClass::Other,
            _ => return None,
        })
    }
}

/// Accumulated statistics for one kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    pub calls: u64,
    pub seconds: f64,
    pub bytes: u64,
    pub flops: u64,
    pub class: Option<KernelClass>,
}

impl KernelStats {
    /// Arithmetic intensity in FLOP/byte (None with no byte count).
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        (self.bytes > 0).then(|| self.flops as f64 / self.bytes as f64)
    }

    /// Achieved GFLOP/s (None without timing or flops).
    pub fn gflops(&self) -> Option<f64> {
        (self.seconds > 0.0 && self.flops > 0).then(|| self.flops as f64 / self.seconds / 1e9)
    }

    /// Achieved GB/s.
    pub fn gbytes_per_s(&self) -> Option<f64> {
        (self.seconds > 0.0 && self.bytes > 0).then(|| self.bytes as f64 / self.seconds / 1e9)
    }
}

/// Interned kernel-name handle — the allocation-free fast path for
/// hot-loop recording (satellite: `Profiler::record` used to build a
/// `String` per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelId(u32);

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Number of log₂ buckets: bucket 0 holds value 0, bucket k holds
/// values in [2^(k-1), 2^k), and the last bucket absorbs everything
/// ≥ 2^31.
pub const HIST_BUCKETS: usize = 33;

/// Lock-free log₂ histogram. Recording is a relaxed atomic increment so
/// parallel loop bodies (hop chains on rayon workers) can share one via
/// `Arc` without coordination.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Owned, mergeable view of a [`Histogram`]. Merging is elementwise
/// integer addition plus min/max folds — associative and commutative by
/// construction (property-tested in `proptest_telemetry`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    /// `u64::MAX` when empty.
    pub min: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket where the cumulative count first
    /// reaches `q · count` — a coarse quantile estimate. Edges are
    /// pinned: an empty snapshot has no quantiles, `q ≤ 0` (and NaN)
    /// is the recorded minimum, `q ≥ 1` the recorded maximum, and
    /// every interior result is clamped into `[min, max]` so a sparse
    /// snapshot can never report a value outside the observed range.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q.is_nan() || q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                let hi = if i == 0 { 0 } else { 1u64 << i };
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

// ---------------------------------------------------------------------
// Telemetry core
// ---------------------------------------------------------------------

#[derive(Default)]
struct Counter {
    total: u64,
    /// Value of `total` at the last `begin_step` — per-step deltas are
    /// `total - mark`.
    mark: u64,
}

struct TraceBuf {
    buf: VecDeque<(String, String)>,
    cap: usize,
    dropped: u64,
}

impl Default for TraceBuf {
    fn default() -> Self {
        Self {
            buf: VecDeque::new(),
            cap: DEFAULT_TRACE_CAP,
            dropped: 0,
        }
    }
}

#[derive(Default)]
struct State {
    /// Kernel-name interning: name → id; `names[id]` / `kernels[id]`.
    ids: HashMap<String, u32>,
    names: Vec<String>,
    kernels: Vec<KernelStats>,
    counters: HashMap<String, Counter>,
    hists: HashMap<String, Arc<Histogram>>,
    traces: TraceBuf,
}

struct Frame {
    /// Kernel id; `None` for the synthetic per-step root frame.
    id: Option<u32>,
    path: String,
    start: Instant,
}

struct Sink {
    w: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
}

/// Severity attached to alert events (watchdog rule trips, recovery
/// rollbacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertSeverity {
    Warn,
    Critical,
}

impl AlertSeverity {
    /// Stable string form used in the JSONL `alert` record.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertSeverity::Warn => "warn",
            AlertSeverity::Critical => "critical",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "warn" => AlertSeverity::Warn,
            "critical" => AlertSeverity::Critical,
            _ => return None,
        })
    }
}

/// A live telemetry event, pushed to the attached [`EventObserver`] at
/// the moment it happens. Borrowed payloads keep the hot path
/// allocation-free; observers that need to retain an event copy what
/// they need (the flight recorder interns names into its own table).
#[derive(Debug, Clone, Copy)]
pub enum TelemetryEvent<'a> {
    /// A span (timed scope) closed.
    SpanClose {
        name: &'a str,
        path: &'a str,
        depth: usize,
        ms: f64,
        step: Option<u64>,
        ts_us: u64,
    },
    /// A monotonic counter advanced by `delta`.
    Count {
        name: &'a str,
        delta: u64,
        step: Option<u64>,
        ts_us: u64,
    },
    /// A decision trace line was recorded.
    Decision {
        name: &'a str,
        text: &'a str,
        step: Option<u64>,
        ts_us: u64,
    },
    /// A simulation step closed.
    StepEnd { step: u64, ms: f64, ts_us: u64 },
    /// A structured alert was raised via [`Telemetry::alert`].
    Alert {
        rule: &'a str,
        severity: AlertSeverity,
        message: &'a str,
        step: Option<u64>,
        ts_us: u64,
    },
}

/// Subscriber for the live event stream (the observability plane's
/// flight recorder). At most one observer is attached per hub; when
/// none is, the publish sites cost one relaxed atomic load.
pub trait EventObserver: Send + Sync {
    fn on_event(&self, ev: &TelemetryEvent<'_>);
}

/// The telemetry hub. Thread-safe; applications own one (usually via
/// `Profiler`) and share it by `Arc`.
pub struct Telemetry {
    state: Mutex<State>,
    spans: Mutex<Vec<Frame>>,
    sink: Mutex<Option<Sink>>,
    /// Cheap gate so event formatting is skipped when no sink is open.
    sink_attached: AtomicBool,
    /// Same gate for the live observer.
    observer_attached: AtomicBool,
    observer: Mutex<Option<Arc<dyn EventObserver>>>,
    /// Zero point of the `ts` microsecond clock on every event.
    origin: Instant,
    step: AtomicU64,
    events_written: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self {
            state: Mutex::new(State::default()),
            spans: Mutex::new(Vec::new()),
            sink: Mutex::new(None),
            sink_attached: AtomicBool::new(false),
            observer_attached: AtomicBool::new(false),
            observer: Mutex::new(None),
            origin: Instant::now(),
            step: AtomicU64::new(NO_STEP),
            events_written: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Telemetry")
            .field("kernels", &st.kernels.len())
            .field("counters", &st.counters.len())
            .field("histograms", &st.hists.len())
            .field("open_spans", &self.spans.lock().len())
            .field("sink", &self.sink_attached.load(Ordering::Relaxed))
            .finish()
    }
}

/// Metadata for the run-header record.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    pub app: String,
    pub config_hash: String,
    pub threads: usize,
    /// Extra `key: value` string fields appended to the header.
    pub extra: Vec<(String, String)>,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    // -- kernel aggregation (profiler-compatible) ---------------------

    /// Intern a kernel name, returning the allocation-free handle.
    pub fn intern(&self, name: &str) -> KernelId {
        let mut st = self.state.lock();
        KernelId(intern_locked(&mut st, name))
    }

    /// Record a duration under an interned kernel id (hot path: one
    /// lock, no hashing, no allocation).
    pub fn record_id(&self, id: KernelId, d: Duration) {
        let name = {
            let mut st = self.state.lock();
            let k = &mut st.kernels[id.0 as usize];
            k.calls += 1;
            k.seconds += d.as_secs_f64();
            if self.events_wanted() {
                Some(st.names[id.0 as usize].clone())
            } else {
                None
            }
        };
        if let Some(name) = name {
            self.emit_leaf_span(&name, d);
        }
    }

    /// Record a duration by name. Allocates only the first time a name
    /// is seen; thereafter it is a borrowed-key map lookup.
    pub fn record(&self, name: &str, d: Duration) {
        {
            let mut st = self.state.lock();
            let id = intern_locked(&mut st, name);
            let k = &mut st.kernels[id as usize];
            k.calls += 1;
            k.seconds += d.as_secs_f64();
        }
        if self.events_wanted() {
            self.emit_leaf_span(name, d);
        }
    }

    /// Time a closure under a kernel name.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(name, t0.elapsed());
        r
    }

    /// Attach data-movement / FLOP counts (accumulating).
    pub fn add_traffic(&self, name: &str, bytes: u64, flops: u64) {
        let mut st = self.state.lock();
        let id = intern_locked(&mut st, name);
        let k = &mut st.kernels[id as usize];
        k.bytes += bytes;
        k.flops += flops;
    }

    /// Tag a kernel with its class (idempotent).
    pub fn classify(&self, name: &str, class: KernelClass) {
        let mut st = self.state.lock();
        let id = intern_locked(&mut st, name);
        st.kernels[id as usize].class = Some(class);
    }

    /// Snapshot of one kernel's stats.
    pub fn get(&self, name: &str) -> Option<KernelStats> {
        let st = self.state.lock();
        st.ids.get(name).map(|&id| st.kernels[id as usize].clone())
    }

    /// Snapshot of every kernel, sorted by descending time.
    pub fn kernels_snapshot(&self) -> Vec<(String, KernelStats)> {
        let st = self.state.lock();
        let mut v: Vec<(String, KernelStats)> = st
            .names
            .iter()
            .zip(st.kernels.iter())
            .map(|(n, k)| (n.clone(), k.clone()))
            .collect();
        v.sort_by(|a, b| b.1.seconds.partial_cmp(&a.1.seconds).unwrap());
        v
    }

    /// Total recorded kernel seconds.
    pub fn total_seconds(&self) -> f64 {
        self.state.lock().kernels.iter().map(|k| k.seconds).sum()
    }

    // -- spans --------------------------------------------------------

    /// Open a nested timed scope. The returned guard records into the
    /// kernel aggregate and emits a span event when dropped.
    pub fn span(self: &Arc<Self>, name: &str) -> Span {
        let id = self.intern(name);
        let mut spans = self.spans.lock();
        let path = match spans.last() {
            Some(parent) => format!("{}>{}", parent.path, name),
            None => name.to_string(),
        };
        let depth = spans.len();
        spans.push(Frame {
            id: Some(id.0),
            path,
            start: Instant::now(),
        });
        Span {
            tel: self.clone(),
            depth,
        }
    }

    /// [`Self::span`] plus a class tag on the kernel.
    pub fn span_class(self: &Arc<Self>, name: &str, class: KernelClass) -> Span {
        self.classify(name, class);
        self.span(name)
    }

    /// Number of spans currently open (0 when balanced).
    pub fn open_spans(&self) -> usize {
        self.spans.lock().len()
    }

    /// Truncate the span stack to `depth`, recording every popped
    /// kernel frame. Deepest frames close first.
    fn close_to_depth(&self, depth: usize) {
        let popped: Vec<(Option<u32>, String, Duration)> = {
            let mut spans = self.spans.lock();
            if spans.len() <= depth {
                return;
            }
            spans
                .drain(depth..)
                .map(|f| (f.id, f.path, f.start.elapsed()))
                .collect()
        };
        for (id, path, dur) in popped.into_iter().rev() {
            if let Some(id) = id {
                {
                    let mut st = self.state.lock();
                    let k = &mut st.kernels[id as usize];
                    k.calls += 1;
                    k.seconds += dur.as_secs_f64();
                }
                if self.events_wanted() {
                    let name = path.rsplit('>').next().unwrap_or(&path).to_string();
                    self.emit_span(&name, &path, dur);
                }
            }
        }
    }

    // -- counters / histograms ---------------------------------------

    /// Add `n` to a monotonic counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        {
            let mut st = self.state.lock();
            match st.counters.get_mut(name) {
                Some(c) => c.total += n,
                None => {
                    st.counters
                        .insert(name.to_string(), Counter { total: n, mark: 0 });
                }
            }
        }
        if self.observer_attached.load(Ordering::Relaxed) {
            self.notify(&TelemetryEvent::Count {
                name,
                delta: n,
                step: self.current_step(),
                ts_us: self.ts_us(),
            });
        }
    }

    /// Current total of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.state.lock().counters.get(name).map_or(0, |c| c.total)
    }

    /// All counters and totals, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let st = self.state.lock();
        let mut v: Vec<(String, u64)> = st
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.total))
            .collect();
        v.sort();
        v
    }

    /// Shared handle to a named histogram (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut st = self.state.lock();
        match st.hists.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::new());
                st.hists.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Record one value into a named histogram.
    pub fn hist_record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Snapshots of all histograms, sorted by name.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        let st = self.state.lock();
        let mut v: Vec<(String, HistogramSnapshot)> = st
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    // -- decision traces (capped; satellite 1) ------------------------

    /// Record a one-line decision trace (e.g. the deposit auto-tuner's
    /// per-loop strategy choice). The buffer is capped; the oldest
    /// entries are dropped and counted. Also emitted as a `decision`
    /// event when a sink is attached.
    pub fn trace(&self, name: &str, line: impl Into<String>) {
        let line = line.into();
        {
            let mut st = self.state.lock();
            let tb = &mut st.traces;
            if tb.buf.len() >= tb.cap {
                tb.buf.pop_front();
                tb.dropped += 1;
            }
            tb.buf.push_back((name.to_string(), line.clone()));
        }
        let ts = self.ts_us();
        if self.sink_attached.load(Ordering::Relaxed) {
            let mut ev = String::with_capacity(64 + line.len());
            ev.push_str("{\"type\":\"decision\"");
            self.push_step_field(&mut ev);
            let _ = write!(
                ev,
                ",\"ts\":{ts},\"name\":{},\"text\":{}}}",
                json::quote(name),
                json::quote(&line)
            );
            self.emit(&ev);
        }
        self.notify(&TelemetryEvent::Decision {
            name,
            text: &line,
            step: self.current_step(),
            ts_us: ts,
        });
    }

    /// All retained decision traces in emission order.
    pub fn traces(&self) -> Vec<(String, String)> {
        self.state.lock().traces.buf.iter().cloned().collect()
    }

    /// Remove and return all retained traces (the cumulative dropped
    /// count is preserved).
    pub fn drain_traces(&self) -> Vec<(String, String)> {
        self.state.lock().traces.buf.drain(..).collect()
    }

    /// Number of traces dropped to honour the cap.
    pub fn traces_dropped(&self) -> u64 {
        self.state.lock().traces.dropped
    }

    /// Change the trace retention cap (existing overflow is dropped).
    pub fn set_trace_cap(&self, cap: usize) {
        let mut st = self.state.lock();
        let tb = &mut st.traces;
        tb.cap = cap.max(1);
        while tb.buf.len() > tb.cap {
            tb.buf.pop_front();
            tb.dropped += 1;
        }
    }

    // -- step lifecycle ----------------------------------------------

    /// Mark the start of simulation step `step`: snapshot counter marks
    /// (for per-step deltas) and open the root `step` span frame.
    pub fn begin_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
        {
            let mut st = self.state.lock();
            for c in st.counters.values_mut() {
                c.mark = c.total;
            }
        }
        self.spans.lock().push(Frame {
            id: None,
            path: "step".to_string(),
            start: Instant::now(),
        });
    }

    /// Close the current step: any kernel spans still open inside it
    /// are closed, counter deltas since `begin_step` are computed, and
    /// one `step` summary event is emitted. `gauges` are instantaneous
    /// level readings (e.g. `("alive", n_particles)`).
    pub fn end_step(&self, gauges: &[(&str, f64)]) {
        let root = {
            let spans = self.spans.lock();
            spans.iter().rposition(|f| f.id.is_none())
        };
        let Some(root_depth) = root else {
            self.step.store(NO_STEP, Ordering::Relaxed);
            return;
        };
        // Close children of the root, then pop the root itself.
        self.close_to_depth(root_depth + 1);
        let ms = {
            let mut spans = self.spans.lock();
            let f = spans.pop().expect("root frame present");
            f.start.elapsed().as_secs_f64() * 1e3
        };
        let step = self.step.load(Ordering::Relaxed);
        let deltas: Vec<(String, u64)> = {
            let mut st = self.state.lock();
            let mut v: Vec<(String, u64)> = st
                .counters
                .iter_mut()
                .filter_map(|(k, c)| {
                    let d = c.total - c.mark;
                    c.mark = c.total;
                    (d > 0).then(|| (k.clone(), d))
                })
                .collect();
            v.sort();
            v
        };
        let ts = self.ts_us();
        if self.sink_attached.load(Ordering::Relaxed) {
            let mut ev = String::with_capacity(128);
            let _ = write!(
                ev,
                "{{\"type\":\"step\",\"step\":{step},\"ts\":{ts},\"ms\":{}",
                json::num(ms)
            );
            ev.push_str(",\"gauges\":{");
            for (i, (k, v)) in gauges.iter().enumerate() {
                if i > 0 {
                    ev.push(',');
                }
                let _ = write!(ev, "{}:{}", json::quote(k), json::num(*v));
            }
            ev.push_str("},\"counters\":{");
            for (i, (k, v)) in deltas.iter().enumerate() {
                if i > 0 {
                    ev.push(',');
                }
                let _ = write!(ev, "{}:{v}", json::quote(k));
            }
            ev.push_str("}}");
            self.emit(&ev);
        }
        self.notify(&TelemetryEvent::StepEnd {
            step,
            ms,
            ts_us: ts,
        });
        self.step.store(NO_STEP, Ordering::Relaxed);
    }

    /// Current step index (None outside `begin_step`/`end_step`).
    pub fn current_step(&self) -> Option<u64> {
        match self.step.load(Ordering::Relaxed) {
            NO_STEP => None,
            s => Some(s),
        }
    }

    // -- sink ---------------------------------------------------------

    /// Open a JSON Lines sink at `path` and write the run-header
    /// record. Replaces any previously attached sink.
    pub fn attach_sink(&self, path: &Path, info: &RunInfo) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut header = String::with_capacity(160);
        let _ = write!(
            header,
            "{{\"type\":\"run_header\",\"schema\":{SCHEMA_VERSION},\"app\":{},\"config_hash\":{},\"build\":{},\"threads\":{}",
            json::quote(&info.app),
            json::quote(&info.config_hash),
            json::quote(if cfg!(debug_assertions) { "debug" } else { "release" }),
            info.threads,
        );
        for (k, v) in &info.extra {
            let _ = write!(header, ",{}:{}", json::quote(k), json::quote(v));
        }
        header.push('}');
        let mut sink = Sink {
            w: std::io::BufWriter::new(file),
            path: path.to_path_buf(),
        };
        writeln!(sink.w, "{header}")?;
        *self.sink.lock() = Some(sink);
        self.sink_attached.store(true, Ordering::Relaxed);
        self.events_written.store(1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether a JSONL sink is currently attached.
    pub fn sink_is_attached(&self) -> bool {
        self.sink_attached.load(Ordering::Relaxed)
    }

    /// Path of the attached sink, if any.
    pub fn sink_path(&self) -> Option<PathBuf> {
        self.sink.lock().as_ref().map(|s| s.path.clone())
    }

    /// Emit the run-footer record (final aggregates + balance info),
    /// flush, and detach the sink. No-op without a sink.
    pub fn finish(&self) -> std::io::Result<()> {
        if !self.sink_attached.load(Ordering::Relaxed) {
            return Ok(());
        }
        let open = self.open_spans();
        let total_ms = self.total_seconds() * 1e3;
        let kernels = self.kernels_snapshot();
        let counters = self.counters_snapshot();
        let hists = self.histograms_snapshot();
        let dropped = self.traces_dropped();
        let mut ev = String::with_capacity(512);
        let _ = write!(
            ev,
            "{{\"type\":\"run_footer\",\"open_spans\":{open},\"total_ms\":{},\"events\":{},\"traces_dropped\":{dropped}",
            json::num(total_ms),
            // +1 for the footer itself.
            self.events_written.load(Ordering::Relaxed) + 1,
        );
        ev.push_str(",\"kernels\":[");
        for (i, (name, k)) in kernels.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            let _ = write!(
                ev,
                "{{\"name\":{},\"class\":{},\"calls\":{},\"seconds\":{},\"bytes\":{},\"flops\":{}}}",
                json::quote(name),
                k.class
                    .map_or_else(|| "null".to_string(), |c| json::quote(c.as_str())),
                k.calls,
                json::num(k.seconds),
                k.bytes,
                k.flops,
            );
        }
        ev.push_str("],\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            let _ = write!(ev, "{}:{v}", json::quote(k));
        }
        ev.push_str("},\"histograms\":{");
        for (i, (name, h)) in hists.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            let _ = write!(
                ev,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json::quote(name),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
            );
            let mut first = true;
            for (b, c) in h.buckets.iter().enumerate() {
                if *c > 0 {
                    if !first {
                        ev.push(',');
                    }
                    first = false;
                    let _ = write!(ev, "[{b},{c}]");
                }
            }
            ev.push_str("]}");
        }
        ev.push_str("}}");
        self.emit(&ev);
        let sink = self.sink.lock().take();
        self.sink_attached.store(false, Ordering::Relaxed);
        if let Some(mut s) = sink {
            s.w.flush()?;
        }
        Ok(())
    }

    /// Clear all statistics (between benchmark repetitions). The sink,
    /// if attached, stays open.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.ids.clear();
        st.names.clear();
        st.kernels.clear();
        st.counters.clear();
        st.hists.clear();
        st.traces.buf.clear();
        st.traces.dropped = 0;
    }

    // -- rendering ----------------------------------------------------

    /// Render the paper-style runtime breakdown table (kernels, calls,
    /// seconds, share, achieved GB/s and GFLOP/s), followed by the
    /// collapsed decision trace and any non-empty counters/histograms.
    pub fn breakdown_table(&self) -> String {
        let snap = self.kernels_snapshot();
        let total = self.total_seconds().max(1e-30);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<28} {:>8} {:>12} {:>7} {:>12} {:>12}",
            "kernel", "calls", "seconds", "%", "GB/s", "GFLOP/s"
        );
        for (name, st) in &snap {
            let _ = writeln!(
                s,
                "{:<28} {:>8} {:>12.4} {:>6.1}% {:>12} {:>12}",
                name,
                st.calls,
                st.seconds,
                100.0 * st.seconds / total,
                st.gbytes_per_s()
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
                st.gflops()
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            );
        }
        let _ = writeln!(s, "{:<28} {:>8} {:>12.4}", "TOTAL", "", total);
        let traces = self.traces();
        let dropped = self.traces_dropped();
        if !traces.is_empty() || dropped > 0 {
            // Collapse consecutive identical decisions ("chose SS" ×50)
            // so per-step traces stay one line per *change*.
            s.push_str("decision trace:\n");
            if dropped > 0 {
                let _ = writeln!(s, "  ({dropped} older traces dropped at cap)");
            }
            let mut run: Option<(&(String, String), usize)> = None;
            let emit = |entry: &(String, String), count: usize, s: &mut String| {
                let (kernel, line) = entry;
                if count > 1 {
                    let _ = writeln!(s, "  {kernel}: {line} (x{count})");
                } else {
                    let _ = writeln!(s, "  {kernel}: {line}");
                }
            };
            for t in &traces {
                match run {
                    Some((prev, c)) if prev == t => run = Some((prev, c + 1)),
                    Some((prev, c)) => {
                        emit(prev, c, &mut s);
                        run = Some((t, 1));
                    }
                    None => run = Some((t, 1)),
                }
            }
            if let Some((prev, c)) = run {
                emit(prev, c, &mut s);
            }
        }
        let counters = self.counters_snapshot();
        if !counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &counters {
                let _ = writeln!(s, "  {k:<34} {v}");
            }
        }
        let hists = self.histograms_snapshot();
        if hists.iter().any(|(_, h)| !h.is_empty()) {
            s.push_str("histograms (count / mean / p50 / max):\n");
            for (k, h) in hists.iter().filter(|(_, h)| !h.is_empty()) {
                let _ = writeln!(
                    s,
                    "  {k:<34} {} / {:.2} / {} / {}",
                    h.count,
                    h.mean().unwrap_or(0.0),
                    h.approx_quantile(0.5).unwrap_or(0),
                    h.max,
                );
            }
        }
        s
    }

    // -- event plumbing ----------------------------------------------

    fn push_step_field(&self, ev: &mut String) {
        let step = self.step.load(Ordering::Relaxed);
        if step != NO_STEP {
            let _ = write!(ev, ",\"step\":{step}");
        }
    }

    /// Emit a span event for a record()-style leaf (path = current span
    /// path + name).
    fn emit_leaf_span(&self, name: &str, d: Duration) {
        let path = {
            let spans = self.spans.lock();
            match spans.last() {
                Some(parent) => format!("{}>{}", parent.path, name),
                None => name.to_string(),
            }
        };
        self.emit_span(name, &path, d);
    }

    fn emit_span(&self, name: &str, path: &str, d: Duration) {
        let depth = path.matches('>').count();
        let ms = d.as_secs_f64() * 1e3;
        let ts = self.ts_us();
        if self.sink_attached.load(Ordering::Relaxed) {
            let mut ev = String::with_capacity(112);
            ev.push_str("{\"type\":\"span\"");
            self.push_step_field(&mut ev);
            let _ = write!(
                ev,
                ",\"ts\":{ts},\"name\":{},\"path\":{},\"depth\":{depth},\"ms\":{}}}",
                json::quote(name),
                json::quote(path),
                json::num(ms),
            );
            self.emit(&ev);
        }
        self.notify(&TelemetryEvent::SpanClose {
            name,
            path,
            depth,
            ms,
            step: self.current_step(),
            ts_us: ts,
        });
    }

    fn emit(&self, line: &str) {
        let mut sink = self.sink.lock();
        if let Some(s) = sink.as_mut() {
            let _ = writeln!(s.w, "{line}");
            self.events_written.fetch_add(1, Ordering::Relaxed);
        }
    }

    // -- live observer + alerts --------------------------------------

    /// Microseconds since this hub was created — the shared clock for
    /// the JSONL `ts` fields, the observer stream, and the flight
    /// recorder.
    pub fn ts_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Attach (or with `None`, detach) the live event observer.
    pub fn set_observer(&self, obs: Option<Arc<dyn EventObserver>>) {
        let mut slot = self.observer.lock();
        self.observer_attached
            .store(obs.is_some(), Ordering::Relaxed);
        *slot = obs;
    }

    /// Whether a live observer is currently attached.
    pub fn observer_is_attached(&self) -> bool {
        self.observer_attached.load(Ordering::Relaxed)
    }

    /// Either event consumer wants span events assembled.
    fn events_wanted(&self) -> bool {
        self.sink_attached.load(Ordering::Relaxed) || self.observer_attached.load(Ordering::Relaxed)
    }

    /// Push one event to the observer, outside any hub lock (the
    /// handle is cloned first so an observer may call back into the
    /// hub without deadlocking).
    fn notify(&self, ev: &TelemetryEvent<'_>) {
        if !self.observer_attached.load(Ordering::Relaxed) {
            return;
        }
        let obs = self.observer.lock().clone();
        if let Some(o) = obs {
            o.on_event(ev);
        }
    }

    /// Raise a structured alert (watchdog rule trip, recovery
    /// rollback): bump `alerts.total` and `alerts.<rule>`, emit an
    /// `alert` JSONL record when a sink is attached, and push the
    /// event to the observer so the flight recorder can dump around
    /// it.
    pub fn alert(&self, rule: &str, severity: AlertSeverity, message: &str) {
        self.counter_add("alerts.total", 1);
        self.counter_add(&format!("alerts.{rule}"), 1);
        let ts = self.ts_us();
        if self.sink_attached.load(Ordering::Relaxed) {
            let mut ev = String::with_capacity(96 + message.len());
            ev.push_str("{\"type\":\"alert\"");
            self.push_step_field(&mut ev);
            let _ = write!(
                ev,
                ",\"ts\":{ts},\"rule\":{},\"severity\":{},\"message\":{}}}",
                json::quote(rule),
                json::quote(severity.as_str()),
                json::quote(message),
            );
            self.emit(&ev);
        }
        self.notify(&TelemetryEvent::Alert {
            rule,
            severity,
            message,
            step: self.current_step(),
            ts_us: ts,
        });
    }

    /// Total alerts raised on this hub.
    pub fn alert_total(&self) -> u64 {
        self.counter("alerts.total")
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        // Best-effort footer if the app forgot to call finish().
        let _ = self.finish();
    }
}

fn intern_locked(st: &mut State, name: &str) -> u32 {
    if let Some(&id) = st.ids.get(name) {
        return id;
    }
    let id = st.names.len() as u32;
    st.ids.insert(name.to_string(), id);
    st.names.push(name.to_string());
    st.kernels.push(KernelStats::default());
    id
}

// ---------------------------------------------------------------------
// Span guard
// ---------------------------------------------------------------------

/// RAII guard for an open span. On drop the span stack is truncated
/// back to this span's depth: the frame is recorded and emitted, and
/// any deeper frames that were leaked (mem::forget, panic edge cases)
/// are closed with it, so the stack can never stay unbalanced.
pub struct Span {
    tel: Arc<Telemetry>,
    depth: usize,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tel.close_to_depth(self.depth);
    }
}

// ---------------------------------------------------------------------
// Scoped "current telemetry" for the DSL executors
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Telemetry>>> = const { RefCell::new(Vec::new()) };
}

/// Guard installing a telemetry hub as the thread's current one; the
/// previous current (if any) is restored on drop.
pub struct CurrentGuard {
    _priv: (),
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

impl Telemetry {
    /// Install this hub as the calling thread's current telemetry for
    /// the guard's lifetime. The DSL executors (`move_engine`,
    /// `deposit`, `particles`, `parloop`) publish counters and
    /// histograms through [`current`] so applications don't thread a
    /// handle through every loop call.
    pub fn make_current(self: &Arc<Self>) -> CurrentGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        CurrentGuard { _priv: () }
    }
}

/// The calling thread's current telemetry hub, if any.
pub fn current() -> Option<Arc<Telemetry>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Add to a counter on the current hub (no-op without one). This is
/// the executors' hook: one thread-local read + branch when telemetry
/// is off.
pub fn count(name: &str, n: u64) {
    if n == 0 {
        return;
    }
    if let Some(t) = current() {
        t.counter_add(name, n);
    }
}

/// Shared handle to a named histogram on the current hub.
pub fn hist(name: &str) -> Option<Arc<Histogram>> {
    current().map(|t| t.histogram(name))
}

/// FNV-1a hash — stable config fingerprint for the run header.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("oppic_tel_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn record_and_get() {
        let t = Telemetry::new();
        t.record("Move", Duration::from_millis(10));
        t.record("Move", Duration::from_millis(5));
        let k = t.get("Move").unwrap();
        assert_eq!(k.calls, 2);
        assert!((k.seconds - 0.015).abs() < 1e-9);
    }

    #[test]
    fn interned_id_fast_path() {
        let t = Telemetry::new();
        let id = t.intern("DepositCharge");
        assert_eq!(t.intern("DepositCharge"), id);
        t.record_id(id, Duration::from_millis(2));
        assert_eq!(t.get("DepositCharge").unwrap().calls, 1);
    }

    #[test]
    fn spans_nest_and_balance() {
        let t = Arc::new(Telemetry::new());
        {
            let _a = t.span("outer");
            {
                let _b = t.span("inner");
                assert_eq!(t.open_spans(), 2);
            }
            assert_eq!(t.open_spans(), 1);
        }
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.get("outer").unwrap().calls, 1);
        assert_eq!(t.get("inner").unwrap().calls, 1);
    }

    #[test]
    fn span_balance_survives_panic() {
        let t = Arc::new(Telemetry::new());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = t.span("outer");
            let _b = t.span("inner");
            panic!("boom");
        }));
        assert!(r.is_err());
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.get("outer").unwrap().calls, 1);
        assert_eq!(t.get("inner").unwrap().calls, 1);
    }

    #[test]
    fn counters_and_step_deltas() {
        let t = Telemetry::new();
        t.counter_add("init", 7); // before any step: not in deltas
        t.begin_step(1);
        t.counter_add("moved", 5);
        t.counter_add("moved", 3);
        t.end_step(&[("alive", 100.0)]);
        assert_eq!(t.counter("moved"), 8);
        assert_eq!(t.counter("init"), 7);
        t.begin_step(2);
        t.end_step(&[]);
        assert_eq!(t.counter("moved"), 8);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1013);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert!(s.approx_quantile(0.5).unwrap() <= 4);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 2, 700] {
            b.record(v);
            both.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn approx_quantile_pins_edges() {
        // Empty snapshot: no quantiles at any q.
        let empty = HistogramSnapshot::default();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.approx_quantile(q), None);
        }
        // Single value: every quantile is that value.
        let h = Histogram::new();
        h.record(5);
        let s = h.snapshot();
        for q in [-0.5, 0.0, 0.25, 0.5, 1.0, 7.0] {
            assert_eq!(s.approx_quantile(q), Some(5), "q={q}");
        }
        // Multi-bucket: q≤0 pins to min, q≥1 to max, NaN to min, and
        // interior estimates stay inside [min, max].
        let h = Histogram::new();
        for v in [2u64, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.approx_quantile(0.0), Some(2));
        assert_eq!(s.approx_quantile(-3.0), Some(2));
        assert_eq!(s.approx_quantile(f64::NAN), Some(2));
        assert_eq!(s.approx_quantile(1.0), Some(100));
        assert_eq!(s.approx_quantile(42.0), Some(100));
        let p50 = s.approx_quantile(0.5).unwrap();
        assert!((2..=100).contains(&p50), "p50={p50}");
        // Zero-only histogram: bucket 0's upper bound is 0 == min == max.
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.snapshot().approx_quantile(0.5), Some(0));
    }

    #[test]
    fn alert_counts_and_emits_record() {
        let path = tmp_path("alert");
        let t = Arc::new(Telemetry::new());
        t.attach_sink(&path, &RunInfo::default()).unwrap();
        t.alert(
            "step_time_regression",
            AlertSeverity::Critical,
            "step 7 took 310.0 ms vs EWMA 1.2 ms",
        );
        t.finish().unwrap();
        assert_eq!(t.counter("alerts.total"), 1);
        assert_eq!(t.counter("alerts.step_time_regression"), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let alert = text
            .lines()
            .map(|l| crate::json::parse(l).expect("valid json"))
            .find(|l| l.get("type").and_then(|v| v.as_str()) == Some("alert"))
            .expect("alert event");
        assert_eq!(
            alert.get("rule").and_then(|v| v.as_str()),
            Some("step_time_regression")
        );
        assert_eq!(
            alert.get("severity").and_then(|v| v.as_str()),
            Some("critical")
        );
        assert!(alert.get("ts").and_then(|v| v.as_u64()).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn observer_receives_events_without_sink() {
        struct Rec(Mutex<Vec<String>>);
        impl EventObserver for Rec {
            fn on_event(&self, ev: &TelemetryEvent<'_>) {
                let tag = match ev {
                    TelemetryEvent::SpanClose { name, .. } => format!("span:{name}"),
                    TelemetryEvent::Count { name, delta, .. } => format!("count:{name}:{delta}"),
                    TelemetryEvent::Decision { name, .. } => format!("decision:{name}"),
                    TelemetryEvent::StepEnd { step, .. } => format!("step:{step}"),
                    TelemetryEvent::Alert { rule, severity, .. } => {
                        format!("alert:{rule}:{}", severity.as_str())
                    }
                };
                self.0.lock().push(tag);
            }
        }
        let rec = Arc::new(Rec(Mutex::new(Vec::new())));
        let t = Arc::new(Telemetry::new());
        t.set_observer(Some(rec.clone()));
        assert!(t.observer_is_attached());
        t.begin_step(3);
        {
            let _s = t.span("Move");
        }
        t.counter_add("moved", 4);
        t.trace("tuner", "chose SS");
        t.end_step(&[]);
        t.alert("nan_rate", AlertSeverity::Warn, "2 quarantined");
        t.set_observer(None);
        t.counter_add("after_detach", 1);
        let got = rec.0.lock().clone();
        assert!(got.contains(&"span:Move".to_string()), "{got:?}");
        assert!(got.contains(&"count:moved:4".to_string()));
        assert!(got.contains(&"decision:tuner".to_string()));
        assert!(got.contains(&"step:3".to_string()));
        assert!(got.contains(&"alert:nan_rate:warn".to_string()));
        // Alerts bump counters, which the observer also sees.
        assert!(got.contains(&"count:alerts.nan_rate:1".to_string()));
        assert!(!got.iter().any(|g| g.contains("after_detach")));
    }

    #[test]
    fn span_events_carry_monotonic_ts() {
        let t = Arc::new(Telemetry::new());
        let a = t.ts_us();
        std::thread::sleep(Duration::from_millis(2));
        let b = t.ts_us();
        assert!(b > a);
    }

    #[test]
    fn trace_cap_drops_oldest() {
        let t = Telemetry::new();
        t.set_trace_cap(3);
        for i in 0..5 {
            t.trace("k", format!("line {i}"));
        }
        let tr = t.traces();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr[0].1, "line 2");
        assert_eq!(t.traces_dropped(), 2);
        let drained = t.drain_traces();
        assert_eq!(drained.len(), 3);
        assert!(t.traces().is_empty());
        assert_eq!(t.traces_dropped(), 2);
    }

    #[test]
    fn current_scoping_nests_and_restores() {
        assert!(current().is_none());
        let a = Arc::new(Telemetry::new());
        let b = Arc::new(Telemetry::new());
        {
            let _ga = a.make_current();
            count("c", 1);
            {
                let _gb = b.make_current();
                count("c", 10);
            }
            count("c", 1);
        }
        assert!(current().is_none());
        assert_eq!(a.counter("c"), 2);
        assert_eq!(b.counter("c"), 10);
    }

    #[test]
    fn sink_round_trips_schema() {
        let path = tmp_path("roundtrip");
        let t = Arc::new(Telemetry::new());
        t.attach_sink(
            &path,
            &RunInfo {
                app: "test".into(),
                config_hash: format!("{:016x}", fnv1a(b"cfg")),
                threads: 4,
                extra: vec![("note".into(), "unit \"quoted\"".into())],
            },
        )
        .unwrap();
        t.begin_step(0);
        {
            let _s = t.span_class("Move", KernelClass::Move);
            t.counter_add("move.relocated", 3);
        }
        t.trace("DepositCharge", "auto-tuned to SS");
        t.hist_record("move.hops_per_particle", 2);
        t.end_step(&[("alive", 10.0)]);
        t.finish().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<crate::json::Json> = text
            .lines()
            .map(|l| crate::json::parse(l).expect("valid json"))
            .collect();
        assert!(lines.len() >= 4);
        let header = &lines[0];
        assert_eq!(
            header.get("type").and_then(|v| v.as_str()),
            Some("run_header")
        );
        assert_eq!(header.get("schema").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(header.get("threads").and_then(|v| v.as_u64()), Some(4));
        let footer = lines.last().unwrap();
        assert_eq!(
            footer.get("type").and_then(|v| v.as_str()),
            Some("run_footer")
        );
        assert_eq!(footer.get("open_spans").and_then(|v| v.as_u64()), Some(0));
        let span = lines
            .iter()
            .find(|l| l.get("type").and_then(|v| v.as_str()) == Some("span"))
            .expect("span event");
        assert_eq!(span.get("path").and_then(|v| v.as_str()), Some("step>Move"));
        assert_eq!(span.get("depth").and_then(|v| v.as_u64()), Some(1));
        let step = lines
            .iter()
            .find(|l| l.get("type").and_then(|v| v.as_str()) == Some("step"))
            .expect("step event");
        assert_eq!(
            step.get("counters")
                .and_then(|c| c.get("move.relocated"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            step.get("gauges")
                .and_then(|g| g.get("alive"))
                .and_then(|v| v.as_f64()),
            Some(10.0)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn breakdown_table_shows_counters_and_histograms() {
        let t = Telemetry::new();
        t.record("Move", Duration::from_millis(30));
        t.counter_add("move.relocated", 42);
        t.hist_record("move.hops_per_particle", 3);
        let table = t.breakdown_table();
        assert!(table.contains("Move"));
        assert!(table.contains("TOTAL"));
        assert!(table.contains("move.relocated"));
        assert!(table.contains("move.hops_per_particle"));
    }

    #[test]
    fn telemetry_is_thread_safe() {
        let t = Arc::new(Telemetry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    let h = t.histogram("h");
                    for i in 0..100 {
                        t.record("k", Duration::from_nanos(100));
                        t.counter_add("c", 2);
                        h.record(i % 7);
                    }
                });
            }
        });
        assert_eq!(t.get("k").unwrap().calls, 800);
        assert_eq!(t.counter("c"), 1600);
        assert_eq!(t.histograms_snapshot()[0].1.count, 800);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
