//! The particle store — `opp_decl_particle_set` plus the dynamic
//! particle→cell map and the bookkeeping the paper's backend owns:
//! injection (`OPP_ITERATE_INJECTED`), removal with **hole filling**
//! (Section 3.2.2: "a hole filling routine runs asynchronously during
//! communication, shifting data from the end of the `opp_dat`s to fill
//! the holes"), sorting by cell, and periodic shuffling.
//!
//! Particle data is stored as a structure of arrays: one flat `f64`
//! column per declared dat (`pos`, `vel`, `charge`, …) plus the `i32`
//! cell index column (the `p2cell` map of Figure 4, line 15). All
//! columns move together under relocation, which is why the store owns
//! them rather than the application.

/// Handle to a particle column, returned by
/// [`ParticleDats::decl_dat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColId(usize);

/// A set of particles with named f64 columns and a cell-index column.
///
/// ```
/// use oppic_core::ParticleDats;
/// let mut ps = ParticleDats::new();
/// let pos = ps.decl_dat("pos", 3);
/// ps.inject(10, 0);                 // 10 particles in cell 0
/// ps.el_mut(pos, 3)[0] = 2.5;
/// ps.remove_fill(&[0, 1]);          // hole-filled removal
/// assert_eq!(ps.len(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParticleDats {
    n: usize,
    names: Vec<String>,
    dims: Vec<usize>,
    cols: Vec<Vec<f64>>,
    /// The dynamic particle→cell map (`p2cell_i`). Always in
    /// `0..n_cells` for live particles.
    cell: Vec<i32>,
    /// Start of the most recent injection batch (for
    /// `OPP_ITERATE_INJECTED` loops).
    injected_from: usize,
}

impl ParticleDats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a new particle dat of dimension `dim`. Existing
    /// particles get zero-filled values.
    pub fn decl_dat(&mut self, name: impl Into<String>, dim: usize) -> ColId {
        assert!(dim > 0, "particle dat dimension must be positive");
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "particle dat '{name}' declared twice"
        );
        self.names.push(name);
        self.dims.push(dim);
        self.cols.push(vec![0.0; self.n * dim]);
        ColId(self.cols.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Handles to every declared column, in declaration order.
    pub fn columns(&self) -> Vec<ColId> {
        (0..self.cols.len()).map(ColId).collect()
    }

    pub fn dim(&self, id: ColId) -> usize {
        self.dims[id.0]
    }

    pub fn name(&self, id: ColId) -> &str {
        &self.names[id.0]
    }

    /// Column by name (test/diagnostic convenience).
    pub fn col_id(&self, name: &str) -> Option<ColId> {
        self.names.iter().position(|n| n == name).map(ColId)
    }

    /// Immutable flat view of a column.
    #[inline]
    pub fn col(&self, id: ColId) -> &[f64] {
        &self.cols[id.0]
    }

    /// Mutable flat view of a column.
    #[inline]
    pub fn col_mut(&mut self, id: ColId) -> &mut [f64] {
        &mut self.cols[id.0]
    }

    /// Two distinct columns mutably at once (push loops write pos+vel).
    pub fn cols_mut2(&mut self, a: ColId, b: ColId) -> (&mut [f64], &mut [f64]) {
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2 requires distinct in-range columns");
        (ca, cb)
    }

    /// Three distinct columns mutably at once.
    pub fn cols_mut3(
        &mut self,
        a: ColId,
        b: ColId,
        c: ColId,
    ) -> (&mut [f64], &mut [f64], &mut [f64]) {
        let [ca, cb, cc] = self
            .cols
            .get_disjoint_mut([a.0, b.0, c.0])
            .expect("cols_mut3 requires distinct in-range columns");
        (ca, cb, cc)
    }

    /// Element `i` of column `id`.
    #[inline]
    pub fn el(&self, id: ColId, i: usize) -> &[f64] {
        let d = self.dims[id.0];
        &self.cols[id.0][i * d..(i + 1) * d]
    }

    #[inline]
    pub fn el_mut(&mut self, id: ColId, i: usize) -> &mut [f64] {
        let d = self.dims[id.0];
        &mut self.cols[id.0][i * d..(i + 1) * d]
    }

    /// The particle→cell map.
    #[inline]
    pub fn cells(&self) -> &[i32] {
        &self.cell
    }

    #[inline]
    pub fn cells_mut(&mut self) -> &mut [i32] {
        &mut self.cell
    }

    /// Mutable cell map together with an immutable column — the move
    /// kernel's typical working set (reads positions, updates cells).
    pub fn cells_mut_with_col(&mut self, id: ColId) -> (&mut [i32], &[f64]) {
        (&mut self.cell, &self.cols[id.0])
    }

    /// Two distinct mutable columns plus the (read-only) cell map — the
    /// push kernel's working set (writes pos+vel, gathers the field
    /// through the particle→cell map).
    pub fn cols_mut2_with_cells(&mut self, a: ColId, b: ColId) -> (&mut [f64], &mut [f64], &[i32]) {
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2_with_cells requires distinct in-range columns");
        (ca, cb, &self.cell)
    }

    /// Two distinct mutable columns plus the *mutable* cell map — the
    /// fused move+deposit kernel's working set (updates pos, vel and
    /// the particle→cell map in one pass, as CabanaPIC's
    /// `Move_Deposit` does).
    pub fn cols_mut2_with_cells_mut(
        &mut self,
        a: ColId,
        b: ColId,
    ) -> (&mut [f64], &mut [f64], &mut [i32]) {
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2_with_cells_mut requires distinct in-range columns");
        (ca, cb, &mut self.cell)
    }

    /// Inject `count` new particles, all starting in `cell` (callers
    /// then initialise their dats over the returned range — the
    /// `OPP_ITERATE_INJECTED` pattern).
    pub fn inject(&mut self, count: usize, cell: i32) -> std::ops::Range<usize> {
        let from = self.n;
        self.n += count;
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.resize(self.n * dim, 0.0);
        }
        self.cell.resize(self.n, cell);
        self.injected_from = from;
        from..self.n
    }

    /// Inject particles with per-particle cells.
    pub fn inject_into(&mut self, cells: &[i32]) -> std::ops::Range<usize> {
        let from = self.n;
        self.n += cells.len();
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.resize(self.n * dim, 0.0);
        }
        self.cell.extend_from_slice(cells);
        self.injected_from = from;
        from..self.n
    }

    /// The most recent injection batch (`OPP_ITERATE_INJECTED`).
    pub fn injected(&self) -> std::ops::Range<usize> {
        self.injected_from..self.n
    }

    /// Remove the particles at `holes` (sorted ascending, unique) by
    /// filling each hole with a surviving particle taken from the end —
    /// the paper's hole-filling routine. O(len(holes) · dofs).
    pub fn remove_fill(&mut self, holes: &[usize]) {
        if holes.is_empty() {
            return;
        }
        debug_assert!(
            holes.windows(2).all(|w| w[0] < w[1]),
            "holes must be sorted unique"
        );
        debug_assert!(
            *holes.last().expect("nonempty") < self.n,
            "hole out of range"
        );
        let keep = self.n - holes.len();

        // Tail holes (>= keep) vanish with the truncation; only holes in
        // the surviving prefix must be filled, and only with tail
        // elements that are not themselves holes.
        let mut tail_holes = holes.iter().rev().copied().peekable();
        let mut src = self.n;
        for &h in holes {
            if h >= keep {
                break;
            }
            // Find the highest-index surviving tail particle.
            src -= 1;
            while tail_holes.peek() == Some(&src) {
                tail_holes.next();
                src -= 1;
            }
            debug_assert!(src >= keep);
            for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
                // Move element src -> h within one flat buffer.
                let (dst_range, src_range) = (h * dim..(h + 1) * dim, src * dim..(src + 1) * dim);
                let (lo, hi) = col.split_at_mut(src_range.start);
                lo[dst_range].copy_from_slice(&hi[..dim]);
            }
            self.cell[h] = self.cell[src];
        }

        self.n = keep;
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.truncate(keep * dim);
        }
        self.cell.truncate(keep);
        self.injected_from = self.injected_from.min(keep);
    }

    /// Apply a permutation: element `i` of the result is element
    /// `perm[i]` of the current state. `perm` must be a bijection.
    pub fn apply_permutation(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            let mut next = vec![0.0; col.len()];
            for (i, &p) in perm.iter().enumerate() {
                next[i * dim..(i + 1) * dim].copy_from_slice(&col[p * dim..(p + 1) * dim]);
            }
            *col = next;
        }
        let mut next_cell = vec![0i32; self.n];
        for (i, &p) in perm.iter().enumerate() {
            next_cell[i] = self.cell[p];
        }
        self.cell = next_cell;
    }

    /// Sort particles by cell index (counting sort — the auxiliary
    /// particle-sort API the paper mentions improves locality).
    pub fn sort_by_cell(&mut self, n_cells: usize) {
        let mut counts = vec![0usize; n_cells + 1];
        for &c in &self.cell {
            debug_assert!(c >= 0 && (c as usize) < n_cells, "cell index out of range");
            counts[c as usize + 1] += 1;
        }
        for k in 0..n_cells {
            counts[k + 1] += counts[k];
        }
        let mut perm = vec![0usize; self.n];
        for i in 0..self.n {
            let c = self.cell[i] as usize;
            perm[counts[c]] = i;
            counts[c] += 1;
        }
        self.apply_permutation(&perm);
    }

    /// Deterministic pseudo-random shuffle (the paper's "periodic
    /// shuffling with hole-filling has proven most effective on GPUs").
    pub fn shuffle(&mut self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move |bound: usize| {
            // SplitMix64 step + rejection-free bounded sample.
            state ^= state >> 30;
            state = state.wrapping_mul(0xBF58476D1CE4E5B9);
            state ^= state >> 27;
            state = state.wrapping_mul(0x94D049BB133111EB);
            state ^= state >> 31;
            (state % bound as u64) as usize
        };
        let mut perm: Vec<usize> = (0..self.n).collect();
        for i in (1..self.n).rev() {
            perm.swap(i, next(i + 1));
        }
        self.apply_permutation(&perm);
    }

    /// Total bytes held by all columns (utilisation accounting).
    pub fn bytes(&self) -> usize {
        self.cols.iter().map(|c| c.len() * 8).sum::<usize>() + self.cell.len() * 4
    }

    /// Extract one particle's full payload (all columns, in declaration
    /// order) — used by the MPI pack/ship path.
    pub fn pack_one(&self, i: usize, out: &mut Vec<f64>) {
        for (col, &dim) in self.cols.iter().zip(&self.dims) {
            out.extend_from_slice(&col[i * dim..(i + 1) * dim]);
        }
    }

    /// Append one particle from a packed payload (inverse of
    /// [`ParticleDats::pack_one`]); returns its index.
    pub fn unpack_one(&mut self, payload: &[f64], cell: i32) -> usize {
        assert_eq!(payload.len(), self.dofs(), "payload size mismatch");
        let mut off = 0;
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.extend_from_slice(&payload[off..off + dim]);
            off += dim;
        }
        self.cell.push(cell);
        self.n += 1;
        self.n - 1
    }

    /// Degrees of freedom per particle (sum of column dims) — 7 for
    /// both of the paper's apps.
    pub fn dofs(&self) -> usize {
        self.dims.iter().sum()
    }

    /// Copy the dat *schema* (names/dims, no data) — ranks in the
    /// distributed runtime clone this to agree on the wire layout.
    pub fn clone_schema(&self) -> ParticleDats {
        ParticleDats {
            n: 0,
            names: self.names.clone(),
            dims: self.dims.clone(),
            cols: self.dims.iter().map(|_| Vec::new()).collect(),
            cell: Vec::new(),
            injected_from: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn store_with(n: usize) -> (ParticleDats, ColId, ColId) {
        let mut ps = ParticleDats::new();
        let pos = ps.decl_dat("pos", 3);
        let q = ps.decl_dat("charge", 1);
        let r = ps.inject(n, 0);
        assert_eq!(r, 0..n);
        for i in 0..n {
            let e = ps.el_mut(pos, i);
            e[0] = i as f64;
            e[1] = i as f64 + 0.5;
            e[2] = -(i as f64);
            ps.el_mut(q, i)[0] = 100.0 + i as f64;
            ps.cells_mut()[i] = (i % 5) as i32;
        }
        (ps, pos, q)
    }

    #[test]
    fn declaration_and_injection() {
        let (ps, pos, q) = store_with(10);
        assert_eq!(ps.len(), 10);
        assert_eq!(ps.dofs(), 4);
        assert_eq!(ps.dim(pos), 3);
        assert_eq!(ps.name(q), "charge");
        assert_eq!(ps.col_id("pos"), Some(pos));
        assert_eq!(ps.col_id("nope"), None);
        assert_eq!(ps.el(pos, 3), &[3.0, 3.5, -3.0]);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_dat_rejected() {
        let mut ps = ParticleDats::new();
        ps.decl_dat("pos", 3);
        ps.decl_dat("pos", 1);
    }

    #[test]
    fn late_dat_declaration_zero_fills() {
        let (mut ps, _, _) = store_with(4);
        let w = ps.decl_dat("weight", 2);
        assert_eq!(ps.col(w).len(), 8);
        assert!(ps.col(w).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn injected_range_tracks_latest_batch() {
        let (mut ps, _, _) = store_with(5);
        let r = ps.inject_into(&[7, 8, 9]);
        assert_eq!(r, 5..8);
        assert_eq!(ps.injected(), 5..8);
        assert_eq!(ps.cells()[5..8], [7, 8, 9]);
    }

    #[test]
    fn hole_filling_preserves_survivors() {
        let (mut ps, pos, q) = store_with(10);
        // Remove particles 1, 4, 8.
        let holes = vec![1, 4, 8];
        let expect_survivors: HashSet<i64> = (0..10)
            .filter(|i| !holes.contains(i))
            .map(|i| i as i64)
            .collect();
        ps.remove_fill(&holes);
        assert_eq!(ps.len(), 7);
        let got: HashSet<i64> = (0..7).map(|i| ps.el(pos, i)[0] as i64).collect();
        assert_eq!(got, expect_survivors);
        // Column coherence: charge must still match pos identity.
        for i in 0..7 {
            let id = ps.el(pos, i)[0];
            assert_eq!(ps.el(q, i)[0], 100.0 + id);
            assert_eq!(ps.el(pos, i)[1], id + 0.5);
            assert_eq!(ps.cells()[i], (id as i32) % 5);
        }
    }

    #[test]
    fn hole_filling_edge_cases() {
        // All particles removed.
        let (mut ps, _, _) = store_with(4);
        ps.remove_fill(&[0, 1, 2, 3]);
        assert!(ps.is_empty());

        // Remove only the last.
        let (mut ps, pos, _) = store_with(4);
        ps.remove_fill(&[3]);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.el(pos, 2)[0], 2.0);

        // Remove only the first (tail moves in).
        let (mut ps, pos, _) = store_with(4);
        ps.remove_fill(&[0]);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.el(pos, 0)[0], 3.0);

        // Contiguous tail block including interior hole.
        let (mut ps, pos, _) = store_with(6);
        ps.remove_fill(&[2, 4, 5]);
        assert_eq!(ps.len(), 3);
        let got: HashSet<i64> = (0..3).map(|i| ps.el(pos, i)[0] as i64).collect();
        assert_eq!(got, HashSet::from([0, 1, 3]));

        // Empty holes: no-op.
        let (mut ps, _, _) = store_with(3);
        ps.remove_fill(&[]);
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn sort_by_cell_groups_and_preserves() {
        let (mut ps, pos, q) = store_with(23);
        ps.sort_by_cell(5);
        // Cells must be non-decreasing.
        assert!(ps.cells().windows(2).all(|w| w[0] <= w[1]));
        // Identity payloads intact.
        for i in 0..23 {
            let id = ps.el(pos, i)[0];
            assert_eq!(ps.el(q, i)[0], 100.0 + id);
            assert_eq!(ps.cells()[i], (id as i32) % 5);
        }
        // Counting sort is stable: within a cell, original order holds.
        for w in 0..22 {
            if ps.cells()[w] == ps.cells()[w + 1] {
                assert!(ps.el(pos, w)[0] < ps.el(pos, w + 1)[0]);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let (mut a, pos, _) = store_with(50);
        let (mut b, _, _) = store_with(50);
        a.shuffle(42);
        b.shuffle(42);
        assert_eq!(a.col(pos), b.col(pos), "same seed, same order");
        let got: HashSet<i64> = (0..50).map(|i| a.el(pos, i)[0] as i64).collect();
        assert_eq!(got.len(), 50);
        let (mut c, _, _) = store_with(50);
        c.shuffle(43);
        assert_ne!(a.col(pos), c.col(pos), "different seed, different order");
    }

    #[test]
    fn pack_unpack_round_trip() {
        let (ps, _, _) = store_with(5);
        let mut payload = Vec::new();
        ps.pack_one(3, &mut payload);
        assert_eq!(payload.len(), ps.dofs());

        let mut other = ps.clone_schema();
        assert_eq!(other.len(), 0);
        assert_eq!(other.dofs(), ps.dofs());
        let idx = other.unpack_one(&payload, 7);
        assert_eq!(idx, 0);
        assert_eq!(
            other.el(other.col_id("pos").unwrap(), 0),
            ps.el(ps.col_id("pos").unwrap(), 3)
        );
        assert_eq!(other.cells()[0], 7);
    }

    #[test]
    fn disjoint_column_access() {
        let (mut ps, pos, q) = store_with(3);
        let (p, c) = ps.cols_mut2(pos, q);
        p[0] = 9.0;
        c[0] = -1.0;
        assert_eq!(ps.el(pos, 0)[0], 9.0);
        assert_eq!(ps.el(q, 0)[0], -1.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn overlapping_column_access_rejected() {
        let (mut ps, pos, _) = store_with(3);
        let _ = ps.cols_mut2(pos, pos);
    }

    #[test]
    fn bytes_accounting() {
        let (ps, _, _) = store_with(10);
        // pos 3*8 + charge 1*8 per particle + 4 bytes cell.
        assert_eq!(ps.bytes(), 10 * (32 + 4));
    }
}
