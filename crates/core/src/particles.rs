//! The particle store — `opp_decl_particle_set` plus the dynamic
//! particle→cell map and the bookkeeping the paper's backend owns:
//! injection (`OPP_ITERATE_INJECTED`), removal with **hole filling**
//! (Section 3.2.2: "a hole filling routine runs asynchronously during
//! communication, shifting data from the end of the `opp_dat`s to fill
//! the holes"), sorting by cell, and periodic shuffling.
//!
//! Particle data is stored as a structure of arrays: one flat `f64`
//! column per declared dat (`pos`, `vel`, `charge`, …) plus the `i32`
//! cell index column (the `p2cell` map of Figure 4, line 15). All
//! columns move together under relocation, which is why the store owns
//! them rather than the application.

/// Handle to a particle column, returned by
/// [`ParticleDats::decl_dat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColId(usize);

/// When to rebuild the cell index (the paper's periodic particle sort,
/// made configurable). Freshness is a hard *precondition* only for
/// `DepositMethod::SortedSegments`; for everything else sorting is a
/// locality optimisation and this policy trades its cost against the
/// gather/deposit speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SortPolicy {
    /// Never rebuild (the index simply stays stale).
    Never,
    /// Rebuild whenever the index is stale.
    Always,
    /// Rebuild on steps that are multiples of `n` (0 behaves like
    /// [`SortPolicy::Never`]).
    EveryN(usize),
    /// Rebuild once at least this fraction of particles is dirty.
    DirtyFraction(f64),
}

impl SortPolicy {
    /// Should a stale index be rebuilt now? `dirty`/`n` come from
    /// [`ParticleDats::dirty_count`] and [`ParticleDats::len`].
    pub fn should_sort(&self, step: usize, dirty: usize, n: usize) -> bool {
        match *self {
            SortPolicy::Never => false,
            SortPolicy::Always => true,
            SortPolicy::EveryN(k) => k > 0 && step.is_multiple_of(k),
            SortPolicy::DirtyFraction(f) => n > 0 && dirty as f64 >= f * n as f64,
        }
    }
}

/// A set of particles with named f64 columns and a cell-index column.
///
/// ```
/// use oppic_core::ParticleDats;
/// let mut ps = ParticleDats::new();
/// let pos = ps.decl_dat("pos", 3);
/// ps.inject(10, 0);                 // 10 particles in cell 0
/// ps.el_mut(pos, 3)[0] = 2.5;
/// ps.remove_fill(&[0, 1]);          // hole-filled removal
/// assert_eq!(ps.len(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParticleDats {
    n: usize,
    names: Vec<String>,
    dims: Vec<usize>,
    cols: Vec<Vec<f64>>,
    /// The dynamic particle→cell map (`p2cell_i`). Always in
    /// `0..n_cells` for live particles.
    cell: Vec<i32>,
    /// Start of the most recent injection batch (for
    /// `OPP_ITERATE_INJECTED` loops).
    injected_from: usize,
    /// CSR cell index: when fresh, `cell_start[c]..cell_start[c + 1]`
    /// is the contiguous particle range of cell `c`. Built by
    /// [`ParticleDats::sort_by_cell`]; empty until the first sort.
    cell_start: Vec<usize>,
    /// Known count of cell/slot mutations since the index was built
    /// (injection, removal, unpacking, permutation).
    dirty: usize,
    /// A raw mutable cell-map borrow was handed out and has not been
    /// accounted yet — the index must be treated as fully stale until
    /// [`ParticleDats::refine_dirty`] reports the measured change.
    cells_exposed: bool,
    /// Scratch reused across sorts (counting cursors, the permutation,
    /// and one column/cell buffer for the out-of-place permute).
    scratch_counts: Vec<usize>,
    scratch_perm: Vec<usize>,
    scratch_col: Vec<f64>,
    scratch_cell: Vec<i32>,
}

/// The fused mover's working set: the fresh CSR index, two mutable
/// columns, and the mutable cell map
/// ([`ParticleDats::cols_mut2_cells_mut_with_index`]).
pub type IndexedCells<'a> = (&'a [usize], &'a mut [f64], &'a mut [f64], &'a mut [i32]);

impl ParticleDats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a new particle dat of dimension `dim`. Existing
    /// particles get zero-filled values.
    pub fn decl_dat(&mut self, name: impl Into<String>, dim: usize) -> ColId {
        assert!(dim > 0, "particle dat dimension must be positive");
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "particle dat '{name}' declared twice"
        );
        self.names.push(name);
        self.dims.push(dim);
        self.cols.push(vec![0.0; self.n * dim]);
        ColId(self.cols.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Handles to every declared column, in declaration order.
    pub fn columns(&self) -> Vec<ColId> {
        (0..self.cols.len()).map(ColId).collect()
    }

    pub fn dim(&self, id: ColId) -> usize {
        self.dims[id.0]
    }

    pub fn name(&self, id: ColId) -> &str {
        &self.names[id.0]
    }

    /// Column by name (test/diagnostic convenience).
    pub fn col_id(&self, name: &str) -> Option<ColId> {
        self.names.iter().position(|n| n == name).map(ColId)
    }

    /// Immutable flat view of a column.
    #[inline]
    pub fn col(&self, id: ColId) -> &[f64] {
        &self.cols[id.0]
    }

    /// Mutable flat view of a column.
    #[inline]
    pub fn col_mut(&mut self, id: ColId) -> &mut [f64] {
        &mut self.cols[id.0]
    }

    /// Two distinct columns mutably at once (push loops write pos+vel).
    pub fn cols_mut2(&mut self, a: ColId, b: ColId) -> (&mut [f64], &mut [f64]) {
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2 requires distinct in-range columns");
        (ca, cb)
    }

    /// Three distinct columns mutably at once.
    pub fn cols_mut3(
        &mut self,
        a: ColId,
        b: ColId,
        c: ColId,
    ) -> (&mut [f64], &mut [f64], &mut [f64]) {
        let [ca, cb, cc] = self
            .cols
            .get_disjoint_mut([a.0, b.0, c.0])
            .expect("cols_mut3 requires distinct in-range columns");
        (ca, cb, cc)
    }

    /// Element `i` of column `id`.
    #[inline]
    pub fn el(&self, id: ColId, i: usize) -> &[f64] {
        let d = self.dims[id.0];
        &self.cols[id.0][i * d..(i + 1) * d]
    }

    #[inline]
    pub fn el_mut(&mut self, id: ColId, i: usize) -> &mut [f64] {
        let d = self.dims[id.0];
        &mut self.cols[id.0][i * d..(i + 1) * d]
    }

    /// The particle→cell map.
    #[inline]
    pub fn cells(&self) -> &[i32] {
        &self.cell
    }

    #[inline]
    pub fn cells_mut(&mut self) -> &mut [i32] {
        self.cells_exposed = true;
        &mut self.cell
    }

    /// Mutable cell map together with an immutable column — the move
    /// kernel's typical working set (reads positions, updates cells).
    pub fn cells_mut_with_col(&mut self, id: ColId) -> (&mut [i32], &[f64]) {
        self.cells_exposed = true;
        (&mut self.cell, &self.cols[id.0])
    }

    /// Two distinct mutable columns plus the (read-only) cell map — the
    /// push kernel's working set (writes pos+vel, gathers the field
    /// through the particle→cell map).
    pub fn cols_mut2_with_cells(&mut self, a: ColId, b: ColId) -> (&mut [f64], &mut [f64], &[i32]) {
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2_with_cells requires distinct in-range columns");
        (ca, cb, &self.cell)
    }

    /// Two distinct mutable columns plus the *mutable* cell map — the
    /// fused move+deposit kernel's working set (updates pos, vel and
    /// the particle→cell map in one pass, as CabanaPIC's
    /// `Move_Deposit` does).
    pub fn cols_mut2_with_cells_mut(
        &mut self,
        a: ColId,
        b: ColId,
    ) -> (&mut [f64], &mut [f64], &mut [i32]) {
        self.cells_exposed = true;
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2_with_cells_mut requires distinct in-range columns");
        (ca, cb, &mut self.cell)
    }

    // ---- cell-locality index -------------------------------------------

    /// The CSR cell index, or `None` while it is stale (or was never
    /// built). When `Some`, `idx[c]..idx[c + 1]` is exactly the
    /// particle range of cell `c` and particles are sorted by cell.
    #[inline]
    pub fn cell_index(&self) -> Option<&[usize]> {
        if self.index_is_fresh() {
            Some(&self.cell_start)
        } else {
            None
        }
    }

    /// Two distinct mutable columns together with the fresh CSR cell
    /// index — the segment-batched gather loop's working set
    /// ([`crate::par_loop_segments2`]). `None` while the index is
    /// stale, so callers fall back to the per-particle path.
    pub fn cols_mut2_with_index(
        &mut self,
        a: ColId,
        b: ColId,
    ) -> Option<(&[usize], &mut [f64], &mut [f64])> {
        if !self.index_is_fresh() {
            return None;
        }
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2_with_index requires distinct in-range columns");
        Some((&self.cell_start, ca, cb))
    }

    /// [`Self::cols_mut2_with_index`] plus the *mutable* cell map
    /// ([`IndexedCells`]) —
    /// the fused mover's working set when it gathers segment-batched
    /// through the fresh index ([`crate::par_loop_segments2_cells`]).
    /// Handing out the raw cell column marks the store all-dirty, as
    /// with [`Self::cols_mut2_with_cells_mut`]; the returned index
    /// stays valid for the duration of the borrow, and the caller
    /// reports the measured relocation count via
    /// [`Self::refine_dirty`] afterwards.
    pub fn cols_mut2_cells_mut_with_index(
        &mut self,
        a: ColId,
        b: ColId,
    ) -> Option<IndexedCells<'_>> {
        if !self.index_is_fresh() {
            return None;
        }
        self.cells_exposed = true;
        let [ca, cb] = self
            .cols
            .get_disjoint_mut([a.0, b.0])
            .expect("cols_mut2_cells_mut_with_index requires distinct in-range columns");
        Some((&self.cell_start, ca, cb, &mut self.cell))
    }

    /// The last-built CSR offsets regardless of freshness (audits
    /// cross-check these against the live cell column).
    pub fn cell_index_raw(&self) -> Option<&[usize]> {
        (!self.cell_start.is_empty()).then_some(&self.cell_start[..])
    }

    /// Particle count of cell `c` per the (fresh or stale) index.
    pub fn cell_count(&self, c: usize) -> usize {
        self.cell_start[c + 1] - self.cell_start[c]
    }

    /// True when the index was built and no mutation has touched the
    /// store since.
    #[inline]
    pub fn index_is_fresh(&self) -> bool {
        !self.cell_start.is_empty() && self.dirty_count() == 0
    }

    /// Upper bound on the number of particles whose cell or slot has
    /// changed since the index was built. A raw mutable cell-map
    /// borrow counts as "all of them" until [`refine_dirty`] reports
    /// the measured figure.
    ///
    /// [`refine_dirty`]: ParticleDats::refine_dirty
    pub fn dirty_count(&self) -> usize {
        if self.cells_exposed {
            self.n
        } else {
            self.dirty.min(self.n)
        }
    }

    /// `dirty_count` as a fraction of the population (0 when empty).
    pub fn dirty_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.dirty_count() as f64 / self.n as f64
        }
    }

    /// Replace the conservative all-dirty estimate from a raw mutable
    /// cell-map borrow with a measured change count (e.g. the move
    /// engine's relocated + removed totals). `changed` must be an
    /// upper bound on how many cell entries the borrow actually
    /// rewrote; the counter stays monotone otherwise.
    pub fn refine_dirty(&mut self, changed: usize) {
        self.cells_exposed = false;
        self.dirty = self.dirty.saturating_add(changed);
    }

    fn mark_dirty(&mut self, k: usize) {
        self.dirty = self.dirty.saturating_add(k);
    }

    /// Inject `count` new particles, all starting in `cell` (callers
    /// then initialise their dats over the returned range — the
    /// `OPP_ITERATE_INJECTED` pattern).
    pub fn inject(&mut self, count: usize, cell: i32) -> std::ops::Range<usize> {
        let from = self.n;
        self.n += count;
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.resize(self.n * dim, 0.0);
        }
        self.cell.resize(self.n, cell);
        self.injected_from = from;
        self.mark_dirty(count);
        crate::telemetry::count("inject.particles", count as u64);
        from..self.n
    }

    /// Inject particles with per-particle cells.
    pub fn inject_into(&mut self, cells: &[i32]) -> std::ops::Range<usize> {
        let from = self.n;
        self.n += cells.len();
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.resize(self.n * dim, 0.0);
        }
        self.cell.extend_from_slice(cells);
        self.injected_from = from;
        self.mark_dirty(cells.len());
        crate::telemetry::count("inject.particles", cells.len() as u64);
        from..self.n
    }

    /// The most recent injection batch (`OPP_ITERATE_INJECTED`).
    pub fn injected(&self) -> std::ops::Range<usize> {
        self.injected_from..self.n
    }

    /// Remove the particles at `holes` (sorted ascending, unique) by
    /// filling each hole with a surviving particle taken from the end —
    /// the paper's hole-filling routine. O(len(holes) · dofs).
    pub fn remove_fill(&mut self, holes: &[usize]) {
        if holes.is_empty() {
            return;
        }
        debug_assert!(
            holes.windows(2).all(|w| w[0] < w[1]),
            "holes must be sorted unique"
        );
        debug_assert!(
            *holes.last().expect("nonempty") < self.n,
            "hole out of range"
        );
        let keep = self.n - holes.len();

        // Tail holes (>= keep) vanish with the truncation; only holes in
        // the surviving prefix must be filled, and only with tail
        // elements that are not themselves holes.
        let mut tail_holes = holes.iter().rev().copied().peekable();
        let mut src = self.n;
        let mut swaps = 0u64;
        for &h in holes {
            if h >= keep {
                break;
            }
            swaps += 1;
            // Find the highest-index surviving tail particle.
            src -= 1;
            while tail_holes.peek() == Some(&src) {
                tail_holes.next();
                src -= 1;
            }
            debug_assert!(src >= keep);
            for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
                // Move element src -> h within one flat buffer.
                let (dst_range, src_range) = (h * dim..(h + 1) * dim, src * dim..(src + 1) * dim);
                let (lo, hi) = col.split_at_mut(src_range.start);
                lo[dst_range].copy_from_slice(&hi[..dim]);
            }
            self.cell[h] = self.cell[src];
        }

        self.n = keep;
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.truncate(keep * dim);
        }
        self.cell.truncate(keep);
        self.injected_from = self.injected_from.min(keep);
        self.mark_dirty(holes.len());
        crate::telemetry::count("holefill.removed", holes.len() as u64);
        crate::telemetry::count("holefill.swaps", swaps);
    }

    /// Numeric guard: scan `cols` for NaN/Inf entries and remove every
    /// particle owning one (hole-filling, like [`remove_fill`]).
    /// Returns the pre-removal indices of the quarantined particles,
    /// sorted ascending. Fires the `resilience.quarantined` telemetry
    /// counter so recovery events are attributable after the fact.
    ///
    /// A corrupt position or velocity would otherwise propagate NaN
    /// through deposit into the field solve and poison the entire run;
    /// dropping the offending particles bounds the blast radius to a
    /// counted, reported loss.
    ///
    /// [`remove_fill`]: ParticleDats::remove_fill
    pub fn quarantine_nonfinite(&mut self, cols: &[ColId]) -> Vec<usize> {
        let mut holes: Vec<usize> = Vec::new();
        for &id in cols {
            let dim = self.dims[id.0];
            let col = &self.cols[id.0];
            for i in 0..self.n {
                if col[i * dim..(i + 1) * dim].iter().any(|v| !v.is_finite()) {
                    holes.push(i);
                }
            }
        }
        holes.sort_unstable();
        holes.dedup();
        if !holes.is_empty() {
            self.remove_fill(&holes);
            crate::telemetry::count("resilience.quarantined", holes.len() as u64);
        }
        holes
    }

    /// Apply a permutation: element `i` of the result is element
    /// `perm[i]` of the current state. `perm` must be a bijection.
    pub fn apply_permutation(&mut self, perm: &[usize]) {
        self.permute_with_scratch(perm);
        let moved = self.n;
        self.mark_dirty(moved);
    }

    /// The out-of-place permute, staging through the persistent
    /// scratch buffers instead of allocating per call. Does *not*
    /// touch the dirty counter — `sort_by_cell` permutes and then
    /// declares the index fresh, `apply_permutation` marks all dirty.
    fn permute_with_scratch(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            self.scratch_col.clear();
            self.scratch_col.resize(col.len(), 0.0);
            for (i, &p) in perm.iter().enumerate() {
                self.scratch_col[i * dim..(i + 1) * dim]
                    .copy_from_slice(&col[p * dim..(p + 1) * dim]);
            }
            std::mem::swap(col, &mut self.scratch_col);
        }
        self.scratch_cell.clear();
        self.scratch_cell.resize(self.n, 0);
        for (i, &p) in perm.iter().enumerate() {
            self.scratch_cell[i] = self.cell[p];
        }
        std::mem::swap(&mut self.cell, &mut self.scratch_cell);
    }

    /// Sort particles by cell index (counting sort — the auxiliary
    /// particle-sort API the paper mentions improves locality). The
    /// sort is stable, so equal-cell particles keep their relative
    /// order. As a side effect the CSR cell index is rebuilt and
    /// declared fresh; the counting pass *is* the index build, so
    /// freshness costs nothing extra.
    pub fn sort_by_cell(&mut self, n_cells: usize) {
        if let Some(t) = crate::telemetry::current() {
            t.counter_add("sort.rebuilds", 1);
            // Percentage of the set whose cell entry changed since the
            // last rebuild — what `SortPolicy::DirtyFraction` keys on.
            t.hist_record(
                "sort.dirty_pct",
                (self.dirty_fraction() * 100.0).round() as u64,
            );
        }
        self.cell_start.clear();
        self.cell_start.resize(n_cells + 1, 0);
        for &c in &self.cell {
            debug_assert!(c >= 0 && (c as usize) < n_cells, "cell index out of range");
            self.cell_start[c as usize + 1] += 1;
        }
        for k in 0..n_cells {
            self.cell_start[k + 1] += self.cell_start[k];
        }
        // Counting cursors start as a copy of the offsets; after the
        // placement pass they have advanced to the segment ends.
        self.scratch_counts.clear();
        self.scratch_counts.extend_from_slice(&self.cell_start);
        let mut perm = std::mem::take(&mut self.scratch_perm);
        perm.clear();
        perm.resize(self.n, 0);
        for i in 0..self.n {
            let c = self.cell[i] as usize;
            perm[self.scratch_counts[c]] = i;
            self.scratch_counts[c] += 1;
        }
        self.permute_with_scratch(&perm);
        self.scratch_perm = perm;
        self.dirty = 0;
        self.cells_exposed = false;
        debug_assert!(self.cell.is_sorted(), "counting sort left cells unsorted");
        if let Some(h) = crate::telemetry::hist("sort.segment_len") {
            for w in self.cell_start.windows(2) {
                h.record((w[1] - w[0]) as u64);
            }
        }
    }

    /// Deterministic pseudo-random shuffle (the paper's "periodic
    /// shuffling with hole-filling has proven most effective on GPUs").
    pub fn shuffle(&mut self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move |bound: usize| {
            // SplitMix64 step + rejection-free bounded sample.
            state ^= state >> 30;
            state = state.wrapping_mul(0xBF58476D1CE4E5B9);
            state ^= state >> 27;
            state = state.wrapping_mul(0x94D049BB133111EB);
            state ^= state >> 31;
            (state % bound as u64) as usize
        };
        let mut perm: Vec<usize> = (0..self.n).collect();
        for i in (1..self.n).rev() {
            perm.swap(i, next(i + 1));
        }
        self.apply_permutation(&perm);
    }

    /// Total bytes held by all columns (utilisation accounting).
    pub fn bytes(&self) -> usize {
        self.cols.iter().map(|c| c.len() * 8).sum::<usize>() + self.cell.len() * 4
    }

    /// Extract one particle's full payload (all columns, in declaration
    /// order) — used by the MPI pack/ship path.
    pub fn pack_one(&self, i: usize, out: &mut Vec<f64>) {
        for (col, &dim) in self.cols.iter().zip(&self.dims) {
            out.extend_from_slice(&col[i * dim..(i + 1) * dim]);
        }
    }

    /// Append one particle from a packed payload (inverse of
    /// [`ParticleDats::pack_one`]); returns its index.
    pub fn unpack_one(&mut self, payload: &[f64], cell: i32) -> usize {
        assert_eq!(payload.len(), self.dofs(), "payload size mismatch");
        let mut off = 0;
        for (col, &dim) in self.cols.iter_mut().zip(&self.dims) {
            col.extend_from_slice(&payload[off..off + dim]);
            off += dim;
        }
        self.cell.push(cell);
        self.n += 1;
        self.mark_dirty(1);
        self.n - 1
    }

    /// Degrees of freedom per particle (sum of column dims) — 7 for
    /// both of the paper's apps.
    pub fn dofs(&self) -> usize {
        self.dims.iter().sum()
    }

    /// Copy the dat *schema* (names/dims, no data) — ranks in the
    /// distributed runtime clone this to agree on the wire layout.
    pub fn clone_schema(&self) -> ParticleDats {
        let mut ps = ParticleDats::new();
        ps.names = self.names.clone();
        ps.dims = self.dims.clone();
        ps.cols = self.dims.iter().map(|_| Vec::new()).collect();
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn store_with(n: usize) -> (ParticleDats, ColId, ColId) {
        let mut ps = ParticleDats::new();
        let pos = ps.decl_dat("pos", 3);
        let q = ps.decl_dat("charge", 1);
        let r = ps.inject(n, 0);
        assert_eq!(r, 0..n);
        for i in 0..n {
            let e = ps.el_mut(pos, i);
            e[0] = i as f64;
            e[1] = i as f64 + 0.5;
            e[2] = -(i as f64);
            ps.el_mut(q, i)[0] = 100.0 + i as f64;
            ps.cells_mut()[i] = (i % 5) as i32;
        }
        (ps, pos, q)
    }

    #[test]
    fn declaration_and_injection() {
        let (ps, pos, q) = store_with(10);
        assert_eq!(ps.len(), 10);
        assert_eq!(ps.dofs(), 4);
        assert_eq!(ps.dim(pos), 3);
        assert_eq!(ps.name(q), "charge");
        assert_eq!(ps.col_id("pos"), Some(pos));
        assert_eq!(ps.col_id("nope"), None);
        assert_eq!(ps.el(pos, 3), &[3.0, 3.5, -3.0]);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_dat_rejected() {
        let mut ps = ParticleDats::new();
        ps.decl_dat("pos", 3);
        ps.decl_dat("pos", 1);
    }

    #[test]
    fn late_dat_declaration_zero_fills() {
        let (mut ps, _, _) = store_with(4);
        let w = ps.decl_dat("weight", 2);
        assert_eq!(ps.col(w).len(), 8);
        assert!(ps.col(w).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn injected_range_tracks_latest_batch() {
        let (mut ps, _, _) = store_with(5);
        let r = ps.inject_into(&[7, 8, 9]);
        assert_eq!(r, 5..8);
        assert_eq!(ps.injected(), 5..8);
        assert_eq!(ps.cells()[5..8], [7, 8, 9]);
    }

    #[test]
    fn hole_filling_preserves_survivors() {
        let (mut ps, pos, q) = store_with(10);
        // Remove particles 1, 4, 8.
        let holes = vec![1, 4, 8];
        let expect_survivors: HashSet<i64> = (0..10)
            .filter(|i| !holes.contains(i))
            .map(|i| i as i64)
            .collect();
        ps.remove_fill(&holes);
        assert_eq!(ps.len(), 7);
        let got: HashSet<i64> = (0..7).map(|i| ps.el(pos, i)[0] as i64).collect();
        assert_eq!(got, expect_survivors);
        // Column coherence: charge must still match pos identity.
        for i in 0..7 {
            let id = ps.el(pos, i)[0];
            assert_eq!(ps.el(q, i)[0], 100.0 + id);
            assert_eq!(ps.el(pos, i)[1], id + 0.5);
            assert_eq!(ps.cells()[i], (id as i32) % 5);
        }
    }

    #[test]
    fn hole_filling_edge_cases() {
        // All particles removed.
        let (mut ps, _, _) = store_with(4);
        ps.remove_fill(&[0, 1, 2, 3]);
        assert!(ps.is_empty());

        // Remove only the last.
        let (mut ps, pos, _) = store_with(4);
        ps.remove_fill(&[3]);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.el(pos, 2)[0], 2.0);

        // Remove only the first (tail moves in).
        let (mut ps, pos, _) = store_with(4);
        ps.remove_fill(&[0]);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.el(pos, 0)[0], 3.0);

        // Contiguous tail block including interior hole.
        let (mut ps, pos, _) = store_with(6);
        ps.remove_fill(&[2, 4, 5]);
        assert_eq!(ps.len(), 3);
        let got: HashSet<i64> = (0..3).map(|i| ps.el(pos, i)[0] as i64).collect();
        assert_eq!(got, HashSet::from([0, 1, 3]));

        // Empty holes: no-op.
        let (mut ps, _, _) = store_with(3);
        ps.remove_fill(&[]);
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn sort_by_cell_groups_and_preserves() {
        let (mut ps, pos, q) = store_with(23);
        ps.sort_by_cell(5);
        // Cells must be non-decreasing.
        assert!(ps.cells().windows(2).all(|w| w[0] <= w[1]));
        // Identity payloads intact.
        for i in 0..23 {
            let id = ps.el(pos, i)[0];
            assert_eq!(ps.el(q, i)[0], 100.0 + id);
            assert_eq!(ps.cells()[i], (id as i32) % 5);
        }
        // Counting sort is stable: within a cell, original order holds.
        for w in 0..22 {
            if ps.cells()[w] == ps.cells()[w + 1] {
                assert!(ps.el(pos, w)[0] < ps.el(pos, w + 1)[0]);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let (mut a, pos, _) = store_with(50);
        let (mut b, _, _) = store_with(50);
        a.shuffle(42);
        b.shuffle(42);
        assert_eq!(a.col(pos), b.col(pos), "same seed, same order");
        let got: HashSet<i64> = (0..50).map(|i| a.el(pos, i)[0] as i64).collect();
        assert_eq!(got.len(), 50);
        let (mut c, _, _) = store_with(50);
        c.shuffle(43);
        assert_ne!(a.col(pos), c.col(pos), "different seed, different order");
    }

    #[test]
    fn pack_unpack_round_trip() {
        let (ps, _, _) = store_with(5);
        let mut payload = Vec::new();
        ps.pack_one(3, &mut payload);
        assert_eq!(payload.len(), ps.dofs());

        let mut other = ps.clone_schema();
        assert_eq!(other.len(), 0);
        assert_eq!(other.dofs(), ps.dofs());
        let idx = other.unpack_one(&payload, 7);
        assert_eq!(idx, 0);
        assert_eq!(
            other.el(other.col_id("pos").unwrap(), 0),
            ps.el(ps.col_id("pos").unwrap(), 3)
        );
        assert_eq!(other.cells()[0], 7);
    }

    #[test]
    fn disjoint_column_access() {
        let (mut ps, pos, q) = store_with(3);
        let (p, c) = ps.cols_mut2(pos, q);
        p[0] = 9.0;
        c[0] = -1.0;
        assert_eq!(ps.el(pos, 0)[0], 9.0);
        assert_eq!(ps.el(q, 0)[0], -1.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn overlapping_column_access_rejected() {
        let (mut ps, pos, _) = store_with(3);
        let _ = ps.cols_mut2(pos, pos);
    }

    #[test]
    fn bytes_accounting() {
        let (ps, _, _) = store_with(10);
        // pos 3*8 + charge 1*8 per particle + 4 bytes cell.
        assert_eq!(ps.bytes(), 10 * (32 + 4));
    }

    #[test]
    fn cell_index_partitions_after_sort() {
        let (mut ps, _, _) = store_with(23);
        assert!(ps.cell_index().is_none(), "no index before first sort");
        ps.sort_by_cell(5);
        let idx = ps.cell_index().expect("fresh after sort");
        assert_eq!(idx.len(), 6);
        assert_eq!(idx[0], 0);
        assert_eq!(idx[5], 23);
        for c in 0..5 {
            for i in idx[c]..idx[c + 1] {
                assert_eq!(ps.cells()[i], c as i32);
            }
            assert_eq!(ps.cell_count(c), idx[c + 1] - idx[c]);
        }
    }

    #[test]
    fn mutations_stale_the_index() {
        let (mut ps, _, _) = store_with(20);
        ps.sort_by_cell(5);
        assert!(ps.index_is_fresh());

        ps.inject(3, 2);
        assert_eq!(ps.dirty_count(), 3);
        assert!(ps.cell_index().is_none());

        ps.sort_by_cell(5);
        ps.remove_fill(&[0, 5]);
        assert_eq!(ps.dirty_count(), 2);

        ps.sort_by_cell(5);
        ps.unpack_one(&vec![0.0; ps.dofs()], 1);
        assert_eq!(ps.dirty_count(), 1);

        ps.sort_by_cell(5);
        ps.shuffle(7);
        assert!(ps.dirty_count() > 0);
    }

    #[test]
    fn exposed_cell_map_is_all_dirty_until_refined() {
        let (mut ps, pos, _) = store_with(12);
        ps.sort_by_cell(5);
        let (cells, _) = ps.cells_mut_with_col(pos);
        cells[0] = 4;
        assert_eq!(ps.dirty_count(), 12, "raw borrow: worst case");
        ps.refine_dirty(1);
        assert_eq!(ps.dirty_count(), 1, "measured change replaces it");
        assert!((ps.dirty_fraction() - 1.0 / 12.0).abs() < 1e-12);
        ps.sort_by_cell(5);
        assert!(ps.index_is_fresh());
    }

    #[test]
    fn indexed_cells_mut_borrow_marks_all_dirty() {
        let (mut ps, pos, q) = store_with(12);
        assert!(
            ps.cols_mut2_cells_mut_with_index(pos, q).is_none(),
            "stale index refuses the fused-mover borrow"
        );
        ps.sort_by_cell(5);
        {
            let (idx, _, _, cells) = ps
                .cols_mut2_cells_mut_with_index(pos, q)
                .expect("fresh after sort");
            assert_eq!(*idx.last().unwrap(), cells.len());
            cells[0] = 3; // a relocation through the fused mover
        }
        assert_eq!(ps.dirty_count(), 12, "raw cell borrow: worst case");
        ps.refine_dirty(1);
        assert_eq!(ps.dirty_count(), 1, "measured relocations replace it");
    }

    #[test]
    fn sort_policies_decide_as_documented() {
        assert!(!SortPolicy::Never.should_sort(10, 100, 100));
        assert!(SortPolicy::Always.should_sort(1, 0, 100));
        assert!(SortPolicy::EveryN(5).should_sort(10, 1, 100));
        assert!(!SortPolicy::EveryN(5).should_sort(11, 1, 100));
        assert!(!SortPolicy::EveryN(0).should_sort(0, 1, 100));
        assert!(SortPolicy::DirtyFraction(0.25).should_sort(3, 25, 100));
        assert!(!SortPolicy::DirtyFraction(0.25).should_sort(3, 24, 100));
        assert!(!SortPolicy::DirtyFraction(0.25).should_sort(3, 0, 0));
    }

    #[test]
    fn repeated_sorts_reuse_scratch_and_stay_stable() {
        let (mut ps, pos, q) = store_with(40);
        for round in 0..4 {
            // Perturb some cells through the accounted-for mutators.
            ps.cells_mut()[round * 3] = 4 - (round as i32);
            ps.refine_dirty(1);
            // Stability oracle: per cell, ids in current array order.
            let mut expect: Vec<Vec<i64>> = vec![Vec::new(); 5];
            for i in 0..ps.len() {
                expect[ps.cells()[i] as usize].push(ps.el(pos, i)[0] as i64);
            }
            ps.sort_by_cell(5);
            assert!(ps.index_is_fresh());
            assert!(ps.cells().is_sorted());
            let idx = ps.cell_index().unwrap().to_vec();
            for c in 0..5 {
                let got: Vec<i64> = (idx[c]..idx[c + 1])
                    .map(|i| ps.el(pos, i)[0] as i64)
                    .collect();
                assert_eq!(got, expect[c], "stable order broken in cell {c}");
            }
            // Identity payloads must survive every round.
            for i in 0..ps.len() {
                let id = ps.el(pos, i)[0];
                assert_eq!(ps.el(q, i)[0], 100.0 + id);
            }
        }
    }
}
