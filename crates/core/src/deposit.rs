//! Indirect-increment executors — the race-handling strategies of
//! Section 3.3 of the paper.
//!
//! A loop over particles that increments mesh data through the
//! particle→cell (and possibly cell→node) maps is the key bottleneck of
//! PIC: many particles hit the same mesh element concurrently. The
//! paper implements, per platform:
//!
//! * **scatter arrays** (CPU/OpenMP, Figure 2(b)) — one private array
//!   per thread, reduced element-wise at loop end;
//! * **atomics** (GPU) — hardware f64 atomic adds (CAS-loop here);
//! * **segmented reduction** (GPU, Figure 3) — store `(key, value)`
//!   pairs, sort by key, reduce by key, scatter.
//!
//! This repo adds a fourth strategy the paper's periodic particle sort
//! makes possible: **sorted segments**
//! ([`DepositMethod::SortedSegments`]). When the particle store is
//! cell-sorted and its CSR cell index is *fresh* (see
//! `ParticleDats::cell_index`), the deposit is re-expressed
//! owner-computes: the loop parallelises over *target elements*, and
//! each target folds the contributions of its cells' particle segments
//! in exactly the serial order (cells ascending, particles ascending
//! within a segment, map slots ascending within a particle). Plain
//! `+=`, zero atomics, zero per-thread scatter memory — and because
//! each target replays the serial left-fold verbatim, the result is
//! **bit-identical to [`DepositMethod::Serial`]**, a property none of
//! the other parallel strategies have. The freshness precondition is
//! enforced by the planner (`plan/stale-index`) and executors run it
//! through [`deposit_loop_sorted`], which takes the CSR index and a
//! [`TargetInverse`] (target → owning (cell, slot) pairs) instead of
//! the generic scattering kernel.
//!
//! All scattering strategies are exposed through one executor,
//! [`deposit_loop`]; the kernel receives a [`Depositor`] and calls
//! [`Depositor::add`] for each contribution. Every strategy computes
//! the same sums (up to floating-point associativity; segmented
//! reduction is made *deterministic* by totally ordering equal keys by
//! value bits before reducing). [`AutoTuner`] picks among
//! ScatterArrays / Atomics / SortedSegments per loop from runtime
//! stats (particles per cell, dirty fraction, thread count).

use crate::parloop::ExecPolicy;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Race-handling strategy for indirect increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepositMethod {
    /// Reference single-threaded accumulation.
    Serial,
    /// Per-thread private arrays + element-wise reduction (the paper's
    /// CPU/OpenMP choice).
    ScatterArrays,
    /// CAS-loop f64 atomic adds with sequentially consistent success
    /// ordering (the paper's "safe atomics", AT).
    Atomics,
    /// CAS-loop f64 atomic adds with relaxed ordering — the paper's
    /// "unsafe atomics" (UA) are a weaker-guarantee RMW path on AMD
    /// hardware; relaxed ordering is the closest well-defined analogue.
    UnsafeAtomics,
    /// store(key,value) → sort_by_key → reduce_by_key (the paper's SR,
    /// Figure 3).
    SegmentedReduction,
    /// Owner-computes over cell segments of a **cell-sorted** store:
    /// parallel over targets, each folding its segments in serial
    /// order. Bit-identical to `Serial`; requires a fresh CSR cell
    /// index and runs through [`deposit_loop_sorted`], not the generic
    /// [`deposit_loop`].
    SortedSegments,
    /// Matrixized owner-computes: per-cell particle runs are packed
    /// into fixed-width SoA tiles ([`MatTile`], tail lanes masked) and
    /// the deposit becomes an accumulated rank-k outer-product
    /// (`shape^T × weights`) per target, after Matrix-PIC
    /// (arXiv 2601.08277) and POLAR-PIC (arXiv 2604.19337). Shares the
    /// fresh-index precondition and owner-computes race story of
    /// [`DepositMethod::SortedSegments`]; runs through
    /// [`deposit_loop_matrix`] in one of two [`MatAccumulate`] modes
    /// (bit-identical to `Serial` in `Exact`, lane-parallel in `Fast`).
    Matrix,
}

impl DepositMethod {
    pub const ALL: [DepositMethod; 7] = [
        DepositMethod::Serial,
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::UnsafeAtomics,
        DepositMethod::SegmentedReduction,
        DepositMethod::SortedSegments,
        DepositMethod::Matrix,
    ];

    /// The strategies the generic [`deposit_loop`] executor can run —
    /// everything except [`DepositMethod::SortedSegments`] and
    /// [`DepositMethod::Matrix`], which need the CSR index and
    /// target-inverse structure of [`deposit_loop_sorted`] /
    /// [`deposit_loop_matrix`].
    pub const GENERIC: [DepositMethod; 5] = [
        DepositMethod::Serial,
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::UnsafeAtomics,
        DepositMethod::SegmentedReduction,
    ];

    /// Does this method execute race-free *while honouring* a policy
    /// with the given parallelism? Every method is safe in the
    /// data-race sense — `Serial` under a parallel policy returns
    /// `false` because it silently falls back to sequential execution,
    /// which the analyzer surfaces as a plan-incoherence warning.
    pub fn is_race_safe(self, parallel: bool) -> bool {
        !parallel || !matches!(self, DepositMethod::Serial)
    }

    /// Short label used by the benchmark tables (matches the paper's
    /// AT/UA/SR abbreviations).
    pub fn label(self) -> &'static str {
        match self {
            DepositMethod::Serial => "SEQ",
            DepositMethod::ScatterArrays => "SA",
            DepositMethod::Atomics => "AT",
            DepositMethod::UnsafeAtomics => "UA",
            DepositMethod::SegmentedReduction => "SR",
            DepositMethod::SortedSegments => "SS",
            DepositMethod::Matrix => "MX",
        }
    }
}

/// Handle through which a kernel emits `target[index] += value`
/// contributions. The variant is chosen by the executor; kernels are
/// strategy-agnostic (the separation of concerns the DSL promises).
pub enum Depositor<'a> {
    Exclusive(&'a mut [f64]),
    Local(&'a mut [f64]),
    Atomic {
        slots: &'a [AtomicU64],
        ordering: Ordering,
    },
    Pairs(&'a mut Vec<(u32, f64)>),
}

impl<'a> Depositor<'a> {
    /// Accumulate `value` into flat index `idx` of the target dat.
    #[inline]
    pub fn add(&mut self, idx: usize, value: f64) {
        match self {
            Depositor::Exclusive(t) | Depositor::Local(t) => t[idx] += value,
            Depositor::Atomic { slots, ordering } => atomic_add_f64(&slots[idx], value, *ordering),
            Depositor::Pairs(buf) => buf.push((idx as u32, value)),
        }
    }
}

/// f64 atomic add via compare-exchange on the bit pattern. `ordering`
/// applies to the successful exchange; failures reload relaxed.
#[inline]
fn atomic_add_f64(slot: &AtomicU64, value: f64, ordering: Ordering) {
    let mut current = slot.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(current) + value;
        match slot.compare_exchange_weak(current, new.to_bits(), ordering, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Reinterpret an exclusively borrowed `&mut [f64]` as atomic slots.
/// Sound: we hold the unique borrow for the whole loop, `f64` and
/// `AtomicU64` have identical size and alignment, and every bit
/// pattern is valid for both.
fn as_atomic_slots(data: &mut [f64]) -> &[AtomicU64] {
    const _: () = assert!(std::mem::size_of::<f64>() == std::mem::size_of::<AtomicU64>());
    const _: () = assert!(std::mem::align_of::<f64>() == std::mem::align_of::<AtomicU64>());
    // SAFETY: `data` is an exclusive borrow held for the returned
    // slice's whole lifetime, `f64` and `AtomicU64` have identical
    // size/alignment (asserted above) and every bit pattern is valid
    // for both; the pointer comes from `as_mut_ptr` so the shared
    // atomic view retains write provenance over the exclusive borrow.
    unsafe { std::slice::from_raw_parts(data.as_mut_ptr() as *const AtomicU64, data.len()) }
}

/// Statistics from one deposit loop (fed to the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DepositStats {
    /// Number of `(key, value)` pairs staged (segmented reduction only).
    pub pairs_staged: usize,
    /// Distinct target indices touched (segmented reduction only).
    pub segments: usize,
}

/// Run an indirect-increment loop over `n` iterations, accumulating
/// into `target` (a flat `len*dim` f64 buffer) with the chosen
/// strategy. The kernel is invoked once per iteration index.
///
/// ```
/// use oppic_core::{deposit_loop, DepositMethod, ExecPolicy};
/// // 1000 "particles", each adding 1.0 to one of 4 "nodes":
/// let mut node_charge = vec![0.0; 4];
/// deposit_loop(
///     &ExecPolicy::Par,
///     DepositMethod::ScatterArrays,
///     1000,
///     &mut node_charge,
///     |i, dep| dep.add(i % 4, 1.0),
/// );
/// assert_eq!(node_charge, vec![250.0; 4]);
/// ```
pub fn deposit_loop<F>(
    policy: &ExecPolicy,
    method: DepositMethod,
    n: usize,
    target: &mut [f64],
    kernel: F,
) -> DepositStats
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    if let Some(t) = crate::telemetry::current() {
        t.counter_add("deposit.loops", 1);
        t.counter_add(&format!("deposit.method.{}", method.label()), 1);
    }
    match method {
        DepositMethod::Serial => {
            let mut dep = Depositor::Exclusive(target);
            for i in 0..n {
                kernel(i, &mut dep);
            }
            DepositStats::default()
        }
        DepositMethod::ScatterArrays => {
            policy.run(|| scatter_arrays(policy, n, target, &kernel));
            DepositStats::default()
        }
        DepositMethod::Atomics | DepositMethod::UnsafeAtomics => {
            let ordering = if method == DepositMethod::Atomics {
                Ordering::SeqCst
            } else {
                Ordering::Relaxed
            };
            let slots = as_atomic_slots(target);
            policy.run(|| {
                if policy.is_parallel() {
                    (0..n).into_par_iter().for_each(|i| {
                        let mut dep = Depositor::Atomic { slots, ordering };
                        kernel(i, &mut dep);
                    });
                } else {
                    let mut dep = Depositor::Atomic { slots, ordering };
                    for i in 0..n {
                        kernel(i, &mut dep);
                    }
                }
            });
            DepositStats::default()
        }
        DepositMethod::SegmentedReduction => {
            policy.run(|| segmented_reduction(policy, n, target, &kernel))
        }
        DepositMethod::SortedSegments => panic!(
            "SortedSegments cannot run through the generic deposit_loop: it needs the \
             fresh CSR cell index and a TargetInverse — use deposit_loop_sorted"
        ),
        DepositMethod::Matrix => panic!(
            "Matrix cannot run through the generic deposit_loop: it needs the \
             fresh CSR cell index and a TargetInverse — use deposit_loop_matrix"
        ),
    }
}

// ---------------------------------------------------------------------
// Sorted segments — the cell-locality engine's owner-computes deposit.
// ---------------------------------------------------------------------

/// CSR inverse of a cell→targets relation: for each target, the
/// `(cell, slot)` pairs that reach it, grouped by cell in ascending
/// `(cell, slot)` order. Built once per mesh by
/// [`invert_cell_targets`]; `slot` is the index into the cell's target
/// list, so the deposit kernel can recompute the per-slot weight.
#[derive(Debug, Clone, Default)]
pub struct TargetInverse {
    offsets: Vec<usize>,
    entries: Vec<(u32, u32)>,
    /// The forward cell→targets CSR the inverse was built from, kept
    /// for the matrixized deposit's sequential cell-major schedule
    /// (per-cell outer products need the cell's target list).
    fwd_offsets: Vec<usize>,
    fwd_targets: Vec<u32>,
}

impl TargetInverse {
    /// Number of targets covered.
    pub fn n_targets(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of cells in the forward relation.
    pub fn n_cells(&self) -> usize {
        self.fwd_offsets.len().saturating_sub(1)
    }

    /// The `(cell, slot)` pairs reaching target `t`, cell-ascending.
    #[inline]
    pub fn entries_of(&self, t: usize) -> &[(u32, u32)] {
        &self.entries[self.offsets[t]..self.offsets[t + 1]]
    }

    /// Cell `c`'s target list, slots ascending (the forward relation).
    #[inline]
    pub fn targets_of(&self, c: usize) -> &[u32] {
        &self.fwd_targets[self.fwd_offsets[c]..self.fwd_offsets[c + 1]]
    }
}

/// Invert a cell→targets relation (e.g. the cells→nodes map) into the
/// target→(cell, slot) CSR form [`deposit_loop_sorted`] consumes.
pub fn invert_cell_targets<C: AsRef<[usize]>>(
    cell_targets: &[C],
    n_targets: usize,
) -> TargetInverse {
    let mut offsets = vec![0usize; n_targets + 1];
    for ts in cell_targets {
        for &t in ts.as_ref() {
            offsets[t + 1] += 1;
        }
    }
    for t in 0..n_targets {
        offsets[t + 1] += offsets[t];
    }
    let mut cursor = offsets.clone();
    let mut entries = vec![(0u32, 0u32); offsets[n_targets]];
    // Cells ascending, slots ascending: each target's entry list comes
    // out already grouped and sorted, which is what replays the serial
    // fold order.
    let mut fwd_offsets = Vec::with_capacity(cell_targets.len() + 1);
    fwd_offsets.push(0usize);
    let mut fwd_targets = Vec::with_capacity(offsets[n_targets]);
    for (c, ts) in cell_targets.iter().enumerate() {
        for (s, &t) in ts.as_ref().iter().enumerate() {
            entries[cursor[t]] = (c as u32, s as u32);
            cursor[t] += 1;
        }
        fwd_targets.extend(ts.as_ref().iter().map(|&t| t as u32));
        fwd_offsets.push(fwd_targets.len());
    }
    TargetInverse {
        offsets,
        entries,
        fwd_offsets,
        fwd_targets,
    }
}

/// The `SortedSegments` executor. `cell_start` must be the **fresh**
/// CSR cell index of a cell-sorted particle store
/// (`ParticleDats::cell_index`); `inv` the inverse of the same
/// cell→targets relation the serial kernel scatters through. The
/// kernel returns the contribution of particle `p` through slot `s` of
/// its cell's target list.
///
/// Each target element is owned by exactly one task, which folds its
/// contributions in the order the serial loop would have applied them
/// (cells ascending; particles ascending within a segment; slots
/// ascending within a particle) starting from the target's existing
/// value — so the result is bit-identical to [`DepositMethod::Serial`]
/// for any initial target contents. Panics if the index does not
/// cover the inverse's cells (a stale-index symptom).
pub fn deposit_loop_sorted<F>(
    policy: &ExecPolicy,
    cell_start: &[usize],
    inv: &TargetInverse,
    target: &mut [f64],
    kernel: F,
) -> DepositStats
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    assert_eq!(
        target.len(),
        inv.n_targets(),
        "target length must match the inverse map"
    );
    if let Some(t) = crate::telemetry::current() {
        t.counter_add("deposit.loops", 1);
        t.counter_add("deposit.method.SS", 1);
    }
    let fold_target = |t: usize, out: &mut f64| {
        let mut acc = *out;
        let entries = inv.entries_of(t);
        let mut k = 0;
        while k < entries.len() {
            let cell = entries[k].0 as usize;
            let mut end = k;
            while end < entries.len() && entries[end].0 as usize == cell {
                end += 1;
            }
            let slots = &entries[k..end];
            let (lo, hi) = (cell_start[cell], cell_start[cell + 1]);
            if let [(_, s)] = slots {
                // Overwhelmingly common case (a cell reaches each of
                // its targets through one slot): a tight segment scan.
                let s = *s as usize;
                for p in lo..hi {
                    acc += kernel(p, s);
                }
            } else {
                for p in lo..hi {
                    for &(_, s) in slots {
                        acc += kernel(p, s as usize);
                    }
                }
            }
            k = end;
        }
        *out = acc;
    };
    policy.run(|| {
        if policy.is_parallel() {
            target
                .par_iter_mut()
                .enumerate()
                .for_each(|(t, out)| fold_target(t, out));
        } else {
            for (t, out) in target.iter_mut().enumerate() {
                fold_target(t, out);
            }
        }
    });
    DepositStats::default()
}

// ---------------------------------------------------------------------
// Matrixized deposit/gather — batched per-cell outer-product kernels.
// ---------------------------------------------------------------------

/// Width of one SoA tile in the matrixized deposit/gather engine: how
/// many particles of a cell run are packed into one shape-matrix row
/// block. Eight f64 lanes fill one cache line and give the `Fast`
/// accumulation mode eight independent FP add chains, which is what
/// breaks the latency-bound serial fold of
/// [`DepositMethod::SortedSegments`].
pub const MAT_TILE_WIDTH: usize = 8;

/// One fixed-width tile of per-particle shape/weight values for a
/// contiguous run of a cell segment. Tail tiles (runs shorter than
/// [`MAT_TILE_WIDTH`]) keep their dead lanes masked to `0.0`, so the
/// `Fast` accumulation mode can always process all lanes branch-free.
#[derive(Debug, Clone, Copy)]
pub struct MatTile {
    lanes: [f64; MAT_TILE_WIDTH],
    len: usize,
}

impl MatTile {
    /// Pack the particle run `lo..hi` (at most [`MAT_TILE_WIDTH`]
    /// long) into a tile, masking tail lanes to zero.
    #[inline(always)]
    pub fn pack<F: FnMut(usize) -> f64>(lo: usize, hi: usize, mut value: F) -> Self {
        debug_assert!(hi - lo <= MAT_TILE_WIDTH);
        let mut lanes = [0.0f64; MAT_TILE_WIDTH];
        for (l, p) in (lo..hi).enumerate() {
            lanes[l] = value(p);
        }
        MatTile {
            lanes,
            len: hi - lo,
        }
    }

    /// Live lanes (the rest are zero-masked tail).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed lane values (tail lanes are `0.0`).
    pub fn lanes(&self) -> &[f64; MAT_TILE_WIDTH] {
        &self.lanes
    }

    /// `Exact` accumulation: fold the live lanes into `acc` one at a
    /// time, lanes ascending — exactly the order the serial scatter
    /// loop would have applied them, so the result is bit-identical.
    #[inline(always)]
    pub fn fold_exact(&self, mut acc: f64) -> f64 {
        for &v in &self.lanes[..self.len] {
            acc += v;
        }
        acc
    }

    /// `Fast` accumulation: add every lane (tail lanes add zero) into
    /// the caller's eight independent accumulators. Each accumulator
    /// forms its own FP dependency chain, so consecutive tiles overlap
    /// in the FP pipeline instead of serialising on one add latency.
    #[inline(always)]
    pub fn accumulate(&self, acc: &mut [f64; MAT_TILE_WIDTH]) {
        for (a, &v) in acc.iter_mut().zip(&self.lanes) {
            *a += v;
        }
    }

    /// Reduce eight lane accumulators to a scalar with a fixed
    /// pairwise tree (deterministic regardless of tile count).
    #[inline(always)]
    pub fn reduce(acc: &[f64; MAT_TILE_WIDTH]) -> f64 {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }
}

/// Accumulation mode of [`deposit_loop_matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatAccumulate {
    /// Fold tile lanes sequentially in serial scatter order —
    /// bit-identical to [`DepositMethod::Serial`] for any initial
    /// target contents (the conformance matrix's bit-identity cells).
    Exact,
    /// Keep [`MAT_TILE_WIDTH`] independent lane accumulators across a
    /// target's whole entry list and reduce once per target. Same
    /// values to rounding (a different, still deterministic summation
    /// tree); this is the high-throughput mode the ablation records.
    /// Only the parallel target-major schedule distinguishes the two
    /// modes — on a single worker [`deposit_loop_matrix`] streams
    /// cell-major and both modes are bit-identical to Serial.
    Fast,
}

/// The `Matrix` executor: deposit as accumulated rank-k outer-product
/// micro-kernels over fixed-width SoA tiles. `cell_start` must be the
/// **fresh** CSR cell index of a cell-sorted store; `inv` the inverse
/// of the cell→targets relation; the kernel returns the shape-weighted
/// contribution of particle `p` through slot `s` of its cell's target
/// list (one entry of the `shape^T × weights` product).
///
/// Two schedules, picked by worker count:
///
/// * **Single worker** (`Seq` or a one-thread pool): a cell-major
///   sweep of true per-cell rank-k outer products. Each particle row
///   (all of its cell's slots) is streamed from memory exactly once
///   and scattered slot-by-slot into the cell's targets — `1/n_slots`
///   of the target-major read traffic, which is what beats
///   [`DepositMethod::SortedSegments`] at high ppc. Reordering only
///   crosses *different* targets, so every individual target still
///   receives its contributions in serial order and the result is
///   bit-identical to [`DepositMethod::Serial`] in **both** modes.
/// * **Parallel**: owner-computes target-major folds over the inverse
///   map — each target element is owned by exactly one task, so the
///   loop is race-free, at the price of re-reading the particle data
///   once per slot. Here the two [`MatAccumulate`] modes differ in
///   fold order; both are deterministic.
pub fn deposit_loop_matrix<F>(
    policy: &ExecPolicy,
    cell_start: &[usize],
    inv: &TargetInverse,
    target: &mut [f64],
    mode: MatAccumulate,
    kernel: F,
) -> DepositStats
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    assert_eq!(
        target.len(),
        inv.n_targets(),
        "target length must match the inverse map"
    );
    if let Some(t) = crate::telemetry::current() {
        t.counter_add("deposit.loops", 1);
        t.counter_add("deposit.method.MX", 1);
    }
    if policy.threads() <= 1 {
        // Cell-major single-worker schedule (see the doc comment):
        // stream each particle row once, scatter serial-order.
        let n_cells = inv.n_cells();
        assert!(
            cell_start.len() > n_cells,
            "cell index must cover the forward map"
        );
        policy.run(|| {
            for c in 0..n_cells {
                let ts = inv.targets_of(c);
                let (lo, hi) = (cell_start[c], cell_start[c + 1]);
                if lo == hi {
                    continue;
                }
                // A degenerate cell reaching one target through several
                // slots would interleave that target's contributions
                // differently under slot-major tiling (and a cell wider
                // than a tile has no accumulator row); replay the exact
                // serial scatter for those cells.
                if ts.len() > MAT_TILE_WIDTH
                    || ts.iter().enumerate().any(|(i, t)| ts[..i].contains(t))
                {
                    for p in lo..hi {
                        for (s, &t) in ts.iter().enumerate() {
                            target[t as usize] += kernel(p, s);
                        }
                    }
                    continue;
                }
                // Hoist the cell's (distinct) targets into one slot
                // accumulator row for the whole segment, so each slot's
                // fold chain lives in a register: up to `ts.len()`
                // independent FP add chains in flight instead of
                // store-forwarded read-modify-writes of `target`.
                let mut acc = [0.0f64; MAT_TILE_WIDTH];
                for (a, &t) in acc.iter_mut().zip(ts) {
                    *a = target[t as usize];
                }
                // One rank-k outer-product update per segment,
                // computed row-major: each particle's (contiguous)
                // shape row is streamed from memory exactly once and
                // folded into the slot accumulators. Every individual
                // accumulator still sees its contributions particles
                // ascending — the per-target order Serial would have
                // used.
                for q in lo..hi {
                    for (s, a) in acc.iter_mut().enumerate().take(ts.len()) {
                        *a += kernel(q, s);
                    }
                }
                for (&a, &t) in acc.iter().zip(ts) {
                    target[t as usize] = a;
                }
            }
        });
        return DepositStats::default();
    }
    let fold_target = |t: usize, out: &mut f64| {
        let entries = inv.entries_of(t);
        // Eight independent lane chains (Fast) or a single serial-order
        // chain seeded with the target's existing value (Exact).
        let mut lane_acc = [0.0f64; MAT_TILE_WIDTH];
        let mut acc = *out;
        let mut k = 0;
        while k < entries.len() {
            let cell = entries[k].0 as usize;
            let mut end = k;
            while end < entries.len() && entries[end].0 as usize == cell {
                end += 1;
            }
            let slots = &entries[k..end];
            let (lo, hi) = (cell_start[cell], cell_start[cell + 1]);
            if let [(_, s)] = slots {
                // Single-slot fast path: tile the cell run directly.
                let s = *s as usize;
                let mut p = lo;
                while p < hi {
                    let tile_hi = (p + MAT_TILE_WIDTH).min(hi);
                    let tile = MatTile::pack(p, tile_hi, |q| kernel(q, s));
                    match mode {
                        MatAccumulate::Exact => acc = tile.fold_exact(acc),
                        MatAccumulate::Fast => tile.accumulate(&mut lane_acc),
                    }
                    p = tile_hi;
                }
            } else {
                // A cell reaching one target through several slots
                // (degenerate meshes): lane values are the
                // slots-ascending per-particle fold, which preserves
                // the serial slot order inside each lane.
                match mode {
                    MatAccumulate::Exact => {
                        // Exact mode cannot pre-fold slots (it would
                        // reassociate against the serial order), so it
                        // replays the scalar double loop.
                        for p in lo..hi {
                            for &(_, s) in slots {
                                acc += kernel(p, s as usize);
                            }
                        }
                    }
                    MatAccumulate::Fast => {
                        let mut p = lo;
                        while p < hi {
                            let tile_hi = (p + MAT_TILE_WIDTH).min(hi);
                            let tile = MatTile::pack(p, tile_hi, |q| {
                                let mut row = 0.0;
                                for &(_, s) in slots {
                                    row += kernel(q, s as usize);
                                }
                                row
                            });
                            tile.accumulate(&mut lane_acc);
                            p = tile_hi;
                        }
                    }
                }
            }
            k = end;
        }
        *out = match mode {
            MatAccumulate::Exact => acc,
            MatAccumulate::Fast => acc + MatTile::reduce(&lane_acc),
        };
    };
    policy.run(|| {
        if policy.is_parallel() {
            target
                .par_iter_mut()
                .enumerate()
                .for_each(|(t, out)| fold_target(t, out));
        } else {
            for (t, out) in target.iter_mut().enumerate() {
                fold_target(t, out);
            }
        }
    });
    DepositStats::default()
}

/// The transpose product of [`deposit_loop_matrix`]: gather per-target
/// source values onto particles as `shape × field`. For each cell
/// segment the `n_slots` target values are loaded once, then every
/// tile of the segment computes its lanes' dot products against them
/// (slots ascending) — the same arithmetic order as a per-particle
/// gather loop, so the result is bit-identical to one.
///
/// `targets(cell, slot)` resolves the cell's target list (e.g. the
/// cells→nodes map); `shape(p, slot)` is the particle's interpolation
/// weight for that slot; `out` receives one scalar per particle
/// (vector fields gather component-wise).
pub fn gather_loop_matrix<TG, SH>(
    policy: &ExecPolicy,
    cell_start: &[usize],
    n_slots: usize,
    targets: TG,
    source: &[f64],
    out: &mut [f64],
    shape: SH,
) where
    TG: Fn(usize, usize) -> usize + Sync,
    SH: Fn(usize, usize) -> f64 + Sync,
{
    assert!(
        n_slots <= MAT_TILE_WIDTH,
        "gather_loop_matrix supports at most {MAT_TILE_WIDTH} slots per cell"
    );
    let n_cells = cell_start.len().saturating_sub(1);
    // Slice the per-particle output into disjoint per-cell segments so
    // the parallel path needs no aliasing tricks.
    let mut segments: Vec<(usize, &mut [f64])> = Vec::with_capacity(n_cells);
    let mut rest = out;
    let mut consumed = 0usize;
    for c in 0..n_cells {
        let len = cell_start[c + 1] - consumed;
        let (seg, tail) = rest.split_at_mut(len);
        segments.push((c, seg));
        rest = tail;
        consumed += len;
    }
    let gather_cell = |c: usize, first: usize, seg: &mut [f64]| {
        let mut vals = [0.0f64; MAT_TILE_WIDTH];
        for (k, v) in vals.iter_mut().enumerate().take(n_slots) {
            *v = source[targets(c, k)];
        }
        let mut l = 0;
        while l < seg.len() {
            let tile_hi = (l + MAT_TILE_WIDTH).min(seg.len());
            for (lane, o) in seg[l..tile_hi].iter_mut().enumerate() {
                let p = first + l + lane;
                let mut dot = 0.0;
                for (k, &v) in vals.iter().enumerate().take(n_slots) {
                    dot += shape(p, k) * v;
                }
                *o = dot;
            }
            l = tile_hi;
        }
    };
    policy.run(|| {
        if policy.is_parallel() {
            segments.par_iter_mut().for_each(|(c, seg)| {
                gather_cell(*c, cell_start[*c], seg);
            });
        } else {
            for (c, seg) in &mut segments {
                gather_cell(*c, cell_start[*c], seg);
            }
        }
    });
}

// ---------------------------------------------------------------------
// Adaptive strategy selection.
// ---------------------------------------------------------------------

/// Runtime stats the auto-tuner decides from.
#[derive(Debug, Clone, Copy)]
pub struct TunerInput {
    pub n_particles: usize,
    pub n_cells: usize,
    pub n_targets: usize,
    /// `ParticleDats::dirty_fraction` — how stale the cell index is.
    pub dirty_fraction: f64,
    /// `ParticleDats::index_is_fresh`.
    pub index_fresh: bool,
    /// `ExecPolicy::threads` for the loop's policy.
    pub threads: usize,
}

impl TunerInput {
    pub fn mean_ppc(&self) -> f64 {
        if self.n_cells == 0 {
            0.0
        } else {
            self.n_particles as f64 / self.n_cells as f64
        }
    }
}

/// One auto-tuner verdict: the method to run and whether a cell sort
/// should be performed first (to make `SortedSegments` legal).
#[derive(Debug, Clone)]
pub struct TunerDecision {
    pub method: DepositMethod,
    pub sort_first: bool,
    /// One-line rationale, traced through the profiler by callers.
    pub reason: String,
}

/// Picks a deposit strategy per loop from runtime statistics. The
/// heuristics (thresholds ablated in `ablation_deposit_strategies`):
/// dense populations over a fresh index take the matrixized
/// outer-product path once segments are long enough to fill tiles
/// (mean particles-per-cell ≥ [`AutoTuner::MX_MIN_PPC`] in parallel,
/// ≥ [`AutoTuner::MX_SEQ_MIN_PPC`] on a single worker, where the
/// cell-major streaming schedule beats the serial reference outright);
/// moderately dense populations (≥
/// [`AutoTuner::SS_MIN_PPC`]) amortise a sort and take the
/// bit-reproducible `SortedSegments` path, as long as the index is
/// fresh or cheap to refresh (dirty fraction ≤
/// [`AutoTuner::SORT_MAX_DIRTY`]); small targets favour scatter arrays
/// (private copies are cheap); everything else falls back to atomics.
#[derive(Debug, Clone, Default)]
pub struct AutoTuner {
    decisions: Vec<TunerDecision>,
}

impl AutoTuner {
    /// Minimum mean particles-per-cell before a sort+sorted-segments
    /// deposit beats scattering (the segment loop needs enough work
    /// per cell to amortise the inverse-map walk).
    pub const SS_MIN_PPC: f64 = 16.0;
    /// Minimum mean particles-per-cell before the **parallel**
    /// target-major tile fold of [`DepositMethod::Matrix`] beats the
    /// scalar segment fold: below this, cell runs are shorter than a
    /// few tiles and the tail-masked lanes waste the width (crossover
    /// measured by the `ablation_deposit_strategies` sweep recorded in
    /// `results/BENCH_ablation_deposit_matrix.json`).
    pub const MX_MIN_PPC: f64 = 48.0;
    /// Minimum mean particles-per-cell for the **single-worker**
    /// cell-major streaming schedule of [`deposit_loop_matrix`]. It
    /// reads each particle row once (vs once per slot for the serial
    /// scatter and sorted segments), so it wins as soon as segments
    /// reach one tile; below that the per-cell accumulator set-up
    /// dominates. Measured in the same ablation sweep: at 8 ppc the
    /// streaming schedule already beats sorted segments ~1.7x on one
    /// thread, and ~4x at 256 ppc.
    pub const MX_SEQ_MIN_PPC: f64 = 8.0;
    /// Above this dirty fraction a rebuild-for-deposit is assumed not
    /// to pay for itself within one loop.
    pub const SORT_MAX_DIRTY: f64 = 0.5;
    /// Targets-per-thread below which thread-private scatter arrays
    /// stay cache-resident.
    pub const SA_MAX_TARGETS_PER_THREAD: usize = 1 << 16;

    pub fn new() -> Self {
        Self::default()
    }

    /// Decide a strategy for one deposit loop.
    pub fn choose(&mut self, input: TunerInput) -> TunerDecision {
        let ppc = input.mean_ppc();
        let d = if input.threads <= 1 {
            if input.index_fresh && ppc >= Self::MX_SEQ_MIN_PPC {
                // The one regime where a single thread leaves the
                // serial path: the cell-major streaming schedule reads
                // each particle row once instead of once per slot, so
                // it beats the serial scatter without any sort cost.
                TunerDecision {
                    method: DepositMethod::Matrix,
                    sort_first: false,
                    reason: format!("single thread, index fresh, mean ppc {ppc:.1}: matrix tiles"),
                }
            } else {
                TunerDecision {
                    method: DepositMethod::Serial,
                    sort_first: false,
                    reason: "single thread: serial reference path".into(),
                }
            }
        } else if input.index_fresh && ppc >= Self::MX_MIN_PPC {
            TunerDecision {
                method: DepositMethod::Matrix,
                sort_first: false,
                reason: format!("index fresh, mean ppc {ppc:.1}: matrix tiles"),
            }
        } else if input.index_fresh && ppc >= Self::MX_SEQ_MIN_PPC {
            // With the index already fresh there is no sort to
            // amortise, only the inverse-map walk — segments pay off
            // from about one tile per cell (SS_MIN_PPC gates the
            // sort-first branch below instead).
            TunerDecision {
                method: DepositMethod::SortedSegments,
                sort_first: false,
                reason: format!("index fresh, mean ppc {ppc:.1}: sorted segments"),
            }
        } else if ppc >= Self::MX_MIN_PPC && input.dirty_fraction <= Self::SORT_MAX_DIRTY {
            TunerDecision {
                method: DepositMethod::Matrix,
                sort_first: true,
                reason: format!(
                    "mean ppc {ppc:.1}, dirty {:.0}%: sort then matrix tiles",
                    input.dirty_fraction * 100.0
                ),
            }
        } else if ppc >= Self::SS_MIN_PPC && input.dirty_fraction <= Self::SORT_MAX_DIRTY {
            TunerDecision {
                method: DepositMethod::SortedSegments,
                sort_first: true,
                reason: format!(
                    "mean ppc {ppc:.1}, dirty {:.0}%: sort then sorted segments",
                    input.dirty_fraction * 100.0
                ),
            }
        } else if input.n_targets <= Self::SA_MAX_TARGETS_PER_THREAD * input.threads {
            TunerDecision {
                method: DepositMethod::ScatterArrays,
                sort_first: false,
                reason: format!(
                    "{} targets fit thread-private copies: scatter arrays",
                    input.n_targets
                ),
            }
        } else {
            TunerDecision {
                method: DepositMethod::Atomics,
                sort_first: false,
                reason: format!(
                    "sparse ({ppc:.1} ppc) and {} targets too large to scatter: atomics",
                    input.n_targets
                ),
            }
        };
        self.decisions.push(d.clone());
        crate::telemetry::count("tuner.decisions", 1);
        d
    }

    /// All decisions taken so far, oldest first.
    pub fn decisions(&self) -> &[TunerDecision] {
        &self.decisions
    }

    /// The most recent decision.
    pub fn last(&self) -> Option<&TunerDecision> {
        self.decisions.last()
    }
}

/// Figure 2(b): per-thread private arrays, then an element-wise
/// parallel reduction over the target.
fn scatter_arrays<F>(policy: &ExecPolicy, n: usize, target: &mut [f64], kernel: &F)
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    let t = policy.threads().max(1);
    if t == 1 || n == 0 {
        let mut dep = Depositor::Exclusive(target);
        for i in 0..n {
            kernel(i, &mut dep);
        }
        return;
    }
    let chunk = n.div_ceil(t);
    let len = target.len();
    let locals: Vec<Vec<f64>> = (0..t)
        .into_par_iter()
        .map(|ti| {
            let mut local = vec![0.0; len];
            let lo = ti * chunk;
            let hi = ((ti + 1) * chunk).min(n);
            let mut dep = Depositor::Local(&mut local);
            for i in lo..hi {
                kernel(i, &mut dep);
            }
            local
        })
        .collect();
    // "Finally, the array entries can be reduced to get the total
    // contribution to that node."
    target.par_iter_mut().enumerate().for_each(|(j, tj)| {
        let mut acc = *tj;
        for l in &locals {
            acc += l[j];
        }
        *tj = acc;
    });
}

/// Figure 3: store values and keys → sort by key → reduce by key.
/// Pairs with equal keys are additionally ordered by value bits so the
/// reduction order — and therefore the floating-point result — is
/// deterministic regardless of thread schedule.
fn segmented_reduction<F>(
    policy: &ExecPolicy,
    n: usize,
    target: &mut [f64],
    kernel: &F,
) -> DepositStats
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    // Step 1: store_values_and_keys.
    let mut pairs: Vec<(u32, f64)> = if policy.is_parallel() {
        (0..n)
            .into_par_iter()
            .fold(Vec::new, |mut buf, i| {
                let mut dep = Depositor::Pairs(&mut buf);
                kernel(i, &mut dep);
                buf
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    } else {
        let mut buf = Vec::new();
        let mut dep = Depositor::Pairs(&mut buf);
        for i in 0..n {
            kernel(i, &mut dep);
        }
        buf
    };

    let staged = pairs.len();

    // Step 2: sort_by_key (key, then value bits for determinism).
    pairs.par_sort_unstable_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| total_order_bits(a.1).cmp(&total_order_bits(b.1)))
    });

    // Step 3: reduce_by_key + scatter.
    let mut segments = 0usize;
    let mut k = 0;
    while k < pairs.len() {
        let key = pairs[k].0;
        let mut acc = 0.0;
        while k < pairs.len() && pairs[k].0 == key {
            acc += pairs[k].1;
            k += 1;
        }
        target[key as usize] += acc;
        segments += 1;
    }

    DepositStats {
        pairs_staged: staged,
        segments,
    }
}

/// Map an `f64` to a totally ordered integer (IEEE-754 total order
/// trick): flips the sign bit for positives and all bits for negatives.
#[inline]
fn total_order_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

// ---------------------------------------------------------------------
// Coloring — the paper's third CPU option (Section 3.3): "Coloring is
// another option on CPUs, but require particle arrays to be kept
// sorted, introducing an overhead."
// ---------------------------------------------------------------------

/// Greedy distance-2 coloring of cells over a shared-target relation:
/// two cells get different colors whenever they touch a common target
/// (e.g. share a node through the cells→nodes map). Cells of one color
/// can then deposit concurrently without synchronisation.
///
/// Returns `(color per cell, number of colors)`.
pub fn greedy_color_cells<C: AsRef<[usize]>>(
    cell_targets: &[C],
    n_targets: usize,
) -> (Vec<u32>, usize) {
    // target -> cells touching it.
    let mut t2c: Vec<Vec<u32>> = vec![Vec::new(); n_targets];
    for (c, ts) in cell_targets.iter().enumerate() {
        for &t in ts.as_ref() {
            t2c[t].push(c as u32);
        }
    }
    let n_cells = cell_targets.len();
    let mut color = vec![u32::MAX; n_cells];
    let mut used: Vec<bool> = Vec::new();
    let mut max_color = 0u32;
    for c in 0..n_cells {
        used.clear();
        used.resize(max_color as usize + 2, false);
        for &t in cell_targets[c].as_ref() {
            for &other in &t2c[t] {
                let oc = color[other as usize];
                if oc != u32::MAX {
                    if oc as usize >= used.len() {
                        used.resize(oc as usize + 1, false);
                    }
                    used[oc as usize] = true;
                }
            }
        }
        let chosen = used.iter().position(|&u| !u).unwrap_or(used.len()) as u32;
        color[c] = chosen;
        max_color = max_color.max(chosen);
    }
    (color, max_color as usize + 1)
}

/// Check that a coloring is valid for a shared-target relation: no two
/// cells with the same color touch a common target.
pub fn coloring_is_valid<C: AsRef<[usize]>>(
    cell_targets: &[C],
    n_targets: usize,
    colors: &[u32],
) -> bool {
    let mut owner: Vec<std::collections::HashMap<u32, u32>> = vec![Default::default(); n_targets];
    for (c, ts) in cell_targets.iter().enumerate() {
        for &t in ts.as_ref() {
            if let Some(&other) = owner[t].get(&colors[c]) {
                if other as usize != c {
                    return false;
                }
            }
            owner[t].insert(colors[c], c as u32);
        }
    }
    true
}

/// Colored deposit over particles **sorted by cell**: colors execute
/// sequentially; within a color, cells run in parallel and their
/// particles deposit without any race handling (the coloring guarantees
/// disjoint targets). Returns an error when the particle array is not
/// cell-sorted — the invariant the paper calls the method's overhead.
///
/// Contract: the kernel for particle `i` must only emit indices that
/// belong to the target list of `particle_cells[i]`'s cell under the
/// relation the coloring was built from (e.g. the cell's nodes) —
/// that is what makes same-color cells race-free.
pub fn deposit_loop_colored<F>(
    policy: &ExecPolicy,
    target: &mut [f64],
    particle_cells: &[i32],
    cell_colors: &[u32],
    n_colors: usize,
    kernel: F,
) -> Result<(), String>
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    if particle_cells.windows(2).any(|w| w[0] > w[1]) {
        return Err("coloring deposit requires particles sorted by cell".into());
    }
    // Per-cell contiguous particle ranges.
    let mut ranges: Vec<(usize, usize, usize)> = Vec::new(); // (cell, lo, hi)
    let mut i = 0;
    while i < particle_cells.len() {
        let c = particle_cells[i];
        let lo = i;
        while i < particle_cells.len() && particle_cells[i] == c {
            i += 1;
        }
        ranges.push((c as usize, lo, i));
    }

    // The coloring guarantees same-color cells touch disjoint targets,
    // so uncontended atomic adds never retry; the atomic view is just
    // the safe way to hand the buffer to concurrent tasks.
    let slots = as_atomic_slots(target);
    for color in 0..n_colors as u32 {
        let work: Vec<&(usize, usize, usize)> = ranges
            .iter()
            .filter(|(c, _, _)| cell_colors[*c] == color)
            .collect();
        policy.run(|| {
            if policy.is_parallel() {
                work.par_iter().for_each(|&&(_, lo, hi)| {
                    let mut dep = Depositor::Atomic {
                        slots,
                        ordering: Ordering::Relaxed,
                    };
                    for p in lo..hi {
                        kernel(p, &mut dep);
                    }
                });
            } else {
                let mut dep = Depositor::Atomic {
                    slots,
                    ordering: Ordering::Relaxed,
                };
                for &&(_, lo, hi) in &work {
                    for p in lo..hi {
                        kernel(p, &mut dep);
                    }
                }
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic charge-deposit workload: `n` particles, each adding
    /// to 4 "nodes" chosen by a hash, mimicking the cell→node scatter.
    fn run_method(method: DepositMethod, policy: &ExecPolicy, n: usize, len: usize) -> Vec<f64> {
        let mut target = vec![0.0; len];
        deposit_loop(policy, method, n, &mut target, |i, dep| {
            for k in 0..4usize {
                let idx = (i.wrapping_mul(2654435761).wrapping_add(k * 97)) % len;
                dep.add(idx, 1.0 + (i % 7) as f64 * 0.25);
            }
        });
        target
    }

    #[test]
    fn all_methods_agree_with_serial() {
        let n = 5000;
        let len = 64; // small target => heavy contention
        let reference = run_method(DepositMethod::Serial, &ExecPolicy::Seq, n, len);
        let total: f64 = reference.iter().sum();
        for method in DepositMethod::GENERIC {
            for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
                let got = run_method(method, &policy, n, len);
                let got_total: f64 = got.iter().sum();
                assert!(
                    (got_total - total).abs() < 1e-9 * total,
                    "{method:?}/{policy:?} total {got_total} vs {total}"
                );
                for (j, (a, b)) in got.iter().zip(&reference).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9 * b.abs().max(1.0),
                        "{method:?}/{policy:?} slot {j}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn segmented_reduction_is_deterministic() {
        // Same workload, several runs under full parallelism: the f64
        // results must be bit-identical thanks to the total ordering of
        // values within a key segment.
        let runs: Vec<Vec<f64>> = (0..5)
            .map(|_| {
                run_method(
                    DepositMethod::SegmentedReduction,
                    &ExecPolicy::Par,
                    20_000,
                    16,
                )
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0], "SR must be schedule-independent");
        }
    }

    #[test]
    fn segmented_reduction_stats() {
        let mut target = vec![0.0; 8];
        let st = deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::SegmentedReduction,
            10,
            &mut target,
            |i, d| {
                d.add(i % 2, 1.0);
            },
        );
        assert_eq!(st.pairs_staged, 10);
        assert_eq!(st.segments, 2);
        assert_eq!(target[0], 5.0);
        assert_eq!(target[1], 5.0);
    }

    #[test]
    fn deposit_accumulates_onto_existing_values() {
        for method in DepositMethod::GENERIC {
            let mut target = vec![10.0, 20.0];
            deposit_loop(&ExecPolicy::Par, method, 4, &mut target, |i, d| {
                d.add(i % 2, 1.0);
            });
            assert_eq!(target, vec![12.0, 22.0], "{method:?}");
        }
    }

    #[test]
    fn extreme_contention_single_slot() {
        // Everybody hits slot 0 — the exact pathology the paper
        // observed serialising AMD atomics.
        for method in [
            DepositMethod::Atomics,
            DepositMethod::UnsafeAtomics,
            DepositMethod::SegmentedReduction,
            DepositMethod::ScatterArrays,
        ] {
            let mut target = vec![0.0];
            deposit_loop(&ExecPolicy::Par, method, 100_000, &mut target, |_, d| {
                d.add(0, 1.0)
            });
            assert_eq!(target[0], 100_000.0, "{method:?}");
        }
    }

    #[test]
    fn empty_loop_is_noop() {
        for method in DepositMethod::GENERIC {
            let mut target = vec![1.0, 2.0];
            deposit_loop(&ExecPolicy::Par, method, 0, &mut target, |_, d| {
                d.add(0, 9.9)
            });
            assert_eq!(target, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn total_order_bits_orders_floats() {
        let xs = [-2.5, -0.0, 0.0, 1.0, 3.5];
        for w in xs.windows(2) {
            assert!(total_order_bits(w[0]) <= total_order_bits(w[1]), "{w:?}");
        }
    }

    /// A toy "mesh": 6 cells in a row, each touching its two endpoint
    /// "nodes" (7 nodes); adjacent cells conflict.
    fn row_mesh() -> Vec<[usize; 2]> {
        (0..6).map(|c| [c, c + 1]).collect()
    }

    #[test]
    fn greedy_coloring_is_valid_and_small() {
        let mesh = row_mesh();
        let (colors, n_colors) = greedy_color_cells(&mesh, 7);
        assert!(coloring_is_valid(&mesh, 7, &colors), "{colors:?}");
        // A path graph is 2-colorable under the shared-node relation.
        assert_eq!(n_colors, 2, "{colors:?}");
        // And the validity checker catches a bad coloring.
        let bad = vec![0u32; 6];
        assert!(!coloring_is_valid(&mesh, 7, &bad));
    }

    #[test]
    fn colored_deposit_matches_serial() {
        let mesh = row_mesh();
        let (colors, n_colors) = greedy_color_cells(&mesh, 7);
        // 3 particles per cell, sorted by construction.
        let cells: Vec<i32> = (0..6).flat_map(|c| [c, c, c]).collect();
        let kernel = |i: usize, dep: &mut Depositor| {
            let c = i / 3;
            dep.add(mesh[c][0], 1.0);
            dep.add(mesh[c][1], 0.5);
        };
        let mut reference = vec![0.0; 7];
        deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::Serial,
            cells.len(),
            &mut reference,
            kernel,
        );
        for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut got = vec![0.0; 7];
            deposit_loop_colored(&policy, &mut got, &cells, &colors, n_colors, kernel).unwrap();
            assert_eq!(got, reference, "{policy:?}");
        }
    }

    #[test]
    fn colored_deposit_rejects_unsorted_particles() {
        let mesh = row_mesh();
        let (colors, n_colors) = greedy_color_cells(&mesh, 7);
        let cells = vec![2i32, 0, 1]; // not sorted
        let mut buf = vec![0.0; 7];
        let err = deposit_loop_colored(
            &ExecPolicy::Seq,
            &mut buf,
            &cells,
            &colors,
            n_colors,
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.contains("sorted"));
    }

    #[test]
    fn colored_deposit_heavy_agrees_under_parallelism() {
        // Denser conflict structure: 50 cells, 4 shared nodes each.
        let mesh: Vec<[usize; 4]> = (0..50).map(|c| [c, c + 1, c + 2, c + 3]).collect();
        let (colors, n_colors) = greedy_color_cells(&mesh, 53);
        assert!(coloring_is_valid(&mesh, 53, &colors));
        let cells: Vec<i32> = (0..50).flat_map(|c| std::iter::repeat_n(c, 40)).collect();
        let kernel = |i: usize, dep: &mut Depositor| {
            let c = i / 40;
            for (k, &node) in mesh[c].iter().enumerate() {
                dep.add(node, 1.0 + k as f64);
            }
        };
        let mut reference = vec![0.0; 53];
        deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::Serial,
            cells.len(),
            &mut reference,
            kernel,
        );
        let mut got = vec![0.0; 53];
        deposit_loop_colored(
            &ExecPolicy::Par,
            &mut got,
            &cells,
            &colors,
            n_colors,
            kernel,
        )
        .unwrap();
        for (a, b) in got.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_match_paper_abbreviations() {
        assert_eq!(DepositMethod::Atomics.label(), "AT");
        assert_eq!(DepositMethod::UnsafeAtomics.label(), "UA");
        assert_eq!(DepositMethod::SegmentedReduction.label(), "SR");
        assert_eq!(DepositMethod::ScatterArrays.label(), "SA");
        assert_eq!(DepositMethod::SortedSegments.label(), "SS");
        assert_eq!(DepositMethod::Matrix.label(), "MX");
    }

    // ---- sorted segments -----------------------------------------------

    /// Cell-sorted synthetic population: `ppc(c)` particles per cell,
    /// returning (cell per particle, CSR offsets).
    fn sorted_population(n_cells: usize, ppc: impl Fn(usize) -> usize) -> (Vec<i32>, Vec<usize>) {
        let mut cells = Vec::new();
        let mut start = vec![0usize; n_cells + 1];
        for c in 0..n_cells {
            for _ in 0..ppc(c) {
                cells.push(c as i32);
            }
            start[c + 1] = cells.len();
        }
        (cells, start)
    }

    /// Pseudo-random but deterministic contribution of particle `p`
    /// through slot `s`.
    fn contribution(p: usize, s: usize) -> f64 {
        let h = (p as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(s as u64);
        0.1 + (h % 1000) as f64 * 1e-3
    }

    #[test]
    fn sorted_segments_bit_identical_to_serial_across_seeds() {
        // Duplicate targets within one cell (cell 2 lists node 3
        // twice) exercise the slots-within-particle fold order.
        let mesh: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 4],
            vec![3, 3, 5],
            vec![0, 5, 6],
            vec![2, 4, 6],
        ];
        let n_targets = 7;
        let inv = invert_cell_targets(&mesh, n_targets);
        for seed in 0..6usize {
            let (cells, start) = sorted_population(mesh.len(), |c| (c * 7 + seed * 3) % 23);
            let n = cells.len();
            // Serial reference through the generic scattering executor,
            // starting from nonzero values to check the fold base case.
            let init: Vec<f64> = (0..n_targets).map(|t| t as f64 * 0.5 - 1.0).collect();
            let mut reference = init.clone();
            deposit_loop(
                &ExecPolicy::Seq,
                DepositMethod::Serial,
                n,
                &mut reference,
                |p, dep| {
                    let c = cells[p] as usize;
                    for (s, &t) in mesh[c].iter().enumerate() {
                        dep.add(t, contribution(p, s));
                    }
                },
            );
            for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
                let mut got = init.clone();
                deposit_loop_sorted(&policy, &start, &inv, &mut got, contribution);
                assert_eq!(got, reference, "seed {seed} under {policy:?}");
            }
        }
    }

    #[test]
    fn sorted_segments_is_schedule_independent() {
        let mesh: Vec<[usize; 4]> = (0..64).map(|c| [c, c + 1, c + 2, c + 3]).collect();
        let inv = invert_cell_targets(&mesh, 67);
        let (_, start) = sorted_population(64, |c| 5 + c % 9);
        let runs: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                let mut t = vec![0.0; 67];
                deposit_loop_sorted(&ExecPolicy::Par, &start, &inv, &mut t, contribution);
                t
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
    }

    #[test]
    #[should_panic(expected = "deposit_loop_sorted")]
    fn generic_executor_rejects_sorted_segments() {
        let mut target = vec![0.0; 4];
        deposit_loop(
            &ExecPolicy::Par,
            DepositMethod::SortedSegments,
            10,
            &mut target,
            |_, d| d.add(0, 1.0),
        );
    }

    // ---- matrixized tiles ----------------------------------------------

    #[test]
    fn matrix_exact_bit_identical_to_serial_across_seeds() {
        // Same degenerate mesh as the sorted-segments test: cell 2
        // reaches node 3 through two slots, forcing the degenerate-cell
        // fallbacks of both schedules (the cell-major serial replay on
        // one worker, the exact mode's scalar multi-slot replay on the
        // target-major parallel path).
        let mesh: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 4],
            vec![3, 3, 5],
            vec![0, 5, 6],
            vec![2, 4, 6],
        ];
        let n_targets = 7;
        let inv = invert_cell_targets(&mesh, n_targets);
        for seed in 0..6usize {
            // Segment lengths straddle the tile width to exercise
            // full tiles, tail tiles, and empty cells.
            let (cells, start) = sorted_population(mesh.len(), |c| (c * 13 + seed * 5) % 29);
            let n = cells.len();
            let init: Vec<f64> = (0..n_targets).map(|t| t as f64 * 0.5 - 1.0).collect();
            let mut reference = init.clone();
            deposit_loop(
                &ExecPolicy::Seq,
                DepositMethod::Serial,
                n,
                &mut reference,
                |p, dep| {
                    let c = cells[p] as usize;
                    for (s, &t) in mesh[c].iter().enumerate() {
                        dep.add(t, contribution(p, s));
                    }
                },
            );
            for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
                let mut got = init.clone();
                deposit_loop_matrix(
                    &policy,
                    &start,
                    &inv,
                    &mut got,
                    MatAccumulate::Exact,
                    contribution,
                );
                assert_eq!(got, reference, "seed {seed} under {policy:?}");

                // Fast mode reassociates the sum (lane tree) but must
                // agree to rounding and stay deterministic.
                let mut fast = init.clone();
                deposit_loop_matrix(
                    &policy,
                    &start,
                    &inv,
                    &mut fast,
                    MatAccumulate::Fast,
                    contribution,
                );
                for (t, (a, b)) in fast.iter().zip(&reference).enumerate() {
                    let tol = 1e-12 * b.abs().max(1.0);
                    assert!(
                        (a - b).abs() <= tol,
                        "seed {seed} target {t} under {policy:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_fast_is_schedule_independent() {
        let mesh: Vec<[usize; 4]> = (0..64).map(|c| [c, c + 1, c + 2, c + 3]).collect();
        let inv = invert_cell_targets(&mesh, 67);
        let (cells, start) = sorted_population(64, |c| 3 + c % 21);

        // Single-worker policies take the cell-major streaming
        // schedule, where Fast is bit-identical to Serial itself.
        let mut serial = vec![0.0; 67];
        deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::Serial,
            cells.len(),
            &mut serial,
            |p, dep| {
                let c = cells[p] as usize;
                for (s, &t) in mesh[c].iter().enumerate() {
                    dep.add(t, contribution(p, s));
                }
            },
        );
        let mut seq = vec![0.0; 67];
        deposit_loop_matrix(
            &ExecPolicy::Seq,
            &start,
            &inv,
            &mut seq,
            MatAccumulate::Fast,
            contribution,
        );
        assert_eq!(seq, serial, "single-worker Fast must match Serial bits");

        // Parallel policies use the target-major lane tree, which is
        // fixed per target: bitwise deterministic across repeated runs
        // and across worker counts.
        let reference = {
            let mut t = vec![0.0; 67];
            deposit_loop_matrix(
                &ExecPolicy::pool(2),
                &start,
                &inv,
                &mut t,
                MatAccumulate::Fast,
                contribution,
            );
            t
        };
        for _ in 0..3 {
            let mut t = vec![0.0; 67];
            deposit_loop_matrix(
                &ExecPolicy::Par,
                &start,
                &inv,
                &mut t,
                MatAccumulate::Fast,
                contribution,
            );
            assert_eq!(t, reference);
        }
    }

    #[test]
    fn mat_tile_masks_the_tail_lanes() {
        let tile = MatTile::pack(10, 13, |p| p as f64);
        assert_eq!(tile.len(), 3);
        assert_eq!(tile.lanes()[..3], [10.0, 11.0, 12.0]);
        assert_eq!(tile.lanes()[3..], [0.0; 5]);
        // Exact fold only touches live lanes; Fast adds the zeros.
        assert_eq!(tile.fold_exact(1.0), 34.0);
        let mut acc = [1.0; MAT_TILE_WIDTH];
        tile.accumulate(&mut acc);
        assert_eq!(MatTile::reduce(&acc), 33.0 + MAT_TILE_WIDTH as f64);
    }

    #[test]
    #[should_panic(expected = "deposit_loop_matrix")]
    fn generic_executor_rejects_matrix() {
        let mut target = vec![0.0; 4];
        deposit_loop(
            &ExecPolicy::Par,
            DepositMethod::Matrix,
            10,
            &mut target,
            |_, d| d.add(0, 1.0),
        );
    }

    #[test]
    fn gather_matrix_bit_identical_to_per_particle_loop() {
        let mesh: Vec<[usize; 4]> = (0..40).map(|c| [c, c + 1, c + 2, c + 3]).collect();
        let source: Vec<f64> = (0..43).map(|t| (t as f64 * 0.37).sin()).collect();
        let (cells, start) = sorted_population(40, |c| (c * 11) % 19);
        let shape = |p: usize, k: usize| contribution(p, k) - 0.5;
        // Per-particle reference: slots ascending, one dot per particle.
        let reference: Vec<f64> = cells
            .iter()
            .enumerate()
            .map(|(p, &c)| {
                let mut dot = 0.0;
                for (k, &t) in mesh[c as usize].iter().enumerate() {
                    dot += shape(p, k) * source[t];
                }
                dot
            })
            .collect();
        for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut got = vec![0.0; cells.len()];
            gather_loop_matrix(
                &policy,
                &start,
                4,
                |c, k| mesh[c][k],
                &source,
                &mut got,
                shape,
            );
            assert_eq!(got, reference, "{policy:?}");
        }
    }

    #[test]
    fn target_inverse_covers_the_relation() {
        let mesh: Vec<Vec<usize>> = vec![vec![0, 2], vec![2, 1], vec![1, 0]];
        let inv = invert_cell_targets(&mesh, 3);
        assert_eq!(inv.n_targets(), 3);
        assert_eq!(inv.entries_of(0), &[(0, 0), (2, 1)]);
        assert_eq!(inv.entries_of(1), &[(1, 1), (2, 0)]);
        assert_eq!(inv.entries_of(2), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn auto_tuner_heuristics() {
        let mut tuner = AutoTuner::new();
        let base = TunerInput {
            n_particles: 64_000,
            n_cells: 500,
            n_targets: 700,
            dirty_fraction: 0.0,
            index_fresh: true,
            threads: 8,
        };
        // Fresh index, dense (128 ppc ≥ MX_MIN_PPC): matrix tiles
        // without a sort.
        let d = tuner.choose(base);
        assert_eq!(d.method, DepositMethod::Matrix);
        assert!(!d.sort_first);

        // Fresh index, moderately dense (32 ppc — between SS_MIN_PPC
        // and MX_MIN_PPC): sorted segments, segments too short to fill
        // tiles.
        let d = tuner.choose(TunerInput {
            n_particles: 16_000,
            ..base
        });
        assert_eq!(d.method, DepositMethod::SortedSegments);
        assert!(!d.sort_first);

        // Stale but nearly sorted, dense: sort first, then matrix.
        let d = tuner.choose(TunerInput {
            index_fresh: false,
            dirty_fraction: 0.05,
            ..base
        });
        assert_eq!(d.method, DepositMethod::Matrix);
        assert!(d.sort_first);

        // Stale but nearly sorted, moderately dense: sort first, then
        // sorted segments.
        let d = tuner.choose(TunerInput {
            n_particles: 16_000,
            index_fresh: false,
            dirty_fraction: 0.05,
            ..base
        });
        assert_eq!(d.method, DepositMethod::SortedSegments);
        assert!(d.sort_first);

        // Too stale to re-sort per loop, small target: scatter arrays.
        let d = tuner.choose(TunerInput {
            index_fresh: false,
            dirty_fraction: 0.9,
            ..base
        });
        assert_eq!(d.method, DepositMethod::ScatterArrays);

        // Sparse population, huge target: atomics.
        let d = tuner.choose(TunerInput {
            n_particles: 4_000,
            n_cells: 4_000,
            n_targets: 60_000_000,
            dirty_fraction: 0.9,
            index_fresh: false,
            threads: 8,
        });
        assert_eq!(d.method, DepositMethod::Atomics);

        // One thread over a fresh dense index: the matrix fold is the
        // only strategy that beats the serial reference there.
        let d = tuner.choose(TunerInput { threads: 1, ..base });
        assert_eq!(d.method, DepositMethod::Matrix);
        assert!(!d.sort_first);

        // One thread, fresh index, short segments (8 ppc): the
        // cell-major streaming schedule already pays at one tile per
        // segment (MX_SEQ_MIN_PPC), well below the parallel threshold.
        let d = tuner.choose(TunerInput {
            n_particles: 4_000,
            threads: 1,
            ..base
        });
        assert_eq!(d.method, DepositMethod::Matrix);
        assert!(!d.sort_first);

        // One thread, fresh index, sub-tile segments: serial.
        let d = tuner.choose(TunerInput {
            n_particles: 2_000,
            threads: 1,
            ..base
        });
        assert_eq!(d.method, DepositMethod::Serial);

        // One thread, stale index: serial — a sort never pays off
        // within the loop.
        let d = tuner.choose(TunerInput {
            threads: 1,
            index_fresh: false,
            dirty_fraction: 0.05,
            ..base
        });
        assert_eq!(d.method, DepositMethod::Serial);

        assert_eq!(tuner.decisions().len(), 10);
        assert_eq!(tuner.last().unwrap().method, DepositMethod::Serial);
        assert!(!tuner.last().unwrap().reason.is_empty());
    }
}
