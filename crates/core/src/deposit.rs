//! Indirect-increment executors — the race-handling strategies of
//! Section 3.3 of the paper.
//!
//! A loop over particles that increments mesh data through the
//! particle→cell (and possibly cell→node) maps is the key bottleneck of
//! PIC: many particles hit the same mesh element concurrently. The
//! paper implements, per platform:
//!
//! * **scatter arrays** (CPU/OpenMP, Figure 2(b)) — one private array
//!   per thread, reduced element-wise at loop end;
//! * **atomics** (GPU) — hardware f64 atomic adds (CAS-loop here);
//! * **segmented reduction** (GPU, Figure 3) — store `(key, value)`
//!   pairs, sort by key, reduce by key, scatter.
//!
//! All strategies are exposed through one executor, [`deposit_loop`];
//! the kernel receives a [`Depositor`] and calls
//! [`Depositor::add`] for each contribution. Every strategy computes
//! the same sums (up to floating-point associativity; segmented
//! reduction is made *deterministic* by totally ordering equal keys by
//! value bits before reducing).

use crate::parloop::ExecPolicy;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Race-handling strategy for indirect increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepositMethod {
    /// Reference single-threaded accumulation.
    Serial,
    /// Per-thread private arrays + element-wise reduction (the paper's
    /// CPU/OpenMP choice).
    ScatterArrays,
    /// CAS-loop f64 atomic adds with sequentially consistent success
    /// ordering (the paper's "safe atomics", AT).
    Atomics,
    /// CAS-loop f64 atomic adds with relaxed ordering — the paper's
    /// "unsafe atomics" (UA) are a weaker-guarantee RMW path on AMD
    /// hardware; relaxed ordering is the closest well-defined analogue.
    UnsafeAtomics,
    /// store(key,value) → sort_by_key → reduce_by_key (the paper's SR,
    /// Figure 3).
    SegmentedReduction,
}

impl DepositMethod {
    pub const ALL: [DepositMethod; 5] = [
        DepositMethod::Serial,
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::UnsafeAtomics,
        DepositMethod::SegmentedReduction,
    ];

    /// Does this method execute race-free *while honouring* a policy
    /// with the given parallelism? Every method is safe in the
    /// data-race sense — `Serial` under a parallel policy returns
    /// `false` because it silently falls back to sequential execution,
    /// which the analyzer surfaces as a plan-incoherence warning.
    pub fn is_race_safe(self, parallel: bool) -> bool {
        !parallel || !matches!(self, DepositMethod::Serial)
    }

    /// Short label used by the benchmark tables (matches the paper's
    /// AT/UA/SR abbreviations).
    pub fn label(self) -> &'static str {
        match self {
            DepositMethod::Serial => "SEQ",
            DepositMethod::ScatterArrays => "SA",
            DepositMethod::Atomics => "AT",
            DepositMethod::UnsafeAtomics => "UA",
            DepositMethod::SegmentedReduction => "SR",
        }
    }
}

/// Handle through which a kernel emits `target[index] += value`
/// contributions. The variant is chosen by the executor; kernels are
/// strategy-agnostic (the separation of concerns the DSL promises).
pub enum Depositor<'a> {
    Exclusive(&'a mut [f64]),
    Local(&'a mut [f64]),
    Atomic {
        slots: &'a [AtomicU64],
        ordering: Ordering,
    },
    Pairs(&'a mut Vec<(u32, f64)>),
}

impl<'a> Depositor<'a> {
    /// Accumulate `value` into flat index `idx` of the target dat.
    #[inline]
    pub fn add(&mut self, idx: usize, value: f64) {
        match self {
            Depositor::Exclusive(t) | Depositor::Local(t) => t[idx] += value,
            Depositor::Atomic { slots, ordering } => atomic_add_f64(&slots[idx], value, *ordering),
            Depositor::Pairs(buf) => buf.push((idx as u32, value)),
        }
    }
}

/// f64 atomic add via compare-exchange on the bit pattern. `ordering`
/// applies to the successful exchange; failures reload relaxed.
#[inline]
fn atomic_add_f64(slot: &AtomicU64, value: f64, ordering: Ordering) {
    let mut current = slot.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(current) + value;
        match slot.compare_exchange_weak(current, new.to_bits(), ordering, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Reinterpret an exclusively borrowed `&mut [f64]` as atomic slots.
/// Sound: we hold the unique borrow for the whole loop, `f64` and
/// `AtomicU64` have identical size and alignment, and every bit
/// pattern is valid for both.
fn as_atomic_slots(data: &mut [f64]) -> &[AtomicU64] {
    const _: () = assert!(std::mem::size_of::<f64>() == std::mem::size_of::<AtomicU64>());
    const _: () = assert!(std::mem::align_of::<f64>() == std::mem::align_of::<AtomicU64>());
    // The pointer must come from `as_mut_ptr` so the shared atomic view
    // retains write provenance over the exclusive borrow.
    unsafe { std::slice::from_raw_parts(data.as_mut_ptr() as *const AtomicU64, data.len()) }
}

/// Statistics from one deposit loop (fed to the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DepositStats {
    /// Number of `(key, value)` pairs staged (segmented reduction only).
    pub pairs_staged: usize,
    /// Distinct target indices touched (segmented reduction only).
    pub segments: usize,
}

/// Run an indirect-increment loop over `n` iterations, accumulating
/// into `target` (a flat `len*dim` f64 buffer) with the chosen
/// strategy. The kernel is invoked once per iteration index.
///
/// ```
/// use oppic_core::{deposit_loop, DepositMethod, ExecPolicy};
/// // 1000 "particles", each adding 1.0 to one of 4 "nodes":
/// let mut node_charge = vec![0.0; 4];
/// deposit_loop(
///     &ExecPolicy::Par,
///     DepositMethod::ScatterArrays,
///     1000,
///     &mut node_charge,
///     |i, dep| dep.add(i % 4, 1.0),
/// );
/// assert_eq!(node_charge, vec![250.0; 4]);
/// ```
pub fn deposit_loop<F>(
    policy: &ExecPolicy,
    method: DepositMethod,
    n: usize,
    target: &mut [f64],
    kernel: F,
) -> DepositStats
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    match method {
        DepositMethod::Serial => {
            let mut dep = Depositor::Exclusive(target);
            for i in 0..n {
                kernel(i, &mut dep);
            }
            DepositStats::default()
        }
        DepositMethod::ScatterArrays => {
            policy.run(|| scatter_arrays(policy, n, target, &kernel));
            DepositStats::default()
        }
        DepositMethod::Atomics | DepositMethod::UnsafeAtomics => {
            let ordering = if method == DepositMethod::Atomics {
                Ordering::SeqCst
            } else {
                Ordering::Relaxed
            };
            let slots = as_atomic_slots(target);
            policy.run(|| {
                if policy.is_parallel() {
                    (0..n).into_par_iter().for_each(|i| {
                        let mut dep = Depositor::Atomic { slots, ordering };
                        kernel(i, &mut dep);
                    });
                } else {
                    let mut dep = Depositor::Atomic { slots, ordering };
                    for i in 0..n {
                        kernel(i, &mut dep);
                    }
                }
            });
            DepositStats::default()
        }
        DepositMethod::SegmentedReduction => {
            policy.run(|| segmented_reduction(policy, n, target, &kernel))
        }
    }
}

/// Figure 2(b): per-thread private arrays, then an element-wise
/// parallel reduction over the target.
fn scatter_arrays<F>(policy: &ExecPolicy, n: usize, target: &mut [f64], kernel: &F)
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    let t = policy.threads().max(1);
    if t == 1 || n == 0 {
        let mut dep = Depositor::Exclusive(target);
        for i in 0..n {
            kernel(i, &mut dep);
        }
        return;
    }
    let chunk = n.div_ceil(t);
    let len = target.len();
    let locals: Vec<Vec<f64>> = (0..t)
        .into_par_iter()
        .map(|ti| {
            let mut local = vec![0.0; len];
            let lo = ti * chunk;
            let hi = ((ti + 1) * chunk).min(n);
            let mut dep = Depositor::Local(&mut local);
            for i in lo..hi {
                kernel(i, &mut dep);
            }
            local
        })
        .collect();
    // "Finally, the array entries can be reduced to get the total
    // contribution to that node."
    target.par_iter_mut().enumerate().for_each(|(j, tj)| {
        let mut acc = *tj;
        for l in &locals {
            acc += l[j];
        }
        *tj = acc;
    });
}

/// Figure 3: store values and keys → sort by key → reduce by key.
/// Pairs with equal keys are additionally ordered by value bits so the
/// reduction order — and therefore the floating-point result — is
/// deterministic regardless of thread schedule.
fn segmented_reduction<F>(
    policy: &ExecPolicy,
    n: usize,
    target: &mut [f64],
    kernel: &F,
) -> DepositStats
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    // Step 1: store_values_and_keys.
    let mut pairs: Vec<(u32, f64)> = if policy.is_parallel() {
        (0..n)
            .into_par_iter()
            .fold(Vec::new, |mut buf, i| {
                let mut dep = Depositor::Pairs(&mut buf);
                kernel(i, &mut dep);
                buf
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    } else {
        let mut buf = Vec::new();
        let mut dep = Depositor::Pairs(&mut buf);
        for i in 0..n {
            kernel(i, &mut dep);
        }
        buf
    };

    let staged = pairs.len();

    // Step 2: sort_by_key (key, then value bits for determinism).
    pairs.par_sort_unstable_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| total_order_bits(a.1).cmp(&total_order_bits(b.1)))
    });

    // Step 3: reduce_by_key + scatter.
    let mut segments = 0usize;
    let mut k = 0;
    while k < pairs.len() {
        let key = pairs[k].0;
        let mut acc = 0.0;
        while k < pairs.len() && pairs[k].0 == key {
            acc += pairs[k].1;
            k += 1;
        }
        target[key as usize] += acc;
        segments += 1;
    }

    DepositStats {
        pairs_staged: staged,
        segments,
    }
}

/// Map an `f64` to a totally ordered integer (IEEE-754 total order
/// trick): flips the sign bit for positives and all bits for negatives.
#[inline]
fn total_order_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

// ---------------------------------------------------------------------
// Coloring — the paper's third CPU option (Section 3.3): "Coloring is
// another option on CPUs, but require particle arrays to be kept
// sorted, introducing an overhead."
// ---------------------------------------------------------------------

/// Greedy distance-2 coloring of cells over a shared-target relation:
/// two cells get different colors whenever they touch a common target
/// (e.g. share a node through the cells→nodes map). Cells of one color
/// can then deposit concurrently without synchronisation.
///
/// Returns `(color per cell, number of colors)`.
pub fn greedy_color_cells<C: AsRef<[usize]>>(
    cell_targets: &[C],
    n_targets: usize,
) -> (Vec<u32>, usize) {
    // target -> cells touching it.
    let mut t2c: Vec<Vec<u32>> = vec![Vec::new(); n_targets];
    for (c, ts) in cell_targets.iter().enumerate() {
        for &t in ts.as_ref() {
            t2c[t].push(c as u32);
        }
    }
    let n_cells = cell_targets.len();
    let mut color = vec![u32::MAX; n_cells];
    let mut used: Vec<bool> = Vec::new();
    let mut max_color = 0u32;
    for c in 0..n_cells {
        used.clear();
        used.resize(max_color as usize + 2, false);
        for &t in cell_targets[c].as_ref() {
            for &other in &t2c[t] {
                let oc = color[other as usize];
                if oc != u32::MAX {
                    if oc as usize >= used.len() {
                        used.resize(oc as usize + 1, false);
                    }
                    used[oc as usize] = true;
                }
            }
        }
        let chosen = used.iter().position(|&u| !u).unwrap_or(used.len()) as u32;
        color[c] = chosen;
        max_color = max_color.max(chosen);
    }
    (color, max_color as usize + 1)
}

/// Check that a coloring is valid for a shared-target relation: no two
/// cells with the same color touch a common target.
pub fn coloring_is_valid<C: AsRef<[usize]>>(
    cell_targets: &[C],
    n_targets: usize,
    colors: &[u32],
) -> bool {
    let mut owner: Vec<std::collections::HashMap<u32, u32>> = vec![Default::default(); n_targets];
    for (c, ts) in cell_targets.iter().enumerate() {
        for &t in ts.as_ref() {
            if let Some(&other) = owner[t].get(&colors[c]) {
                if other as usize != c {
                    return false;
                }
            }
            owner[t].insert(colors[c], c as u32);
        }
    }
    true
}

/// Colored deposit over particles **sorted by cell**: colors execute
/// sequentially; within a color, cells run in parallel and their
/// particles deposit without any race handling (the coloring guarantees
/// disjoint targets). Returns an error when the particle array is not
/// cell-sorted — the invariant the paper calls the method's overhead.
///
/// Contract: the kernel for particle `i` must only emit indices that
/// belong to the target list of `particle_cells[i]`'s cell under the
/// relation the coloring was built from (e.g. the cell's nodes) —
/// that is what makes same-color cells race-free.
pub fn deposit_loop_colored<F>(
    policy: &ExecPolicy,
    target: &mut [f64],
    particle_cells: &[i32],
    cell_colors: &[u32],
    n_colors: usize,
    kernel: F,
) -> Result<(), String>
where
    F: Fn(usize, &mut Depositor) + Sync,
{
    if particle_cells.windows(2).any(|w| w[0] > w[1]) {
        return Err("coloring deposit requires particles sorted by cell".into());
    }
    // Per-cell contiguous particle ranges.
    let mut ranges: Vec<(usize, usize, usize)> = Vec::new(); // (cell, lo, hi)
    let mut i = 0;
    while i < particle_cells.len() {
        let c = particle_cells[i];
        let lo = i;
        while i < particle_cells.len() && particle_cells[i] == c {
            i += 1;
        }
        ranges.push((c as usize, lo, i));
    }

    // The coloring guarantees same-color cells touch disjoint targets,
    // so uncontended atomic adds never retry; the atomic view is just
    // the safe way to hand the buffer to concurrent tasks.
    let slots = as_atomic_slots(target);
    for color in 0..n_colors as u32 {
        let work: Vec<&(usize, usize, usize)> = ranges
            .iter()
            .filter(|(c, _, _)| cell_colors[*c] == color)
            .collect();
        policy.run(|| {
            if policy.is_parallel() {
                work.par_iter().for_each(|&&(_, lo, hi)| {
                    let mut dep = Depositor::Atomic {
                        slots,
                        ordering: Ordering::Relaxed,
                    };
                    for p in lo..hi {
                        kernel(p, &mut dep);
                    }
                });
            } else {
                let mut dep = Depositor::Atomic {
                    slots,
                    ordering: Ordering::Relaxed,
                };
                for &&(_, lo, hi) in &work {
                    for p in lo..hi {
                        kernel(p, &mut dep);
                    }
                }
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic charge-deposit workload: `n` particles, each adding
    /// to 4 "nodes" chosen by a hash, mimicking the cell→node scatter.
    fn run_method(method: DepositMethod, policy: &ExecPolicy, n: usize, len: usize) -> Vec<f64> {
        let mut target = vec![0.0; len];
        deposit_loop(policy, method, n, &mut target, |i, dep| {
            for k in 0..4usize {
                let idx = (i.wrapping_mul(2654435761).wrapping_add(k * 97)) % len;
                dep.add(idx, 1.0 + (i % 7) as f64 * 0.25);
            }
        });
        target
    }

    #[test]
    fn all_methods_agree_with_serial() {
        let n = 5000;
        let len = 64; // small target => heavy contention
        let reference = run_method(DepositMethod::Serial, &ExecPolicy::Seq, n, len);
        let total: f64 = reference.iter().sum();
        for method in DepositMethod::ALL {
            for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
                let got = run_method(method, &policy, n, len);
                let got_total: f64 = got.iter().sum();
                assert!(
                    (got_total - total).abs() < 1e-9 * total,
                    "{method:?}/{policy:?} total {got_total} vs {total}"
                );
                for (j, (a, b)) in got.iter().zip(&reference).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9 * b.abs().max(1.0),
                        "{method:?}/{policy:?} slot {j}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn segmented_reduction_is_deterministic() {
        // Same workload, several runs under full parallelism: the f64
        // results must be bit-identical thanks to the total ordering of
        // values within a key segment.
        let runs: Vec<Vec<f64>> = (0..5)
            .map(|_| {
                run_method(
                    DepositMethod::SegmentedReduction,
                    &ExecPolicy::Par,
                    20_000,
                    16,
                )
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0], "SR must be schedule-independent");
        }
    }

    #[test]
    fn segmented_reduction_stats() {
        let mut target = vec![0.0; 8];
        let st = deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::SegmentedReduction,
            10,
            &mut target,
            |i, d| {
                d.add(i % 2, 1.0);
            },
        );
        assert_eq!(st.pairs_staged, 10);
        assert_eq!(st.segments, 2);
        assert_eq!(target[0], 5.0);
        assert_eq!(target[1], 5.0);
    }

    #[test]
    fn deposit_accumulates_onto_existing_values() {
        for method in DepositMethod::ALL {
            let mut target = vec![10.0, 20.0];
            deposit_loop(&ExecPolicy::Par, method, 4, &mut target, |i, d| {
                d.add(i % 2, 1.0);
            });
            assert_eq!(target, vec![12.0, 22.0], "{method:?}");
        }
    }

    #[test]
    fn extreme_contention_single_slot() {
        // Everybody hits slot 0 — the exact pathology the paper
        // observed serialising AMD atomics.
        for method in [
            DepositMethod::Atomics,
            DepositMethod::UnsafeAtomics,
            DepositMethod::SegmentedReduction,
            DepositMethod::ScatterArrays,
        ] {
            let mut target = vec![0.0];
            deposit_loop(&ExecPolicy::Par, method, 100_000, &mut target, |_, d| {
                d.add(0, 1.0)
            });
            assert_eq!(target[0], 100_000.0, "{method:?}");
        }
    }

    #[test]
    fn empty_loop_is_noop() {
        for method in DepositMethod::ALL {
            let mut target = vec![1.0, 2.0];
            deposit_loop(&ExecPolicy::Par, method, 0, &mut target, |_, d| {
                d.add(0, 9.9)
            });
            assert_eq!(target, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn total_order_bits_orders_floats() {
        let xs = [-2.5, -0.0, 0.0, 1.0, 3.5];
        for w in xs.windows(2) {
            assert!(total_order_bits(w[0]) <= total_order_bits(w[1]), "{w:?}");
        }
    }

    /// A toy "mesh": 6 cells in a row, each touching its two endpoint
    /// "nodes" (7 nodes); adjacent cells conflict.
    fn row_mesh() -> Vec<[usize; 2]> {
        (0..6).map(|c| [c, c + 1]).collect()
    }

    #[test]
    fn greedy_coloring_is_valid_and_small() {
        let mesh = row_mesh();
        let (colors, n_colors) = greedy_color_cells(&mesh, 7);
        assert!(coloring_is_valid(&mesh, 7, &colors), "{colors:?}");
        // A path graph is 2-colorable under the shared-node relation.
        assert_eq!(n_colors, 2, "{colors:?}");
        // And the validity checker catches a bad coloring.
        let bad = vec![0u32; 6];
        assert!(!coloring_is_valid(&mesh, 7, &bad));
    }

    #[test]
    fn colored_deposit_matches_serial() {
        let mesh = row_mesh();
        let (colors, n_colors) = greedy_color_cells(&mesh, 7);
        // 3 particles per cell, sorted by construction.
        let cells: Vec<i32> = (0..6).flat_map(|c| [c, c, c]).collect();
        let kernel = |i: usize, dep: &mut Depositor| {
            let c = i / 3;
            dep.add(mesh[c][0], 1.0);
            dep.add(mesh[c][1], 0.5);
        };
        let mut reference = vec![0.0; 7];
        deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::Serial,
            cells.len(),
            &mut reference,
            kernel,
        );
        for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut got = vec![0.0; 7];
            deposit_loop_colored(&policy, &mut got, &cells, &colors, n_colors, kernel).unwrap();
            assert_eq!(got, reference, "{policy:?}");
        }
    }

    #[test]
    fn colored_deposit_rejects_unsorted_particles() {
        let mesh = row_mesh();
        let (colors, n_colors) = greedy_color_cells(&mesh, 7);
        let cells = vec![2i32, 0, 1]; // not sorted
        let mut buf = vec![0.0; 7];
        let err = deposit_loop_colored(
            &ExecPolicy::Seq,
            &mut buf,
            &cells,
            &colors,
            n_colors,
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.contains("sorted"));
    }

    #[test]
    fn colored_deposit_heavy_agrees_under_parallelism() {
        // Denser conflict structure: 50 cells, 4 shared nodes each.
        let mesh: Vec<[usize; 4]> = (0..50).map(|c| [c, c + 1, c + 2, c + 3]).collect();
        let (colors, n_colors) = greedy_color_cells(&mesh, 53);
        assert!(coloring_is_valid(&mesh, 53, &colors));
        let cells: Vec<i32> = (0..50).flat_map(|c| std::iter::repeat_n(c, 40)).collect();
        let kernel = |i: usize, dep: &mut Depositor| {
            let c = i / 40;
            for (k, &node) in mesh[c].iter().enumerate() {
                dep.add(node, 1.0 + k as f64);
            }
        };
        let mut reference = vec![0.0; 53];
        deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::Serial,
            cells.len(),
            &mut reference,
            kernel,
        );
        let mut got = vec![0.0; 53];
        deposit_loop_colored(
            &ExecPolicy::Par,
            &mut got,
            &cells,
            &colors,
            n_colors,
            kernel,
        )
        .unwrap();
        for (a, b) in got.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_match_paper_abbreviations() {
        assert_eq!(DepositMethod::Atomics.label(), "AT");
        assert_eq!(DepositMethod::UnsafeAtomics.label(), "UA");
        assert_eq!(DepositMethod::SegmentedReduction.label(), "SR");
        assert_eq!(DepositMethod::ScatterArrays.label(), "SA");
    }
}
