//! `Dat` — data declared on a mesh set (the `opp_decl_dat` of the
//! paper, Figure 4 lines 20–30).
//!
//! A `Dat` is a flat `Vec<f64>` of `len * dim` values; element `i`
//! owns the contiguous slice `[i*dim, (i+1)*dim)`. Mesh dats are
//! owned by the application (the "science source"); particle dats live
//! inside [`crate::particles::ParticleDats`] because the particle-move
//! machinery must relocate *all* particle columns together.

/// Data on a mesh set: `len` elements × `dim` components.
///
/// ```
/// use oppic_core::Dat;
/// let mut ef = Dat::zeros("electric field", 100, 3);
/// ef.el_mut(7)[0] = 1.5;
/// assert_eq!(ef.el(7), &[1.5, 0.0, 0.0]);
/// assert_eq!(ef.len(), 100);
/// assert_eq!(ef.dim(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dat {
    name: String,
    dim: usize,
    data: Vec<f64>,
}

impl Dat {
    /// A zero-initialised dat.
    pub fn zeros(name: impl Into<String>, len: usize, dim: usize) -> Self {
        assert!(dim > 0, "dat dimension must be positive");
        Dat {
            name: name.into(),
            dim,
            data: vec![0.0; len * dim],
        }
    }

    /// Wrap existing raw data (must be `len * dim` long).
    pub fn from_vec(name: impl Into<String>, dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dat dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        Dat {
            name: name.into(),
            dim,
            data,
        }
    }

    /// Build per-element from a function.
    pub fn from_fn(
        name: impl Into<String>,
        len: usize,
        dim: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(len * dim);
        for i in 0..len {
            for d in 0..dim {
                data.push(f(i, d));
            }
        }
        Dat::from_vec(name, dim, data)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of set elements.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element `i` as a slice of `dim` components.
    #[inline]
    pub fn el(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    #[inline]
    pub fn el_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Scalar accessor for `dim == 1` dats.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        debug_assert_eq!(self.dim, 1, "Dat::get is for dim-1 dats");
        self.data[i]
    }

    /// The whole flat buffer.
    #[inline]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Set every value to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Total bytes held (roofline accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Sum of all components — handy for conservation checks.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Resize to a new element count, zero-filling growth.
    pub fn resize(&mut self, len: usize) {
        self.data.resize(len * self.dim, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let d = Dat::zeros("ef", 10, 3);
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.name(), "ef");
        assert_eq!(d.el(4), &[0.0, 0.0, 0.0]);
        assert_eq!(d.bytes(), 240);
        assert!(!d.is_empty());
    }

    #[test]
    fn from_vec_checks_shape() {
        let d = Dat::from_vec("x", 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.el(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_vec_rejects_ragged() {
        let _ = Dat::from_vec("x", 3, vec![1.0, 2.0]);
    }

    #[test]
    fn from_fn_orders_components() {
        let d = Dat::from_fn("x", 3, 2, |i, c| (i * 10 + c) as f64);
        assert_eq!(d.el(0), &[0.0, 1.0]);
        assert_eq!(d.el(2), &[20.0, 21.0]);
    }

    #[test]
    fn mutation_and_sum() {
        let mut d = Dat::zeros("q", 4, 1);
        d.el_mut(2)[0] = 2.5;
        d.el_mut(0)[0] = 1.0;
        assert_eq!(d.get(2), 2.5);
        assert!((d.sum() - 3.5).abs() < 1e-15);
        d.fill(1.0);
        assert_eq!(d.sum(), 4.0);
    }

    #[test]
    fn resize_zero_fills() {
        let mut d = Dat::from_vec("x", 2, vec![1.0, 2.0]);
        d.resize(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.el(0), &[1.0, 2.0]);
        assert_eq!(d.el(2), &[0.0, 0.0]);
        d.resize(1);
        assert_eq!(d.len(), 1);
    }
}
