//! Whole-step schedule traces — the recording half of the dataflow
//! analyzer.
//!
//! PR 1's [`crate::plan::PlanRegistry`] validates each loop in
//! isolation; the hazards *between* loops (a deposit whose halo is
//! consumed before the exchange, a redundant exchange, an illegal
//! fusion) need the actual *sequence* of loops, halo exchanges, and
//! global reductions a step executes. A [`ScheduleRecorder`] captures
//! that sequence cheaply (one `Option` check when disabled, one
//! mutex-guarded push when enabled) from the executing stages and the
//! tagged exchange wrappers in `oppic-mpi`; the recording plus the
//! static loop declarations is packaged as a [`ScheduleTrace`], the
//! self-contained JSON artifact `oppic-analyzer --audit-schedule`
//! consumes.

use crate::access::{Access, ArgDecl, Indirection, LoopDecl};
use crate::json::{self, Json};
use crate::plan::PlanRegistry;
use std::sync::{Arc, Mutex};

/// Trace format identifier; bumped on any incompatible change.
pub const SCHEDULE_SCHEMA: &str = "oppic-schedule-v1";

/// Which way an exchange moves data (the comm vocabulary of the
/// dependence analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeDir {
    /// Owners push fresh values into neighbour ghosts (read halo).
    Forward,
    /// Ghost-side increments travel back and fold into the owner.
    ReverseAdd,
    /// Global sum of a replicated dat — the small-mesh stand-in for a
    /// halo exchange (DESIGN.md §7) and the paper's global reductions.
    ReduceSum,
    /// Particle migration: strays are shipped to their owner rank and
    /// the local store is hole-filled.
    Migrate,
}

impl ExchangeDir {
    pub fn label(self) -> &'static str {
        match self {
            ExchangeDir::Forward => "forward",
            ExchangeDir::ReverseAdd => "reverse_add",
            ExchangeDir::ReduceSum => "reduce_sum",
            ExchangeDir::Migrate => "migrate",
        }
    }

    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "forward" => ExchangeDir::Forward,
            "reverse_add" => ExchangeDir::ReverseAdd,
            "reduce_sum" => ExchangeDir::ReduceSum,
            "migrate" => ExchangeDir::Migrate,
            _ => return None,
        })
    }
}

/// How a loop's iteration space relates to the rank decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopScope {
    /// Each rank iterates only its owned elements; writes cover the
    /// owned region, indirect increments may land in ghost copies.
    Owned,
    /// Every rank runs the full iteration space on replicated data
    /// (the in-process drivers' field loops): writes are globally
    /// consistent *provided the inputs were*.
    Replicated,
}

impl LoopScope {
    pub fn label(self) -> &'static str {
        match self {
            LoopScope::Owned => "own",
            LoopScope::Replicated => "rep",
        }
    }

    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "own" => LoopScope::Owned,
            "rep" => LoopScope::Replicated,
            _ => return None,
        })
    }
}

/// One recorded event: a loop dispatch or a communication step.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleEvent {
    /// A parallel loop ran; `name` keys into [`ScheduleTrace::loops`].
    Loop { name: String },
    /// A halo exchange / reduction / migration ran on `dat`. `tag` is
    /// the call-site label the mpi layer stamps (e.g.
    /// `"fempic/node_charge"`), carried through to the reports.
    Exchange {
        dat: String,
        dir: ExchangeDir,
        tag: String,
    },
}

/// An event plus the 1-based step it was recorded in.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub step: u32,
    pub event: ScheduleEvent,
}

#[derive(Debug, Default)]
struct RecorderInner {
    step: u32,
    events: Vec<TraceEvent>,
}

/// Shared, cloneable recording handle. Stages record loop events, the
/// tagged exchange wrappers in `oppic-mpi` record communication
/// events; the driver marks step boundaries.
#[derive(Debug, Clone, Default)]
pub struct ScheduleRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl ScheduleRecorder {
    pub fn new() -> Self {
        ScheduleRecorder::default()
    }

    /// Mark the start of the next step; subsequent events carry its
    /// number.
    pub fn begin_step(&self) {
        let mut g = self.inner.lock().expect("recorder poisoned");
        g.step += 1;
    }

    pub fn record_loop(&self, name: &str) {
        let mut g = self.inner.lock().expect("recorder poisoned");
        let step = g.step.max(1);
        g.events.push(TraceEvent {
            step,
            event: ScheduleEvent::Loop { name: name.into() },
        });
    }

    pub fn record_exchange(&self, dat: &str, dir: ExchangeDir, tag: &str) {
        let mut g = self.inner.lock().expect("recorder poisoned");
        let step = g.step.max(1);
        g.events.push(TraceEvent {
            step,
            event: ScheduleEvent::Exchange {
                dat: dat.into(),
                dir,
                tag: tag.into(),
            },
        });
    }

    /// Steps begun so far.
    pub fn steps(&self) -> u32 {
        self.inner.lock().expect("recorder poisoned").step
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("recorder poisoned").events.clone()
    }
}

/// A loop's static contract in the trace: its declaration plus the
/// distributed-execution facts the plan registry does not carry.
#[derive(Debug, Clone)]
pub struct ScheduleLoop {
    pub decl: LoopDecl,
    pub scope: LoopScope,
    /// Whether this loop re-binds the particle→cell map (a mover):
    /// after it runs, particles may sit in foreign-owned cells until a
    /// `Migrate` exchange ships them home.
    pub rebinds: bool,
}

/// The self-contained recording artifact: static loop contracts, the
/// dat→set table, and the event sequence. Serialized to/from the
/// `oppic-schedule-v1` JSON the analyzer audits offline.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    pub app: String,
    pub steps: u32,
    /// Names of particle sets (their dats are wholly owned; migration,
    /// not halo exchange, keeps them consistent).
    pub particle_sets: Vec<String>,
    /// `(dat name, home set)` for every declared dat.
    pub dat_sets: Vec<(String, String)>,
    pub loops: Vec<ScheduleLoop>,
    pub events: Vec<TraceEvent>,
}

impl ScheduleTrace {
    /// Assemble a trace from a finished recording plus the app's plan
    /// registry and set tables.
    pub fn from_recording(
        app: &str,
        plans: &PlanRegistry,
        scopes: &[(&str, LoopScope, bool)],
        particle_sets: &[&str],
        dat_sets: &[(&str, &str)],
        rec: &ScheduleRecorder,
    ) -> Self {
        let loops = plans
            .plans()
            .iter()
            .map(|p| {
                let (scope, rebinds) = scopes
                    .iter()
                    .find(|(n, _, _)| *n == p.decl.name)
                    .map(|&(_, s, r)| (s, r))
                    .unwrap_or((LoopScope::Owned, false));
                ScheduleLoop {
                    decl: p.decl.clone(),
                    scope,
                    rebinds,
                }
            })
            .collect();
        ScheduleTrace {
            app: app.into(),
            steps: rec.steps(),
            particle_sets: particle_sets.iter().map(|s| s.to_string()).collect(),
            dat_sets: dat_sets
                .iter()
                .map(|(d, s)| (d.to_string(), s.to_string()))
                .collect(),
            loops,
            events: rec.events(),
        }
    }

    pub fn loop_named(&self, name: &str) -> Option<&ScheduleLoop> {
        self.loops.iter().find(|l| l.decl.name == name)
    }

    /// Home set of a dat (`None` when undeclared).
    pub fn set_of(&self, dat: &str) -> Option<&str> {
        self.dat_sets
            .iter()
            .find(|(d, _)| d == dat)
            .map(|(_, s)| s.as_str())
    }

    /// Whether a dat lives on a particle set (or names one directly,
    /// as migrate events do).
    pub fn is_particle_data(&self, dat: &str) -> bool {
        if self.particle_sets.iter().any(|s| s == dat) {
            return true;
        }
        self.set_of(dat)
            .is_some_and(|s| self.particle_sets.iter().any(|p| p == s))
    }

    /// Serialize to the `oppic-schedule-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema\": {},\n",
            json::quote(SCHEDULE_SCHEMA)
        ));
        s.push_str(&format!("  \"app\": {},\n", json::quote(&self.app)));
        s.push_str(&format!("  \"steps\": {},\n", self.steps));
        s.push_str("  \"particle_sets\": [");
        for (i, p) in self.particle_sets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json::quote(p));
        }
        s.push_str("],\n  \"dats\": [");
        for (i, (d, set)) in self.dat_sets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"set\": {}}}",
                json::quote(d),
                json::quote(set)
            ));
        }
        s.push_str("\n  ],\n  \"loops\": [");
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"set\": {}, \"scope\": {}, \"rebinds\": {}, \"args\": [",
                json::quote(&l.decl.name),
                json::quote(&l.decl.iter_set),
                json::quote(l.scope.label()),
                l.rebinds
            ));
            for (k, a) in l.decl.args.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"dat\": {}, \"dim\": {}, \"access\": {}, \"ind\": {}, \"map\": {}}}",
                    json::quote(&a.dat),
                    a.dim,
                    json::quote(access_label(a.access)),
                    json::quote(ind_label(a.indirection)),
                    json::quote(&a.map)
                ));
            }
            s.push_str("]}");
        }
        s.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match &e.event {
                ScheduleEvent::Loop { name } => s.push_str(&format!(
                    "\n    {{\"step\": {}, \"kind\": \"loop\", \"name\": {}}}",
                    e.step,
                    json::quote(name)
                )),
                ScheduleEvent::Exchange { dat, dir, tag } => s.push_str(&format!(
                    "\n    {{\"step\": {}, \"kind\": \"exchange\", \"dat\": {}, \"dir\": {}, \"tag\": {}}}",
                    e.step,
                    json::quote(dat),
                    json::quote(dir.label()),
                    json::quote(tag)
                )),
            }
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parse a document produced by [`ScheduleTrace::to_json`].
    pub fn from_json(src: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("trace missing \"schema\"")?;
        if schema != SCHEDULE_SCHEMA {
            return Err(format!(
                "unsupported schedule schema {schema:?} (want {SCHEDULE_SCHEMA:?})"
            ));
        }
        let app = doc
            .get("app")
            .and_then(Json::as_str)
            .ok_or("trace missing \"app\"")?
            .to_string();
        let steps = doc.get("steps").and_then(Json::as_u64).unwrap_or(0) as u32;
        let particle_sets = doc
            .get("particle_sets")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.as_str().map(String::from))
            .collect();
        let mut dat_sets = Vec::new();
        for d in doc.get("dats").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = d
                .get("name")
                .and_then(Json::as_str)
                .ok_or("dat sans name")?;
            let set = d.get("set").and_then(Json::as_str).ok_or("dat sans set")?;
            dat_sets.push((name.to_string(), set.to_string()));
        }
        let mut loops = Vec::new();
        for l in doc.get("loops").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = l
                .get("name")
                .and_then(Json::as_str)
                .ok_or("loop sans name")?;
            let set = l.get("set").and_then(Json::as_str).ok_or("loop sans set")?;
            let scope = l
                .get("scope")
                .and_then(Json::as_str)
                .and_then(LoopScope::from_label)
                .ok_or_else(|| format!("loop {name:?}: bad scope"))?;
            let rebinds = l.get("rebinds").and_then(Json::as_bool).unwrap_or(false);
            let mut args = Vec::new();
            for a in l.get("args").and_then(Json::as_arr).unwrap_or(&[]) {
                let dat = a.get("dat").and_then(Json::as_str).ok_or("arg sans dat")?;
                let dim = a.get("dim").and_then(Json::as_u64).unwrap_or(1) as usize;
                let access = a
                    .get("access")
                    .and_then(Json::as_str)
                    .and_then(access_from_label)
                    .ok_or_else(|| format!("arg {dat:?}: bad access"))?;
                let ind = a
                    .get("ind")
                    .and_then(Json::as_str)
                    .and_then(ind_from_label)
                    .ok_or_else(|| format!("arg {dat:?}: bad indirection"))?;
                let map = a.get("map").and_then(Json::as_str).unwrap_or("");
                args.push(ArgDecl {
                    dat: dat.to_string(),
                    dim,
                    access,
                    indirection: ind,
                    map: map.to_string(),
                });
            }
            loops.push(ScheduleLoop {
                decl: LoopDecl::new(name, set, args),
                scope,
                rebinds,
            });
        }
        let mut events = Vec::new();
        for e in doc.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            let step = e.get("step").and_then(Json::as_u64).unwrap_or(1) as u32;
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("event sans kind")?;
            let event = match kind {
                "loop" => ScheduleEvent::Loop {
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("loop event sans name")?
                        .to_string(),
                },
                "exchange" => ScheduleEvent::Exchange {
                    dat: e
                        .get("dat")
                        .and_then(Json::as_str)
                        .ok_or("exchange sans dat")?
                        .to_string(),
                    dir: e
                        .get("dir")
                        .and_then(Json::as_str)
                        .and_then(ExchangeDir::from_label)
                        .ok_or("exchange with bad dir")?,
                    tag: e
                        .get("tag")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                },
                other => return Err(format!("unknown event kind {other:?}")),
            };
            events.push(TraceEvent { step, event });
        }
        Ok(ScheduleTrace {
            app,
            steps,
            particle_sets,
            dat_sets,
            loops,
            events,
        })
    }
}

fn access_label(a: Access) -> &'static str {
    match a {
        Access::Read => "read",
        Access::Write => "write",
        Access::Inc => "inc",
        Access::ReadWrite => "rw",
    }
}

fn access_from_label(s: &str) -> Option<Access> {
    Some(match s {
        "read" => Access::Read,
        "write" => Access::Write,
        "inc" => Access::Inc,
        "rw" => Access::ReadWrite,
        _ => return None,
    })
}

fn ind_label(i: Indirection) -> &'static str {
    match i {
        Indirection::Direct => "direct",
        Indirection::Indirect => "indirect",
        Indirection::Double => "double",
    }
}

fn ind_from_label(s: &str) -> Option<Indirection> {
    Some(match s {
        "direct" => Indirection::Direct,
        "indirect" => Indirection::Indirect,
        "double" => Indirection::Double,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parloop::ExecPolicy;
    use crate::plan::LoopPlan;

    fn sample_trace() -> ScheduleTrace {
        let rec = ScheduleRecorder::new();
        rec.begin_step();
        rec.record_loop("Deposit");
        rec.record_exchange("charge", ExchangeDir::ReduceSum, "t/charge");
        rec.begin_step();
        rec.record_loop("Deposit");
        rec.record_exchange("charge", ExchangeDir::ReduceSum, "t/charge");

        let mut plans = PlanRegistry::new();
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "Deposit",
                "particles",
                vec![
                    ArgDecl::direct("w", 4, Access::Read),
                    ArgDecl::double_indirect("charge", 1, Access::Inc, "p2c.c2n"),
                ],
            ),
            &ExecPolicy::Seq,
        ));
        ScheduleTrace::from_recording(
            "test",
            &plans,
            &[("Deposit", LoopScope::Owned, false)],
            &["particles"],
            &[("w", "particles"), ("charge", "nodes")],
            &rec,
        )
    }

    #[test]
    fn recorder_stamps_steps_and_order() {
        let t = sample_trace();
        assert_eq!(t.steps, 2);
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.events[0].step, 1);
        assert_eq!(t.events[3].step, 2);
        assert!(matches!(t.events[1].event, ScheduleEvent::Exchange { .. }));
    }

    #[test]
    fn trace_roundtrips_through_json() {
        let t = sample_trace();
        let j = t.to_json();
        let back = ScheduleTrace::from_json(&j).expect("roundtrip");
        assert_eq!(back.app, "test");
        assert_eq!(back.steps, 2);
        assert_eq!(back.events, t.events);
        assert_eq!(back.loops.len(), 1);
        let l = &back.loops[0];
        assert_eq!(l.decl.name, "Deposit");
        assert_eq!(l.scope, LoopScope::Owned);
        assert_eq!(l.decl.args.len(), 2);
        assert_eq!(l.decl.args[1].access, Access::Inc);
        assert_eq!(l.decl.args[1].indirection, Indirection::Double);
        assert!(back.is_particle_data("w"));
        assert!(!back.is_particle_data("charge"));
        assert!(back.is_particle_data("particles"));
    }

    #[test]
    fn bad_documents_are_rejected_with_context() {
        assert!(ScheduleTrace::from_json("{}").is_err());
        let wrong_schema = "{\"schema\": \"nope\", \"app\": \"x\"}";
        let err = ScheduleTrace::from_json(wrong_schema).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
