//! # oppic-core — the OP-PIC DSL
//!
//! This crate is the Rust reproduction of the OP-PIC abstraction
//! (Lantra, Wright & Mudalige, ICPP '24): a loop-level DSL for
//! unstructured-mesh particle-in-cell codes. The paper's C++ API uses a
//! clang-based source-to-source translator to specialise each
//! `opp_par_loop` / `opp_particle_move` per backend; here the same
//! specialisation is done by Rust generics and monomorphisation (see
//! DESIGN.md — substitutions).
//!
//! The DSL surface maps onto the paper as follows:
//!
//! | paper                      | this crate                              |
//! |----------------------------|-----------------------------------------|
//! | `opp_decl_set`             | [`decl::SetDecl`] (+ plain sizes)       |
//! | `opp_decl_particle_set`    | [`particles::ParticleDats`]             |
//! | `opp_decl_map`             | [`decl::MapDecl`] + app-held tables     |
//! | `opp_decl_dat`             | [`dat::Dat`] / particle columns         |
//! | `opp_par_loop` (direct)    | [`parloop`] `par_loop_direct1..4`       |
//! | `opp_par_loop` (indirect ↑)| [`deposit::deposit_loop`]               |
//! | `opp_particle_move`        | [`move_engine::move_loop`] (MH/DH)      |
//! | access modes               | [`access::Access`]                      |
//! | OpenMP backend             | [`parloop::ExecPolicy`]                 |
//! | scatter arrays / atomics / | [`deposit::DepositMethod`]              |
//! | segmented reduction        |                                         |
//!
//! Everything race-prone (indirect increments, particle relocation,
//! hole filling) lives behind these executors, so an application is
//! written exactly as the paper promises: "a serial implementation
//! without worrying about data races, synchronizations, or explicit
//! data copies".

pub mod access;
pub mod checkpoint;
pub mod dat;
pub mod decl;
#[macro_use]
pub mod macros;
pub mod deposit;
pub mod json;
pub mod move_engine;
pub mod params;
pub mod parloop;
pub mod particles;
pub mod plan;
pub mod profile;
pub mod schedule;
pub mod sim;
pub mod telemetry;

pub use access::{Access, ArgDecl, Indirection, LoopDecl};
pub use checkpoint::{crc64, BinReader, BinWriter, Crc64};
pub use dat::Dat;
pub use decl::Registry;
pub use deposit::{
    coloring_is_valid, deposit_loop, deposit_loop_colored, deposit_loop_matrix,
    deposit_loop_sorted, gather_loop_matrix, greedy_color_cells, invert_cell_targets, AutoTuner,
    DepositMethod, Depositor, MatAccumulate, MatTile, TargetInverse, TunerDecision, TunerInput,
    MAT_TILE_WIDTH,
};
pub use move_engine::{move_loop, move_loop_direct_hop, MoveConfig, MoveResult, MoveStatus};
pub use params::Params;
pub use parloop::{
    par_loop_direct1, par_loop_direct2, par_loop_direct3, par_loop_direct4, par_loop_gather,
    par_loop_segments2, par_loop_segments2_cells, par_loop_slices1, par_loop_slices2,
    par_loop_slices2_cells, par_loop_slices3, par_reduce_sum, ExecPolicy,
};
pub use particles::{ColId, ParticleDats, SortPolicy};
pub use plan::{LoopPlan, PlanRegistry, RaceStrategy};
pub use profile::{KernelClass, Profiler};
pub use schedule::{
    ExchangeDir, LoopScope, ScheduleEvent, ScheduleLoop, ScheduleRecorder, ScheduleTrace,
    TraceEvent, SCHEDULE_SCHEMA,
};
pub use sim::{Observable, Recoverable, Simulation};
pub use telemetry::{
    Histogram, HistogramSnapshot, KernelId, KernelStats, RunInfo, Span, Telemetry,
};
