//! Access descriptors — the `opp_arg_dat` metadata of the paper's API.
//!
//! In the C++ DSL these descriptors drive the code generator: a loop
//! whose arguments are all `OPP_READ`/`OPP_WRITE` on the iteration set
//! is embarrassingly parallel, while an indirect `OPP_INC` argument
//! forces a race-handling strategy. In this reproduction the executors
//! are chosen statically by the application (that choice *is* the
//! "generated code"), but the declarations are still recorded: they
//! document the loop, are validated for coherence, and feed the
//! profiler's bytes-moved estimate used by the roofline harness.

/// Per-argument access mode (`OPP_READ` / `OPP_WRITE` / `OPP_INC` /
/// `OPP_RW` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
    Inc,
    ReadWrite,
}

impl Access {
    /// Whether this access reads the previous contents.
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::Inc | Access::ReadWrite)
    }

    /// Whether this access modifies the contents.
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::Inc | Access::ReadWrite)
    }
}

/// How an argument is addressed from the iteration set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indirection {
    /// Data declared on the iteration set itself.
    Direct,
    /// One map hop (e.g. cells→nodes from a cell loop).
    Indirect,
    /// Two map hops (e.g. particle→cell→node from a particle loop) —
    /// the "double indirection" the paper singles out (Figure 2(a)).
    Double,
}

/// One argument of a parallel loop (the `opp_arg_dat` record).
#[derive(Debug, Clone)]
pub struct ArgDecl {
    /// Name of the `dat` accessed.
    pub dat: String,
    /// Components per set element.
    pub dim: usize,
    pub access: Access,
    pub indirection: Indirection,
    /// Name of the map used (empty for direct).
    pub map: String,
}

impl ArgDecl {
    pub fn direct(dat: impl Into<String>, dim: usize, access: Access) -> Self {
        ArgDecl {
            dat: dat.into(),
            dim,
            access,
            indirection: Indirection::Direct,
            map: String::new(),
        }
    }

    pub fn indirect(
        dat: impl Into<String>,
        dim: usize,
        access: Access,
        map: impl Into<String>,
    ) -> Self {
        ArgDecl {
            dat: dat.into(),
            dim,
            access,
            indirection: Indirection::Indirect,
            map: map.into(),
        }
    }

    pub fn double_indirect(
        dat: impl Into<String>,
        dim: usize,
        access: Access,
        map: impl Into<String>,
    ) -> Self {
        ArgDecl {
            dat: dat.into(),
            dim,
            access,
            indirection: Indirection::Double,
            map: map.into(),
        }
    }

    /// Coherence rules for a single descriptor: a direct arg must not
    /// name a map, an indirect or double-indirect arg must, and a
    /// double-indirect plain `WRITE` is rejected outright (the DSL
    /// cannot order scattered plain writes deterministically — the
    /// paper's generator only accepts `INC` through two map hops).
    pub fn validate(&self) -> Result<(), String> {
        match self.indirection {
            Indirection::Direct if !self.map.is_empty() => {
                return Err(format!(
                    "direct arg '{}' names a map '{}'",
                    self.dat, self.map
                ));
            }
            Indirection::Indirect | Indirection::Double if self.map.is_empty() => {
                return Err(format!("indirect arg '{}' missing its map", self.dat));
            }
            _ => {}
        }
        if self.access == Access::Write && self.indirection == Indirection::Double {
            return Err(format!(
                "double-indirect plain WRITE on '{}' is not deterministic; use INC",
                self.dat
            ));
        }
        if self.dim == 0 {
            return Err(format!("arg '{}' declares dim 0", self.dat));
        }
        Ok(())
    }

    /// Bytes this argument moves per iteration (reads + writes),
    /// assuming `f64` payloads. Used by the roofline instrumentation.
    pub fn bytes_per_iter(&self) -> usize {
        let mut factor = 0;
        if self.access.reads() {
            factor += 1;
        }
        if self.access.writes() {
            factor += 1;
        }
        factor * self.dim * std::mem::size_of::<f64>()
    }
}

/// A full loop declaration (the `opp_par_loop` call shape). Used for
/// validation, pretty-printing and byte accounting, not for dispatch.
#[derive(Debug, Clone)]
pub struct LoopDecl {
    pub name: String,
    pub iter_set: String,
    pub args: Vec<ArgDecl>,
}

impl LoopDecl {
    pub fn new(name: impl Into<String>, iter_set: impl Into<String>, args: Vec<ArgDecl>) -> Self {
        LoopDecl {
            name: name.into(),
            iter_set: iter_set.into(),
            args,
        }
    }

    /// Does any argument require race handling under thread-parallel
    /// execution? True exactly when an indirect (or double-indirect)
    /// increment exists — the condition the paper's generator keys on.
    pub fn needs_race_handling(&self) -> bool {
        self.args
            .iter()
            .any(|a| a.access == Access::Inc && a.indirection != Indirection::Direct)
    }

    /// Estimated bytes moved per iteration over all arguments.
    pub fn bytes_per_iter(&self) -> usize {
        self.args.iter().map(ArgDecl::bytes_per_iter).sum()
    }

    /// Sanity rules, delegated per-argument to [`ArgDecl::validate`]:
    /// an indirect arg must name its map; a direct arg must not;
    /// `Write`-only double indirection is rejected (the DSL cannot
    /// order scattered plain writes deterministically).
    pub fn validate(&self) -> Result<(), String> {
        for a in &self.args {
            a.validate()
                .map_err(|e| format!("loop '{}': {e}", self.name))?;
        }
        Ok(())
    }
}

impl std::fmt::Display for LoopDecl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "opp_par_loop {:?} over {}", self.name, self.iter_set)?;
        for a in &self.args {
            let ind = match a.indirection {
                Indirection::Direct => "direct".to_string(),
                Indirection::Indirect => format!("via {}", a.map),
                Indirection::Double => format!("double via {}", a.map),
            };
            writeln!(f, "  arg {} dim={} {:?} {}", a.dat, a.dim, a.access, ind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_semantics() {
        assert!(Access::Read.reads() && !Access::Read.writes());
        assert!(!Access::Write.reads() && Access::Write.writes());
        assert!(Access::Inc.reads() && Access::Inc.writes());
        assert!(Access::ReadWrite.reads() && Access::ReadWrite.writes());
    }

    #[test]
    fn bytes_accounting() {
        let a = ArgDecl::direct("efield", 3, Access::Read);
        assert_eq!(a.bytes_per_iter(), 3 * 8);
        let b = ArgDecl::indirect("node_charge", 1, Access::Inc, "c2n");
        assert_eq!(b.bytes_per_iter(), 2 * 8);
        let l = LoopDecl::new("k", "cells", vec![a, b]);
        assert_eq!(l.bytes_per_iter(), 40);
    }

    #[test]
    fn race_detection() {
        let direct_only = LoopDecl::new(
            "push",
            "particles",
            vec![
                ArgDecl::direct("pos", 3, Access::ReadWrite),
                ArgDecl::direct("vel", 3, Access::ReadWrite),
            ],
        );
        assert!(!direct_only.needs_race_handling());

        let deposit = LoopDecl::new(
            "deposit",
            "particles",
            vec![
                ArgDecl::direct("charge", 1, Access::Read),
                ArgDecl::double_indirect("node_charge", 1, Access::Inc, "p2c.c2n"),
            ],
        );
        assert!(deposit.needs_race_handling());
    }

    #[test]
    fn validation_rules() {
        let bad_direct = LoopDecl::new(
            "k",
            "cells",
            vec![ArgDecl {
                dat: "x".into(),
                dim: 1,
                access: Access::Read,
                indirection: Indirection::Direct,
                map: "c2n".into(),
            }],
        );
        assert!(bad_direct.validate().is_err());

        let missing_map = LoopDecl::new(
            "k",
            "cells",
            vec![ArgDecl {
                dat: "x".into(),
                dim: 1,
                access: Access::Read,
                indirection: Indirection::Indirect,
                map: String::new(),
            }],
        );
        assert!(missing_map.validate().is_err());

        let scattered_write = LoopDecl::new(
            "k",
            "particles",
            vec![ArgDecl::double_indirect("x", 1, Access::Write, "p2c.c2n")],
        );
        assert!(scattered_write.validate().is_err());

        let fine = LoopDecl::new(
            "k",
            "particles",
            vec![ArgDecl::double_indirect("x", 1, Access::Inc, "p2c.c2n")],
        );
        assert!(fine.validate().is_ok());
    }

    #[test]
    fn arg_validation_is_per_argument() {
        assert!(ArgDecl::direct("x", 3, Access::Read).validate().is_ok());
        assert!(ArgDecl::indirect("x", 3, Access::Read, "c2n")
            .validate()
            .is_ok());
        // Zero-dim args are incoherent whatever the route.
        assert!(ArgDecl::direct("x", 0, Access::Read).validate().is_err());
        // Loop-level validation prefixes the loop name.
        let bad = LoopDecl::new(
            "Deposit",
            "particles",
            vec![ArgDecl::direct("x", 0, Access::Read)],
        );
        let msg = bad.validate().unwrap_err();
        assert!(msg.contains("Deposit"), "{msg}");
    }

    #[test]
    fn display_renders() {
        let l = LoopDecl::new(
            "deposit",
            "particles",
            vec![ArgDecl::indirect("cd", 1, Access::Inc, "c2n")],
        );
        let s = format!("{l}");
        assert!(s.contains("deposit"));
        assert!(s.contains("via c2n"));
    }
}
