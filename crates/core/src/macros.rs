//! The `macro_rules!` front-end — paper-style loop declarations.
//!
//! The executors in [`crate::parloop`], [`crate::deposit`] and
//! [`crate::move_engine`] are the DSL's machinery; these macros are its
//! *syntax*, shaped after the paper's Figure 5/6 API so a loop
//! declaration reads like the C++ original:
//!
//! ```
//! use oppic_core::{opp_par_loop, Dat, ExecPolicy};
//! let policy = ExecPolicy::Par;
//! let mut pos = Dat::zeros("pos", 100, 3);
//! let mut vel = Dat::from_fn("vel", 100, 3, |i, _| i as f64);
//! let dt = 0.5;
//! opp_par_loop!(policy, "CalcPosVel";
//!     write [x: pos, v: vel];
//!     |_i| {
//!         x[0] += dt * v[0];
//!     }
//! );
//! assert_eq!(pos.el(99), &[0.5 * 99.0, 0.0, 0.0]);
//! ```
//!
//! The macro arms map onto the paper's access-descriptor shapes:
//! one to four `write` (OPP_WRITE/OPP_RW) dats on the iteration set;
//! reads (`OPP_READ`, direct or through maps) are ordinary captures —
//! `&Dat` is `Sync`, so reads need no machinery at all.

/// Declare a parallel loop over the elements of a set, Figure 5 style.
///
/// ```text
/// opp_par_loop!(policy, "name"; write [a: dat_a, b: dat_b]; |i| { ... });
/// ```
///
/// Each binding names the element's mutable window of that dat inside
/// the kernel body. 1–4 written dats are supported (the paper's loops
/// never write more; add reads by capturing).
///
/// Every expansion builds the loop's [`crate::access::LoopDecl`] from
/// the written dats and validates it ([`crate::access::ArgDecl::validate`])
/// before dispatch — the declaration *is* checked, not just recorded.
#[macro_export]
macro_rules! opp_par_loop {
    ($policy:expr, $name:expr; write [$($a:ident: $da:expr),+]; |$i:pat_param| $body:block) => {{
        let __decl = $crate::access::LoopDecl::new(
            $name,
            "<direct>",
            vec![$($crate::access::ArgDecl::direct(
                $da.name(),
                $da.dim(),
                $crate::access::Access::Write,
            )),+],
        );
        $crate::plan::LoopPlan::direct(__decl, &$policy)
            .quick_check()
            .expect("opp_par_loop: incoherent loop declaration");
        $crate::opp_par_loop!(@dispatch $policy; [$($a: $da),+]; |$i| $body);
    }};
    (@dispatch $policy:expr; [$a:ident: $da:expr]; |$i:pat_param| $body:block) => {
        $crate::parloop::par_loop_direct1(&$policy, &mut $da, |$i, $a| $body);
    };
    (@dispatch $policy:expr; [$a:ident: $da:expr, $b:ident: $db:expr]; |$i:pat_param| $body:block) => {
        $crate::parloop::par_loop_direct2(&$policy, &mut $da, &mut $db, |$i, $a, $b| $body);
    };
    (@dispatch $policy:expr; [$a:ident: $da:expr, $b:ident: $db:expr, $c:ident: $dc:expr]; |$i:pat_param| $body:block) => {
        $crate::parloop::par_loop_direct3(&$policy, &mut $da, &mut $db, &mut $dc, |$i, $a, $b, $c| $body);
    };
    (@dispatch $policy:expr; [$a:ident: $da:expr, $b:ident: $db:expr, $c:ident: $dc:expr, $d:ident: $dd:expr]; |$i:pat_param| $body:block) => {
        $crate::parloop::par_loop_direct4(&$policy, &mut $da, &mut $db, &mut $dc, &mut $dd, |$i, $a, $b, $c, $d| $body);
    };
}

/// Declare a particle-move loop, Figure 6 style. The kernel body
/// evaluates to a [`crate::MoveStatus`] — the `OPP_PARTICLE_MOVE_DONE`
/// / `NEED_MOVE` / `NEED_REMOVE` markers of the paper become ordinary
/// `return`-position expressions.
///
/// ```text
/// let result = opp_particle_move!(policy, "Move", cells; |i, cell| { ...; MoveStatus::Done });
/// // direct-hop flavour:
/// let result = opp_particle_move!(policy, "Move", cells; seed |i| overlay_lookup(i);
///                                 |i, cell| { ...; MoveStatus::Done });
/// ```
#[macro_export]
macro_rules! opp_particle_move {
    ($policy:expr, $name:expr, $cells:expr; |$i:pat_param, $cell:pat_param| $body:block) => {{
        let _ = $name;
        $crate::move_engine::move_loop(
            &$policy,
            $crate::move_engine::MoveConfig::default(),
            $cells,
            |$i, $cell| $body,
        )
    }};
    ($policy:expr, $name:expr, $cells:expr; seed |$si:pat_param| $seed:expr; |$i:pat_param, $cell:pat_param| $body:block) => {{
        let _ = $name;
        $crate::move_engine::move_loop_direct_hop(
            &$policy,
            $crate::move_engine::MoveConfig::default(),
            $cells,
            |$si| $seed,
            |$i, $cell| $body,
        )
    }};
}

/// Declare an indirect-increment loop (the `OPP_INC` pattern of
/// Figure 5, bottom): the kernel receives a
/// [`crate::Depositor`] and emits contributions with `.add(idx, v)`.
///
/// ```text
/// opp_deposit!(policy, DepositMethod::ScatterArrays, "DepositCharge",
///              n_particles => node_charge; |i, dep| { dep.add(nd, q); });
/// ```
#[macro_export]
macro_rules! opp_deposit {
    ($policy:expr, $method:expr, $name:expr, $n:expr => $target:expr; |$i:pat_param, $dep:pat_param| $body:block) => {{
        let __method = $method;
        // The deposit pattern is by construction a double-indirect INC
        // (particle → cell → target element); record that shape as a
        // plan and run the cheap coherence check before dispatch.
        let __decl = $crate::access::LoopDecl::new(
            $name,
            "particles",
            vec![$crate::access::ArgDecl::double_indirect(
                "<deposit-target>",
                1,
                $crate::access::Access::Inc,
                "<p2c.map>",
            )],
        );
        $crate::plan::LoopPlan::new(
            __decl,
            &$policy,
            $crate::plan::RaceStrategy::Deposit(__method),
        )
        .quick_check()
        .expect("opp_deposit: incoherent deposit plan");
        $crate::deposit::deposit_loop(&$policy, __method, $n, $target, |$i, $dep| $body)
    }};
}

#[cfg(test)]
mod tests {
    use crate::{Dat, DepositMethod, ExecPolicy, MoveStatus};

    #[test]
    fn par_loop_macro_all_arities() {
        let policy = ExecPolicy::Par;
        let mut a = Dat::zeros("a", 20, 1);
        let mut b = Dat::zeros("b", 20, 2);
        let mut c = Dat::zeros("c", 20, 1);
        let mut d = Dat::zeros("d", 20, 1);

        opp_par_loop!(policy, "one"; write [x: a]; |i| {
            x[0] = i as f64;
        });
        assert_eq!(a.get(7), 7.0);

        opp_par_loop!(policy, "two"; write [x: a, y: b]; |i| {
            y[1] = x[0] + i as f64;
        });
        assert_eq!(b.el(7)[1], 14.0);

        opp_par_loop!(policy, "three"; write [x: a, y: b, z: c]; |_i| {
            z[0] = x[0] + y[1];
        });
        assert_eq!(c.get(7), 21.0);

        opp_par_loop!(policy, "four"; write [x: a, y: b, z: c, w: d]; |_i| {
            w[0] = x[0] + y[1] + z[0];
        });
        assert_eq!(d.get(7), 42.0);
    }

    #[test]
    fn particle_move_macro_multi_and_direct_hop() {
        let policy = ExecPolicy::Seq;
        let targets = [5usize, 2, 8];
        let mut cells = vec![0i32, 7, 8];
        let r = opp_particle_move!(policy, "Move", &mut cells; |i, cell| {
            if cell == targets[i] {
                MoveStatus::Done
            } else if cell < targets[i] {
                MoveStatus::NeedMove(cell + 1)
            } else {
                MoveStatus::NeedMove(cell - 1)
            }
        });
        assert_eq!(cells, vec![5, 2, 8]);
        assert!(r.removed.is_empty());

        // Direct-hop: perfect seeds, one visit each.
        let mut cells = vec![0i32, 0, 0];
        let r = opp_particle_move!(policy, "MoveDH", &mut cells; seed |i| targets[i];
            |i, cell| {
                assert_eq!(cell, targets[i]);
                MoveStatus::Done
            }
        );
        assert_eq!(r.total_visits, 3);
        assert_eq!(cells, vec![5, 2, 8]);
    }

    #[test]
    fn deposit_macro() {
        let policy = ExecPolicy::Par;
        let mut charge = vec![0.0f64; 4];
        opp_deposit!(policy, DepositMethod::SegmentedReduction, "DepositCharge",
        400 => &mut charge; |i, dep| {
            dep.add(i % 4, 0.5);
        });
        assert_eq!(charge, vec![50.0; 4]);
    }

    #[test]
    fn macro_reads_are_plain_captures() {
        // Indirect reads through a map are just captures, as promised.
        let policy = ExecPolicy::Par;
        let map: Vec<usize> = (0..10).map(|i| 9 - i).collect();
        let source = Dat::from_fn("src", 10, 1, |i, _| i as f64 * 2.0);
        let mut dst = Dat::zeros("dst", 10, 1);
        opp_par_loop!(policy, "gather"; write [x: dst]; |i| {
            x[0] = source.get(map[i]);
        });
        assert_eq!(dst.get(0), 18.0);
        assert_eq!(dst.get(9), 0.0);
    }
}
