//! Per-kernel instrumentation — the "OP-PIC code instrumentation" the
//! paper uses to time solver routines and estimate FLOP/s for the
//! roofline study (Section 4.1.2).
//!
//! Applications wrap each DSL loop in [`Profiler::time`] (or record
//! numbers directly). The profiler accumulates wall time, invocation
//! counts, and optional byte/FLOP tallies per kernel name; the
//! benchmark harness turns the result into the paper's runtime
//! breakdowns (Figure 9) and roofline points (Figures 10–11).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Broad classification of a kernel, used to group the breakdown plots
/// the way the paper does (field solve vs particle work vs comm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    FieldSolve,
    WeightFields,
    Move,
    Deposit,
    Inject,
    Comm,
    Other,
}

/// Accumulated statistics for one kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    pub calls: u64,
    pub seconds: f64,
    pub bytes: u64,
    pub flops: u64,
    pub class: Option<KernelClass>,
}

impl KernelStats {
    /// Arithmetic intensity in FLOP/byte (None with no byte count).
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        (self.bytes > 0).then(|| self.flops as f64 / self.bytes as f64)
    }

    /// Achieved GFLOP/s (None without timing or flops).
    pub fn gflops(&self) -> Option<f64> {
        (self.seconds > 0.0 && self.flops > 0).then(|| self.flops as f64 / self.seconds / 1e9)
    }

    /// Achieved GB/s.
    pub fn gbytes_per_s(&self) -> Option<f64> {
        (self.seconds > 0.0 && self.bytes > 0).then(|| self.bytes as f64 / self.seconds / 1e9)
    }
}

/// Thread-safe kernel profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Mutex<HashMap<String, KernelStats>>,
    /// One-line decision traces (kernel name, message) in emission
    /// order — the auto-tuner's audit trail.
    traces: Mutex<Vec<(String, String)>>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under a kernel name.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(name, t0.elapsed());
        r
    }

    /// Record a duration for `name`.
    pub fn record(&self, name: &str, d: Duration) {
        let mut map = self.inner.lock();
        let e = map.entry(name.to_string()).or_default();
        e.calls += 1;
        e.seconds += d.as_secs_f64();
    }

    /// Attach data-movement / FLOP counts (accumulating).
    pub fn add_traffic(&self, name: &str, bytes: u64, flops: u64) {
        let mut map = self.inner.lock();
        let e = map.entry(name.to_string()).or_default();
        e.bytes += bytes;
        e.flops += flops;
    }

    /// Tag a kernel with its class (idempotent).
    pub fn classify(&self, name: &str, class: KernelClass) {
        let mut map = self.inner.lock();
        map.entry(name.to_string()).or_default().class = Some(class);
    }

    /// Snapshot of one kernel's stats.
    pub fn get(&self, name: &str) -> Option<KernelStats> {
        self.inner.lock().get(name).cloned()
    }

    /// Snapshot of everything, sorted by descending time.
    pub fn snapshot(&self) -> Vec<(String, KernelStats)> {
        let map = self.inner.lock();
        let mut v: Vec<(String, KernelStats)> =
            map.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        v.sort_by(|a, b| b.1.seconds.partial_cmp(&a.1.seconds).unwrap());
        v
    }

    /// Total recorded seconds.
    pub fn total_seconds(&self) -> f64 {
        self.inner.lock().values().map(|s| s.seconds).sum()
    }

    /// Record a one-line decision trace against a kernel name (e.g.
    /// the deposit auto-tuner's per-loop strategy choice).
    pub fn trace(&self, name: &str, line: impl Into<String>) {
        self.traces.lock().push((name.to_string(), line.into()));
    }

    /// All decision traces in emission order.
    pub fn traces(&self) -> Vec<(String, String)> {
        self.traces.lock().clone()
    }

    /// Clear all statistics (between benchmark repetitions).
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.traces.lock().clear();
    }

    /// Render the paper-style runtime breakdown table.
    pub fn breakdown_table(&self) -> String {
        let snap = self.snapshot();
        let total = self.total_seconds().max(1e-30);
        let mut s = String::new();
        s.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>7} {:>12} {:>12}\n",
            "kernel", "calls", "seconds", "%", "GB/s", "GFLOP/s"
        ));
        for (name, st) in &snap {
            s.push_str(&format!(
                "{:<28} {:>8} {:>12.4} {:>6.1}% {:>12} {:>12}\n",
                name,
                st.calls,
                st.seconds,
                100.0 * st.seconds / total,
                st.gbytes_per_s()
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
                st.gflops()
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            ));
        }
        s.push_str(&format!("{:<28} {:>8} {:>12.4}\n", "TOTAL", "", total));
        let traces = self.traces();
        if !traces.is_empty() {
            // Collapse consecutive identical decisions ("chose SS" ×50)
            // so per-step traces stay one line per *change*.
            s.push_str("decision trace:\n");
            let mut run: Option<(&(String, String), usize)> = None;
            let emit = |entry: &(String, String), count: usize, s: &mut String| {
                let (kernel, line) = entry;
                if count > 1 {
                    s.push_str(&format!("  {kernel}: {line} (x{count})\n"));
                } else {
                    s.push_str(&format!("  {kernel}: {line}\n"));
                }
            };
            for t in &traces {
                match run {
                    Some((prev, c)) if prev == t => run = Some((prev, c + 1)),
                    Some((prev, c)) => {
                        emit(prev, c, &mut s);
                        run = Some((t, 1));
                    }
                    None => run = Some((t, 1)),
                }
            }
            if let Some((prev, c)) = run {
                emit(prev, c, &mut s);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_record() {
        let p = Profiler::new();
        let out = p.time("Move", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        let st = p.get("Move").unwrap();
        assert_eq!(st.calls, 1);
        assert!(st.seconds >= 0.004, "{}", st.seconds);
        p.record("Move", Duration::from_millis(1));
        assert_eq!(p.get("Move").unwrap().calls, 2);
    }

    #[test]
    fn traffic_and_derived_metrics() {
        let p = Profiler::new();
        p.record("DepositCharge", Duration::from_secs_f64(0.5));
        p.add_traffic("DepositCharge", 1_000_000_000, 250_000_000);
        let st = p.get("DepositCharge").unwrap();
        assert!((st.arithmetic_intensity().unwrap() - 0.25).abs() < 1e-12);
        assert!((st.gbytes_per_s().unwrap() - 2.0).abs() < 1e-9);
        assert!((st.gflops().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_counters_yield_none() {
        let p = Profiler::new();
        p.record("k", Duration::from_millis(1));
        let st = p.get("k").unwrap();
        assert!(st.arithmetic_intensity().is_none());
        assert!(st.gflops().is_none());
        assert!(st.gbytes_per_s().is_none());
    }

    #[test]
    fn snapshot_sorted_by_time() {
        let p = Profiler::new();
        p.record("small", Duration::from_millis(1));
        p.record("big", Duration::from_millis(100));
        p.record("mid", Duration::from_millis(10));
        let names: Vec<String> = p.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
    }

    #[test]
    fn classification() {
        let p = Profiler::new();
        p.record("Move", Duration::from_millis(1));
        p.classify("Move", KernelClass::Move);
        assert_eq!(p.get("Move").unwrap().class, Some(KernelClass::Move));
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.record("k", Duration::from_millis(1));
        p.trace("k", "chose atomics");
        p.reset();
        assert!(p.get("k").is_none());
        assert_eq!(p.total_seconds(), 0.0);
        assert!(p.traces().is_empty());
    }

    #[test]
    fn traces_keep_emission_order() {
        let p = Profiler::new();
        p.trace("DepositCharge", "step 1: scatter arrays");
        p.trace("DepositCharge", "step 2: sorted segments");
        let t = p.traces();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].1, "step 1: scatter arrays");
        assert!(t[1].1.contains("sorted segments"));
    }

    #[test]
    fn breakdown_renders() {
        let p = Profiler::new();
        p.record("Move", Duration::from_millis(30));
        p.add_traffic("Move", 1 << 30, 1 << 20);
        p.record("AdvanceE", Duration::from_millis(10));
        let table = p.breakdown_table();
        assert!(table.contains("Move"));
        assert!(table.contains("AdvanceE"));
        assert!(table.contains("TOTAL"));
    }

    #[test]
    fn profiler_is_thread_safe() {
        let p = std::sync::Arc::new(Profiler::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        p.record("k", Duration::from_nanos(100));
                        p.add_traffic("k", 8, 1);
                    }
                });
            }
        });
        let st = p.get("k").unwrap();
        assert_eq!(st.calls, 800);
        assert_eq!(st.bytes, 6400);
        assert_eq!(st.flops, 800);
    }
}
