//! Per-kernel instrumentation facade — the "OP-PIC code
//! instrumentation" the paper uses to time solver routines and
//! estimate FLOP/s for the roofline study (Section 4.1.2).
//!
//! As of the telemetry subsystem ([`crate::telemetry`]) this type is a
//! thin compatibility layer: every `Profiler` call is fed straight into
//! an owned [`Telemetry`] hub, so legacy call sites (`time`, `record`,
//! `add_traffic`, `breakdown_table`) and the new structured event
//! stream (spans, counters, histograms, JSONL sink) observe the same
//! numbers by construction. New code should prefer
//! [`Profiler::telemetry`] and the span API; the facade exists so the
//! paper-figure binaries and existing tests keep working unchanged.

use crate::telemetry::Telemetry;
use std::sync::Arc;
use std::time::Duration;

pub use crate::telemetry::{KernelClass, KernelId, KernelStats};

/// Thread-safe kernel profiler (facade over [`Telemetry`]).
#[derive(Debug, Default)]
pub struct Profiler {
    tel: Arc<Telemetry>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// The telemetry hub behind this profiler — spans, counters,
    /// histograms, and the JSONL sink live there.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.tel
    }

    /// Time a closure under a kernel name.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.tel.time(name, f)
    }

    /// Record a duration for `name`. Names are interned: this allocates
    /// only the first time a name is seen, not per call.
    pub fn record(&self, name: &str, d: Duration) {
        self.tel.record(name, d);
    }

    /// Intern a kernel name once, for allocation- and hash-free
    /// recording on hot paths via [`Self::record_id`].
    pub fn intern(&self, name: &str) -> KernelId {
        self.tel.intern(name)
    }

    /// Record a duration under a pre-interned kernel id.
    pub fn record_id(&self, id: KernelId, d: Duration) {
        self.tel.record_id(id, d);
    }

    /// Attach data-movement / FLOP counts (accumulating).
    pub fn add_traffic(&self, name: &str, bytes: u64, flops: u64) {
        self.tel.add_traffic(name, bytes, flops);
    }

    /// Tag a kernel with its class (idempotent).
    pub fn classify(&self, name: &str, class: KernelClass) {
        self.tel.classify(name, class);
    }

    /// Snapshot of one kernel's stats.
    pub fn get(&self, name: &str) -> Option<KernelStats> {
        self.tel.get(name)
    }

    /// Snapshot of everything, sorted by descending time.
    pub fn snapshot(&self) -> Vec<(String, KernelStats)> {
        self.tel.kernels_snapshot()
    }

    /// Total recorded seconds.
    pub fn total_seconds(&self) -> f64 {
        self.tel.total_seconds()
    }

    /// Record a one-line decision trace against a kernel name (e.g.
    /// the deposit auto-tuner's per-loop strategy choice). The trace
    /// log is capped ([`crate::telemetry::DEFAULT_TRACE_CAP`]); the
    /// oldest entries are dropped and counted rather than growing
    /// without bound.
    pub fn trace(&self, name: &str, line: impl Into<String>) {
        self.tel.trace(name, line);
    }

    /// All retained decision traces in emission order.
    pub fn traces(&self) -> Vec<(String, String)> {
        self.tel.traces()
    }

    /// Remove and return all retained traces (e.g. to ship them to a
    /// log between benchmark repetitions without unbounded growth).
    pub fn drain_traces(&self) -> Vec<(String, String)> {
        self.tel.drain_traces()
    }

    /// Number of traces dropped to honour the retention cap.
    pub fn traces_dropped(&self) -> u64 {
        self.tel.traces_dropped()
    }

    /// Change the trace retention cap.
    pub fn set_trace_cap(&self, cap: usize) {
        self.tel.set_trace_cap(cap);
    }

    /// Clear all statistics (between benchmark repetitions).
    pub fn reset(&self) {
        self.tel.reset();
    }

    /// Render the paper-style runtime breakdown table.
    pub fn breakdown_table(&self) -> String {
        self.tel.breakdown_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_record() {
        let p = Profiler::new();
        let out = p.time("Move", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        let st = p.get("Move").unwrap();
        assert_eq!(st.calls, 1);
        assert!(st.seconds >= 0.004, "{}", st.seconds);
        p.record("Move", Duration::from_millis(1));
        assert_eq!(p.get("Move").unwrap().calls, 2);
    }

    #[test]
    fn traffic_and_derived_metrics() {
        let p = Profiler::new();
        p.record("DepositCharge", Duration::from_secs_f64(0.5));
        p.add_traffic("DepositCharge", 1_000_000_000, 250_000_000);
        let st = p.get("DepositCharge").unwrap();
        assert!((st.arithmetic_intensity().unwrap() - 0.25).abs() < 1e-12);
        assert!((st.gbytes_per_s().unwrap() - 2.0).abs() < 1e-9);
        assert!((st.gflops().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_counters_yield_none() {
        let p = Profiler::new();
        p.record("k", Duration::from_millis(1));
        let st = p.get("k").unwrap();
        assert!(st.arithmetic_intensity().is_none());
        assert!(st.gflops().is_none());
        assert!(st.gbytes_per_s().is_none());
    }

    #[test]
    fn snapshot_sorted_by_time() {
        let p = Profiler::new();
        p.record("small", Duration::from_millis(1));
        p.record("big", Duration::from_millis(100));
        p.record("mid", Duration::from_millis(10));
        let names: Vec<String> = p.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
    }

    #[test]
    fn classification() {
        let p = Profiler::new();
        p.record("Move", Duration::from_millis(1));
        p.classify("Move", KernelClass::Move);
        assert_eq!(p.get("Move").unwrap().class, Some(KernelClass::Move));
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.record("k", Duration::from_millis(1));
        p.trace("k", "chose atomics");
        p.reset();
        assert!(p.get("k").is_none());
        assert_eq!(p.total_seconds(), 0.0);
        assert!(p.traces().is_empty());
    }

    #[test]
    fn traces_keep_emission_order() {
        let p = Profiler::new();
        p.trace("DepositCharge", "step 1: scatter arrays");
        p.trace("DepositCharge", "step 2: sorted segments");
        let t = p.traces();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].1, "step 1: scatter arrays");
        assert!(t[1].1.contains("sorted segments"));
    }

    #[test]
    fn trace_log_is_capped_with_drop_count() {
        let p = Profiler::new();
        p.set_trace_cap(8);
        for i in 0..20 {
            p.trace("DepositCharge", format!("decision {i}"));
        }
        assert_eq!(p.traces().len(), 8);
        assert_eq!(p.traces_dropped(), 12);
        assert!(p.breakdown_table().contains("12 older traces dropped"));
        let drained = p.drain_traces();
        assert_eq!(drained.len(), 8);
        assert_eq!(drained.last().unwrap().1, "decision 19");
        assert!(p.traces().is_empty());
    }

    #[test]
    fn record_by_id_matches_record_by_name() {
        let p = Profiler::new();
        let id = p.intern("Move");
        p.record_id(id, Duration::from_millis(2));
        p.record("Move", Duration::from_millis(3));
        let st = p.get("Move").unwrap();
        assert_eq!(st.calls, 2);
        assert!((st.seconds - 0.005).abs() < 1e-9);
    }

    #[test]
    fn breakdown_renders() {
        let p = Profiler::new();
        p.record("Move", Duration::from_millis(30));
        p.add_traffic("Move", 1 << 30, 1 << 20);
        p.record("AdvanceE", Duration::from_millis(10));
        let table = p.breakdown_table();
        assert!(table.contains("Move"));
        assert!(table.contains("AdvanceE"));
        assert!(table.contains("TOTAL"));
    }

    #[test]
    fn profiler_is_thread_safe() {
        let p = std::sync::Arc::new(Profiler::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        p.record("k", Duration::from_nanos(100));
                        p.add_traffic("k", 8, 1);
                    }
                });
            }
        });
        let st = p.get("k").unwrap();
        assert_eq!(st.calls, 800);
        assert_eq!(st.bytes, 6400);
        assert_eq!(st.flops, 800);
    }
}
