//! The particle-move executor — `opp_particle_move` (Sections 3.1.3 and
//! 3.2.2 of the paper).
//!
//! The application provides an *elemental move kernel* which, given a
//! particle and its current candidate cell, does per-cell work and
//! reports one of three statuses (the paper's preprocessor markers):
//!
//! * [`MoveStatus::Done`] — `OPP_PARTICLE_MOVE_DONE`: this is the final
//!   destination cell;
//! * [`MoveStatus::NeedRemove`] — `OPP_PARTICLE_NEED_REMOVE`: the
//!   particle left the domain;
//! * [`MoveStatus::NeedMove`] — `OPP_PARTICLE_NEED_MOVE`: hop to the
//!   reported next cell and run the kernel again.
//!
//! The engine owns the iteration ("multi-hop", MH), the optional
//! structured-overlay seeding ("direct-hop", DH), the per-particle cell
//! updates, and the removal list that the particle store's hole filling
//! consumes. In distributed runs, `oppic-mpi` wraps this engine and
//! additionally ships rank-crossing particles.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::parloop::ExecPolicy;

/// Verdict of one elemental move-kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveStatus {
    /// Final destination cell reached.
    Done,
    /// Particle left the domain; remove it.
    NeedRemove,
    /// Keep searching from the given next cell.
    NeedMove(usize),
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MoveConfig {
    /// Abort threshold for a single particle's hop chain — a kernel
    /// that cycles (e.g. an inconsistent c2c map) is reported as an
    /// error instead of hanging the simulation.
    pub max_hops: u32,
    /// Record each particle's chain length into
    /// [`MoveResult::chains`] (used by the GPU divergence analysis;
    /// costs 4 bytes/particle).
    pub record_chains: bool,
    /// Size of the cell set, when known. With `Some(n)`, every final
    /// cell a kernel reports via [`MoveStatus::Done`] is checked
    /// against `0..n` and violations are counted in
    /// [`MoveResult::out_of_range`] — the move engine's contribution to
    /// the analyzer's map-invariant audit (a broken kernel or c2c map
    /// would otherwise corrupt the particle→cell map silently).
    pub n_cells: Option<usize>,
}

impl Default for MoveConfig {
    fn default() -> Self {
        MoveConfig {
            max_hops: 10_000,
            record_chains: false,
            n_cells: None,
        }
    }
}

/// Outcome of a move loop.
#[derive(Debug, Clone, Default)]
pub struct MoveResult {
    /// Indices of particles to remove, sorted ascending — feed straight
    /// into [`crate::particles::ParticleDats::remove_fill`].
    pub removed: Vec<usize>,
    /// Total kernel invocations across all particles (≥ n): the
    /// "hops + finals" count. `total_visits - n_alive` is the extra
    /// search work a better strategy (DH) eliminates.
    pub total_visits: u64,
    /// Longest single hop chain observed.
    pub max_chain: u32,
    /// Particles whose chain hit `max_hops` (always also removed; a
    /// non-zero value indicates a broken kernel/mesh).
    pub aborted: u64,
    /// Per-particle chain lengths (empty unless
    /// [`MoveConfig::record_chains`] was set).
    pub chains: Vec<u32>,
    /// Final cells outside `0..n_cells` (only counted when
    /// [`MoveConfig::n_cells`] is set; always 0 for a correct kernel).
    pub out_of_range: u64,
    /// Surviving particles whose final cell differs from the cell the
    /// chase started in — together with `removed.len()`, the measured
    /// figure for `ParticleDats::refine_dirty`.
    pub moved: u64,
}

impl MoveResult {
    /// Mean kernel visits per particle (1.0 = every particle already in
    /// its final cell).
    pub fn mean_visits(&self, n_particles: usize) -> f64 {
        if n_particles == 0 {
            0.0
        } else {
            self.total_visits as f64 / n_particles as f64
        }
    }
}

/// Multi-hop move: each particle starts from its current cell
/// (`cells[i]`) and follows the kernel's `NeedMove` chain.
///
/// ```
/// use oppic_core::{move_loop, ExecPolicy, MoveConfig, MoveStatus};
/// // Walk two particles along a 1-D row of cells to their targets.
/// let targets = [4usize, 1];
/// let mut cells = vec![0i32, 3];
/// let r = move_loop(&ExecPolicy::Seq, MoveConfig::default(), &mut cells, |i, c| {
///     match targets[i] {
///         t if c == t => MoveStatus::Done,
///         t if c < t => MoveStatus::NeedMove(c + 1),
///         _ => MoveStatus::NeedMove(c - 1),
///     }
/// });
/// assert_eq!(cells, vec![4, 1]);
/// assert!(r.removed.is_empty());
/// ```
///
/// `kernel(i, cell)` must be safe to call concurrently for distinct
/// `i`; it typically reads the particle's position and per-cell
/// geometry and (for electromagnetic codes) deposits current for every
/// visited cell via a [`crate::deposit::Depositor`]-backed accumulator.
pub fn move_loop<K>(
    policy: &ExecPolicy,
    cfg: MoveConfig,
    cells: &mut [i32],
    kernel: K,
) -> MoveResult
where
    K: Fn(usize, usize) -> MoveStatus + Sync,
{
    run_move(policy, cfg, cells, |_i, cells_i| *cells_i as usize, kernel)
        .expect("seed from current cell is infallible")
}

/// Direct-hop move: like [`move_loop`] but each particle's search
/// starts from `seed(i)` — typically the structured overlay's
/// `locate(new_position)` (Figure 7(b)) — instead of walking from its
/// old cell.
pub fn move_loop_direct_hop<K, S>(
    policy: &ExecPolicy,
    cfg: MoveConfig,
    cells: &mut [i32],
    seed: S,
    kernel: K,
) -> MoveResult
where
    K: Fn(usize, usize) -> MoveStatus + Sync,
    S: Fn(usize) -> usize + Sync,
{
    run_move(policy, cfg, cells, |i, _| seed(i), kernel).expect("seeded move is infallible")
}

fn run_move<K, S>(
    policy: &ExecPolicy,
    cfg: MoveConfig,
    cells: &mut [i32],
    seed: S,
    kernel: K,
) -> Result<MoveResult, String>
where
    K: Fn(usize, usize) -> MoveStatus + Sync,
    S: Fn(usize, &i32) -> usize + Sync,
{
    let total_visits = AtomicU64::new(0);
    let max_chain = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let out_of_range = AtomicU64::new(0);
    let moved = AtomicU64::new(0);
    // Lock-free handle; recording is a relaxed atomic add per particle,
    // and the whole path is skipped when no telemetry is current.
    let hops_hist = crate::telemetry::hist("move.hops_per_particle");
    use std::sync::atomic::AtomicU32;
    let chain_log: Vec<AtomicU32> = if cfg.record_chains {
        (0..cells.len()).map(|_| AtomicU32::new(0)).collect()
    } else {
        Vec::new()
    };

    // Per-particle hop chain; returns Some(final_cell) or None (remove).
    let chase = |i: usize, start: usize| -> Option<usize> {
        let mut cell = start;
        let mut chain = 0u32;
        let finish = |chain: u32| {
            total_visits.fetch_add(chain as u64, Ordering::Relaxed);
            max_chain.fetch_max(chain as u64, Ordering::Relaxed);
            if let Some(slot) = chain_log.get(i) {
                slot.store(chain, Ordering::Relaxed);
            }
            if let Some(h) = &hops_hist {
                h.record(chain as u64);
            }
        };
        loop {
            chain += 1;
            let status = kernel(i, cell);
            match status {
                MoveStatus::Done => {
                    if let Some(n) = cfg.n_cells {
                        if cell >= n {
                            out_of_range.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    finish(chain);
                    return Some(cell);
                }
                MoveStatus::NeedRemove => {
                    finish(chain);
                    return None;
                }
                MoveStatus::NeedMove(next) => {
                    if chain >= cfg.max_hops {
                        aborted.fetch_add(1, Ordering::Relaxed);
                        finish(chain);
                        return None;
                    }
                    cell = next;
                }
            }
        }
    };

    let removed: Vec<usize> = match policy {
        ExecPolicy::Seq => {
            let mut removed = Vec::new();
            for (i, c) in cells.iter_mut().enumerate() {
                let start = seed(i, c);
                match chase(i, start) {
                    Some(final_cell) => {
                        if final_cell as i32 != *c {
                            moved.fetch_add(1, Ordering::Relaxed);
                        }
                        *c = final_cell as i32;
                    }
                    None => removed.push(i),
                }
            }
            removed
        }
        _ => policy.run(|| {
            let mut removed: Vec<usize> = cells
                .par_iter_mut()
                .enumerate()
                .fold(Vec::new, |mut acc, (i, c)| {
                    let start = seed(i, c);
                    match chase(i, start) {
                        Some(final_cell) => {
                            if final_cell as i32 != *c {
                                moved.fetch_add(1, Ordering::Relaxed);
                            }
                            *c = final_cell as i32;
                        }
                        None => acc.push(i),
                    }
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            // Rayon's fold/reduce usually concatenates ascending chunk
            // results in order; skip the sort when that already holds.
            if !removed.is_sorted() {
                removed.par_sort_unstable();
            }
            removed
        }),
    };

    // `ParticleDats::remove_fill` consumes this list assuming sorted
    // unique ascending indices.
    debug_assert!(
        removed.windows(2).all(|w| w[0] < w[1]),
        "removal list must be strictly ascending"
    );

    let result = MoveResult {
        removed,
        total_visits: total_visits.into_inner(),
        max_chain: max_chain.into_inner() as u32,
        aborted: aborted.into_inner(),
        chains: chain_log.into_iter().map(AtomicU32::into_inner).collect(),
        out_of_range: out_of_range.into_inner(),
        moved: moved.into_inner(),
    };
    crate::telemetry::count("move.relocated", result.moved);
    crate::telemetry::count("move.removed", result.removed.len() as u64);
    crate::telemetry::count("move.visits", result.total_visits);
    crate::telemetry::count("move.aborted", result.aborted);
    crate::telemetry::count("move.out_of_range", result.out_of_range);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D "mesh" of `n` cells in a row; kernel walks a particle
    /// towards its target cell one hop at a time.
    fn walk_kernel(targets: &[usize]) -> impl Fn(usize, usize) -> MoveStatus + Sync + '_ {
        move |i, cell| {
            let t = targets[i];
            if cell == t {
                MoveStatus::Done
            } else if cell < t {
                MoveStatus::NeedMove(cell + 1)
            } else {
                MoveStatus::NeedMove(cell - 1)
            }
        }
    }

    #[test]
    fn multihop_reaches_targets() {
        for pol in [ExecPolicy::Seq, ExecPolicy::Par] {
            let targets = vec![5usize, 0, 3, 9, 2];
            let mut cells = vec![0i32, 0, 3, 1, 7];
            let r = move_loop(
                &pol,
                MoveConfig::default(),
                &mut cells,
                walk_kernel(&targets),
            );
            assert!(r.removed.is_empty());
            assert_eq!(cells, vec![5, 0, 3, 9, 2]);
            // visits: |0-5|+1 + 1 + 1 + |1-9|+1 + |7-2|+1 = 6+1+1+9+6 = 23
            assert_eq!(r.total_visits, 23);
            assert_eq!(r.max_chain, 9);
            assert_eq!(r.aborted, 0);
            assert!((r.mean_visits(5) - 4.6).abs() < 1e-12);
            // Particles 0, 3 and 4 changed cell; 1 and 2 stayed put.
            assert_eq!(r.moved, 3);
        }
    }

    #[test]
    fn removal_collects_sorted_indices() {
        for pol in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut cells: Vec<i32> = (0..100).collect();
            // Remove every particle whose index is divisible by 7.
            let r = move_loop(&pol, MoveConfig::default(), &mut cells, |i, _| {
                if i % 7 == 0 {
                    MoveStatus::NeedRemove
                } else {
                    MoveStatus::Done
                }
            });
            let expect: Vec<usize> = (0..100).filter(|i| i % 7 == 0).collect();
            assert_eq!(r.removed, expect);
        }
    }

    #[test]
    fn direct_hop_uses_seed_and_visits_less() {
        let targets: Vec<usize> = (0..64).map(|i| (i * 13) % 50).collect();
        let mut cells_mh = vec![0i32; 64];
        let r_mh = move_loop(
            &ExecPolicy::Seq,
            MoveConfig::default(),
            &mut cells_mh,
            walk_kernel(&targets),
        );

        let mut cells_dh = vec![0i32; 64];
        // Perfect overlay: seed == target (a fine DH approximation).
        let r_dh = move_loop_direct_hop(
            &ExecPolicy::Seq,
            MoveConfig::default(),
            &mut cells_dh,
            |i| targets[i],
            walk_kernel(&targets),
        );
        assert_eq!(cells_mh, cells_dh);
        assert_eq!(r_dh.total_visits, 64, "perfect seed = one visit each");
        assert!(r_dh.total_visits < r_mh.total_visits);
    }

    #[test]
    fn imperfect_seed_falls_back_to_multihop() {
        let targets = vec![10usize; 8];
        let mut cells = vec![0i32; 8];
        // Seed lands 2 cells short, engine walks the rest.
        let r = move_loop_direct_hop(
            &ExecPolicy::Par,
            MoveConfig::default(),
            &mut cells,
            |_| 8usize,
            walk_kernel(&targets),
        );
        assert!(r.removed.is_empty());
        assert!(cells.iter().all(|&c| c == 10));
        assert_eq!(r.max_chain, 3); // 8 -> 9 -> 10(done)
    }

    #[test]
    fn cycling_kernel_is_aborted_not_hung() {
        let mut cells = vec![0i32, 0];
        let r = move_loop(
            &ExecPolicy::Seq,
            MoveConfig {
                max_hops: 50,
                ..Default::default()
            },
            &mut cells,
            |_i, cell| MoveStatus::NeedMove(1 - cell), // ping-pong forever
        );
        assert_eq!(r.aborted, 2);
        assert_eq!(r.removed, vec![0, 1]);
        assert_eq!(r.max_chain, 50);
    }

    #[test]
    fn empty_particle_set() {
        let mut cells: Vec<i32> = vec![];
        let r = move_loop(
            &ExecPolicy::Par,
            MoveConfig::default(),
            &mut cells,
            |_, _| MoveStatus::Done,
        );
        assert!(r.removed.is_empty());
        assert_eq!(r.total_visits, 0);
        assert_eq!(r.mean_visits(0), 0.0);
    }

    #[test]
    fn mean_visits_guards_division_by_zero() {
        // A populated result queried with zero alive particles (every
        // particle removed mid-step) must report 0.0, not NaN/inf.
        let r = MoveResult {
            total_visits: 23,
            ..MoveResult::default()
        };
        assert_eq!(r.mean_visits(0), 0.0);
        assert!(r.mean_visits(0).is_finite());
        assert!((r.mean_visits(5) - 4.6).abs() < 1e-12);
        // And a zero-visit result stays 0 for any divisor.
        assert_eq!(MoveResult::default().mean_visits(7), 0.0);
    }

    #[test]
    fn chain_recording() {
        let targets = vec![3usize, 0, 5];
        let mut cells = vec![0i32, 0, 0];
        let cfg = MoveConfig {
            record_chains: true,
            ..Default::default()
        };
        for pol in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut c = cells.clone();
            let r = move_loop(&pol, cfg, &mut c, walk_kernel(&targets));
            assert_eq!(r.chains, vec![4, 1, 6], "{pol:?}");
        }
        // Off by default.
        let r = move_loop(
            &ExecPolicy::Seq,
            MoveConfig::default(),
            &mut cells,
            walk_kernel(&targets),
        );
        assert!(r.chains.is_empty());
    }

    #[test]
    fn out_of_range_final_cells_are_counted() {
        let targets = vec![3usize, 12, 5]; // 12 exceeds the 10-cell set
        let cfg = MoveConfig {
            n_cells: Some(10),
            ..Default::default()
        };
        for pol in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut cells = vec![0i32, 0, 0];
            let r = move_loop(&pol, cfg, &mut cells, walk_kernel(&targets));
            assert_eq!(r.out_of_range, 1, "{pol:?}");
        }
        // Without the audit hook nothing is counted.
        let mut cells = vec![0i32, 0, 0];
        let r = move_loop(
            &ExecPolicy::Seq,
            MoveConfig::default(),
            &mut cells,
            walk_kernel(&targets),
        );
        assert_eq!(r.out_of_range, 0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let targets: Vec<usize> = (0..500).map(|i| (i * 31 + 7) % 200).collect();
        let mut cells_a: Vec<i32> = (0..500).map(|i| i % 200).collect();
        let mut cells_b = cells_a.clone();
        let ra = move_loop(
            &ExecPolicy::Seq,
            MoveConfig::default(),
            &mut cells_a,
            walk_kernel(&targets),
        );
        let rb = move_loop(
            &ExecPolicy::Par,
            MoveConfig::default(),
            &mut cells_b,
            walk_kernel(&targets),
        );
        assert_eq!(cells_a, cells_b);
        assert_eq!(ra.total_visits, rb.total_visits);
        assert_eq!(ra.removed, rb.removed);
        assert_eq!(ra.max_chain, rb.max_chain);
        assert_eq!(ra.moved, rb.moved);
    }
}
