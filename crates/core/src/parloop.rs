//! Direct parallel-loop executors — `opp_par_loop` over a set where
//! every *written* argument is declared on the iteration set itself.
//!
//! These loops are the embarrassingly parallel case: element `i` owns
//! slice `[i*dim, (i+1)*dim)` of each written dat, so the executors
//! hand each iteration disjoint `&mut [f64]` windows via rayon's
//! `par_chunks_mut` zips. Read-only data (direct or gathered through
//! maps) is captured by the kernel closure — `&Dat` is `Sync`, so this
//! is race-free by construction, with no `unsafe` anywhere.
//!
//! This is precisely what the paper's generated OpenMP backend does
//! with `#pragma omp parallel for` over the set, and what the
//! sequential backend does with a plain loop.

use crate::dat::Dat;
use rayon::prelude::*;
use std::sync::Arc;

/// Execution policy: the "backend" selector.
///
/// * [`ExecPolicy::Seq`] — the paper's `seq` backend (a plain loop).
/// * [`ExecPolicy::Par`] — the OpenMP-analogue backend on the global
///   rayon pool.
/// * [`ExecPolicy::pool`] — same, on a dedicated pool with a fixed
///   thread count (used by the scaling benches).
#[derive(Clone, Default)]
pub enum ExecPolicy {
    Seq,
    #[default]
    Par,
    Pool(Arc<rayon::ThreadPool>),
}

impl std::fmt::Debug for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPolicy::Seq => write!(f, "ExecPolicy::Seq"),
            ExecPolicy::Par => write!(f, "ExecPolicy::Par"),
            ExecPolicy::Pool(p) => {
                write!(f, "ExecPolicy::Pool({} threads)", p.current_num_threads())
            }
        }
    }
}

impl ExecPolicy {
    /// A dedicated pool with exactly `n` threads.
    pub fn pool(n: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("failed to build rayon pool");
        ExecPolicy::Pool(Arc::new(pool))
    }

    /// Is any thread-level parallelism in play?
    pub fn is_parallel(&self) -> bool {
        !matches!(self, ExecPolicy::Seq)
    }

    /// Number of worker threads this policy runs on.
    pub fn threads(&self) -> usize {
        match self {
            ExecPolicy::Seq => 1,
            ExecPolicy::Par => rayon::current_num_threads(),
            ExecPolicy::Pool(p) => p.current_num_threads(),
        }
    }

    /// Run `f` in this policy's execution context (inside the dedicated
    /// pool if there is one), so that nested rayon calls use the right
    /// worker set.
    #[inline]
    pub fn run<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match self {
            ExecPolicy::Pool(p) => p.install(f),
            _ => f(),
        }
    }
}

/// Telemetry hook shared by every executor in this module: one loop
/// invocation, `bytes` of writable data handed to kernels. A no-op
/// costing one thread-local read when no telemetry is current.
fn note_loop(bytes: usize) {
    if let Some(t) = crate::telemetry::current() {
        t.counter_add("parloop.invocations", 1);
        t.counter_add("parloop.bytes_touched", bytes as u64);
    }
}

/// Loop over `n` elements writing one dat.
///
/// `kernel(i, w0)` receives the element index and the element's
/// mutable window of `w0`.
pub fn par_loop_direct1<F>(policy: &ExecPolicy, w0: &mut Dat, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let d0 = w0.dim();
    note_loop(w0.len() * d0 * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, c0) in w0.raw_mut().chunks_mut(d0).enumerate() {
                f(i, c0);
            }
        }
        _ => policy.run(|| {
            w0.raw_mut()
                .par_chunks_mut(d0)
                .enumerate()
                .for_each(|(i, c0)| f(i, c0));
        }),
    }
}

/// Loop over `n` elements writing two dats (they must be declared on
/// the same set — checked by length).
pub fn par_loop_direct2<F>(policy: &ExecPolicy, w0: &mut Dat, w1: &mut Dat, f: F)
where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    assert_eq!(
        w0.len(),
        w1.len(),
        "direct loop dats must share the iteration set"
    );
    let (d0, d1) = (w0.dim(), w1.dim());
    note_loop((w0.len() * d0 + w1.len() * d1) * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, (c0, c1)) in w0
                .raw_mut()
                .chunks_mut(d0)
                .zip(w1.raw_mut().chunks_mut(d1))
                .enumerate()
            {
                f(i, c0, c1);
            }
        }
        _ => policy.run(|| {
            w0.raw_mut()
                .par_chunks_mut(d0)
                .zip(w1.raw_mut().par_chunks_mut(d1))
                .enumerate()
                .for_each(|(i, (c0, c1))| f(i, c0, c1));
        }),
    }
}

/// Loop over `n` elements writing three dats.
pub fn par_loop_direct3<F>(policy: &ExecPolicy, w0: &mut Dat, w1: &mut Dat, w2: &mut Dat, f: F)
where
    F: Fn(usize, &mut [f64], &mut [f64], &mut [f64]) + Sync,
{
    assert_eq!(
        w0.len(),
        w1.len(),
        "direct loop dats must share the iteration set"
    );
    assert_eq!(
        w0.len(),
        w2.len(),
        "direct loop dats must share the iteration set"
    );
    let (d0, d1, d2) = (w0.dim(), w1.dim(), w2.dim());
    note_loop((w0.len() * d0 + w1.len() * d1 + w2.len() * d2) * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, ((c0, c1), c2)) in w0
                .raw_mut()
                .chunks_mut(d0)
                .zip(w1.raw_mut().chunks_mut(d1))
                .zip(w2.raw_mut().chunks_mut(d2))
                .enumerate()
            {
                f(i, c0, c1, c2);
            }
        }
        _ => policy.run(|| {
            w0.raw_mut()
                .par_chunks_mut(d0)
                .zip(w1.raw_mut().par_chunks_mut(d1))
                .zip(w2.raw_mut().par_chunks_mut(d2))
                .enumerate()
                .for_each(|(i, ((c0, c1), c2))| f(i, c0, c1, c2));
        }),
    }
}

/// Loop over `n` elements writing four dats.
pub fn par_loop_direct4<F>(
    policy: &ExecPolicy,
    w0: &mut Dat,
    w1: &mut Dat,
    w2: &mut Dat,
    w3: &mut Dat,
    f: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64], &mut [f64], &mut [f64]) + Sync,
{
    assert_eq!(
        w0.len(),
        w1.len(),
        "direct loop dats must share the iteration set"
    );
    assert_eq!(
        w0.len(),
        w2.len(),
        "direct loop dats must share the iteration set"
    );
    assert_eq!(
        w0.len(),
        w3.len(),
        "direct loop dats must share the iteration set"
    );
    let (d0, d1, d2, d3) = (w0.dim(), w1.dim(), w2.dim(), w3.dim());
    note_loop((w0.len() * d0 + w1.len() * d1 + w2.len() * d2 + w3.len() * d3) * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, (((c0, c1), c2), c3)) in w0
                .raw_mut()
                .chunks_mut(d0)
                .zip(w1.raw_mut().chunks_mut(d1))
                .zip(w2.raw_mut().chunks_mut(d2))
                .zip(w3.raw_mut().chunks_mut(d3))
                .enumerate()
            {
                f(i, c0, c1, c2, c3);
            }
        }
        _ => policy.run(|| {
            w0.raw_mut()
                .par_chunks_mut(d0)
                .zip(w1.raw_mut().par_chunks_mut(d1))
                .zip(w2.raw_mut().par_chunks_mut(d2))
                .zip(w3.raw_mut().par_chunks_mut(d3))
                .enumerate()
                .for_each(|(i, (((c0, c1), c2), c3))| f(i, c0, c1, c2, c3));
        }),
    }
}

/// Slice-based variant of [`par_loop_direct1`]: iterate a flat
/// `len*dim` buffer (particle columns are stored this way inside
/// [`crate::particles::ParticleDats`]).
pub fn par_loop_slices1<F>(policy: &ExecPolicy, dim0: usize, s0: &mut [f64], f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    note_loop(s0.len() * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, c0) in s0.chunks_mut(dim0).enumerate() {
                f(i, c0);
            }
        }
        _ => policy.run(|| {
            s0.par_chunks_mut(dim0)
                .enumerate()
                .for_each(|(i, c0)| f(i, c0));
        }),
    }
}

/// Slice-based two-column loop (e.g. the push kernel writing position
/// and velocity columns of the particle store).
pub fn par_loop_slices2<F>(
    policy: &ExecPolicy,
    (dim0, s0): (usize, &mut [f64]),
    (dim1, s1): (usize, &mut [f64]),
    f: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    assert_eq!(
        s0.len() / dim0,
        s1.len() / dim1,
        "slice loops must share the iteration set"
    );
    note_loop((s0.len() + s1.len()) * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, (c0, c1)) in s0.chunks_mut(dim0).zip(s1.chunks_mut(dim1)).enumerate() {
                f(i, c0, c1);
            }
        }
        _ => policy.run(|| {
            s0.par_chunks_mut(dim0)
                .zip(s1.par_chunks_mut(dim1))
                .enumerate()
                .for_each(|(i, (c0, c1))| f(i, c0, c1));
        }),
    }
}

/// Slice-based three-column loop.
pub fn par_loop_slices3<F>(
    policy: &ExecPolicy,
    (dim0, s0): (usize, &mut [f64]),
    (dim1, s1): (usize, &mut [f64]),
    (dim2, s2): (usize, &mut [f64]),
    f: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64], &mut [f64]) + Sync,
{
    assert_eq!(
        s0.len() / dim0,
        s1.len() / dim1,
        "slice loops must share the iteration set"
    );
    assert_eq!(
        s0.len() / dim0,
        s2.len() / dim2,
        "slice loops must share the iteration set"
    );
    note_loop((s0.len() + s1.len() + s2.len()) * 8);
    match policy {
        ExecPolicy::Seq => {
            for (i, ((c0, c1), c2)) in s0
                .chunks_mut(dim0)
                .zip(s1.chunks_mut(dim1))
                .zip(s2.chunks_mut(dim2))
                .enumerate()
            {
                f(i, c0, c1, c2);
            }
        }
        _ => policy.run(|| {
            s0.par_chunks_mut(dim0)
                .zip(s1.par_chunks_mut(dim1))
                .zip(s2.par_chunks_mut(dim2))
                .enumerate()
                .for_each(|(i, ((c0, c1), c2))| f(i, c0, c1, c2));
        }),
    }
}

/// Slice-based two-column loop that additionally hands each iteration
/// its mutable cell-map entry — the shape of a fused move+deposit
/// kernel (updates pos, vel and p2c together).
pub fn par_loop_slices2_cells<F>(
    policy: &ExecPolicy,
    (dim0, s0): (usize, &mut [f64]),
    (dim1, s1): (usize, &mut [f64]),
    cells: &mut [i32],
    f: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64], &mut i32) + Sync,
{
    assert_eq!(
        s0.len() / dim0,
        s1.len() / dim1,
        "slice loops must share the iteration set"
    );
    assert_eq!(
        s0.len() / dim0,
        cells.len(),
        "slice loops must share the iteration set"
    );
    note_loop((s0.len() + s1.len()) * 8 + cells.len() * 4);
    match policy {
        ExecPolicy::Seq => {
            for (i, ((c0, c1), cl)) in s0
                .chunks_mut(dim0)
                .zip(s1.chunks_mut(dim1))
                .zip(cells.iter_mut())
                .enumerate()
            {
                f(i, c0, c1, cl);
            }
        }
        _ => policy.run(|| {
            s0.par_chunks_mut(dim0)
                .zip(s1.par_chunks_mut(dim1))
                .zip(cells.par_iter_mut())
                .enumerate()
                .for_each(|(i, ((c0, c1), cl))| f(i, c0, c1, cl));
        }),
    }
}

/// Segment-batched two-column particle loop over a **fresh** CSR cell
/// index (`ParticleDats::cell_index`): the kernel runs once per
/// non-empty cell segment and receives `(cell, first_particle,
/// column-0 segment slice, column-1 segment slice)`. Cell-level data
/// (fields, geometry) can then be loaded once per segment instead of
/// once per particle — the cell-locality engine's gather counterpart
/// to the sorted-segments deposit. Parallelism is over segments, so
/// iterations stay race-free by slice disjointness.
pub fn par_loop_segments2<F>(
    policy: &ExecPolicy,
    cell_start: &[usize],
    (dim0, s0): (usize, &mut [f64]),
    (dim1, s1): (usize, &mut [f64]),
    f: F,
) where
    F: Fn(usize, usize, &mut [f64], &mut [f64]) + Sync,
{
    let n = *cell_start.last().expect("cell index must be non-empty");
    assert_eq!(s0.len(), n * dim0, "column 0 does not match the index");
    assert_eq!(s1.len(), n * dim1, "column 1 does not match the index");
    note_loop((s0.len() + s1.len()) * 8);
    // Carve both columns into per-segment disjoint windows.
    let mut segs: Vec<(usize, usize, &mut [f64], &mut [f64])> =
        Vec::with_capacity(cell_start.len() - 1);
    let mut rest0 = s0;
    let mut rest1 = s1;
    for c in 0..cell_start.len() - 1 {
        let count = cell_start[c + 1] - cell_start[c];
        if count == 0 {
            continue;
        }
        let (w0, r0) = rest0.split_at_mut(count * dim0);
        let (w1, r1) = rest1.split_at_mut(count * dim1);
        rest0 = r0;
        rest1 = r1;
        segs.push((c, cell_start[c], w0, w1));
    }
    match policy {
        ExecPolicy::Seq => {
            for (c, lo, w0, w1) in segs {
                f(c, lo, w0, w1);
            }
        }
        _ => policy.run(|| {
            segs.par_iter_mut()
                .for_each(|(c, lo, w0, w1)| f(*c, *lo, w0, w1));
        }),
    }
}

/// [`par_loop_segments2`] plus the mutable cell column — for fused
/// mover kernels (CabanaPIC's `Move_Deposit`) that gather through the
/// fresh CSR index *and* relocate particles in the same pass. The
/// kernel receives `(cell, first_particle, col-0 window, col-1 window,
/// cell-id window)`; cell-id writes go through the window, so the
/// caller must mark the store dirty (the indexed accessors on
/// `ParticleDats` do this automatically).
/// One cell segment's working set: `(cell, first_particle, col-0
/// window, col-1 window, cell-id window)`.
type SegWindow<'a> = (usize, usize, &'a mut [f64], &'a mut [f64], &'a mut [i32]);

pub fn par_loop_segments2_cells<F>(
    policy: &ExecPolicy,
    cell_start: &[usize],
    (dim0, s0): (usize, &mut [f64]),
    (dim1, s1): (usize, &mut [f64]),
    cells: &mut [i32],
    f: F,
) where
    F: Fn(usize, usize, &mut [f64], &mut [f64], &mut [i32]) + Sync,
{
    let n = *cell_start.last().expect("cell index must be non-empty");
    assert_eq!(s0.len(), n * dim0, "column 0 does not match the index");
    assert_eq!(s1.len(), n * dim1, "column 1 does not match the index");
    assert_eq!(cells.len(), n, "cell column does not match the index");
    note_loop((s0.len() + s1.len()) * 8 + cells.len() * 4);
    let mut segs: Vec<SegWindow<'_>> = Vec::with_capacity(cell_start.len() - 1);
    let (mut rest0, mut rest1, mut restc) = (s0, s1, cells);
    for c in 0..cell_start.len() - 1 {
        let count = cell_start[c + 1] - cell_start[c];
        if count == 0 {
            continue;
        }
        let (w0, r0) = rest0.split_at_mut(count * dim0);
        let (w1, r1) = rest1.split_at_mut(count * dim1);
        let (wc, rc) = restc.split_at_mut(count);
        rest0 = r0;
        rest1 = r1;
        restc = rc;
        segs.push((c, cell_start[c], w0, w1, wc));
    }
    match policy {
        ExecPolicy::Seq => {
            for (c, lo, w0, w1, wc) in segs {
                f(c, lo, w0, w1, wc);
            }
        }
        _ => policy.run(|| {
            segs.par_iter_mut()
                .for_each(|(c, lo, w0, w1, wc)| f(*c, *lo, w0, w1, wc));
        }),
    }
}

/// Gather loop: writes one dat on the iteration set, reading anything
/// else through the kernel closure (e.g. indirect reads via maps —
/// `compute_electric_field` in Figure 5 gathers node potentials through
/// the cells→nodes map). Semantically identical to [`par_loop_direct1`];
/// the separate name keeps call sites self-describing.
pub fn par_loop_gather<F>(policy: &ExecPolicy, w0: &mut Dat, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    par_loop_direct1(policy, w0, f);
}

/// Parallel reduction over a read-only dat: sum of `g(i, element)`.
/// Used for diagnostics (field energy, total charge) which the paper's
/// apps compute every step.
pub fn par_reduce_sum<G>(policy: &ExecPolicy, d: &Dat, g: G) -> f64
where
    G: Fn(usize, &[f64]) -> f64 + Sync,
{
    let dim = d.dim();
    note_loop(d.len() * dim * 8);
    match policy {
        ExecPolicy::Seq => d.raw().chunks(dim).enumerate().map(|(i, c)| g(i, c)).sum(),
        _ => policy.run(|| {
            d.raw()
                .par_chunks(dim)
                .enumerate()
                .map(|(i, c)| g(i, c))
                .sum()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policies() -> Vec<ExecPolicy> {
        vec![ExecPolicy::Seq, ExecPolicy::Par, ExecPolicy::pool(3)]
    }

    #[test]
    fn direct1_all_policies_agree() {
        for pol in policies() {
            let mut d = Dat::zeros("x", 100, 2);
            par_loop_direct1(&pol, &mut d, |i, x| {
                x[0] = i as f64;
                x[1] = 2.0 * i as f64;
            });
            for i in 0..100 {
                assert_eq!(d.el(i), &[i as f64, 2.0 * i as f64], "{pol:?}");
            }
        }
    }

    #[test]
    fn direct2_zips_consistently() {
        for pol in policies() {
            let mut a = Dat::from_fn("a", 64, 1, |i, _| i as f64);
            let mut b = Dat::zeros("b", 64, 3);
            par_loop_direct2(&pol, &mut a, &mut b, |i, av, bv| {
                av[0] *= 2.0;
                bv[2] = i as f64 + av[0];
            });
            for i in 0..64 {
                assert_eq!(a.get(i), 2.0 * i as f64);
                assert_eq!(b.el(i)[2], 3.0 * i as f64);
            }
        }
    }

    #[test]
    fn direct3_and_4() {
        for pol in policies() {
            let mut a = Dat::zeros("a", 10, 1);
            let mut b = Dat::zeros("b", 10, 1);
            let mut c = Dat::zeros("c", 10, 1);
            let mut d = Dat::zeros("d", 10, 1);
            par_loop_direct3(&pol, &mut a, &mut b, &mut c, |i, x, y, z| {
                x[0] = i as f64;
                y[0] = i as f64 * 2.0;
                z[0] = x[0] + y[0];
            });
            assert_eq!(c.get(9), 27.0);
            par_loop_direct4(&pol, &mut a, &mut b, &mut c, &mut d, |_i, x, y, z, w| {
                w[0] = x[0] + y[0] + z[0];
            });
            assert_eq!(d.get(9), 9.0 + 18.0 + 27.0);
        }
    }

    #[test]
    fn gather_reads_through_map() {
        // cells gather from nodes via c2n, as in Figure 5.
        let node_potential = Dat::from_fn("np", 6, 1, |i, _| i as f64);
        let c2n: Vec<[usize; 2]> = vec![[0, 1], [2, 3], [4, 5]];
        for pol in policies() {
            let mut ef = Dat::zeros("ef", 3, 1);
            par_loop_gather(&pol, &mut ef, |c, e| {
                let nd = c2n[c];
                e[0] = node_potential.get(nd[0]) + node_potential.get(nd[1]);
            });
            assert_eq!(ef.get(0), 1.0);
            assert_eq!(ef.get(2), 9.0);
        }
    }

    #[test]
    #[should_panic(expected = "share the iteration set")]
    fn mismatched_sets_rejected() {
        let mut a = Dat::zeros("a", 10, 1);
        let mut b = Dat::zeros("b", 11, 1);
        par_loop_direct2(&ExecPolicy::Seq, &mut a, &mut b, |_, _, _| {});
    }

    #[test]
    fn reduce_sum_matches_serial() {
        let d = Dat::from_fn("x", 1000, 2, |i, c| (i + c) as f64);
        let serial = par_reduce_sum(&ExecPolicy::Seq, &d, |_, c| c[0] * c[1]);
        for pol in policies() {
            let got = par_reduce_sum(&pol, &d, |_, c| c[0] * c[1]);
            assert!(
                (got - serial).abs() < 1e-6 * serial.abs().max(1.0),
                "{pol:?}"
            );
        }
    }

    #[test]
    fn policy_introspection() {
        assert_eq!(ExecPolicy::Seq.threads(), 1);
        assert!(!ExecPolicy::Seq.is_parallel());
        let p = ExecPolicy::pool(2);
        assert_eq!(p.threads(), 2);
        assert!(p.is_parallel());
        assert!(format!("{p:?}").contains("2 threads"));
    }

    #[test]
    fn pool_policy_runs_inside_its_pool() {
        let p = ExecPolicy::pool(2);
        let threads_seen = p.run(rayon::current_num_threads);
        assert_eq!(threads_seen, 2);
    }

    #[test]
    fn slice_loops_match_dat_loops() {
        for pol in policies() {
            let mut a = vec![0.0; 30]; // 10 elements, dim 3
            let mut b = vec![0.0; 10];
            par_loop_slices2(&pol, (3, &mut a), (1, &mut b), |i, av, bv| {
                av[1] = i as f64;
                bv[0] = 2.0 * i as f64;
            });
            assert_eq!(a[3 * 4 + 1], 4.0);
            assert_eq!(b[7], 14.0);

            let mut c = vec![1.0; 10];
            par_loop_slices1(&pol, 1, &mut c, |i, cv| cv[0] += i as f64);
            assert_eq!(c[9], 10.0);

            let mut d = vec![0.0; 20];
            par_loop_slices3(
                &pol,
                (3, &mut a),
                (1, &mut b),
                (2, &mut d),
                |_i, av, bv, dv| {
                    dv[0] = av[1] + bv[0];
                },
            );
            assert_eq!(d[2 * 5], 5.0 + 10.0);
        }
    }

    #[test]
    fn segment_loop_matches_per_particle_loop() {
        // 4 cells with 0/3/1/2 particles; per-cell factor applied to
        // dim-2 column 0, particle index recorded in column 1.
        let cell_start = [0usize, 0, 3, 4, 6];
        let factors = [10.0, 20.0, 30.0, 40.0];
        for pol in policies() {
            let mut a: Vec<f64> = (0..12).map(|v| v as f64).collect();
            let mut b = vec![0.0; 6];
            par_loop_segments2(
                &pol,
                &cell_start,
                (2, &mut a),
                (1, &mut b),
                |cell, lo, av, bv| {
                    let factor = factors[cell]; // hoisted per segment
                    for (k, (ac, bc)) in av.chunks_mut(2).zip(bv.chunks_mut(1)).enumerate() {
                        ac[0] *= factor;
                        bc[0] = (lo + k) as f64;
                    }
                },
            );
            let mut expect_a: Vec<f64> = (0..12).map(|v| v as f64).collect();
            for c in 0..4 {
                for p in cell_start[c]..cell_start[c + 1] {
                    expect_a[p * 2] *= factors[c];
                }
            }
            assert_eq!(a, expect_a, "{pol:?}");
            assert_eq!(b, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], "{pol:?}");
        }
    }

    #[test]
    fn segment_cells_loop_relocates_and_matches() {
        // Same partition as above, plus per-window cell relocation:
        // every particle of cell 1 hops to cell 2.
        let cell_start = [0usize, 0, 3, 4, 6];
        for pol in policies() {
            let mut a: Vec<f64> = (0..12).map(|v| v as f64).collect();
            let mut b = vec![0.0; 6];
            let mut cells: Vec<i32> = vec![1, 1, 1, 2, 3, 3];
            par_loop_segments2_cells(
                &pol,
                &cell_start,
                (2, &mut a),
                (1, &mut b),
                &mut cells,
                |cell, lo, av, bv, cw| {
                    for (k, ((ac, bc), cl)) in av
                        .chunks_mut(2)
                        .zip(bv.chunks_mut(1))
                        .zip(cw.iter_mut())
                        .enumerate()
                    {
                        assert_eq!(*cl as usize, cell, "window matches home cell");
                        ac[1] = cell as f64;
                        bc[0] = (lo + k) as f64;
                        if cell == 1 {
                            *cl = 2;
                        }
                    }
                },
            );
            assert_eq!(cells, vec![2, 2, 2, 2, 3, 3], "{pol:?}");
            assert_eq!(b, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], "{pol:?}");
            assert_eq!((a[1], a[7], a[9]), (1.0, 2.0, 3.0), "{pol:?}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match the index")]
    fn segment_loop_rejects_mismatched_columns() {
        let cell_start = [0usize, 2];
        let mut a = vec![0.0; 3]; // wrong: 2 particles * dim 2 = 4
        let mut b = vec![0.0; 2];
        par_loop_segments2(
            &ExecPolicy::Seq,
            &cell_start,
            (2, &mut a),
            (1, &mut b),
            |_, _, _, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "share the iteration set")]
    fn slice_loop_shape_mismatch_rejected() {
        let mut a = vec![0.0; 9];
        let mut b = vec![0.0; 4];
        par_loop_slices2(&ExecPolicy::Seq, (3, &mut a), (1, &mut b), |_, _, _| {});
    }

    #[test]
    fn empty_set_is_a_noop() {
        for pol in policies() {
            let mut d = Dat::zeros("x", 0, 3);
            par_loop_direct1(&pol, &mut d, |_, _| panic!("kernel must not run"));
        }
    }
}
