//! The `Simulation` trait — the surface a differential test harness
//! needs to drive *any* OP-PIC application, independent of its mesh,
//! kernels, or backend configuration.
//!
//! The paper's central claim is that one science source produces
//! equivalent results on every backend; `crates/conformance` proves the
//! analogue claim for this repo by stepping two applications across the
//! whole backend matrix and comparing runs pairwise. That harness only
//! needs four things from an application: advance one step, report how
//! many particles it holds, expose *order-insensitive* observables
//! (mesh-indexed dats and global scalars — particle array order is not
//! comparable across backends because sorting and migration permute
//! it), and self-check its structural invariants.

/// One named, order-insensitive quantity exposed for differential
/// comparison — a mesh-indexed dat (values indexed by cell/node id) or
/// a vector of global scalars. Never particle-indexed data: particle
/// array order legitimately differs between backends.
#[derive(Debug, Clone, PartialEq)]
pub struct Observable {
    pub name: String,
    pub values: Vec<f64>,
}

impl Observable {
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Observable {
            name: name.into(),
            values,
        }
    }

    /// Single-scalar observable.
    pub fn scalar(name: impl Into<String>, value: f64) -> Self {
        Observable::new(name, vec![value])
    }
}

/// A steppable PIC application, as seen by the conformance harness.
pub trait Simulation {
    /// Advance exactly one PIC step.
    fn advance(&mut self);

    /// Steps taken so far.
    fn step_count(&self) -> usize;

    /// Particles currently alive.
    fn n_particles(&self) -> usize;

    /// `(injected, removed)` during the most recent [`advance`] —
    /// the harness checks particle-count conservation with
    /// `n_after == n_before + injected - removed` after every step.
    ///
    /// [`advance`]: Simulation::advance
    fn last_step_flux(&self) -> (usize, usize);

    /// Order-insensitive observables for differential comparison.
    /// Names and lengths must match across backend configurations of
    /// the same scenario.
    fn observables(&self) -> Vec<Observable>;

    /// Application-level structural invariants (particles inside their
    /// cells, maps in range, conserved quantities within tolerance).
    fn invariants(&self) -> Result<(), String>;
}

/// A simulation whose full state can be captured to bytes and later
/// restored — the contract the resilience layer's recovery driver
/// needs for rollback-and-replay. Implementations must round-trip
/// bit-exactly: `save_state` then `restore_state` then re-`advance`
/// must reproduce the run an uninterrupted simulation would have
/// produced (RNG state included).
pub trait Recoverable: Simulation {
    /// Append a complete snapshot of the simulation to `out`.
    fn save_state(&self, out: &mut Vec<u8>) -> std::io::Result<()>;

    /// Replace the simulation's state with a snapshot previously
    /// produced by [`save_state`]. Must validate integrity (footer
    /// CRC) and shape before mutating any state.
    ///
    /// [`save_state`]: Recoverable::save_state
    fn restore_state(&mut self, bytes: &[u8]) -> std::io::Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-crate implementation: proves the trait is object-
    /// safe and that a harness can drive it through `dyn`.
    struct Counter {
        steps: usize,
        particles: usize,
    }

    impl Simulation for Counter {
        fn advance(&mut self) {
            self.steps += 1;
            self.particles += 2;
        }
        fn step_count(&self) -> usize {
            self.steps
        }
        fn n_particles(&self) -> usize {
            self.particles
        }
        fn last_step_flux(&self) -> (usize, usize) {
            (2, 0)
        }
        fn observables(&self) -> Vec<Observable> {
            vec![
                Observable::scalar("n", self.particles as f64),
                Observable::new("hist", vec![self.steps as f64; 3]),
            ]
        }
        fn invariants(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe_and_flux_balances() {
        let mut sim: Box<dyn Simulation> = Box::new(Counter {
            steps: 0,
            particles: 0,
        });
        for _ in 0..3 {
            let before = sim.n_particles();
            sim.advance();
            let (inj, rem) = sim.last_step_flux();
            assert_eq!(sim.n_particles(), before + inj - rem);
        }
        assert_eq!(sim.step_count(), 3);
        let obs = sim.observables();
        assert_eq!(obs[0].values, vec![6.0]);
        assert_eq!(obs[1].name, "hist");
        sim.invariants().unwrap();
    }
}
