//! Minimal JSON support for the telemetry subsystem.
//!
//! The workspace is hermetic (no serde); the telemetry sink writes JSON
//! Lines by hand and the analyzer / report tools parse them back with
//! this small recursive-descent parser. It supports the full JSON value
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) — enough to round-trip every event record in
//! [`crate::telemetry`] — and deliberately nothing more (no streaming,
//! no zero-copy, no custom number types).

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order (the schema checks
/// in the analyzer care that `type` comes first in emitted events).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number (error-free only for |n| < 2^53, which
    /// covers every counter the telemetry layer emits).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Quoted, escaped JSON string literal for `s`.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Render an `f64` the way the telemetry sink does: finite numbers as
/// shortest round-trip decimal, non-finite as `null` (JSON has no NaN).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integers without a dot; keep that (valid JSON).
        if s == "-0" {
            s = "0".into();
        }
        s
    } else {
        "null".into()
    }
}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// non-whitespace is an error (JSONL readers split on newlines first).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Advance one whole UTF-8 char.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))?;
        self.i += 4;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"type":"span","z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["type", "z", "a"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t quote\" slash\\ nl\n unicode\u{1F600}\u{7}";
        let quoted = quote(original);
        let back = parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn num_rendering() {
        assert_eq!(num(1.0), "1");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(-0.0), "0");
        assert_eq!(parse(&num(1e300)).unwrap(), Json::Num(1e300));
    }

    #[test]
    fn u64_view() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
