//! Loop plans — a declared loop paired with its execution choice.
//!
//! In the C++ OP-PIC the code generator sees every `opp_par_loop` call
//! with its access descriptors and *derives* a safe execution scheme
//! (sequential, atomics, scatter arrays, colored...). This runtime
//! reproduction inverts that: the application picks an executor and a
//! race strategy by hand. A [`LoopPlan`] records that pairing so the
//! choice can be *checked* instead of generated — statically by
//! `oppic-analyzer`, and cheaply at declaration time by
//! [`LoopPlan::quick_check`].

use crate::access::{Access, Indirection, LoopDecl};
use crate::deposit::DepositMethod;
use crate::parloop::ExecPolicy;

/// How a plan resolves write races from indirect increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceStrategy {
    /// No race handling: only sound for direct loops or sequential
    /// execution.
    None,
    /// One of the deposit-loop methods (scatter arrays, atomics,
    /// segmented reduction, or an explicitly serial deposit).
    Deposit(DepositMethod),
    /// Distance-2 cell coloring: same-color iterations never share a
    /// target element, so each color round is race-free.
    Colored,
}

impl RaceStrategy {
    /// Whether this strategy makes concurrent indirect increments safe.
    /// `Deposit(Serial)` counts: it is *safe* (it falls back to
    /// sequential execution), merely not parallel — the analyzer
    /// reports that mismatch as a warning, not an error.
    pub fn handles_races(self) -> bool {
        !matches!(self, RaceStrategy::None)
    }

    pub fn label(self) -> String {
        match self {
            RaceStrategy::None => "none".to_string(),
            RaceStrategy::Deposit(m) => format!("deposit:{}", m.label()),
            RaceStrategy::Colored => "colored".to_string(),
        }
    }
}

/// A declared loop bound to the execution policy and race strategy the
/// application actually runs it with.
#[derive(Debug, Clone)]
pub struct LoopPlan {
    pub decl: LoopDecl,
    /// Whether the chosen policy runs iterations concurrently.
    pub parallel: bool,
    /// Worker count under that policy (1 when sequential).
    pub threads: usize,
    pub race_strategy: RaceStrategy,
    /// Whether the particle store's CSR cell index is fresh at the
    /// point the loop runs (`None` = the app did not attest either
    /// way). `Deposit(SortedSegments)` and `Deposit(Matrix)` *require*
    /// `Some(true)`: on a stale index their segment ownership argument
    /// collapses and the plain `+=` races.
    pub index_fresh: Option<bool>,
}

impl LoopPlan {
    pub fn new(decl: LoopDecl, policy: &ExecPolicy, race_strategy: RaceStrategy) -> Self {
        LoopPlan {
            decl,
            parallel: policy.is_parallel(),
            threads: policy.threads(),
            race_strategy,
            index_fresh: None,
        }
    }

    /// A plan for a loop with no indirect increments.
    pub fn direct(decl: LoopDecl, policy: &ExecPolicy) -> Self {
        LoopPlan::new(decl, policy, RaceStrategy::None)
    }

    /// Attest whether the CSR cell index is fresh when this loop runs
    /// (`ParticleDats::index_is_fresh` at dispatch time).
    pub fn with_index_freshness(mut self, fresh: bool) -> Self {
        self.index_fresh = Some(fresh);
        self
    }

    pub fn name(&self) -> &str {
        &self.decl.name
    }

    /// The cheap subset of the analyzer's static pass, suitable for
    /// running at loop-declaration time: per-argument descriptor
    /// coherence plus the fatal plan rules — a parallel loop with an
    /// indirect increment and no race strategy is a data race, and a
    /// sorted-segments deposit without a fresh-index attestation has no
    /// segment-ownership guarantee.
    pub fn quick_check(&self) -> Result<(), String> {
        self.decl.validate()?;
        if self.parallel && self.decl.needs_race_handling() && !self.race_strategy.handles_races() {
            return Err(format!(
                "loop '{}': indirect INC under a parallel policy needs a race \
                 strategy (scatter/atomics/segmented/colored), plan has none",
                self.decl.name
            ));
        }
        if self.parallel
            && matches!(
                self.race_strategy,
                RaceStrategy::Deposit(DepositMethod::SortedSegments | DepositMethod::Matrix)
            )
            && self.index_fresh != Some(true)
        {
            let RaceStrategy::Deposit(m) = self.race_strategy else {
                unreachable!("matched Deposit above")
            };
            return Err(format!(
                "loop '{}': {m:?} requires a fresh CSR cell index \
                 (sort_by_cell with no mutation since); attest it with \
                 with_index_freshness(true)",
                self.decl.name
            ));
        }
        Ok(())
    }
}

/// Every loop an application declares, collected for whole-program
/// auditing — the analyzer's unit of work.
#[derive(Debug, Clone, Default)]
pub struct PlanRegistry {
    plans: Vec<LoopPlan>,
}

impl PlanRegistry {
    pub fn new() -> Self {
        PlanRegistry::default()
    }

    pub fn register(&mut self, plan: LoopPlan) -> &mut Self {
        self.plans.push(plan);
        self
    }

    pub fn plans(&self) -> &[LoopPlan] {
        &self.plans
    }

    pub fn get(&self, name: &str) -> Option<&LoopPlan> {
        self.plans.iter().find(|p| p.decl.name == name)
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Human-readable dump of every plan (used by `--validate`).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for p in &self.plans {
            let mode = if p.parallel {
                format!("parallel x{}", p.threads)
            } else {
                "sequential".to_string()
            };
            let _ = writeln!(s, "{} [{mode}, races: {}]", p.decl, p.race_strategy.label());
        }
        s
    }
}

/// Does a plan contain an indirect (or double-indirect) increment?
/// Convenience re-statement of [`LoopDecl::needs_race_handling`] at
/// plan level, used by the analyzer's strategy checks.
pub fn has_indirect_inc(decl: &LoopDecl) -> bool {
    decl.args
        .iter()
        .any(|a| a.access == Access::Inc && a.indirection != Indirection::Direct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ArgDecl;

    fn deposit_decl() -> LoopDecl {
        LoopDecl::new(
            "DepositCharge",
            "particles",
            vec![
                ArgDecl::direct("lc", 4, Access::Read),
                ArgDecl::double_indirect("node_charge", 1, Access::Inc, "p2c.c2n"),
            ],
        )
    }

    #[test]
    fn racy_parallel_plan_is_rejected() {
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, RaceStrategy::None);
        let err = plan.quick_check().unwrap_err();
        assert!(err.contains("race strategy"), "{err}");
    }

    #[test]
    fn sequential_plan_needs_no_strategy() {
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Seq, RaceStrategy::None);
        assert!(plan.quick_check().is_ok());
    }

    #[test]
    fn strategies_make_parallel_deposits_coherent() {
        for strat in [
            RaceStrategy::Deposit(DepositMethod::ScatterArrays),
            RaceStrategy::Deposit(DepositMethod::Atomics),
            RaceStrategy::Deposit(DepositMethod::SegmentedReduction),
            RaceStrategy::Colored,
        ] {
            let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat);
            assert!(plan.quick_check().is_ok(), "{strat:?}");
        }
    }

    #[test]
    fn sorted_segments_needs_fresh_index_attestation() {
        let strat = RaceStrategy::Deposit(DepositMethod::SortedSegments);
        // No attestation: rejected under a parallel policy.
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat);
        let err = plan.quick_check().unwrap_err();
        assert!(err.contains("fresh"), "{err}");
        // Stale attestation: also rejected.
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(false);
        assert!(plan.quick_check().is_err());
        // Fresh: fine.
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(true);
        assert!(plan.quick_check().is_ok());
        // Sequential runs are the serial fold anyway.
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Seq, strat);
        assert!(plan.quick_check().is_ok());
    }

    #[test]
    fn matrix_needs_fresh_index_attestation() {
        // The matrixized deposit shares SortedSegments' ownership
        // argument, so it carries the same freshness precondition.
        let strat = RaceStrategy::Deposit(DepositMethod::Matrix);
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat);
        let err = plan.quick_check().unwrap_err();
        assert!(err.contains("Matrix") && err.contains("fresh"), "{err}");
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(false);
        assert!(plan.quick_check().is_err());
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(true);
        assert!(plan.quick_check().is_ok());
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Seq, strat);
        assert!(plan.quick_check().is_ok());
    }

    #[test]
    fn registry_collects_and_finds_plans() {
        let mut reg = PlanRegistry::new();
        reg.register(LoopPlan::direct(
            LoopDecl::new(
                "CalcPosVel",
                "particles",
                vec![ArgDecl::direct("pos", 3, Access::ReadWrite)],
            ),
            &ExecPolicy::Seq,
        ));
        reg.register(LoopPlan::new(
            deposit_decl(),
            &ExecPolicy::Par,
            RaceStrategy::Colored,
        ));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("DepositCharge").is_some());
        assert!(reg.get("missing").is_none());
        let s = reg.summary();
        assert!(s.contains("CalcPosVel") && s.contains("colored"), "{s}");
    }
}
