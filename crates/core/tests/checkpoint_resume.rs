//! Checkpoint roundtrip: save → restore → resume must be bit-identical
//! to the uninterrupted run.
//!
//! A toy simulation exercising every checkpointed ingredient — a
//! particle store (SoA columns + cell map), a mesh dat, and the RNG
//! word position — is stepped 4 ways: straight through, and through a
//! save at step 2 restored into a fresh instance. Any hidden state not
//! captured by the checkpoint (or any restore-order sensitivity) shows
//! up as a bitwise mismatch.

use oppic_core::checkpoint::{BinReader, BinWriter};
use oppic_core::dat::Dat;
use oppic_core::particles::{ColId, ParticleDats};
use std::io::Cursor;

/// Minimal simulation with the same checkpoint surface as the real
/// applications: particles drift by an RNG-driven kick, deposit into a
/// field, occasionally get removed and re-injected.
struct ToySim {
    step: u64,
    rng: u64,
    ps: ParticleDats,
    vel: ColId,
    field: Dat,
}

const N_CELLS: i32 = 16;

impl ToySim {
    fn new(seed: u64) -> Self {
        let mut ps = ParticleDats::new();
        let vel = ps.decl_dat("vel", 1);
        ps.inject_into(&[0, 3, 3, 7, 11, 15]);
        for i in 0..ps.len() {
            ps.el_mut(vel, i)[0] = (i as f64 + 1.0) * 0.25;
        }
        ToySim {
            step: 0,
            rng: seed | 1,
            ps,
            vel,
            field: Dat::zeros("field", N_CELLS as usize, 1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    fn advance(&mut self) {
        self.step += 1;
        // Kick + drift: cell hops driven by the RNG stream.
        for i in 0..self.ps.len() {
            let kick = (self.next_u64() % 3) as i32 - 1;
            let c = (self.ps.cells()[i] + kick).rem_euclid(N_CELLS);
            self.ps.cells_mut()[i] = c;
            self.ps.el_mut(self.vel, i)[0] += 0.125 * kick as f64;
        }
        // Deposit velocities into the field.
        for i in 0..self.ps.len() {
            let c = self.ps.cells()[i] as usize;
            self.field.raw_mut()[c] += self.ps.el(self.vel, i)[0];
        }
        // Remove one particle every other step, inject a fresh one.
        if self.step.is_multiple_of(2) {
            let victim = (self.next_u64() % self.ps.len() as u64) as usize;
            self.ps.remove_fill(&[victim]);
            let r = self.ps.inject(1, (self.step % N_CELLS as u64) as i32);
            let v = (self.next_u64() % 100) as f64 * 0.01;
            self.ps.el_mut(self.vel, r.start)[0] = v;
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut w = BinWriter::new(Vec::new()).unwrap();
        w.u64(self.step).unwrap();
        w.u64(self.rng).unwrap();
        self.ps.write_checkpoint(&mut w).unwrap();
        self.field.write_checkpoint(&mut w).unwrap();
        w.finish().unwrap()
    }

    fn restore(bytes: &[u8]) -> Self {
        let mut r = BinReader::new(Cursor::new(bytes)).unwrap();
        let step = r.u64().unwrap();
        let rng = r.u64().unwrap();
        let ps = ParticleDats::read_checkpoint(&mut r).unwrap();
        let field = Dat::read_checkpoint(&mut r).unwrap();
        let vel = ps.col_id("vel").expect("vel column survives");
        ToySim {
            step,
            rng,
            ps,
            vel,
            field,
        }
    }
}

fn assert_bit_identical(a: &ToySim, b: &ToySim) {
    assert_eq!(a.step, b.step);
    assert_eq!(a.rng, b.rng, "RNG stream position diverged");
    assert_eq!(a.ps.len(), b.ps.len());
    assert_eq!(a.ps.cells(), b.ps.cells(), "cell maps differ");
    // Bitwise, not approximate: a checkpoint is a state copy.
    let (av, bv) = (a.ps.col(a.vel), b.ps.col(b.vel));
    for (i, (x, y)) in av.iter().zip(bv).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "vel[{i}]: {x:e} vs {y:e}");
    }
    for (i, (x, y)) in a.field.raw().iter().zip(b.field.raw()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "field[{i}]: {x:e} vs {y:e}");
    }
}

#[test]
fn save_restore_resume_is_bit_identical_to_uninterrupted_run() {
    let mut straight = ToySim::new(0xCAFE);
    for _ in 0..4 {
        straight.advance();
    }

    let mut interrupted = ToySim::new(0xCAFE);
    interrupted.advance();
    interrupted.advance();
    let bytes = straight_through_checkpoint(&interrupted);
    drop(interrupted); // the original instance is gone — only bytes survive
    let mut resumed = ToySim::restore(&bytes);
    assert_eq!(resumed.step, 2);
    resumed.advance();
    resumed.advance();

    assert_bit_identical(&straight, &resumed);
}

/// Saving must not perturb the running simulation: save, keep stepping
/// the original, and the resumed copy still matches.
fn straight_through_checkpoint(sim: &ToySim) -> Vec<u8> {
    let a = sim.save();
    let b = sim.save();
    assert_eq!(a, b, "save is not read-only/deterministic");
    a
}

#[test]
fn checkpoint_roundtrip_preserves_store_schema() {
    let mut sim = ToySim::new(7);
    sim.advance();
    let restored = ToySim::restore(&sim.save());
    assert_eq!(restored.ps.col_id("vel"), Some(restored.vel));
    assert_eq!(restored.field.raw().len(), N_CELLS as usize);
    assert_bit_identical(&sim, &restored);
}
