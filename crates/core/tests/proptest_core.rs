//! Property-based tests on the DSL core data structures.

use oppic_core::{
    coloring_is_valid, deposit_loop, deposit_loop_colored, greedy_color_cells, move_loop,
    DepositMethod, Depositor, ExecPolicy, MoveConfig, MoveStatus, ParticleDats,
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// apply_permutation is exactly a permutation of all columns.
    #[test]
    fn permutation_preserves_multiset(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut ps = ParticleDats::new();
        let tag = ps.decl_dat("tag", 2);
        ps.inject(n, 0);
        for i in 0..n {
            ps.el_mut(tag, i)[0] = i as f64;
            ps.el_mut(tag, i)[1] = (i * i) as f64;
            ps.cells_mut()[i] = (i % 7) as i32;
        }
        // Fisher-Yates permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        ps.apply_permutation(&perm);
        let got: HashSet<u64> = (0..n).map(|i| ps.el(tag, i)[0] as u64).collect();
        prop_assert_eq!(got.len(), n);
        // Column coherence after the permutation.
        for i in 0..n {
            let t = ps.el(tag, i);
            prop_assert_eq!(t[1], t[0] * t[0]);
            prop_assert_eq!(ps.cells()[i], (t[0] as i32) % 7);
        }
    }

    /// sort_by_cell sorts and is stable over the original order.
    #[test]
    fn sort_by_cell_properties(
        cells in prop::collection::vec(0i32..20, 1..200),
    ) {
        let n = cells.len();
        let mut ps = ParticleDats::new();
        let tag = ps.decl_dat("tag", 1);
        ps.inject_into(&cells);
        for i in 0..n {
            ps.el_mut(tag, i)[0] = i as f64;
        }
        ps.sort_by_cell(20);
        prop_assert!(ps.cells().windows(2).all(|w| w[0] <= w[1]));
        for w in 0..n.saturating_sub(1) {
            if ps.cells()[w] == ps.cells()[w + 1] {
                prop_assert!(ps.el(tag, w)[0] < ps.el(tag, w + 1)[0], "stability");
            }
        }
    }

    /// Segmented reduction is deterministic: two parallel executions of
    /// the same random workload produce bitwise-equal buffers.
    #[test]
    fn segmented_reduction_deterministic(
        n in 1usize..3000,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let kernel = |i: usize, dep: &mut Depositor| {
            let h = (i as u64 + 1).wrapping_mul(seed | 1);
            dep.add((h % len as u64) as usize, (h % 1000) as f64 * 1e-3);
        };
        let run = || {
            let mut buf = vec![0.0; len];
            deposit_loop(&ExecPolicy::Par, DepositMethod::SegmentedReduction, n, &mut buf, kernel);
            buf
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// Greedy coloring is always valid and the colored deposit equals
    /// the serial deposit, for random cell→target meshes.
    #[test]
    fn coloring_correct_on_random_meshes(
        n_cells in 1usize..40,
        n_targets in 4usize..30,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rnd = move |m: usize| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % m as u64) as usize
        };
        let mesh: Vec<Vec<usize>> = (0..n_cells)
            .map(|_| {
                let mut t: Vec<usize> = (0..3).map(|_| rnd(n_targets)).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let (colors, n_colors) = greedy_color_cells(&mesh, n_targets);
        prop_assert!(coloring_is_valid(&mesh, n_targets, &colors));
        prop_assert!(n_colors <= n_cells);

        // Sorted particles, 2 per cell.
        let cells: Vec<i32> = (0..n_cells as i32).flat_map(|c| [c, c]).collect();
        let kernel = |i: usize, dep: &mut Depositor| {
            for &t in &mesh[i / 2] {
                dep.add(t, 1.0);
            }
        };
        let mut reference = vec![0.0; n_targets];
        deposit_loop(&ExecPolicy::Seq, DepositMethod::Serial, cells.len(), &mut reference, kernel);
        let mut got = vec![0.0; n_targets];
        deposit_loop_colored(&ExecPolicy::Par, &mut got, &cells, &colors, n_colors, kernel).unwrap();
        prop_assert_eq!(got, reference);
    }

    /// The move engine always terminates and ends where the kernel's
    /// target function says, for arbitrary start/target assignments on
    /// a ring topology (NeedMove can wrap).
    #[test]
    fn move_engine_terminates_on_rings(
        n_cells in 1usize..50,
        pairs in prop::collection::vec((0usize..50, 0usize..50), 1..100),
    ) {
        let targets: Vec<usize> = pairs.iter().map(|&(_, t)| t % n_cells).collect();
        let mut cells: Vec<i32> = pairs.iter().map(|&(s, _)| (s % n_cells) as i32).collect();
        let r = move_loop(&ExecPolicy::Par, MoveConfig::default(), &mut cells, |i, c| {
            if c == targets[i] {
                MoveStatus::Done
            } else {
                MoveStatus::NeedMove((c + 1) % n_cells) // ring walk
            }
        });
        prop_assert!(r.removed.is_empty());
        prop_assert_eq!(r.aborted, 0);
        for (i, &c) in cells.iter().enumerate() {
            prop_assert_eq!(c as usize, targets[i]);
        }
    }
}

// ---------------------------------------------------------------------
// Cell-locality engine: the CSR cell index and the sorted-segments
// executor.

use oppic_core::{deposit_loop_sorted, invert_cell_targets};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any interleaving of injections, hole-filled removals,
    /// raw cell reassignments and rebuilds, a final `sort_by_cell`
    /// leaves a fresh index whose offsets exactly partition `0..n`
    /// and agree with the live cell column.
    #[test]
    fn csr_index_survives_interleaved_mutations(
        n_cells in 1usize..12,
        init in prop::collection::vec(0usize..12, 0..40),
        ops in prop::collection::vec((0u8..4, 0usize..64, 0usize..12), 0..25),
    ) {
        let mut ps = ParticleDats::new();
        let _w = ps.decl_dat("w", 2);
        let init: Vec<i32> = init.iter().map(|&c| (c % n_cells) as i32).collect();
        ps.inject_into(&init);
        for (kind, a, b) in ops {
            match kind {
                0 => {
                    ps.inject(a % 7 + 1, (b % n_cells) as i32);
                }
                1 => {
                    if !ps.is_empty() {
                        // Up to two distinct ascending victims.
                        let i = a % ps.len();
                        let j = b % ps.len();
                        let mut victims = vec![i.min(j)];
                        if i != j { victims.push(i.max(j)); }
                        ps.remove_fill(&victims);
                    }
                }
                2 => {
                    if !ps.is_empty() {
                        let i = a % ps.len();
                        ps.cells_mut()[i] = (b % n_cells) as i32;
                        ps.refine_dirty(1);
                    }
                }
                _ => ps.sort_by_cell(n_cells),
            }
        }
        ps.sort_by_cell(n_cells);
        prop_assert!(ps.index_is_fresh());
        let idx = ps.cell_index().expect("fresh after rebuild").to_vec();
        prop_assert_eq!(idx.len(), n_cells + 1);
        prop_assert_eq!(idx[0], 0);
        prop_assert_eq!(idx[n_cells], ps.len());
        prop_assert!(idx.windows(2).all(|w| w[0] <= w[1]), "monotone offsets");
        for c in 0..n_cells {
            for i in idx[c]..idx[c + 1] {
                prop_assert_eq!(ps.cells()[i], c as i32, "cell column agreement");
            }
        }
    }

    /// `SortedSegments` over a freshly sorted store is bit-identical
    /// (exact f64 equality) to the serial deposit, for random meshes,
    /// random particle placements, random weights, random non-zero
    /// initial target contents, and both executors.
    #[test]
    fn sorted_segments_bit_identical_to_serial(
        n_cells in 1usize..20,
        n_targets in 1usize..25,
        particle_cells in prop::collection::vec(0usize..20, 0..120),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rnd = move |m: usize| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % m.max(1) as u64) as usize
        };
        // Random cell→targets relation, 1–4 slots per cell (repeats
        // allowed — slot order is part of the fold-order contract).
        let mesh: Vec<Vec<usize>> = (0..n_cells)
            .map(|_| (0..rnd(4) + 1).map(|_| rnd(n_targets)).collect())
            .collect();
        let inv = invert_cell_targets(&mesh, n_targets);

        let cells: Vec<i32> = particle_cells.iter().map(|&c| (c % n_cells) as i32).collect();
        let mut ps = ParticleDats::new();
        let _w = ps.decl_dat("w", 1);
        ps.inject_into(&cells);
        ps.sort_by_cell(n_cells);
        let idx = ps.cell_index().expect("fresh after sort").to_vec();
        let sorted_cells = ps.cells().to_vec();

        let weight = |p: usize, s: usize| {
            let h = (p as u64 + 3).wrapping_mul(s as u64 + 7).wrapping_mul(seed | 1);
            ((h % 2000) as f64 - 1000.0) * 1e-3
        };
        let init: Vec<f64> = (0..n_targets).map(|t| (t * 7 + 1) as f64 * 0.5).collect();

        let mut reference = init.clone();
        deposit_loop(
            &ExecPolicy::Seq,
            DepositMethod::Serial,
            sorted_cells.len(),
            &mut reference,
            |p, dep| {
                for (s, &t) in mesh[sorted_cells[p] as usize].iter().enumerate() {
                    dep.add(t, weight(p, s));
                }
            },
        );
        for policy in [ExecPolicy::Seq, ExecPolicy::Par] {
            let mut got = init.clone();
            deposit_loop_sorted(&policy, &idx, &inv, &mut got, weight);
            prop_assert_eq!(&got, &reference, "policy {:?}", policy);
        }
    }
}

// ---------------------------------------------------------------------
// Analyzer cross-checks (dev-dependency on oppic-analyzer): the shadow
// race detector and the plan checker must agree with the executors'
// own semantics on arbitrary meshes.

use oppic_analyzer::{check_plan, shadow_record, RaceOptions, Schedule, Severity};
use oppic_core::plan::{LoopPlan, PlanRegistry, RaceStrategy};
use oppic_core::{Access, ArgDecl, LoopDecl};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A parallel double-indirect INC with no race strategy is always
    /// rejected with an Error; the identical plan with scatter arrays
    /// (or any real strategy) is always clean.
    #[test]
    fn racy_deposit_plans_are_always_rejected(
        dim in 1usize..5,
        name_idx in 0usize..4,
    ) {
        let name = ["deposit", "scatter", "weigh", "accumulate"][name_idx];
        let decl = LoopDecl::new(
            name,
            "particles",
            vec![ArgDecl::double_indirect("charge", dim, Access::Inc, "p2c.c2n")],
        );
        let racy = LoopPlan::new(decl.clone(), &ExecPolicy::Par, RaceStrategy::None);
        prop_assert!(racy.quick_check().is_err());
        let diags = check_plan(&racy, None);
        prop_assert!(diags.iter().any(|d|
            d.code == "plan/racy-inc" && d.severity == Severity::Error));

        let safe = LoopPlan::new(
            decl.clone(),
            &ExecPolicy::Par,
            RaceStrategy::Deposit(DepositMethod::ScatterArrays),
        );
        prop_assert!(safe.quick_check().is_ok());
        prop_assert!(check_plan(&safe, None).is_empty());

        // Under a sequential policy even the strategy-less plan is fine.
        let seq = LoopPlan::new(decl, &ExecPolicy::Seq, RaceStrategy::None);
        prop_assert!(seq.quick_check().is_ok());
        let mut reg = PlanRegistry::new();
        reg.register(seq);
        prop_assert_eq!(reg.len(), 1);
    }

    /// On arbitrary meshes the shadow detector agrees with
    /// `coloring_is_valid`: a greedy distance-2 coloring admits no
    /// conflicts under the colored-groups schedule, collapsing all
    /// colors reintroduces a conflict exactly when two distinct cells
    /// share a target, and the all-parallel schedule with plain
    /// increments races exactly when two particles' cells overlap.
    #[test]
    fn shadow_detector_agrees_with_coloring_validity(
        n_targets in 2usize..30,
        cell_targets in prop::collection::vec(
            prop::collection::vec(0usize..30, 1..5), 1..20),
        particle_cells in prop::collection::vec(0usize..20, 2..60),
    ) {
        let cell_targets: Vec<Vec<usize>> = cell_targets
            .into_iter()
            .map(|t| t.into_iter().map(|x| x % n_targets).collect())
            .collect();
        let n_cells = cell_targets.len();
        let cells: Vec<usize> = particle_cells.into_iter().map(|c| c % n_cells).collect();

        let run = shadow_record(cells.len(), |i, ctx| {
            for &t in &cell_targets[cells[i]] {
                ctx.inc("charge", t);
            }
        });
        let opts = RaceOptions::default();

        // Sequential replay never conflicts.
        prop_assert!(run.detect_races(Schedule::Sequential, &opts).is_empty());

        // Greedy coloring + per-cell groups: race-free, and the
        // coloring itself audits as valid.
        let (colors, n_colors) = greedy_color_cells(&cell_targets, n_targets);
        prop_assert!(coloring_is_valid(&cell_targets, n_targets, &colors));
        prop_assert!(n_colors >= 1);
        let pc: Vec<u32> = cells.iter().map(|&c| colors[c]).collect();
        let pg: Vec<u32> = cells.iter().map(|&c| c as u32).collect();
        let races = run.detect_races(
            Schedule::ColoredGroups { colors: &pc, groups: &pg }, &opts);
        prop_assert!(races.is_empty(), "colored schedule raced: {:?}", races);

        // Collapse every color onto round 0. The shadow detector and
        // coloring_is_valid must agree on whether that is still safe.
        let merged = vec![0u32; n_cells];
        let merged_ok = coloring_is_valid(&cell_targets, n_targets, &merged);
        let mpc = vec![0u32; cells.len()];
        let merged_races = run.detect_races(
            Schedule::ColoredGroups { colors: &mpc, groups: &pg }, &opts);
        // The coloring audit covers all cell pairs; the shadow run only
        // sees cells that hold particles — so an invalid merged
        // coloring with races is consistent, and a race implies
        // invalidity, but not conversely.
        if !merged_races.is_empty() {
            prop_assert!(!merged_ok,
                "shadow found a race but coloring_is_valid accepted the merged colors");
        }
        if merged_ok {
            prop_assert!(merged_races.is_empty());
        }

        // All-parallel with plain increments: a race exists iff two
        // different particles touch a common target.
        let mut owner: Vec<Option<usize>> = vec![None; n_targets];
        let mut expect_conflict = false;
        for (i, &c) in cells.iter().enumerate() {
            for &t in &cell_targets[c] {
                match owner[t] {
                    Some(prev) if prev != i => { expect_conflict = true; }
                    _ => owner[t] = Some(i),
                }
            }
        }
        let all_par = run.detect_races(Schedule::AllParallel, &opts);
        prop_assert_eq!(!all_par.is_empty(), expect_conflict);

        // Synchronised increments make the same schedule safe.
        let sync = RaceOptions { inc_is_synchronised: true, ..RaceOptions::default() };
        prop_assert!(run.detect_races(Schedule::AllParallel, &sync).is_empty());
    }
}
