//! Property-based tests on the DSL core data structures.

use oppic_core::{
    coloring_is_valid, deposit_loop, deposit_loop_colored, greedy_color_cells, move_loop,
    DepositMethod, Depositor, ExecPolicy, MoveConfig, MoveStatus, ParticleDats,
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// apply_permutation is exactly a permutation of all columns.
    #[test]
    fn permutation_preserves_multiset(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut ps = ParticleDats::new();
        let tag = ps.decl_dat("tag", 2);
        ps.inject(n, 0);
        for i in 0..n {
            ps.el_mut(tag, i)[0] = i as f64;
            ps.el_mut(tag, i)[1] = (i * i) as f64;
            ps.cells_mut()[i] = (i % 7) as i32;
        }
        // Fisher-Yates permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        ps.apply_permutation(&perm);
        let got: HashSet<u64> = (0..n).map(|i| ps.el(tag, i)[0] as u64).collect();
        prop_assert_eq!(got.len(), n);
        // Column coherence after the permutation.
        for i in 0..n {
            let t = ps.el(tag, i);
            prop_assert_eq!(t[1], t[0] * t[0]);
            prop_assert_eq!(ps.cells()[i], (t[0] as i32) % 7);
        }
    }

    /// sort_by_cell sorts and is stable over the original order.
    #[test]
    fn sort_by_cell_properties(
        cells in prop::collection::vec(0i32..20, 1..200),
    ) {
        let n = cells.len();
        let mut ps = ParticleDats::new();
        let tag = ps.decl_dat("tag", 1);
        ps.inject_into(&cells);
        for i in 0..n {
            ps.el_mut(tag, i)[0] = i as f64;
        }
        ps.sort_by_cell(20);
        prop_assert!(ps.cells().windows(2).all(|w| w[0] <= w[1]));
        for w in 0..n.saturating_sub(1) {
            if ps.cells()[w] == ps.cells()[w + 1] {
                prop_assert!(ps.el(tag, w)[0] < ps.el(tag, w + 1)[0], "stability");
            }
        }
    }

    /// Segmented reduction is deterministic: two parallel executions of
    /// the same random workload produce bitwise-equal buffers.
    #[test]
    fn segmented_reduction_deterministic(
        n in 1usize..3000,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let kernel = |i: usize, dep: &mut Depositor| {
            let h = (i as u64 + 1).wrapping_mul(seed | 1);
            dep.add((h % len as u64) as usize, (h % 1000) as f64 * 1e-3);
        };
        let run = || {
            let mut buf = vec![0.0; len];
            deposit_loop(&ExecPolicy::Par, DepositMethod::SegmentedReduction, n, &mut buf, kernel);
            buf
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// Greedy coloring is always valid and the colored deposit equals
    /// the serial deposit, for random cell→target meshes.
    #[test]
    fn coloring_correct_on_random_meshes(
        n_cells in 1usize..40,
        n_targets in 4usize..30,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rnd = move |m: usize| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % m as u64) as usize
        };
        let mesh: Vec<Vec<usize>> = (0..n_cells)
            .map(|_| {
                let mut t: Vec<usize> = (0..3).map(|_| rnd(n_targets)).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let (colors, n_colors) = greedy_color_cells(&mesh, n_targets);
        prop_assert!(coloring_is_valid(&mesh, n_targets, &colors));
        prop_assert!(n_colors <= n_cells);

        // Sorted particles, 2 per cell.
        let cells: Vec<i32> = (0..n_cells as i32).flat_map(|c| [c, c]).collect();
        let kernel = |i: usize, dep: &mut Depositor| {
            for &t in &mesh[i / 2] {
                dep.add(t, 1.0);
            }
        };
        let mut reference = vec![0.0; n_targets];
        deposit_loop(&ExecPolicy::Seq, DepositMethod::Serial, cells.len(), &mut reference, kernel);
        let mut got = vec![0.0; n_targets];
        deposit_loop_colored(&ExecPolicy::Par, &mut got, &cells, &colors, n_colors, kernel).unwrap();
        prop_assert_eq!(got, reference);
    }

    /// The move engine always terminates and ends where the kernel's
    /// target function says, for arbitrary start/target assignments on
    /// a ring topology (NeedMove can wrap).
    #[test]
    fn move_engine_terminates_on_rings(
        n_cells in 1usize..50,
        pairs in prop::collection::vec((0usize..50, 0usize..50), 1..100),
    ) {
        let targets: Vec<usize> = pairs.iter().map(|&(_, t)| t % n_cells).collect();
        let mut cells: Vec<i32> = pairs.iter().map(|&(s, _)| (s % n_cells) as i32).collect();
        let r = move_loop(&ExecPolicy::Par, MoveConfig::default(), &mut cells, |i, c| {
            if c == targets[i] {
                MoveStatus::Done
            } else {
                MoveStatus::NeedMove((c + 1) % n_cells) // ring walk
            }
        });
        prop_assert!(r.removed.is_empty());
        prop_assert_eq!(r.aborted, 0);
        for (i, &c) in cells.iter().enumerate() {
            prop_assert_eq!(c as usize, targets[i]);
        }
    }
}
