//! Property-based tests on the telemetry subsystem: histogram
//! snapshot merging forms a commutative monoid (the distributed
//! drivers rely on merge order not mattering), and the span stack
//! stays balanced under arbitrary nesting, drop orders, and
//! panic-unwind.

use oppic_core::{Histogram, HistogramSnapshot, Telemetry};
use proptest::prelude::*;
use std::sync::Arc;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), and merging equals recording the
    /// concatenated stream into one histogram.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..50),
        b in prop::collection::vec(0u64..1_000_000, 0..50),
        c in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = snapshot_of(&all);
        prop_assert_eq!(&left, &direct);
        prop_assert_eq!(left.count, all.len() as u64);
        prop_assert_eq!(left.sum, all.iter().sum::<u64>());
    }

    /// Merge is commutative and the empty snapshot is its identity.
    #[test]
    fn histogram_merge_commutes_with_identity(
        a in prop::collection::vec(0u64..1_000_000, 0..50),
        b in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&with_empty, &sa);
    }

    /// Whatever order span guards are dropped in — nested scopes,
    /// out-of-order explicit drops, interleaved re-opens — the stack
    /// is balanced once they are all gone, and every opened span
    /// records exactly one kernel call.
    #[test]
    fn span_stack_balances_under_any_drop_order(
        script in prop::collection::vec((any::<bool>(), any::<u32>()), 1..40),
    ) {
        let tel = Arc::new(Telemetry::new());
        let mut open = Vec::new();
        let mut opened = 0u64;
        for (push, pick) in script {
            if push || open.is_empty() {
                open.push(tel.span(format!("k{}", opened % 5).as_str()));
                opened += 1;
            } else {
                // Dropping a non-top guard truncates the stack down to
                // its depth; the stranded inner guards become no-ops.
                let i = pick as usize % open.len();
                open.remove(i);
            }
        }
        drop(open);
        prop_assert_eq!(tel.open_spans(), 0);
        let calls: u64 = tel
            .kernels_snapshot()
            .iter()
            .map(|(_, k)| k.calls)
            .sum();
        prop_assert_eq!(calls, opened);
    }

    /// A panic in a nested span scope unwinds through the guards and
    /// leaves the stack balanced (the structural guarantee behind the
    /// run-footer's `open_spans: 0` invariant).
    #[test]
    fn span_stack_survives_panic_unwind(
        depth in 1usize..8,
        panic_at in 0usize..8,
    ) {
        let tel = Arc::new(Telemetry::new());
        let panic_at = panic_at % depth;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fn descend(tel: &Arc<Telemetry>, level: usize, depth: usize, panic_at: usize) {
                if level == depth {
                    return;
                }
                let _s = tel.span(&format!("level{level}"));
                assert_ne!(level, panic_at, "scripted panic");
                descend(tel, level + 1, depth, panic_at);
            }
            descend(&tel, 0, depth, panic_at);
        }));
        prop_assert!(result.is_err(), "the scripted panic must fire");
        prop_assert_eq!(tel.open_spans(), 0);
        // The spans that did open were recorded on unwind.
        let calls: u64 = tel
            .kernels_snapshot()
            .iter()
            .map(|(_, k)| k.calls)
            .sum();
        prop_assert_eq!(calls, (panic_at + 1) as u64);
    }
}
