//! Criterion microbench: substrate layers — CG solve, halo exchange,
//! partitioners, overlay build/locate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oppic_linalg::{cg_solve, CgConfig, CsrBuilder};
use oppic_mesh::{StructuredOverlay, TetMesh, Vec3};
use oppic_mpi::comm::world_run;
use oppic_mpi::halo::build_rank_meshes;
use oppic_mpi::partition::{directional_partition, graph_growing_partition, rcb_partition};

fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("cg_solve");
    for &n in &[8usize, 14] {
        let mesh = TetMesh::duct(n, n, n, 1.0, 1.0, 1.0);
        let fem = oppic_fempic::FemSolver::assemble(&mesh, 1.0);
        let _ = fem;
        // Assemble a Laplacian-like SPD system directly.
        let nn = mesh.n_nodes();
        let mut b = CsrBuilder::new(nn, nn);
        for cidx in 0..mesh.n_cells() {
            let gders = &mesh.shape_deriv[cidx];
            let vol = mesh.volume[cidx];
            let nd = mesh.c2n[cidx];
            for i in 0..4 {
                b.add(nd[i], nd[i], vol * gders[i].dot(gders[i]) + 1e-3);
                for j in 0..4 {
                    if i != j {
                        b.add(nd[i], nd[j], vol * gders[i].dot(gders[j]));
                    }
                }
            }
        }
        let a = b.build();
        let rhs = vec![1.0; nn];
        g.bench_with_input(BenchmarkId::new("jacobi_pcg", nn), &nn, |bch, _| {
            bch.iter(|| {
                let mut x = vec![0.0; nn];
                cg_solve(
                    &a,
                    &rhs,
                    &mut x,
                    CgConfig {
                        rtol: 1e-8,
                        ..Default::default()
                    },
                )
            });
        });
    }
    g.finish();
}

fn bench_halo(c: &mut Criterion) {
    let mesh = TetMesh::duct(10, 10, 10, 1.0, 1.0, 1.0);
    let cen: Vec<Vec3> = (0..mesh.n_cells()).map(|i| mesh.cell_centroid(i)).collect();
    let ranks = 4usize;
    let part = directional_partition(&cen, 0, ranks);
    let c2c: Vec<Vec<i32>> = mesh.c2c.iter().map(|a| a.to_vec()).collect();
    let meshes = build_rank_meshes(&c2c, &part, ranks);
    c.bench_function("halo_forward_exchange_4ranks", |b| {
        b.iter(|| {
            world_run(ranks, |ctx| {
                let rm = &meshes[ctx.rank];
                let mut data = vec![1.0; rm.n_local() * 3];
                rm.plan.forward(ctx, &mut data, 3).expect("forward halo");
                data[0]
            })
        });
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let mesh = TetMesh::duct(12, 12, 12, 1.0, 1.0, 1.0);
    let cen: Vec<Vec3> = (0..mesh.n_cells()).map(|i| mesh.cell_centroid(i)).collect();
    let c2c: Vec<Vec<i32>> = mesh.c2c.iter().map(|a| a.to_vec()).collect();
    let mut g = c.benchmark_group("partition_10k_cells");
    g.bench_function("directional", |b| {
        b.iter(|| directional_partition(&cen, 0, 16))
    });
    g.bench_function("rcb", |b| b.iter(|| rcb_partition(&cen, 16)));
    g.bench_function("graph_growing", |b| {
        b.iter(|| graph_growing_partition(&c2c, 16))
    });
    g.finish();
}

fn bench_overlay(c: &mut Criterion) {
    let mesh = TetMesh::duct(8, 8, 8, 1.0, 1.0, 1.0);
    let mut g = c.benchmark_group("overlay");
    g.bench_function("build_32cubed", |b| {
        b.iter(|| StructuredOverlay::build(&mesh, [32; 3]))
    });
    let ov = StructuredOverlay::build(&mesh, [32; 3]);
    g.bench_function("locate", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % 997;
            let t = k as f64 / 997.0;
            ov.locate(Vec3::new(t, 1.0 - t, t * 0.5))
        })
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_cg, bench_halo, bench_partitioners, bench_overlay
}
criterion_main!(benches);
