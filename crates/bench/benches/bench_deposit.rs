//! Criterion microbench: the deposit strategies across contention
//! levels (the Section 3.3 design space), the cell-locality engine's
//! sorted-segments and matrixized executors across ppc regimes, and the telemetry
//! hot paths (kernel-record interning, counter publication on/off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oppic_core::{
    deposit_loop, deposit_loop_matrix, deposit_loop_sorted, invert_cell_targets, DepositMethod,
    ExecPolicy, MatAccumulate, ParticleDats, Profiler,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn bench_deposit(c: &mut Criterion) {
    let n = 100_000usize;
    let mut g = c.benchmark_group("deposit");
    g.throughput(Throughput::Elements(n as u64));
    for &targets in &[16usize, 4096, 262_144] {
        for method in [
            DepositMethod::Serial,
            DepositMethod::ScatterArrays,
            DepositMethod::Atomics,
            DepositMethod::UnsafeAtomics,
            DepositMethod::SegmentedReduction,
        ] {
            let policy = if method == DepositMethod::Serial {
                ExecPolicy::Seq
            } else {
                ExecPolicy::Par
            };
            g.bench_with_input(
                BenchmarkId::new(format!("{}/targets{targets}", method.label()), targets),
                &targets,
                |b, &targets| {
                    let mut buf = vec![0.0f64; targets];
                    b.iter(|| {
                        deposit_loop(&policy, method, n, &mut buf, |i, dep| {
                            for k in 0..4usize {
                                dep.add((i.wrapping_mul(2654435761) + k * 97) % targets, 1.0);
                            }
                        })
                    });
                },
            );
        }
    }
    g.finish();
}

/// Sorted-segments over a fresh CSR index vs the scatter-array
/// baseline on the same (sorted) store, per mean ppc.
fn bench_deposit_sorted(c: &mut Criterion) {
    let n_cells = 2048usize;
    let n_targets = 4096usize;
    let c2n: Vec<[usize; 4]> = (0..n_cells)
        .map(|c| {
            let h = c.wrapping_mul(2654435761);
            [
                h % n_targets,
                (h + 1) % n_targets,
                (h + 2) % n_targets,
                (h + 3) % n_targets,
            ]
        })
        .collect();
    let inv = invert_cell_targets(&c2n, n_targets);
    let mut g = c.benchmark_group("deposit_sorted");
    for &ppc in &[8usize, 64] {
        let n = n_cells * ppc;
        g.throughput(Throughput::Elements(n as u64));
        let cells: Vec<i32> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761) % n_cells) as i32)
            .collect();
        let mut ps = ParticleDats::new();
        let wid = ps.decl_dat("w", 4);
        ps.inject_into(&cells);
        for (i, w) in ps.col_mut(wid).iter_mut().enumerate() {
            *w = (i % 17) as f64 * 0.0625;
        }
        ps.sort_by_cell(n_cells);
        let idx = ps.cell_index().expect("fresh after sort").to_vec();
        let scells = ps.cells().to_vec();
        let w = ps.col(wid).to_vec();
        g.bench_with_input(BenchmarkId::new("ss", ppc), &ppc, |b, _| {
            let mut buf = vec![0.0f64; n_targets];
            b.iter(|| {
                deposit_loop_sorted(&ExecPolicy::Par, &idx, &inv, &mut buf, |p, s| w[p * 4 + s])
            });
        });
        g.bench_with_input(BenchmarkId::new("mx", ppc), &ppc, |b, _| {
            // Parallel lane-fold mode, like the ablation's `matrix`
            // column; the single-worker streaming schedule is covered
            // by `mx_seq` below.
            let mut buf = vec![0.0f64; n_targets];
            b.iter(|| {
                deposit_loop_matrix(
                    &ExecPolicy::Par,
                    &idx,
                    &inv,
                    &mut buf,
                    MatAccumulate::Fast,
                    |p, s| w[p * 4 + s],
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("mx_seq", ppc), &ppc, |b, _| {
            let mut buf = vec![0.0f64; n_targets];
            b.iter(|| {
                deposit_loop_matrix(
                    &ExecPolicy::Seq,
                    &idx,
                    &inv,
                    &mut buf,
                    MatAccumulate::Fast,
                    |p, s| w[p * 4 + s],
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("sa", ppc), &ppc, |b, _| {
            let mut buf = vec![0.0f64; n_targets];
            b.iter(|| {
                deposit_loop(
                    &ExecPolicy::Par,
                    DepositMethod::ScatterArrays,
                    n,
                    &mut buf,
                    |i, dep| {
                        let c = scells[i] as usize;
                        for (k, &t) in c2n[c].iter().enumerate() {
                            dep.add(t, w[i * 4 + k]);
                        }
                    },
                )
            });
        });
    }
    g.finish();
}

/// Kernel-record hot path: interned `&str` lookup and pre-interned
/// `KernelId` against the historic per-call `String` allocation
/// (emulated with a plain `HashMap<String, _>` entry).
fn bench_record(c: &mut Criterion) {
    const NAMES: [&str; 4] = ["Move", "DepositCharge", "Inject", "CalcPosVel"];
    let per_iter = 1000usize;
    let mut g = c.benchmark_group("telemetry_record");
    g.throughput(Throughput::Elements(per_iter as u64));
    let d = Duration::from_nanos(100);

    g.bench_function("interned_str", |b| {
        let p = Profiler::new();
        b.iter(|| {
            for i in 0..per_iter {
                p.record(NAMES[i % NAMES.len()], d);
            }
        });
    });
    g.bench_function("kernel_id", |b| {
        let p = Profiler::new();
        let ids: Vec<_> = NAMES.iter().map(|n| p.intern(n)).collect();
        b.iter(|| {
            for i in 0..per_iter {
                p.record_id(ids[i % ids.len()], d);
            }
        });
    });
    g.bench_function("string_alloc_legacy", |b| {
        // What `record` used to cost: a fresh String per call keying a
        // plain map.
        let mut map: HashMap<String, (u64, Duration)> = HashMap::new();
        b.iter(|| {
            for i in 0..per_iter {
                let e = map
                    .entry(NAMES[i % NAMES.len()].to_string())
                    .or_insert((0, Duration::ZERO));
                e.0 += 1;
                e.1 += d;
            }
        });
    });
    g.finish();
}

/// The telemetry-off acceptance check: a deposit loop with no current
/// telemetry installed must cost the same as one running under a
/// `make_current` scope (the counter publication is one thread-local
/// read on the off path).
fn bench_deposit_telemetry_overhead(c: &mut Criterion) {
    let n = 100_000usize;
    let targets = 4096usize;
    let mut g = c.benchmark_group("deposit_telemetry");
    g.throughput(Throughput::Elements(n as u64));
    let run = |buf: &mut Vec<f64>| {
        deposit_loop(
            &ExecPolicy::Par,
            DepositMethod::ScatterArrays,
            n,
            buf,
            |i, dep| {
                for k in 0..4usize {
                    dep.add((i.wrapping_mul(2654435761) + k * 97) % targets, 1.0);
                }
            },
        )
    };
    g.bench_function("telemetry_off", |b| {
        let mut buf = vec![0.0f64; targets];
        b.iter(|| run(&mut buf));
    });
    g.bench_function("telemetry_on", |b| {
        let tel = Arc::new(oppic_core::Telemetry::new());
        let _cur = tel.make_current();
        let mut buf = vec![0.0f64; targets];
        b.iter(|| run(&mut buf));
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_deposit, bench_deposit_sorted, bench_record, bench_deposit_telemetry_overhead
}
criterion_main!(benches);
