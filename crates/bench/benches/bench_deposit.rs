//! Criterion microbench: the four deposit strategies across contention
//! levels (the Section 3.3 design space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oppic_core::{deposit_loop, DepositMethod, ExecPolicy};

fn bench_deposit(c: &mut Criterion) {
    let n = 100_000usize;
    let mut g = c.benchmark_group("deposit");
    g.throughput(Throughput::Elements(n as u64));
    for &targets in &[16usize, 4096, 262_144] {
        for method in [
            DepositMethod::Serial,
            DepositMethod::ScatterArrays,
            DepositMethod::Atomics,
            DepositMethod::UnsafeAtomics,
            DepositMethod::SegmentedReduction,
        ] {
            let policy = if method == DepositMethod::Serial {
                ExecPolicy::Seq
            } else {
                ExecPolicy::Par
            };
            g.bench_with_input(
                BenchmarkId::new(format!("{}/targets{targets}", method.label()), targets),
                &targets,
                |b, &targets| {
                    let mut buf = vec![0.0f64; targets];
                    b.iter(|| {
                        deposit_loop(&policy, method, n, &mut buf, |i, dep| {
                            for k in 0..4usize {
                                dep.add((i.wrapping_mul(2654435761) + k * 97) % targets, 1.0);
                            }
                        })
                    });
                },
            );
        }
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_deposit
}
criterion_main!(benches);
