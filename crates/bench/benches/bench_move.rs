//! Criterion microbench: multi-hop vs direct-hop particle move on the
//! Mini-FEM-PIC duct, slow-flow and fast-flow regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oppic_core::ExecPolicy;
use oppic_fempic::{FemPic, FemPicConfig, MoveStrategy};

fn config(fast: bool, strategy: MoveStrategy) -> FemPicConfig {
    FemPicConfig {
        nx: 12,
        ny: 6,
        nz: 6,
        lx: 6.0,
        ly: 1.0,
        lz: 1.0,
        inlet_velocity: if fast { 4.0 } else { 0.6 },
        dt: if fast { 0.25 } else { 0.05 },
        inject_per_step: 4000,
        policy: ExecPolicy::Par,
        move_strategy: strategy,
        ..FemPicConfig::default()
    }
}

fn bench_move(c: &mut Criterion) {
    let mut g = c.benchmark_group("particle_move");
    for fast in [false, true] {
        let regime = if fast { "fast" } else { "slow" };
        for (label, strategy) in [
            ("MH", MoveStrategy::MultiHop),
            ("DH", MoveStrategy::DirectHop { overlay_res: 48 }),
        ] {
            g.bench_with_input(BenchmarkId::new(label, regime), &fast, |b, &fast| {
                // Warm a simulation to a populated steady state,
                // then time individual move passes.
                let mut sim = FemPic::new(config(fast, strategy));
                sim.run(10);
                b.iter(|| {
                    sim.calc_pos_vel();
                    sim.move_particles()
                });
            });
        }
    }
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_move
}
criterion_main!(benches);
