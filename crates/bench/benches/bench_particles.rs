//! Criterion microbench: particle-store bookkeeping — hole filling at
//! varying removal fractions, cell sort, shuffle, pack/unpack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oppic_core::ParticleDats;

fn make_store(n: usize) -> ParticleDats {
    let mut ps = ParticleDats::new();
    let pos = ps.decl_dat("pos", 3);
    ps.decl_dat("vel", 3);
    ps.decl_dat("w", 1);
    ps.inject(n, 0);
    for i in 0..n {
        ps.el_mut(pos, i)[0] = i as f64;
        ps.cells_mut()[i] = ((i * 2654435761) % 1000) as i32;
    }
    ps
}

fn bench_holefill(c: &mut Criterion) {
    let n = 200_000usize;
    let mut g = c.benchmark_group("holefill");
    g.throughput(Throughput::Elements(n as u64));
    for &pct in &[1usize, 10, 50] {
        g.bench_with_input(BenchmarkId::new("remove_fill", pct), &pct, |b, &pct| {
            let proto = make_store(n);
            let holes: Vec<usize> = (0..n).filter(|i| i % 100 < pct).collect();
            b.iter_batched(
                || proto.clone(),
                |mut ps| ps.remove_fill(&holes),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_sort_shuffle(c: &mut Criterion) {
    let n = 200_000usize;
    let mut g = c.benchmark_group("reorder");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("sort_by_cell", |b| {
        let proto = make_store(n);
        b.iter_batched(
            || proto.clone(),
            |mut ps| ps.sort_by_cell(1000),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("shuffle", |b| {
        let proto = make_store(n);
        b.iter_batched(
            || proto.clone(),
            |mut ps| ps.shuffle(42),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let n = 10_000usize;
    let mut g = c.benchmark_group("migration_pack");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("pack_unpack_all", |b| {
        let src = make_store(n);
        b.iter(|| {
            let mut dst = src.clone_schema();
            let mut buf = Vec::with_capacity(src.dofs());
            for i in 0..n {
                buf.clear();
                src.pack_one(i, &mut buf);
                dst.unpack_one(&buf, 0);
            }
            dst.len()
        });
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_holefill, bench_sort_shuffle, bench_pack
}
criterion_main!(benches);
