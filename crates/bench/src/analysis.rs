//! Shared warp-analysis helpers for the figure binaries.
//!
//! A SIMT lane's branch path through `Move_Deposit`/`Move` depends on
//! (a) how many cells the particle visits and (b) which faces it
//! crosses — the walker branches on the sign of each displacement
//! component. Two counter-streaming beams interleaved in a warp
//! therefore always diverge, which is precisely the paper's "threads
//! within a warp take different execution paths" observation for
//! CabanaPIC. The signature below encodes both effects.

/// Branch-path signature of a move kernel lane: the visited-cell count
/// combined with the velocity octant (the displacement-sign pattern
/// the path-splitting walker branches on).
#[inline]
pub fn move_path_signature(visits: u32, vel: &[f64]) -> u32 {
    let octant =
        (u32::from(vel[0] < 0.0)) | (u32::from(vel[1] < 0.0) << 1) | (u32::from(vel[2] < 0.0) << 2);
    visits * 8 + octant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_separates_beams_and_visit_counts() {
        let fwd = move_path_signature(1, &[0.2, 0.0, 0.0]);
        let bwd = move_path_signature(1, &[-0.2, 0.0, 0.0]);
        assert_ne!(fwd, bwd, "counter-streaming lanes diverge");
        let fwd2 = move_path_signature(2, &[0.2, 0.0, 0.0]);
        assert_ne!(fwd, fwd2, "extra cell crossings diverge");
        assert_eq!(fwd, move_path_signature(1, &[0.3, 0.1, 0.4]));
    }
}
