//! Shared reporting helpers for the figure/table binaries: consistent
//! headers, simple ASCII bar charts (the terminal stand-in for the
//! paper's matplotlib plots), environment scaling knobs, and the
//! `OPPIC_TELEMETRY` sink hookup.

use oppic_core::telemetry::fnv1a;
use oppic_core::{Profiler, RunInfo};

/// Print a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("{}", "=".repeat(78));
    println!("{id}: {caption}");
    println!("{}", "=".repeat(78));
}

/// Problem-size scale factor from `OPPIC_SCALE` (default keeps each
/// binary under ~a minute on a laptop; 1.0 = the paper's sizes).
pub fn scale_factor(default: f64) -> f64 {
    std::env::var("OPPIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Steps override from `OPPIC_STEPS`.
pub fn steps(default: usize) -> usize {
    std::env::var("OPPIC_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

/// Derive the per-variant sink path: the variant slug is inserted
/// before the extension (`out.jsonl` + `"CPU seq"` → `out.cpu-seq.jsonl`)
/// so multi-variant binaries write one stream per run.
pub fn telemetry_variant_path(base: &str, variant: &str) -> String {
    let mut slug = String::new();
    for c in variant.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    let slug = slug.trim_matches('-');
    if slug.is_empty() {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{slug}.{ext}"),
        None => format!("{base}.{slug}"),
    }
}

/// Attach a telemetry JSONL sink when `OPPIC_TELEMETRY` names a path —
/// the bench binaries' counterpart of the applications' `--telemetry`
/// flag. Returns whether a sink opened; the caller must
/// `profiler.telemetry().finish()` once the variant's run ends.
pub fn telemetry_from_env(
    profiler: &Profiler,
    app: &str,
    variant: &str,
    threads: usize,
    config_debug: &str,
) -> bool {
    let Ok(base) = std::env::var("OPPIC_TELEMETRY") else {
        return false;
    };
    let path = telemetry_variant_path(&base, variant);
    let mut extra = vec![("bench".to_string(), "1".to_string())];
    if !variant.is_empty() {
        extra.push(("variant".to_string(), variant.to_string()));
    }
    let info = RunInfo {
        app: app.into(),
        config_hash: format!("{:016x}", fnv1a(config_debug.as_bytes())),
        threads,
        extra,
    };
    match profiler
        .telemetry()
        .attach_sink(std::path::Path::new(&path), &info)
    {
        Ok(()) => true,
        Err(e) => {
            eprintln!("warning: cannot open telemetry sink {path}: {e}");
            false
        }
    }
}

/// Render a labelled bar chart.
pub fn bar_chart(rows: &[(String, f64)], unit: &str) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let mut out = String::new();
    for (label, v) in rows {
        out.push_str(&format!(
            "{label:<34} {v:>10.4} {unit}  |{}\n",
            bar(*v, max, 34)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn chart_renders_all_rows() {
        let rows = vec![
            ("Move".to_string(), 3.0),
            ("DepositCharge".to_string(), 1.5),
        ];
        let c = bar_chart(&rows, "s");
        assert!(c.contains("Move"));
        assert!(c.contains("DepositCharge"));
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn variant_paths_slug_before_extension() {
        assert_eq!(
            telemetry_variant_path("out.jsonl", "CPU parallel, multi-hop (MH)"),
            "out.cpu-parallel-multi-hop-mh.jsonl"
        );
        assert_eq!(telemetry_variant_path("out.jsonl", ""), "out.jsonl");
        assert_eq!(telemetry_variant_path("noext", "A B"), "noext.a-b");
    }

    #[test]
    fn env_knobs_default() {
        // No env vars set in tests: defaults come back.
        std::env::remove_var("OPPIC_SCALE");
        std::env::remove_var("OPPIC_STEPS");
        assert_eq!(scale_factor(0.25), 0.25);
        assert_eq!(steps(50), 50);
    }
}
