//! Offline digestion of telemetry JSONL streams (`--telemetry` runs)
//! into the paper's presentation artifacts: the Figure 9 runtime
//! breakdown table, per-class totals, the Figure 10/11 roofline
//! operand CSV, and the `BENCH_step_timings.json` per-step record.
//!
//! The `run_footer`'s kernel aggregates are the same numbers the
//! in-process profiler prints, so a report built from the stream
//! reproduces the legacy breakdown exactly. Truncated streams (no
//! footer — the run died) degrade gracefully: kernels are rebuilt by
//! summing the individual span events.

use oppic_core::json::{self, Json};
use oppic_core::telemetry::{KernelClass, KernelStats};
use std::fmt::Write as _;

/// One per-step summary (`step` event) of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRow {
    pub step: u64,
    pub ms: f64,
    /// The `alive` gauge, when the app reports one.
    pub alive: Option<f64>,
}

/// Everything the report needs from one telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    pub app: String,
    pub config_hash: String,
    pub build: String,
    pub threads: u64,
    pub kernels: Vec<(String, KernelStats)>,
    pub steps: Vec<StepRow>,
    pub counters: Vec<(String, u64)>,
    /// `true` when no `run_footer` was found (the kernel table is then
    /// a reconstruction from span events).
    pub truncated: bool,
    /// Lines that failed to parse as JSON and were skipped — typically
    /// the torn tail of a crashed run's stream.
    pub torn_lines: u64,
}

impl RunSummary {
    pub fn total_seconds(&self) -> f64 {
        self.kernels.iter().map(|(_, k)| k.seconds).sum()
    }

    /// Per-class `(class, calls, seconds)` totals in [`KernelClass`]
    /// declaration order — the Figure 9 stacked-bar quantities.
    /// Unclassified kernels aggregate under `"-"` at the end.
    pub fn class_totals(&self) -> Vec<(String, u64, f64)> {
        let classes = [
            KernelClass::FieldSolve,
            KernelClass::WeightFields,
            KernelClass::Move,
            KernelClass::Deposit,
            KernelClass::Inject,
            KernelClass::Comm,
            KernelClass::Other,
        ];
        let mut out = Vec::new();
        for c in classes {
            let (mut calls, mut secs) = (0u64, 0.0f64);
            for (_, k) in self.kernels.iter().filter(|(_, k)| k.class == Some(c)) {
                calls += k.calls;
                secs += k.seconds;
            }
            if calls > 0 {
                out.push((c.as_str().to_string(), calls, secs));
            }
        }
        let (mut calls, mut secs) = (0u64, 0.0f64);
        for (_, k) in self.kernels.iter().filter(|(_, k)| k.class.is_none()) {
            calls += k.calls;
            secs += k.seconds;
        }
        if calls > 0 {
            out.push(("-".to_string(), calls, secs));
        }
        out
    }
}

/// Parse one telemetry JSONL stream into a [`RunSummary`].
pub fn parse_run(src: &str) -> Result<RunSummary, String> {
    let mut run = RunSummary::default();
    // Span-event fallback aggregation, used only without a footer.
    let mut span_kernels: Vec<(String, KernelStats)> = Vec::new();
    let mut saw_footer = false;

    for line in src.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // A crashed run leaves a torn final line (and a missing
        // footer); skip what doesn't parse rather than refusing the
        // whole stream — the report is most needed for exactly those
        // runs. `torn_lines` surfaces the count in the table header.
        let Ok(ev) = json::parse(line) else {
            run.torn_lines += 1;
            continue;
        };
        match ev.get("type").and_then(Json::as_str) {
            Some("run_header") => {
                run.app = ev.get("app").and_then(Json::as_str).unwrap_or("?").into();
                run.config_hash = ev
                    .get("config_hash")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .into();
                run.build = ev.get("build").and_then(Json::as_str).unwrap_or("?").into();
                run.threads = ev.get("threads").and_then(Json::as_u64).unwrap_or(0);
            }
            Some("span") => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
                let ms = ev.get("ms").and_then(Json::as_f64).unwrap_or(0.0);
                // Only leaves (depth 1 under the step root) count, so
                // nested spans aren't double-counted into the total.
                if ev.get("depth").and_then(Json::as_u64) <= Some(1) {
                    let slot = match span_kernels.iter_mut().find(|(n, _)| n == name) {
                        Some((_, k)) => k,
                        None => {
                            span_kernels.push((name.to_string(), KernelStats::default()));
                            &mut span_kernels.last_mut().unwrap().1
                        }
                    };
                    slot.calls += 1;
                    slot.seconds += ms * 1e-3;
                }
            }
            Some("step") => {
                let step = ev.get("step").and_then(Json::as_u64).unwrap_or(0);
                let ms = ev.get("ms").and_then(Json::as_f64).unwrap_or(0.0);
                let alive = ev
                    .get("gauges")
                    .and_then(|g| g.get("alive"))
                    .and_then(Json::as_f64);
                run.steps.push(StepRow { step, ms, alive });
            }
            Some("run_footer") => {
                saw_footer = true;
                if let Some(ks) = ev.get("kernels").and_then(Json::as_arr) {
                    run.kernels = ks
                        .iter()
                        .map(|k| {
                            let name = k.get("name").and_then(Json::as_str).unwrap_or("?");
                            let stats = KernelStats {
                                calls: k.get("calls").and_then(Json::as_u64).unwrap_or(0),
                                seconds: k.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
                                bytes: k.get("bytes").and_then(Json::as_u64).unwrap_or(0),
                                flops: k.get("flops").and_then(Json::as_u64).unwrap_or(0),
                                class: k
                                    .get("class")
                                    .and_then(Json::as_str)
                                    .and_then(KernelClass::from_str_opt),
                            };
                            (name.to_string(), stats)
                        })
                        .collect();
                }
                if let Some(cs) = ev.get("counters").and_then(Json::as_obj) {
                    run.counters = cs
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                        .collect();
                }
            }
            _ => {}
        }
    }
    if run.app.is_empty() {
        return Err(if run.torn_lines > 0 {
            format!(
                "no run_header record ({} unparseable line(s) skipped)",
                run.torn_lines
            )
        } else {
            "no run_header record".into()
        });
    }
    if !saw_footer {
        run.truncated = true;
        span_kernels.sort_by(|a, b| b.1.seconds.total_cmp(&a.1.seconds));
        run.kernels = span_kernels;
    }
    Ok(run)
}

/// The paper-style breakdown table: per-kernel rows (calls, seconds,
/// share, achieved GB/s, GFLOP/s) and per-class totals.
pub fn breakdown_table(run: &RunSummary) -> String {
    let total = run.total_seconds().max(1e-30);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} [{} build, {} thread(s), config {}]{}",
        run.app,
        run.build,
        run.threads,
        run.config_hash,
        if run.truncated {
            "  (truncated stream: kernels rebuilt from spans)"
        } else {
            ""
        }
    );
    if run.torn_lines > 0 {
        let _ = writeln!(
            s,
            "warning: {} unparseable line(s) skipped (torn stream tail)",
            run.torn_lines
        );
    }
    let _ = writeln!(
        s,
        "{:<28} {:>12} {:>8} {:>12} {:>7} {:>12} {:>12}",
        "kernel", "class", "calls", "seconds", "%", "GB/s", "GFLOP/s"
    );
    for (name, k) in &run.kernels {
        let _ = writeln!(
            s,
            "{:<28} {:>12} {:>8} {:>12.4} {:>6.1}% {:>12} {:>12}",
            name,
            k.class.map_or("-", KernelClass::as_str),
            k.calls,
            k.seconds,
            100.0 * k.seconds / total,
            k.gbytes_per_s()
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            k.gflops().map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        );
    }
    let _ = writeln!(s, "{:<28} {:>12} {:>8} {:>12.4}", "TOTAL", "", "", total);
    let classes = run.class_totals();
    if !classes.is_empty() {
        s.push_str("per-class totals:\n");
        for (class, calls, secs) in &classes {
            let _ = writeln!(
                s,
                "  {class:<26} {calls:>10} {secs:>12.4} {:>6.1}%",
                100.0 * secs / total
            );
        }
    }
    if !run.steps.is_empty() {
        let step_ms: f64 = run.steps.iter().map(|r| r.ms).sum();
        let _ = writeln!(
            s,
            "steps: {} in {:.4} s (mean {:.3} ms/step)",
            run.steps.len(),
            step_ms * 1e-3,
            step_ms / run.steps.len() as f64
        );
    }
    s
}

/// Roofline operand CSV (one row per kernel with traffic/flop counts):
/// the Figure 10/11 inputs.
pub fn roofline_csv(runs: &[RunSummary]) -> String {
    let mut s = String::from("app,kernel,class,calls,seconds,bytes,flops,intensity,gflops,gbs\n");
    for run in runs {
        for (name, k) in &run.kernels {
            let _ = writeln!(
                s,
                "{},{},{},{},{},{},{},{},{},{}",
                run.app,
                name,
                k.class.map_or("-", KernelClass::as_str),
                k.calls,
                json::num(k.seconds),
                k.bytes,
                k.flops,
                k.arithmetic_intensity()
                    .map_or_else(|| "-".into(), json::num),
                k.gflops().map_or_else(|| "-".into(), json::num),
                k.gbytes_per_s().map_or_else(|| "-".into(), json::num),
            );
        }
    }
    s
}

/// The `results/BENCH_step_timings.json` document: per-run step
/// timings and populations, machine-readable for plotting.
pub fn step_timings_json(runs: &[RunSummary]) -> String {
    let mut s = String::from("{\"schema\":1,\"runs\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"app\":{},\"config_hash\":{},\"build\":{},\"threads\":{},\"steps\":[",
            json::quote(&run.app),
            json::quote(&run.config_hash),
            json::quote(&run.build),
            run.threads,
        );
        for (j, row) in run.steps.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"step\":{},\"ms\":{}", row.step, json::num(row.ms));
            if let Some(alive) = row.alive {
                let _ = write!(s, ",\"alive\":{}", json::num(alive));
            }
            s.push('}');
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = concat!(
        r#"{"type":"run_header","schema":1,"app":"fempic","config_hash":"abc","build":"release","threads":4}"#,
        "\n",
        r#"{"type":"span","step":1,"name":"Move","path":"step>Move","depth":1,"ms":2.0}"#,
        "\n",
        r#"{"type":"step","step":1,"ms":3.0,"gauges":{"alive":100},"counters":{"move.relocated":7}}"#,
        "\n",
        r#"{"type":"span","step":2,"name":"Move","path":"step>Move","depth":1,"ms":2.5}"#,
        "\n",
        r#"{"type":"step","step":2,"ms":3.5,"gauges":{"alive":110},"counters":{}}"#,
        "\n",
        r#"{"type":"run_footer","open_spans":0,"total_ms":5.0,"events":7,"traces_dropped":0,"#,
        r#""kernels":[{"name":"Move","class":"Move","calls":2,"seconds":0.0045,"bytes":9000,"flops":450},"#,
        r#"{"name":"Solve","class":"FieldSolve","calls":2,"seconds":0.001,"bytes":0,"flops":0}],"#,
        r#""counters":{"move.relocated":7},"histograms":{}}"#,
        "\n",
    );

    #[test]
    fn footer_kernels_reproduce_profiler_aggregates_exactly() {
        let run = parse_run(STREAM).unwrap();
        assert!(!run.truncated);
        assert_eq!(run.app, "fempic");
        assert_eq!(run.threads, 4);
        assert_eq!(run.kernels.len(), 2);
        let (name, k) = &run.kernels[0];
        assert_eq!(name, "Move");
        assert_eq!(k.calls, 2);
        assert_eq!(k.seconds, 0.0045);
        assert_eq!(k.bytes, 9000);
        assert_eq!(k.class, Some(KernelClass::Move));
        assert_eq!(run.counters, vec![("move.relocated".to_string(), 7)]);
    }

    #[test]
    fn class_totals_group_by_kernel_class() {
        let run = parse_run(STREAM).unwrap();
        let totals = run.class_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "FieldSolve");
        assert_eq!(totals[1], ("Move".to_string(), 2, 0.0045));
    }

    #[test]
    fn truncated_stream_rebuilds_kernels_from_spans() {
        // Drop the footer line.
        let cut: String = STREAM
            .lines()
            .filter(|l| !l.contains("run_footer"))
            .map(|l| format!("{l}\n"))
            .collect();
        let run = parse_run(&cut).unwrap();
        assert!(run.truncated);
        assert_eq!(run.kernels.len(), 1);
        assert_eq!(run.kernels[0].0, "Move");
        assert_eq!(run.kernels[0].1.calls, 2);
        assert!((run.kernels[0].1.seconds - 0.0045).abs() < 1e-12);
    }

    #[test]
    fn table_lists_kernels_and_classes() {
        let run = parse_run(STREAM).unwrap();
        let t = breakdown_table(&run);
        assert!(t.contains("Move"), "{t}");
        assert!(t.contains("per-class totals:"), "{t}");
        assert!(t.contains("FieldSolve"), "{t}");
        assert!(t.contains("steps: 2"), "{t}");
    }

    #[test]
    fn roofline_csv_has_one_row_per_kernel() {
        let run = parse_run(STREAM).unwrap();
        let csv = roofline_csv(std::slice::from_ref(&run));
        assert_eq!(csv.lines().count(), 3);
        let move_row = csv.lines().find(|l| l.contains(",Move,")).unwrap();
        assert!(move_row.starts_with("fempic,Move,Move,2,"), "{move_row}");
        assert!(move_row.contains(",9000,450,"), "{move_row}");
    }

    #[test]
    fn step_timings_json_round_trips() {
        let run = parse_run(STREAM).unwrap();
        let doc = step_timings_json(std::slice::from_ref(&run));
        let v = json::parse(&doc).unwrap();
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        let steps = runs[0].get("steps").and_then(Json::as_arr).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[1].get("alive").and_then(Json::as_f64), Some(110.0));
    }

    #[test]
    fn headerless_stream_is_rejected() {
        assert!(parse_run(r#"{"type":"step","step":1,"ms":1}"#).is_err());
    }

    #[test]
    fn torn_tail_is_skipped_and_counted() {
        // A crashed run: footer missing AND the last line cut mid-write.
        let cut: String = STREAM
            .lines()
            .filter(|l| !l.contains("run_footer"))
            .map(|l| format!("{l}\n"))
            .collect();
        let torn = format!("{cut}{{\"type\":\"span\",\"step\":3,\"name\":\"Mo");
        let run = parse_run(&torn).unwrap();
        assert!(run.truncated);
        assert_eq!(run.torn_lines, 1);
        // The intact records still landed.
        assert_eq!(run.steps.len(), 2);
        assert_eq!(run.kernels[0].1.calls, 2);
        let t = breakdown_table(&run);
        assert!(t.contains("warning: 1 unparseable line(s) skipped"), "{t}");
        assert!(t.contains("truncated stream"), "{t}");
    }

    #[test]
    fn garbage_only_stream_reports_skip_count() {
        let err = parse_run("not json at all\nalso not json\n").unwrap_err();
        assert!(err.contains("2 unparseable line(s)"), "{err}");
    }
}
