//! Overhead gate for the observability plane (ISSUE PR 8 acceptance):
//! Mini-FEM-PIC with the flight recorder + /metrics exporter attached
//! must stay within 3% of the telemetry-only median step time.
//!
//! Both arms attach the same JSONL telemetry sink; the obs arm
//! additionally installs the full plane (recorder observer, live
//! gauges, watchdog, HTTP exporter) and feeds it every step. Arms are
//! interleaved rep-by-rep so thermal / scheduling drift hits both
//! equally, and the comparison uses the median over all recorded
//! steps — the statistic the 3% gate is defined on.
//!
//! ```text
//! bench_obs_overhead [--steps N] [--reps N] [--out results/BENCH_obs_overhead.json]
//! ```
//!
//! Exits non-zero when the gate fails so `ci.sh obs` can enforce it.

use oppic_core::json;
use oppic_fempic::{FemPic, FemPicConfig};
use oppic_obs::{ObsConfig, ObsPlane, StepObs, WatchdogConfig};
use std::process::ExitCode;
use std::time::Instant;

const GATE_PCT: f64 = 3.0;

fn config() -> FemPicConfig {
    FemPicConfig {
        nx: 6,
        ny: 6,
        nz: 6,
        inject_per_step: 500,
        ..FemPicConfig::default()
    }
}

/// One rep: run `steps` steps, returning each step's wall-clock ms.
fn run_arm(steps: usize, with_plane: bool, sink: &std::path::Path) -> Vec<f64> {
    let mut sim = FemPic::new(config());
    let info = oppic_core::RunInfo {
        app: "fempic".into(),
        config_hash: "bench_obs_overhead".into(),
        threads: sim.cfg.policy.threads(),
        extra: Vec::new(),
    };
    sim.profiler
        .telemetry()
        .attach_sink(sink, &info)
        .expect("telemetry sink");
    let mut plane = with_plane.then(|| {
        ObsPlane::install(
            sim.profiler.telemetry().clone(),
            ObsConfig {
                app: "fempic".into(),
                threads: sim.cfg.policy.threads(),
                metrics_addr: Some("127.0.0.1:0".into()),
                watchdog: Some(WatchdogConfig::default()),
                ..ObsConfig::default()
            },
        )
        .expect("observability plane")
    });
    let mut ms = Vec::with_capacity(steps);
    for s in 1..=steps {
        let t = Instant::now();
        let d = sim.step();
        ms.push(t.elapsed().as_secs_f64() * 1e3);
        if let Some(plane) = plane.as_mut() {
            plane.on_step(StepObs {
                step: s as u64,
                ms: *ms.last().expect("just pushed"),
                alive: d.n_particles as u64,
                injected: d.injected as u64,
                removed: d.removed as u64,
            });
        }
    }
    if let Some(mut plane) = plane {
        let summary = plane.finish().expect("plane finish");
        assert!(
            summary.alerts.is_empty(),
            "watchdog tripped during the overhead bench: {:?}",
            summary.alerts
        );
    }
    sim.profiler.telemetry().finish().expect("telemetry finish");
    ms
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let steps = arg_usize(&args, "--steps", 30);
    let reps = arg_usize(&args, "--reps", 3);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_obs_overhead.json".into());

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut base_ms = Vec::new();
    let mut obs_ms = Vec::new();
    println!("bench_obs_overhead: {reps} rep(s) x {steps} step(s), interleaved arms");
    for rep in 0..reps {
        // One warm-up step's worth of allocator/page-cache churn lands
        // on whichever arm goes first; alternate the order per rep.
        let sink_a = dir.join(format!("obs_overhead_{pid}_{rep}_a.jsonl"));
        let sink_b = dir.join(format!("obs_overhead_{pid}_{rep}_b.jsonl"));
        if rep % 2 == 0 {
            base_ms.extend(run_arm(steps, false, &sink_a));
            obs_ms.extend(run_arm(steps, true, &sink_b));
        } else {
            obs_ms.extend(run_arm(steps, true, &sink_b));
            base_ms.extend(run_arm(steps, false, &sink_a));
        }
        std::fs::remove_file(&sink_a).ok();
        std::fs::remove_file(&sink_b).ok();
    }

    let base = median(&mut base_ms);
    let obs = median(&mut obs_ms);
    let overhead_pct = if base > 0.0 {
        100.0 * (obs - base) / base
    } else {
        0.0
    };
    let pass = overhead_pct <= GATE_PCT;
    println!(
        "telemetry-only median {base:.3} ms/step, with plane {obs:.3} ms/step \
         -> overhead {overhead_pct:+.2}% (gate {GATE_PCT}%): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = format!(
        "{{\"schema\":1,\"bench\":\"obs_overhead\",\"app\":\"fempic\",\
         \"steps_per_rep\":{steps},\"reps\":{reps},\
         \"median_baseline_ms\":{},\"median_obs_ms\":{},\
         \"overhead_pct\":{},\"gate_pct\":{},\"pass\":{pass}}}\n",
        json::num(base),
        json::num(obs),
        json::num(overhead_pct),
        json::num(GATE_PCT),
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("bench_obs_overhead: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
