//! Ablation (Section 3.3 / 4.1.1): race-handling strategies for the
//! double-indirect charge deposit — scatter arrays (SA), safe atomics
//! (AT), unsafe atomics (UA), segmented reduction (SR).
//!
//! Three views:
//! 1. host wall-times of the real strategies across a contention sweep
//!    (few targets = the serialization pathology);
//! 2. end-to-end Mini-FEM-PIC runtime per strategy;
//! 3. modeled GPU deposit times, reproducing "standard atomics (AT) on
//!    AMD GPUs perform significantly worse, over 200× slower than UA
//!    or SR".

use oppic_bench::report::{banner, steps};
use oppic_core::{deposit_loop, DepositMethod, ExecPolicy};
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig};
use std::time::Instant;

fn main() {
    banner("Ablation", "deposit race handling: SA / AT / UA / SR");

    // ---- 1. contention sweep on the raw executor ----
    let n = 400_000usize;
    println!("--- raw deposit_loop, {n} iterations × 4 adds, host wall time (ms) ---");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "targets", "SA", "AT", "UA", "SR"
    );
    for targets in [8usize, 512, 65_536] {
        print!("{targets:>10}");
        for method in [
            DepositMethod::ScatterArrays,
            DepositMethod::Atomics,
            DepositMethod::UnsafeAtomics,
            DepositMethod::SegmentedReduction,
        ] {
            let mut buf = vec![0.0f64; targets];
            let t0 = Instant::now();
            deposit_loop(&ExecPolicy::Par, method, n, &mut buf, |i, dep| {
                for k in 0..4usize {
                    dep.add((i.wrapping_mul(2654435761) + k * 97) % targets, 1.0);
                }
            });
            print!(" {:>10.3}", t0.elapsed().as_secs_f64() * 1e3);
            // Guard: totals must match regardless of strategy.
            let total: f64 = buf.iter().sum();
            assert!((total - 4.0 * n as f64).abs() < 1e-6 * n as f64);
        }
        println!();
    }

    // ---- 2. end-to-end Mini-FEM-PIC ----
    let n_steps = steps(15);
    println!("\n--- Mini-FEM-PIC end-to-end, DepositCharge seconds per strategy ---");
    for method in [
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::UnsafeAtomics,
        DepositMethod::SegmentedReduction,
    ] {
        let mut cfg = FemPicConfig::paper_scaled(0.01);
        cfg.policy = ExecPolicy::Par;
        cfg.deposit = method;
        let mut sim = FemPic::new(cfg);
        sim.run(n_steps);
        let dep = sim.profiler.get("DepositCharge").map_or(0.0, |s| s.seconds);
        println!(
            "{:<24} {:>10.4} s  (total charge {:.6})",
            format!("{method:?}"),
            dep,
            sim.node_charge.sum()
        );
    }
    // The paper's third CPU option: cell coloring (sorted particles).
    {
        let mut cfg = FemPicConfig::paper_scaled(0.01);
        cfg.policy = ExecPolicy::Par;
        cfg.coloring = true;
        let mut sim = FemPic::new(cfg);
        sim.run(n_steps);
        let dep = sim.profiler.get("DepositCharge").map_or(0.0, |s| s.seconds);
        let sort = sim.profiler.get("SortParticles").map_or(0.0, |s| s.seconds);
        println!(
            "{:<24} {:>10.4} s  (+ {:.4} s sort overhead, total charge {:.6})",
            "Coloring",
            dep,
            sort,
            sim.node_charge.sum()
        );
    }

    // ---- 3. modeled GPU deposit times ----
    println!("\n--- modeled GPU deposit time (ms) for a 70M-particle-equivalent step ---");
    let mut cfg = FemPicConfig::paper_scaled(0.01);
    cfg.policy = ExecPolicy::Par;
    let mut sim = FemPic::new(cfg);
    sim.run(5);
    let np = sim.ps.len();
    let cells = sim.ps.cells().to_vec();
    let c2n = sim.mesh.c2n.clone();
    let st = sim.profiler.get("DepositCharge").unwrap();
    let (b, f) = (st.bytes as f64 / 5.0, st.flops as f64 / 5.0);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "device", "AT", "UA", "SR", "AT/UA"
    );
    for spec in [
        DeviceSpec::v100(),
        DeviceSpec::mi210(),
        DeviceSpec::mi250x_gcd(),
        DeviceSpec::intel_max_1550(), // the paper's future-work target
    ] {
        let rep = analyze_warps(
            spec.warp_size,
            np,
            |_| 0,
            |i, out| {
                out.extend(c2n[cells[i] as usize].iter().map(|&x| x as u32));
            },
        );
        let at = rep.modeled_seconds(&spec, AtomicFlavor::Safe, b, f);
        let ua = rep.modeled_seconds(&spec, AtomicFlavor::Unsafe, b, f);
        // SR: no atomics at all; sort/reduce costs ~3 extra passes over
        // the staged pairs.
        let sr_bytes = b + rep.atomic_ops as f64 * 12.0 * 3.0;
        let sr = spec.roofline_time(sr_bytes, f);
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>12.4} {:>9.0}x",
            spec.name,
            at * 1e3,
            ua * 1e3,
            sr * 1e3,
            at / ua
        );
    }

    println!(
        "\nShape checks vs the paper: on the CPU, scatter arrays win and all methods\n\
         agree numerically; on AMD-class devices safe atomics are two orders of\n\
         magnitude slower than UA/SR under contention (the >200x finding), while\n\
         NVIDIA atomics stay competitive; SR ≈ UA with a small constant overhead."
    );
}
