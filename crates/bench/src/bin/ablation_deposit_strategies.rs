//! Ablation (Section 3.3 / 4.1.1): race-handling strategies for the
//! double-indirect charge deposit — scatter arrays (SA), safe atomics
//! (AT), unsafe atomics (UA), segmented reduction (SR), and the
//! cell-locality engine's sorted segments (SS).
//!
//! Four views:
//! 1. host wall-times of the real strategies across a contention sweep
//!    (few targets = the serialization pathology);
//! 2. end-to-end Mini-FEM-PIC runtime per strategy;
//! 3. modeled GPU deposit times, reproducing "standard atomics (AT) on
//!    AMD GPUs perform significantly worse, over 200× slower than UA
//!    or SR";
//! 4. sorted (SS segments and MX shape-matrix tiles over a fresh CSR
//!    cell index) vs unsorted (SA/AT) deposit across particle-per-cell
//!    regimes and thread counts {1, 4, 8}, recorded to
//!    `results/BENCH_ablation_deposit_matrix.json` (supersedes the
//!    older `BENCH_ablation_deposit_sorted.json` single-thread table).

use oppic_bench::report::{banner, scale_factor, steps, telemetry_from_env};
use oppic_core::{
    deposit_loop, deposit_loop_matrix, deposit_loop_sorted, invert_cell_targets, DepositMethod,
    ExecPolicy, MatAccumulate, ParticleDats,
};
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig};
use std::time::Instant;

fn main() {
    banner("Ablation", "deposit race handling: SA / AT / UA / SR");

    // ---- 1. contention sweep on the raw executor ----
    let n = 400_000usize;
    println!("--- raw deposit_loop, {n} iterations × 4 adds, host wall time (ms) ---");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "targets", "SA", "AT", "UA", "SR"
    );
    for targets in [8usize, 512, 65_536] {
        print!("{targets:>10}");
        for method in [
            DepositMethod::ScatterArrays,
            DepositMethod::Atomics,
            DepositMethod::UnsafeAtomics,
            DepositMethod::SegmentedReduction,
        ] {
            let mut buf = vec![0.0f64; targets];
            let t0 = Instant::now();
            deposit_loop(&ExecPolicy::Par, method, n, &mut buf, |i, dep| {
                for k in 0..4usize {
                    dep.add((i.wrapping_mul(2654435761) + k * 97) % targets, 1.0);
                }
            });
            print!(" {:>10.3}", t0.elapsed().as_secs_f64() * 1e3);
            // Guard: totals must match regardless of strategy.
            let total: f64 = buf.iter().sum();
            assert!((total - 4.0 * n as f64).abs() < 1e-6 * n as f64);
        }
        println!();
    }

    // ---- 2. end-to-end Mini-FEM-PIC ----
    let n_steps = steps(15);
    println!("\n--- Mini-FEM-PIC end-to-end, DepositCharge seconds per strategy ---");
    for method in [
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::UnsafeAtomics,
        DepositMethod::SegmentedReduction,
    ] {
        let mut cfg = FemPicConfig::paper_scaled(0.01);
        cfg.policy = ExecPolicy::Par;
        cfg.deposit = method;
        let mut sim = FemPic::new(cfg);
        let sink = telemetry_from_env(
            &sim.profiler,
            "fempic",
            &format!("deposit-{method:?}"),
            sim.cfg.policy.threads(),
            &format!("{:?}", sim.cfg),
        );
        sim.run(n_steps);
        if sink {
            let _ = sim.profiler.telemetry().finish();
        }
        let dep = sim.profiler.get("DepositCharge").map_or(0.0, |s| s.seconds);
        println!(
            "{:<24} {:>10.4} s  (total charge {:.6})",
            format!("{method:?}"),
            dep,
            sim.node_charge.sum()
        );
    }
    // The paper's third CPU option: cell coloring (sorted particles).
    {
        let mut cfg = FemPicConfig::paper_scaled(0.01);
        cfg.policy = ExecPolicy::Par;
        cfg.coloring = true;
        let mut sim = FemPic::new(cfg);
        sim.run(n_steps);
        let dep = sim.profiler.get("DepositCharge").map_or(0.0, |s| s.seconds);
        let sort = sim.profiler.get("SortParticles").map_or(0.0, |s| s.seconds);
        println!(
            "{:<24} {:>10.4} s  (+ {:.4} s sort overhead, total charge {:.6})",
            "Coloring",
            dep,
            sort,
            sim.node_charge.sum()
        );
    }

    // ---- 3. modeled GPU deposit times ----
    println!("\n--- modeled GPU deposit time (ms) for a 70M-particle-equivalent step ---");
    let mut cfg = FemPicConfig::paper_scaled(0.01);
    cfg.policy = ExecPolicy::Par;
    let mut sim = FemPic::new(cfg);
    sim.run(5);
    let np = sim.ps.len();
    let cells = sim.ps.cells().to_vec();
    let c2n = sim.mesh.c2n.clone();
    let st = sim.profiler.get("DepositCharge").unwrap();
    let (b, f) = (st.bytes as f64 / 5.0, st.flops as f64 / 5.0);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "device", "AT", "UA", "SR", "AT/UA"
    );
    for spec in [
        DeviceSpec::v100(),
        DeviceSpec::mi210(),
        DeviceSpec::mi250x_gcd(),
        DeviceSpec::intel_max_1550(), // the paper's future-work target
    ] {
        let rep = analyze_warps(
            spec.warp_size,
            np,
            |_| 0,
            |i, out| {
                out.extend(c2n[cells[i] as usize].iter().map(|&x| x as u32));
            },
        );
        let at = rep.modeled_seconds(&spec, AtomicFlavor::Safe, b, f);
        let ua = rep.modeled_seconds(&spec, AtomicFlavor::Unsafe, b, f);
        // SR: no atomics at all; sort/reduce costs ~3 extra passes over
        // the staged pairs.
        let sr_bytes = b + rep.atomic_ops as f64 * 12.0 * 3.0;
        let sr = spec.roofline_time(sr_bytes, f);
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>12.4} {:>9.0}x",
            spec.name,
            at * 1e3,
            ua * 1e3,
            sr * 1e3,
            at / ua
        );
    }

    println!(
        "\nShape checks vs the paper: on the CPU, scatter arrays win and all methods\n\
         agree numerically; on AMD-class devices safe atomics are two orders of\n\
         magnitude slower than UA/SR under contention (the >200x finding), while\n\
         NVIDIA atomics stay competitive; SR ≈ UA with a small constant overhead."
    );

    // ---- 4. cell-locality engine: sorted vs unsorted deposit ----
    cell_locality_sweep();
}

/// Deterministic LCG (the sweep must not depend on platform RNG).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Sorted-segments and matrixized tiles over a fresh CSR cell index
/// versus the unsorted scatter-array / atomic paths, across mean
/// particles-per-cell regimes and thread counts on a synthetic
/// FEM-like mesh (every cell scatters into 4 of `n_targets` node
/// slots, as the tet-weighting deposit does). The matrix column runs
/// the fast (lane-accumulated) mode; its exact mode is asserted
/// bit-identical to the Serial fold before any timing is reported.
fn cell_locality_sweep() {
    let sf = scale_factor(1.0);
    let n_cells = ((24_000.0 * sf) as usize).max(64);
    let n_targets = ((50_000.0 * sf) as usize).max(32);
    let thread_sweep = [1usize, 4, 8];
    let reps = 3usize;

    // Synthetic cells→nodes relation: 4 distinct pseudo-random targets
    // per cell.
    let mut seed = 0x5EEDu64;
    let c2n: Vec<[usize; 4]> = (0..n_cells)
        .map(|_| {
            let mut t = [0usize; 4];
            let mut k = 0;
            while k < 4 {
                let cand = (lcg(&mut seed) as usize) % n_targets;
                if !t[..k].contains(&cand) {
                    t[k] = cand;
                    k += 1;
                }
            }
            t
        })
        .collect();
    let inv = invert_cell_targets(&c2n, n_targets);

    println!(
        "\n--- cell-locality: sorted segments / matrix tiles vs unsorted deposit ---\n\
         {n_cells} cells -> {n_targets} targets, 4 adds/particle, threads {thread_sweep:?}, \
         best of {reps} (ms)"
    );
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "ppc",
        "threads",
        "particles",
        "SA(unsort)",
        "AT(unsort)",
        "SS(sorted)",
        "MX(sorted)",
        "sort"
    );

    // (threads, ppc, n, sa, at, ss, mx, sort) — assembled into
    // per-thread-count JSON sweeps at the end.
    type Row = (usize, usize, usize, f64, f64, f64, f64, f64);
    let mut rows: Vec<Row> = Vec::new();
    for ppc in [8usize, 64, 256] {
        let n = n_cells * ppc;
        // Random (unsorted) cell assignment + per-particle weights —
        // one store per regime, shared by every thread count so the
        // sweeps are directly comparable.
        let cells: Vec<i32> = (0..n)
            .map(|_| ((lcg(&mut seed) as usize) % n_cells) as i32)
            .collect();
        let mut ps = ParticleDats::new();
        let wid = ps.decl_dat("w", 4);
        ps.inject_into(&cells);
        for (i, w) in ps.col_mut(wid).iter_mut().enumerate() {
            *w = 0.25 + ((i % 13) as f64) * 0.03125;
        }

        let time_best = |f: &mut dyn FnMut() -> f64| -> (f64, f64) {
            let mut best = f64::INFINITY;
            let mut total = 0.0;
            for _ in 0..reps {
                let t0 = Instant::now();
                total = f();
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            (best, total)
        };

        // Unsorted inputs: the store as injected. Snapshotted before
        // the sort below so every thread count times the same bytes.
        let pcells = ps.cells().to_vec();
        let w = ps.col(wid).to_vec();

        // Sorted inputs: rebuild the CSR index once per regime (the
        // rebuild cost is policy-independent) and keep the sorted
        // order for the segment/tile paths.
        let t0 = Instant::now();
        ps.sort_by_cell(n_cells);
        let sort_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cell_start = ps.cell_index().expect("fresh after sort").to_vec();
        let scells = ps.cells().to_vec();
        let ws = ps.col(wid);

        // Conformance guard before any timing: the exact-accumulation
        // tile fold must replay the Serial deposit bit for bit on the
        // sorted store.
        {
            let mut serial = vec![0.0f64; n_targets];
            deposit_loop(
                &ExecPolicy::Seq,
                DepositMethod::Serial,
                n,
                &mut serial,
                |i, dep| {
                    let c = scells[i] as usize;
                    for (k, &t) in c2n[c].iter().enumerate() {
                        dep.add(t, ws[i * 4 + k]);
                    }
                },
            );
            let mut exact = vec![0.0f64; n_targets];
            deposit_loop_matrix(
                &ExecPolicy::Par,
                &cell_start,
                &inv,
                &mut exact,
                MatAccumulate::Exact,
                |p, s| ws[p * 4 + s],
            );
            assert!(
                serial
                    .iter()
                    .zip(&exact)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "ppc {ppc}: exact matrix deposit must be bit-identical to Serial"
            );
        }

        for &threads in &thread_sweep {
            let policy = ExecPolicy::pool(threads);
            let unsorted = |method: DepositMethod| {
                time_best(&mut || {
                    let mut buf = vec![0.0f64; n_targets];
                    deposit_loop(&policy, method, n, &mut buf, |i, dep| {
                        let c = pcells[i] as usize;
                        for (k, &t) in c2n[c].iter().enumerate() {
                            dep.add(t, w[i * 4 + k]);
                        }
                    });
                    buf.iter().sum()
                })
            };
            let (sa_ms, sa_total) = unsorted(DepositMethod::ScatterArrays);
            let (at_ms, at_total) = unsorted(DepositMethod::Atomics);

            let (ss_ms, ss_total) = time_best(&mut || {
                let mut buf = vec![0.0f64; n_targets];
                deposit_loop_sorted(&policy, &cell_start, &inv, &mut buf, |p, s| ws[p * 4 + s]);
                buf.iter().sum()
            });
            let (mx_ms, mx_total) = time_best(&mut || {
                let mut buf = vec![0.0f64; n_targets];
                deposit_loop_matrix(
                    &policy,
                    &cell_start,
                    &inv,
                    &mut buf,
                    MatAccumulate::Fast,
                    |p, s| ws[p * 4 + s],
                );
                buf.iter().sum()
            });

            for (label, total) in [("AT", at_total), ("SS", ss_total), ("MX", mx_total)] {
                assert!(
                    (sa_total - total).abs() < 1e-6 * sa_total.abs().max(1.0),
                    "{label} must agree numerically with SA at ppc {ppc}"
                );
            }
            println!(
                "{ppc:>6} {threads:>8} {n:>10} {sa_ms:>12.3} {at_ms:>12.3} {ss_ms:>12.3} \
                 {mx_ms:>12.3} {sort_ms:>10.3}"
            );
            rows.push((threads, ppc, n, sa_ms, at_ms, ss_ms, mx_ms, sort_ms));
        }
    }

    let sweeps: Vec<String> = thread_sweep
        .iter()
        .map(|&t| {
            let regimes: Vec<String> = rows
                .iter()
                .filter(|r| r.0 == t)
                .map(|&(_, ppc, n, sa, at, ss, mx, sort)| {
                    format!(
                        "        {{\"ppc\": {ppc}, \"n_particles\": {n}, \"ms\": \
                         {{\"scatter_arrays\": {sa:.4}, \"atomics\": {at:.4}, \
                         \"sorted_segments\": {ss:.4}, \"matrix\": {mx:.4}, \
                         \"sort\": {sort:.4}}}}}"
                    )
                })
                .collect();
            format!(
                "    {{\"threads\": {t}, \"regimes\": [\n{}\n    ]}}",
                regimes.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_deposit_strategies/cell_locality_matrix\",\n  \
         \"n_cells\": {n_cells},\n  \"n_targets\": {n_targets},\n  \
         \"threads\": [1, 4, 8],\n  \"adds_per_particle\": 4,\n  \"best_of\": {reps},\n  \
         \"sweeps\": [\n{}\n  ]\n}}\n",
        sweeps.join(",\n")
    );
    if sf < 1.0 {
        println!("\nOPPIC_SCALE={sf} < 1: smoke run, not recording results/");
        return;
    }
    let path = std::path::Path::new("results");
    if std::fs::create_dir_all(path).is_ok() {
        let file = path.join("BENCH_ablation_deposit_matrix.json");
        match std::fs::write(&file, &json) {
            Ok(()) => println!("\nrecorded {}", file.display()),
            Err(e) => eprintln!("could not record {}: {e}", file.display()),
        }
    }
}
