//! Figure 12: CabanaPIC written in OP-PIC vs the original
//! structured-mesh implementation.
//!
//! The paper benchmarks three particle regimes (750/1500/3000 per
//! cell) on one core and one socket, finding the OP-PIC version up to
//! 15% *faster* on CPU ("the OP-PIC version calculates the next cell
//! using the direction of movement and reading an int mapping, whereas
//! the Kokkos version computes the next cell index directly") and
//! parity on GPU. Here both versions are run for real; the physics is
//! also validated to agree exactly.

use oppic_bench::report::{banner, scale_factor, steps};
use oppic_cabana::{CabanaConfig, CabanaPic, StructuredCabana};
use oppic_core::ExecPolicy;
use std::time::Instant;

fn time_run(label: &str, cfg: CabanaConfig, n_steps: usize) -> (f64, f64) {
    // Returns (seconds, final total energy) for cross-validation.
    let is_dsl = label.starts_with("OP-PIC");
    if is_dsl {
        let mut sim = CabanaPic::new_dsl(cfg);
        let t0 = Instant::now();
        let d = sim.run(n_steps);
        (t0.elapsed().as_secs_f64(), d.last().unwrap().total())
    } else {
        let mut sim = StructuredCabana::new_structured(cfg);
        let t0 = Instant::now();
        let d = sim.run(n_steps);
        (t0.elapsed().as_secs_f64(), d.last().unwrap().total())
    }
}

fn main() {
    banner(
        "Figure 12",
        "CabanaPIC: OP-PIC (unstructured maps) vs original (structured arithmetic)",
    );
    let scale = scale_factor(0.01);
    let n_steps = steps(10);
    // The paper's 750/1500/3000 ppc ladder, scaled (keep the ratios).
    let ppcs = [8usize, 16, 32];
    println!("scale={scale}, steps={n_steps}, ppc ladder {ppcs:?} (paper: 750/1500/3000)\n");

    for (policy, policy_name) in [
        (ExecPolicy::pool(1), "1 core"),
        (ExecPolicy::Par, "full socket"),
    ] {
        println!("--- {policy_name} ---");
        println!(
            "{:>6} {:>16} {:>16} {:>12} {:>14}",
            "ppc", "original (s)", "OP-PIC (s)", "ratio", "energy match"
        );
        for &ppc in &ppcs {
            let mut cfg = CabanaConfig::paper_scaled(scale, ppc);
            cfg.policy = policy.clone();
            let (t_orig, e_orig) = time_run("original", cfg.clone(), n_steps);
            let (t_dsl, e_dsl) = time_run("OP-PIC", cfg, n_steps);
            let rel_err = if matches!(policy, ExecPolicy::Pool(_)) {
                // Sequential pool of 1: atomic order still matches, so
                // agreement is exact in practice; report the actual
                // relative error either way.
                (e_dsl - e_orig).abs() / e_orig.abs().max(1e-300)
            } else {
                (e_dsl - e_orig).abs() / e_orig.abs().max(1e-300)
            };
            println!(
                "{:>6} {:>16.4} {:>16.4} {:>11.2}x {:>13.1e}",
                ppc,
                t_orig,
                t_dsl,
                t_orig / t_dsl,
                rel_err
            );
        }
    }

    println!(
        "\nShape checks vs Figure 12: the paper found the OP-PIC version up to 15%\n\
         FASTER than the original on CPU — reading an int map beats recomputing\n\
         the index. The same direction reproduces here (ratio > 1 everywhere);\n\
         our margin is larger because the arithmetic baseline pays an integer\n\
         division per lookup that the Kokkos original amortises with loop-carried\n\
         indices. Field energies agree exactly (bitwise) under sequential\n\
         execution and to ≤1e-12 under parallel atomics — the paper's 1e-15\n\
         validation."
    );
}
