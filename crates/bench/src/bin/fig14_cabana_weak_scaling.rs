//! Figure 14: CabanaPIC weak scaling — 96k cells and 144M particles
//! per CPU node / V100 / MI250X GCD, up to 16k cores / 1024 GPUs.
//!
//! Same two-layer scheme as Figure 13. The paper's headline anomaly to
//! reproduce: at 144M particles per unit, **Bede (V100) is slower than
//! ARCHER2** — the single-unit kernel-divergence handicap carries
//! through the whole weak-scaling curve.

use oppic_bench::distributed::run_cabana_distributed;
use oppic_bench::report::{banner, scale_factor, steps};
use oppic_cabana::{CabanaConfig, CabanaPic};
use oppic_core::ExecPolicy;
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_model::{weak_scaling_curve, SystemSpec, WorkloadModel};

fn main() {
    banner(
        "Figure 14",
        "CabanaPIC weak scaling (96k cells + 144M particles per unit)",
    );
    let scale = scale_factor(0.02);
    let n_steps = steps(8);
    let ppc = 32; // 144M-equivalent regime
    let base = CabanaConfig::paper_scaled(scale, ppc);
    println!(
        "scale={scale}: {} cells × {} ppc, {} steps\n",
        base.n_cells(),
        ppc,
        n_steps
    );

    // ---- Layer 1: measured in-process ranks ----
    println!("--- measured (in-process ranks, y-slab partition) ---");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12}",
        "ranks", "MainLoop (s)", "particles", "migrated", "comm MB"
    );
    for r in [1usize, 2, 4] {
        let mut cfg = base.clone();
        cfg.ny = base.ny * r; // weak scaling: grow the mesh with ranks
        let rep = run_cabana_distributed(&cfg, r, n_steps);
        let migrated: usize = rep.ranks.iter().map(|x| x.migrated_out).sum();
        println!(
            "{:>6} {:>14.4} {:>12} {:>12} {:>12.3}",
            r,
            rep.main_loop_seconds,
            rep.total_particles,
            migrated,
            rep.total_comm_bytes() as f64 / 1e6
        );
    }

    // ---- Layer 2: per-unit kernel model, then projection ----
    // Measure single-unit traffic and warp behaviour once.
    let mut cfg = base.clone();
    cfg.policy = ExecPolicy::Par;
    cfg.record_visits = true;
    let mut sim = CabanaPic::new_dsl(cfg);
    sim.run(n_steps);
    let n = sim.ps.len();
    let visits = sim.last_visited.clone();
    let vel_col = sim.ps.col(sim.vel).to_vec();
    let cells = sim.ps.cells().to_vec();
    let per_step = |k: &str| {
        let s = sim.profiler.get(k).unwrap_or_default();
        (
            s.bytes as f64 / n_steps as f64,
            s.flops as f64 / n_steps as f64,
        )
    };

    // Per-unit per-step compute time on each system: GPU units include
    // divergence/atomic terms; the CPU node is the pure roofline.
    let unit_step_time = |spec: &DeviceSpec| -> f64 {
        let rep = analyze_warps(
            spec.warp_size,
            n,
            |i| {
                oppic_bench::analysis::move_path_signature(
                    visits.get(i).copied().unwrap_or(1),
                    &vel_col[i * 3..i * 3 + 3],
                )
            },
            |i, out| {
                let c = cells[i] as u32;
                out.extend([c * 3, c * 3 + 1, c * 3 + 2]);
            },
        );
        let mut t = 0.0;
        for k in [
            "Interpolate",
            "Move_Deposit",
            "AccumulateCurrent",
            "AdvanceB",
            "AdvanceE",
        ] {
            let (b, f) = per_step(k);
            t += if k == "Move_Deposit" {
                rep.modeled_seconds(spec, AtomicFlavor::Unsafe, b, f)
            } else {
                spec.roofline_time(b, f)
            };
        }
        t
    };

    // Halo per unit: one ghost cell layer of the slab interface.
    let interface_cells = (base.nx * base.nz) as f64;
    let halo_bytes = interface_cells * 2.0 * 3.0 * 8.0 * 2.0;

    let units_axis: Vec<usize> = vec![1, 4, 16, 64, 128, 256, 512, 1024];
    println!("\n--- projected (per-unit kernel model + Table 2 networks) ---");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "units", "ARCHER2 (s)", "Bede V100 (s)", "LUMI GCD (s)"
    );
    let systems = [
        (SystemSpec::archer2(), DeviceSpec::epyc_7742_x2()),
        (SystemSpec::bede(), DeviceSpec::v100()),
        (SystemSpec::lumi_g(), DeviceSpec::mi250x_gcd()),
    ];
    let curves: Vec<Vec<f64>> = systems
        .iter()
        .map(|(sys, dev)| {
            let w = WorkloadModel {
                compute_s_per_step: unit_step_time(dev),
                halo_bytes_per_step: halo_bytes,
                msgs_per_step: 6.0,
                migration_bytes_per_step: 1e4,
                imbalance: 0.06,
                steps: 500,
            };
            weak_scaling_curve(sys, &w, &units_axis)
                .into_iter()
                .map(|p| p.total_s)
                .collect()
        })
        .collect();
    for (k, &u) in units_axis.iter().enumerate() {
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.3}",
            u, curves[0][k], curves[1][k], curves[2][k]
        );
    }

    let archer_last = curves[0].last().unwrap();
    let bede_last = curves[1].last().unwrap();
    println!(
        "\nBede/ARCHER2 at scale: {:.2}x ({} — the paper's anomaly: the V100 cluster\n\
         is SLOWER than the CPU cluster for the 144M-per-unit problem)",
        bede_last / archer_last,
        if bede_last > archer_last {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "\nShape checks vs Figure 14: good weak scaling to 16k cores / 1024 GCDs;\n\
         LUMI-G fastest per unit; Bede trails ARCHER2 at this particle density."
    );
}
