//! Figure 15: power-equivalent best runtimes — 18 ARCHER2 nodes vs
//! 8 Bede nodes (32 V100s) vs 5 LUMI-G nodes (20 MI250X = 40 GCDs),
//! all ≈12 kW.
//!
//! Fixed global problems (the paper: Mini-FEM-PIC 1.536M cells /
//! ≈2.5B particles, 250 iters; CabanaPIC 3.072M cells / 2.3B and 4.6B
//! particles, 500 iters) divided over each fleet; per-unit compute
//! from the measured, instrumented kernel model; networks and power
//! from Table 2. Paper speed-ups to land near: FEM-PIC 1.43×/1.71×,
//! CabanaPIC 3.52×/3.03× (vs ARCHER2).

use oppic_bench::report::{banner, scale_factor, steps};
use oppic_cabana::{CabanaConfig, CabanaPic};
use oppic_core::ExecPolicy;
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig};
use oppic_model::{power_equivalent_nodes, PowerStudy, SystemSpec, WorkloadModel};

const ENVELOPE_W: f64 = 12_000.0;

fn main() {
    banner(
        "Figure 15",
        "Power-equivalent best runtimes (~12 kW fleets)",
    );
    let scale = scale_factor(0.04);
    let n_steps = steps(8);

    for (sys, label) in [
        (SystemSpec::archer2(), "ARCHER2"),
        (SystemSpec::bede(), "Bede"),
        (SystemSpec::lumi_g(), "LUMI-G"),
    ] {
        let (nodes, units) = power_equivalent_nodes(&sys, ENVELOPE_W);
        println!(
            "{label}: {nodes} nodes = {units} units in {:.0} kW",
            ENVELOPE_W / 1000.0
        );
    }

    // ---------- CabanaPIC ----------
    // Per-unit kernel model measured once on the scaled problem.
    for (ppc, label, global_parts) in [
        (16usize, "2.3B-particle problem", 2.3e9),
        (32, "4.6B-particle problem", 4.6e9),
    ] {
        let mut cfg = CabanaConfig::paper_scaled(scale, ppc);
        cfg.policy = ExecPolicy::Par;
        cfg.record_visits = true;
        let mut sim = CabanaPic::new_dsl(cfg);
        sim.run(n_steps);
        let n = sim.ps.len();
        let visits = sim.last_visited.clone();
        let vel_col = sim.ps.col(sim.vel).to_vec();
        let cells = sim.ps.cells().to_vec();
        let per_step = |k: &str| {
            let s = sim.profiler.get(k).unwrap_or_default();
            (
                s.bytes as f64 / n_steps as f64,
                s.flops as f64 / n_steps as f64,
            )
        };
        // Time per particle-step on each device class, then scale to
        // the fixed global problem split across the fleet.
        let unit_time_for = |spec: &DeviceSpec, particles_per_unit: f64| -> f64 {
            let rep = analyze_warps(
                spec.warp_size,
                n,
                |i| {
                    oppic_bench::analysis::move_path_signature(
                        visits.get(i).copied().unwrap_or(1),
                        &vel_col[i * 3..i * 3 + 3],
                    )
                },
                |i, out| {
                    let c = cells[i] as u32;
                    out.extend([c * 3, c * 3 + 1, c * 3 + 2]);
                },
            );
            let mut t = 0.0;
            for k in [
                "Interpolate",
                "Move_Deposit",
                "AccumulateCurrent",
                "AdvanceB",
                "AdvanceE",
            ] {
                let (b, f) = per_step(k);
                t += if k == "Move_Deposit" {
                    rep.modeled_seconds(spec, AtomicFlavor::Unsafe, b, f)
                } else {
                    spec.roofline_time(b, f)
                };
            }
            t * particles_per_unit / n as f64
        };

        let workloads: Vec<(SystemSpec, WorkloadModel)> = [
            (SystemSpec::archer2(), DeviceSpec::epyc_7742_x2()),
            (SystemSpec::bede(), DeviceSpec::v100()),
            (SystemSpec::lumi_g(), DeviceSpec::mi250x_gcd()),
        ]
        .into_iter()
        .map(|(sys, dev)| {
            let (_, units) = power_equivalent_nodes(&sys, ENVELOPE_W);
            let w = WorkloadModel {
                compute_s_per_step: unit_time_for(&dev, global_parts / units as f64),
                halo_bytes_per_step: 3.072e6 / units as f64 * 24.0 * 0.1,
                msgs_per_step: 6.0,
                migration_bytes_per_step: 1e4,
                imbalance: 0.06,
                steps: 500,
            };
            (sys, w)
        })
        .collect();
        let study = PowerStudy::run(ENVELOPE_W, &workloads);
        println!("\nCabanaPIC, {label} (paper: LUMI-G 3.52x / 3.03x):");
        print!("{}", study.table());
    }

    // ---------- Mini-FEM-PIC ----------
    {
        let mut cfg = FemPicConfig::paper_scaled(scale);
        cfg.policy = ExecPolicy::Par;
        cfg.record_move_chains = true;
        let mut sim = FemPic::new(cfg);
        sim.run(n_steps);
        let n = sim.ps.len();
        let chains = sim.last_move.chains.clone();
        let cells = sim.ps.cells().to_vec();
        let c2n = sim.mesh.c2n.clone();
        let per_step = |k: &str| {
            let s = sim.profiler.get(k).unwrap_or_default();
            (
                s.bytes as f64 / n_steps as f64,
                s.flops as f64 / n_steps as f64,
            )
        };
        let global_parts = 2.5e9;
        let unit_time_for = |spec: &DeviceSpec, particles_per_unit: f64| -> f64 {
            let move_rep = analyze_warps(
                spec.warp_size,
                n,
                |i| chains.get(i).copied().unwrap_or(1),
                |_, _| {},
            );
            let dep_rep = analyze_warps(
                spec.warp_size,
                n,
                |_| 0,
                |i, out| {
                    out.extend(c2n[cells[i] as usize].iter().map(|&x| x as u32));
                },
            );
            let mut t = 0.0;
            for k in [
                "Inject",
                "CalcPosVel",
                "Move",
                "DepositCharge",
                "ComputeF1Vector+SolvePotential",
                "ComputeElectricField",
            ] {
                let (b, f) = per_step(k);
                t += match k {
                    "Move" => move_rep.modeled_gather_seconds(spec, AtomicFlavor::Safe, b, f),
                    // CPUs deposit via scatter arrays (no atomics);
                    // GPUs pay the atomic serialization terms.
                    // GPU deposits: streaming-rate scatter + atomic
                    // serialization (the paper: NVIDIA DepositCharge is
                    // even faster than Move — hardware atomics absorb
                    // the scatter).
                    "DepositCharge" if spec.is_gpu() => {
                        dep_rep.modeled_seconds(spec, AtomicFlavor::Unsafe, b, f)
                    }
                    "DepositCharge" | "CalcPosVel" => spec.gather_roofline_time(b, f),
                    _ => spec.roofline_time(b, f),
                };
            }
            t * particles_per_unit / n as f64
        };
        let workloads: Vec<(SystemSpec, WorkloadModel)> = [
            (SystemSpec::archer2(), DeviceSpec::epyc_7742_x2()),
            (SystemSpec::bede(), DeviceSpec::v100()),
            (SystemSpec::lumi_g(), DeviceSpec::mi250x_gcd()),
        ]
        .into_iter()
        .map(|(sys, dev)| {
            let (_, units) = power_equivalent_nodes(&sys, ENVELOPE_W);
            let w = WorkloadModel {
                compute_s_per_step: unit_time_for(&dev, global_parts / units as f64),
                // FEM-PIC's node-charge exchange is relatively heavier.
                halo_bytes_per_step: 1.536e6 / units as f64 * 8.0 * 0.5,
                msgs_per_step: 8.0,
                migration_bytes_per_step: 1e5,
                imbalance: 0.15,
                steps: 250,
            };
            (sys, w)
        })
        .collect();
        let study = PowerStudy::run(ENVELOPE_W, &workloads);
        println!("\nMini-FEM-PIC, 2.5B-particle problem (paper: Bede 1.43x, LUMI-G 1.71x):");
        print!("{}", study.table());
    }

    println!(
        "\nShape checks vs Figure 15: within an equal power envelope the GPU fleets\n\
         beat the CPU fleet; CabanaPIC's GPU advantage (bandwidth-hungry fused\n\
         kernel) exceeds Mini-FEM-PIC's; speed-ups land in the paper's 1.4–3.5x band."
    );
}
