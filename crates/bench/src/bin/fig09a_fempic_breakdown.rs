//! Figure 9(a): Mini-FEM-PIC runtime breakdown on a single node/device.
//!
//! The paper runs a 48k-cell mesh with ≈70M particles on two CPU nodes
//! and four GPUs. Here the host runs the real code (sequential, and
//! thread-parallel with MH and DH moves); the GPU bars are projected
//! through the device cost model from the measured per-kernel traffic
//! plus the warp-divergence/atomic-collision analysis of the actual
//! particle data (DESIGN.md, substitutions). Scale with
//! `OPPIC_SCALE` (1.0 = paper size) and `OPPIC_STEPS`.

use oppic_bench::report::{banner, bar_chart, scale_factor, steps, telemetry_from_env};
use oppic_core::{DepositMethod, ExecPolicy};
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig, MoveStrategy};

const KERNELS: [&str; 6] = [
    "Inject",
    "CalcPosVel",
    "Move",
    "DepositCharge",
    "ComputeF1Vector+SolvePotential",
    "ComputeElectricField",
];

fn run_variant(name: &str, cfg: FemPicConfig, n_steps: usize) -> (FemPic, Vec<(String, f64)>) {
    let mut sim = FemPic::new(cfg);
    let sink = telemetry_from_env(
        &sim.profiler,
        "fempic",
        name,
        sim.cfg.policy.threads(),
        &format!("{:?}", sim.cfg),
    );
    sim.run(n_steps);
    if sink {
        let _ = sim.profiler.telemetry().finish();
    }
    let rows: Vec<(String, f64)> = KERNELS
        .iter()
        .map(|k| {
            (
                k.to_string(),
                sim.profiler.get(k).map_or(0.0, |s| s.seconds),
            )
        })
        .collect();
    println!(
        "\n--- {name} ({} particles after {n_steps} steps) ---",
        sim.ps.len()
    );
    print!("{}", bar_chart(&rows, "s"));
    (sim, rows)
}

fn main() {
    banner(
        "Figure 9(a)",
        "Mini-FEM-PIC runtime breakdown — 48k-cell duct, ~70M particles (scaled)",
    );
    let scale = scale_factor(0.02);
    let n_steps = steps(25);
    println!("scale={scale} (1.0 = paper size), steps={n_steps}\n");

    let base = FemPicConfig::paper_scaled(scale);

    // CPU sequential reference.
    let mut cfg = base.clone();
    cfg.policy = ExecPolicy::Seq;
    cfg.deposit = DepositMethod::Serial;
    run_variant("CPU sequential (seq backend)", cfg, n_steps);

    // CPU parallel, multi-hop (the flat-MPI/OpenMP analogue).
    let mut cfg = base.clone();
    cfg.policy = ExecPolicy::Par;
    cfg.deposit = DepositMethod::ScatterArrays;
    cfg.record_move_chains = true;
    let (sim_mh, _) = run_variant("CPU parallel, multi-hop (MH), scatter arrays", cfg, n_steps);

    // CPU parallel, direct-hop.
    let mut cfg = base.clone();
    cfg.policy = ExecPolicy::Par;
    cfg.deposit = DepositMethod::ScatterArrays;
    cfg.move_strategy = MoveStrategy::DirectHop {
        overlay_res: 2 * base.nx,
    };
    let (sim_dh, _) = run_variant(
        "CPU parallel, direct-hop (DH), scatter arrays",
        cfg,
        n_steps,
    );

    println!(
        "\nMove search work: MH {:.3} visits/particle vs DH {:.3}.\n\
         (DH pays off when particles cross several cells per step — the paper's\n\
         large, fast-flow runs; see `ablation_move_strategies` for that regime.)",
        sim_mh.last_move.mean_visits(sim_mh.ps.len().max(1)),
        sim_dh.last_move.mean_visits(sim_dh.ps.len().max(1)),
    );

    // GPU projections from measured traffic + warp analysis.
    println!("\n--- GPU projections (device cost model; per-step kernel times) ---");
    let n = sim_mh.ps.len();
    let chains = &sim_mh.last_move.chains;
    let cells = sim_mh.ps.cells();
    let c2n = &sim_mh.mesh.c2n;

    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>14}",
        "device", "Move (s)", "CalcPosVel", "Deposit AT", "Deposit SR/UA"
    );
    for spec in [
        DeviceSpec::v100(),
        DeviceSpec::h100(),
        DeviceSpec::mi210(),
        DeviceSpec::mi250x_gcd(),
    ] {
        // Divergence of the Move kernel = spread of hop-chain lengths
        // within a warp.
        let move_rep = analyze_warps(
            spec.warp_size,
            n,
            |i| chains.get(i).copied().unwrap_or(1),
            |_, _| {},
        );
        // Deposit: each particle updates the 4 nodes of its cell.
        let dep_rep = analyze_warps(
            spec.warp_size,
            n,
            |_| 0,
            |i, out| {
                let nd = c2n[cells[i] as usize];
                out.extend(nd.iter().map(|&x| x as u32));
            },
        );
        let g = |k: &str| {
            let s = sim_mh.profiler.get(k).unwrap_or_default();
            // Per-step traffic.
            (
                s.bytes as f64 / n_steps as f64,
                s.flops as f64 / n_steps as f64,
            )
        };
        let (mv_b, mv_f) = g("Move");
        let (cp_b, cp_f) = g("CalcPosVel");
        let (dc_b, dc_f) = g("DepositCharge");
        let t_move = move_rep.modeled_gather_seconds(&spec, AtomicFlavor::Safe, mv_b, mv_f);
        let t_push = spec.gather_roofline_time(cp_b, cp_f);
        let t_dep_at = dep_rep.modeled_gather_seconds(&spec, AtomicFlavor::Safe, dc_b, dc_f);
        let t_dep_ua = dep_rep.modeled_gather_seconds(&spec, AtomicFlavor::Unsafe, dc_b, dc_f);
        println!(
            "{:<22} {:>12.6} {:>12.6} {:>14.6} {:>14.6}",
            spec.name, t_move, t_push, t_dep_at, t_dep_ua
        );
    }
    println!(
        "\nShape checks vs the paper: Move dominates on CPUs and NVIDIA GPUs; on AMD\n\
         GPUs safe-atomic DepositCharge (AT) blows up vs UA/SR; DH beats MH."
    );
}
