//! Figure 11: CabanaPIC rooflines on the Intel 8268 CPU node, the
//! V100, and one MI250X GCD — 96k cells, 72M-particle regime (scaled).
//!
//! The paper's observation to reproduce: every routine is
//! bandwidth-bound; `Move_Deposit` sits a little *below* the DRAM roof
//! (it fuses move + deposit and suffers kernel divergence);
//! `Update_Ghosts` is excluded (comm-dominated).

use oppic_bench::report::{banner, scale_factor, steps};
use oppic_cabana::{CabanaConfig, CabanaPic};
use oppic_core::profile::KernelStats;
use oppic_core::ExecPolicy;
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_model::RooflineChart;

fn main() {
    banner(
        "Figure 11",
        "CabanaPIC rooflines (CPU node, V100, MI250X GCD)",
    );
    let scale = scale_factor(0.02);
    let n_steps = steps(15);

    let mut cfg = CabanaConfig::paper_scaled(scale, 16);
    cfg.policy = ExecPolicy::Par;
    cfg.record_visits = true;
    let mut sim = CabanaPic::new_dsl(cfg);
    sim.run(n_steps);

    let n = sim.ps.len();
    let visits = sim.last_visited.clone();
    let vel_col = sim.ps.col(sim.vel).to_vec();
    let cells = sim.ps.cells().to_vec();

    let kernels = [
        "Interpolate",
        "Move_Deposit",
        "AccumulateCurrent",
        "AdvanceB",
        "AdvanceE",
    ];

    for spec in [
        DeviceSpec::xeon_8268_x2(),
        DeviceSpec::v100(),
        DeviceSpec::mi250x_gcd(),
    ] {
        let mut chart = RooflineChart::new(spec.name, spec.mem_bw_gbs, spec.peak_gflops);
        let md_rep = analyze_warps(
            spec.warp_size,
            n,
            |i| {
                oppic_bench::analysis::move_path_signature(
                    visits.get(i).copied().unwrap_or(1),
                    &vel_col[i * 3..i * 3 + 3],
                )
            },
            |i, out| {
                let c = cells[i] as u32;
                out.extend([c * 3, c * 3 + 1, c * 3 + 2]);
            },
        );
        for k in kernels {
            let st = sim.profiler.get(k).unwrap_or_default();
            if st.bytes == 0 {
                continue;
            }
            let (b, f) = (st.bytes as f64, st.flops as f64);
            let t = if k == "Move_Deposit" {
                md_rep.modeled_seconds(&spec, AtomicFlavor::Unsafe, b, f)
            } else {
                spec.roofline_time(b, f)
            };
            let modeled = KernelStats {
                calls: st.calls,
                seconds: t,
                bytes: st.bytes,
                flops: st.flops,
                class: st.class,
            };
            chart.place(k, &modeled);
        }
        println!("\n{}", chart.table());
    }

    println!(
        "\nShape checks vs Figure 11: all routines at memory-bound intensities;\n\
         Move_Deposit just below the DRAM roof (divergence + fused move/deposit);\n\
         pure field kernels (AdvanceE/AdvanceB/Interpolate) ride the bandwidth roof."
    );
}
