//! Figure 13: Mini-FEM-PIC weak scaling — 48k cells and 70M particles
//! per CPU node / V100 / MI250X GCD, 250 iterations, up to 128 units.
//!
//! Two layers, per the substitution policy:
//! 1. a *measured* in-process distributed run (real ranks, real
//!    particle migration, real reductions) at 1–8 ranks;
//! 2. a *projected* curve to the paper's 128 units for each Table 2
//!    system, from the measured per-unit compute time and the real
//!    halo volumes of the directional partition.

use oppic_bench::distributed::run_fempic_distributed;
use oppic_bench::report::{banner, scale_factor, steps};
use oppic_fempic::FemPicConfig;
use oppic_mesh::TetMesh;
use oppic_model::{weak_scaling_curve, SystemSpec, WorkloadModel};
use oppic_mpi::partition::{directional_partition, partition_stats};

fn main() {
    banner(
        "Figure 13",
        "Mini-FEM-PIC weak scaling (48k cells + 70M particles per unit)",
    );
    let scale = scale_factor(0.02);
    let n_steps = steps(10);
    let base = FemPicConfig::paper_scaled(scale);
    println!(
        "scale={scale}: {} cells, {} injected/step/rank-set, {} steps\n",
        base.n_cells(),
        base.inject_per_step,
        n_steps
    );

    // ---- Layer 1: measured in-process ranks ----
    println!("--- measured (in-process ranks, per-rank problem fixed) ---");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12}",
        "ranks", "MainLoop (s)", "particles", "migrated", "comm MB"
    );
    let mut t1 = 0.0;
    for r in [1usize, 2, 4, 8] {
        // Weak scaling: total work grows with ranks.
        let mut cfg = base.clone();
        cfg.inject_per_step = base.inject_per_step * r;
        let rep = run_fempic_distributed(&cfg, r, n_steps);
        if r == 1 {
            t1 = rep.main_loop_seconds;
        }
        let migrated: usize = rep.ranks.iter().map(|x| x.migrated_out).sum();
        println!(
            "{:>6} {:>14.4} {:>12} {:>12} {:>12.3}",
            r,
            rep.main_loop_seconds,
            rep.total_particles,
            migrated,
            rep.total_comm_bytes() as f64 / 1e6
        );
    }
    println!("(efficiency at 8 ranks limited by the shared host — the projection below\n uses per-system interconnects)");

    // ---- Layer 2: projection to paper scale ----
    // Halo volume measured from the real partition of the PAPER-size
    // mesh: 20x20x20 hexes = 48k tets is one unit's mesh; at scale the
    // global mesh is 48k x units, but the per-unit interface stays the
    // interface of a 48k slab.
    let mesh = TetMesh::duct(20, 20, 20, base.lx, base.ly, base.lz);
    let centroids: Vec<_> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let units_axis: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128];
    // Per-unit halo cells at 8 ranks (interior ranks have two
    // interfaces — representative of large R).
    let rank8 = directional_partition(&centroids, 1, 8);
    let stats = partition_stats(&mesh.c2c, &rank8, 8);
    let halo_cells_per_unit = stats.halo_cells as f64 / 8.0;
    // Scale measured host compute (a) to the paper's per-unit particle
    // count (bandwidth-bound work ∝ particles) and (b) to each
    // system's bandwidth.
    let particles_measured = {
        let rep = run_fempic_distributed(&base, 1, n_steps);
        rep.total_particles.max(1)
    };
    let paper_particles_per_unit = 70e6;
    let work_ratio = paper_particles_per_unit / particles_measured as f64;
    let host_bw = 50.0; // conservative laptop-class GB/s
    println!("\n--- projected to paper scale (bandwidth-scaled compute + Table 2 networks) ---");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "units", "ARCHER2 (s)", "Bede V100 (s)", "LUMI GCD (s)"
    );
    let curves: Vec<Vec<f64>> = [
        SystemSpec::archer2(),
        SystemSpec::bede(),
        SystemSpec::lumi_g(),
    ]
    .iter()
    .map(|sys| {
        // GPU units lose ~3x more bandwidth than cached CPUs on
        // the data-dependent gathers that dominate FEM-PIC (see
        // DeviceSpec::gather_efficiency); the host measurement is
        // CPU-cached, so only GPU units get the relative derate.
        let gather_rel = if sys.units_per_node > 1 {
            1.0 / 3.0
        } else {
            1.0
        };
        let w = WorkloadModel {
            compute_s_per_step: (t1 / n_steps as f64) * work_ratio * host_bw
                / (sys.unit_mem_bw_gbs * gather_rel),
            halo_bytes_per_step: halo_cells_per_unit * 2.0 * 8.0 * 2.0,
            msgs_per_step: 8.0,
            // Migration is tiny with the directional partition.
            migration_bytes_per_step: 1e4,
            imbalance: 0.10,
            steps: 250,
        };
        weak_scaling_curve(sys, &w, &units_axis)
            .into_iter()
            .map(|p| p.total_s)
            .collect()
    })
    .collect();
    for (k, &u) in units_axis.iter().enumerate() {
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.3}",
            u, curves[0][k], curves[1][k], curves[2][k]
        );
    }
    let eff = |c: &Vec<f64>| c[0] / c[c.len() - 1];
    println!(
        "\nparallel efficiency at 128 units: ARCHER2 {:.0}%, Bede {:.0}%, LUMI-G {:.0}%",
        eff(&curves[0]) * 100.0,
        eff(&curves[1]) * 100.0,
        eff(&curves[2]) * 100.0
    );
    println!(
        "\nShape checks vs Figure 13: near-flat weak scaling to 128 units on every\n\
         system; each GPU unit beats an ARCHER2 node at equal unit counts\n\
         (V100/GCD bandwidth > node bandwidth); Move dominates throughout."
    );
}
