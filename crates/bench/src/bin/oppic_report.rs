//! `oppic-report` — digest telemetry JSONL streams into the paper's
//! presentation artifacts.
//!
//! ```text
//! oppic-report [--artifacts <dir>] <run.jsonl>...
//! ```
//!
//! Prints one breakdown table (kernels, per-class totals, step
//! statistics) per input stream. With `--artifacts <dir>` it also
//! writes `BENCH_roofline.csv` (Figure 10/11 operands) and
//! `BENCH_step_timings.json` (per-step timings/populations) into the
//! directory.

use oppic_bench::telemetry_report::{
    breakdown_table, parse_run, roofline_csv, step_timings_json, RunSummary,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: oppic-report [--artifacts <dir>] <run.jsonl>...");
        return ExitCode::SUCCESS;
    }
    let artifacts = match args.iter().position(|a| a == "--artifacts") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("oppic-report: --artifacts requires a directory");
                return ExitCode::FAILURE;
            }
            let dir = args.remove(i + 1);
            args.remove(i);
            Some(dir)
        }
        None => None,
    };
    if args.is_empty() {
        eprintln!("usage: oppic-report [--artifacts <dir>] <run.jsonl>...");
        return ExitCode::FAILURE;
    }

    let mut runs: Vec<RunSummary> = Vec::new();
    for path in &args {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("oppic-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_run(&src) {
            Ok(run) => {
                println!("== {path}");
                print!("{}", breakdown_table(&run));
                println!();
                runs.push(run);
            }
            Err(e) => {
                eprintln!("oppic-report: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(dir) = artifacts {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("oppic-report: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let write = |name: &str, content: String| -> std::io::Result<()> {
            let p = dir.join(name);
            std::fs::write(&p, content)?;
            println!("wrote {}", p.display());
            Ok(())
        };
        if let Err(e) = write("BENCH_roofline.csv", roofline_csv(&runs))
            .and_then(|()| write("BENCH_step_timings.json", step_timings_json(&runs)))
        {
            eprintln!("oppic-report: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
