//! `oppic-report` — digest telemetry JSONL streams into the paper's
//! presentation artifacts.
//!
//! ```text
//! oppic-report [--artifacts <dir>] <run.jsonl>...
//! oppic-report --timeline <out.json> [--schedule <trace.json>] <run.jsonl>...
//! oppic-report --decode-recorder <dump.bin>
//! ```
//!
//! Prints one breakdown table (kernels, per-class totals, step
//! statistics) per input stream. With `--artifacts <dir>` it also
//! writes `BENCH_roofline.csv` (Figure 10/11 operands) and
//! `BENCH_step_timings.json` (per-step timings/populations) into the
//! directory. `--timeline` merges the runs (plus an optional
//! `oppic-schedule-v1` trace) into Chrome-trace JSON for
//! `chrome://tracing` / Perfetto; `--decode-recorder` pretty-prints a
//! flight-recorder dump (`OPFR` binary, DESIGN.md §6).

use oppic_bench::telemetry_report::{
    breakdown_table, parse_run, roofline_csv, step_timings_json, RunSummary,
};
use oppic_core::schedule::ScheduleTrace;
use oppic_obs::recorder::FlightDump;
use oppic_obs::timeline::chrome_trace;
use std::process::ExitCode;

const USAGE: &str = "usage: oppic-report [--artifacts <dir>] [--timeline <out.json>] \
                     [--schedule <trace.json>] <run.jsonl>... | --decode-recorder <dump.bin>";

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// `--decode-recorder` mode: parse and pretty-print an `OPFR` dump.
fn decode_recorder(path: &str) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("oppic-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dump = match FlightDump::parse(&bytes) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("oppic-report: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "flight recorder dump: format v{}, ring capacity {}, {} event(s) total, \
         {} dropped, {} in window",
        dump.version,
        dump.capacity,
        dump.total,
        dump.dropped,
        dump.records.len()
    );
    for r in &dump.records {
        println!("{}", r.render());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (artifacts, timeline, schedule, decode) = match (|| {
        Ok::<_, String>((
            take_value(&mut args, "--artifacts")?,
            take_value(&mut args, "--timeline")?,
            take_value(&mut args, "--schedule")?,
            take_value(&mut args, "--decode-recorder")?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("oppic-report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = decode {
        return decode_recorder(&path);
    }
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut runs: Vec<RunSummary> = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &args {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("oppic-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_run(&src) {
            Ok(run) => {
                println!("== {path}");
                print!("{}", breakdown_table(&run));
                println!();
                runs.push(run);
                sources.push((path.clone(), src));
            }
            Err(e) => {
                eprintln!("oppic-report: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(out) = timeline {
        let trace = match &schedule {
            Some(path) => match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|s| ScheduleTrace::from_json(&s))
            {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("oppic-report: schedule trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let labeled: Vec<(&str, &str)> = sources
            .iter()
            .map(|(p, s)| (p.as_str(), s.as_str()))
            .collect();
        let json = chrome_trace(&labeled, trace.as_ref());
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("oppic-report: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out} (chrome://tracing / Perfetto format)");
    }

    if let Some(dir) = artifacts {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("oppic-report: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let write = |name: &str, content: String| -> std::io::Result<()> {
            let p = dir.join(name);
            std::fs::write(&p, content)?;
            println!("wrote {}", p.display());
            Ok(())
        };
        if let Err(e) = write("BENCH_roofline.csv", roofline_csv(&runs))
            .and_then(|()| write("BENCH_step_timings.json", step_timings_json(&runs)))
        {
            eprintln!("oppic-report: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
