//! Ablation (Section 4.2 text): multi-hop vs direct-hop particle move.
//!
//! "Comparing MH to DH (not shown) we observed that the DH approach
//! consistently gives 20% faster runtimes." DH wins when particles
//! cross several cells per step — the regime exercised here with a
//! fast-flow duct — and additionally trades memory for hops (the
//! overlay bookkeeping), which this binary reports too.

use oppic_bench::report::{banner, steps, telemetry_from_env};
use oppic_core::ExecPolicy;
use oppic_fempic::{FemPic, FemPicConfig, MoveStrategy};
use oppic_mesh::{StructuredOverlay, TetMesh};
use std::time::Instant;

/// A hop-heavy configuration: long duct, particles cross ~2–4 cells
/// per step.
fn fast_flow_config() -> FemPicConfig {
    FemPicConfig {
        nx: 24,
        ny: 6,
        nz: 6,
        lx: 12.0,
        ly: 1.0,
        lz: 1.0,
        inlet_velocity: 4.0,
        dt: 0.25,
        inject_per_step: 6000,
        wall_potential: 1.0,
        policy: ExecPolicy::Par,
        ..FemPicConfig::default()
    }
}

fn main() {
    banner(
        "Ablation",
        "particle move: multi-hop (MH) vs direct-hop (DH)",
    );
    let n_steps = steps(20);
    let base = fast_flow_config();
    println!(
        "fast-flow duct: {} cells, v·dt = {} (≈{:.1} hex cells/step), {} steps\n",
        base.n_cells(),
        base.inlet_velocity * base.dt,
        base.inlet_velocity * base.dt / (base.lx / base.nx as f64),
        n_steps
    );

    println!(
        "{:<34} {:>12} {:>14} {:>12} {:>14}",
        "strategy", "Move (s)", "visits/ptcl", "overlay MB", "total (s)"
    );
    let mut mh_time = 0.0;
    for (label, strategy, res) in [
        ("multi-hop (MH)", MoveStrategy::MultiHop, 0usize),
        (
            "direct-hop (DH), overlay 48³",
            MoveStrategy::DirectHop { overlay_res: 48 },
            48,
        ),
        (
            "direct-hop (DH), overlay 96³",
            MoveStrategy::DirectHop { overlay_res: 96 },
            96,
        ),
        (
            "direct-hop (DH), overlay 24³",
            MoveStrategy::DirectHop { overlay_res: 24 },
            24,
        ),
    ] {
        let mut cfg = base.clone();
        cfg.move_strategy = strategy;
        let mut sim = FemPic::new(cfg);
        let sink = telemetry_from_env(
            &sim.profiler,
            "fempic",
            label,
            sim.cfg.policy.threads(),
            &format!("{:?}", sim.cfg),
        );
        let t0 = Instant::now();
        sim.run(n_steps);
        let total = t0.elapsed().as_secs_f64();
        if sink {
            let _ = sim.profiler.telemetry().finish();
        }
        let move_s = sim.profiler.get("Move").map_or(0.0, |s| s.seconds);
        if label.starts_with("multi") {
            mh_time = move_s;
        }
        let overlay_mb = if res > 0 {
            let mesh = TetMesh::duct(base.nx, base.ny, base.nz, base.lx, base.ly, base.lz);
            StructuredOverlay::build(&mesh, [res; 3]).memory_bytes() as f64 / 1e6
        } else {
            0.0
        };
        println!(
            "{:<34} {:>12.4} {:>14.3} {:>12.3} {:>14.4}",
            label,
            move_s,
            sim.last_move.mean_visits(sim.ps.len().max(1)),
            overlay_mb,
            total
        );
        if !label.starts_with("multi") && mh_time > 0.0 {
            println!(
                "{:<34} {:>11.1}% faster Move than MH",
                "",
                (1.0 - move_s / mh_time) * 100.0
            );
        }
    }

    println!(
        "\nShape checks vs the paper: DH reduces search visits (and Move time) in the\n\
         multi-cell-per-step regime — the paper's 'consistently ~20% faster' — at\n\
         the price of the overlay's memory footprint, which grows with resolution."
    );
}
