//! Table 1: GPU utilisation for both mini-apps at 1 and many devices.
//!
//! The paper reads nvidia-smi/rocm-smi; here the device model
//! integrates modeled busy time (kernel roofline + divergence/atomic
//! terms over the real particle data) against modeled idle time (the
//! halo/accumulator exchanges and end-of-move synchronisation of the
//! multi-device runs, costed with the Table 2 interconnects). The
//! paper's two observations must reproduce: utilisation drops with
//! device count, and rises with particle count.

use oppic_bench::report::{banner, scale_factor, steps};
use oppic_cabana::{CabanaConfig, CabanaPic};
use oppic_core::ExecPolicy;
use oppic_device::{analyze_warps, AtomicFlavor, Device, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig};
use oppic_model::SystemSpec;

/// Model a multi-device run of a kernel workload: per-device busy time
/// from the measured single-device traffic (weak scaling: same work
/// per device), idle time from the exchange volume + a sync term that
/// grows with device count (particle-move completion requires all
/// ranks to synchronise).
fn utilization(
    spec: &DeviceSpec,
    system: &SystemSpec,
    n_devices: usize,
    busy_per_step: f64,
    exchange_bytes_per_step: f64,
    imbalance: f64,
) -> f64 {
    let dev = Device::new(spec.clone());
    let steps = 100;
    let busy = busy_per_step * steps as f64;
    let idle = if n_devices > 1 {
        let comm = system.net_time(exchange_bytes_per_step, 12.0) * steps as f64;
        let sync = imbalance * busy * (1.0 - 1.0 / n_devices as f64);
        comm + sync
    } else {
        // Single device: only host-side launch gaps (~1%).
        0.01 * busy
    };
    // Integrate through the device clocks so Table 1 exercises the same
    // accounting the Device type exposes.
    dev.record_idle(idle);
    let fake_kernel_seconds = busy;
    let busy_clock = fake_kernel_seconds; // launch_timed would add this
    busy_clock / (busy_clock + dev.idle_seconds())
}

fn main() {
    banner(
        "Table 1",
        "GPU utilisation — 1 vs many devices, both mini-apps",
    );
    let scale = scale_factor(0.015);
    let n_steps = steps(10);

    // ---- CabanaPIC at two particle counts ----
    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (ppc, label) in [
        (16usize, "CabanaPIC 96k cells, 72M particles"),
        (32, "CabanaPIC 96k cells, 144M particles"),
    ] {
        let mut cfg = CabanaConfig::paper_scaled(scale, ppc);
        cfg.policy = ExecPolicy::Par;
        cfg.record_visits = true;
        let mut sim = CabanaPic::new_dsl(cfg);
        sim.run(n_steps);
        let n = sim.ps.len();
        let cells = sim.ps.cells();
        let visits = &sim.last_visited;
        let vel_col = sim.ps.col(sim.vel).to_vec();
        let per_step = |k: &str| {
            let s = sim.profiler.get(k).unwrap_or_default();
            (
                s.bytes as f64 / n_steps as f64,
                s.flops as f64 / n_steps as f64,
            )
        };

        let mut cols = Vec::new();
        for (spec, system, counts) in [
            (DeviceSpec::mi250x_gcd(), SystemSpec::lumi_g(), [1usize, 8]),
            (DeviceSpec::v100(), SystemSpec::bede(), [1, 4]),
        ] {
            let rep = analyze_warps(
                spec.warp_size,
                n,
                |i| {
                    oppic_bench::analysis::move_path_signature(
                        visits.get(i).copied().unwrap_or(1),
                        &vel_col[i * 3..i * 3 + 3],
                    )
                },
                |i, out| out.push(cells[i] as u32),
            );
            let mut busy = 0.0;
            for k in [
                "Interpolate",
                "Move_Deposit",
                "AccumulateCurrent",
                "AdvanceB",
                "AdvanceE",
            ] {
                let (b, f) = per_step(k);
                busy += if k == "Move_Deposit" {
                    rep.modeled_seconds(&spec, AtomicFlavor::Unsafe, b, f)
                } else {
                    spec.roofline_time(b, f)
                };
            }
            // Exchange: the accumulator halo (~1 ghost layer of cells).
            let ghost_bytes = (sim.cfg.n_cells() as f64).powf(2.0 / 3.0) * 6.0 * 24.0;
            for &nd in &counts {
                cols.push(utilization(&spec, &system, nd, busy, ghost_bytes, 0.08));
            }
        }
        rows.push((label.to_string(), cols[0], cols[1], cols[2], cols[3]));
    }

    // ---- Mini-FEM-PIC ----
    {
        let mut cfg = FemPicConfig::paper_scaled(scale);
        cfg.policy = ExecPolicy::Par;
        cfg.record_move_chains = true;
        let mut sim = FemPic::new(cfg);
        sim.run(n_steps);
        let n = sim.ps.len();
        let chains = &sim.last_move.chains;
        let cells = sim.ps.cells();
        let c2n = &sim.mesh.c2n;
        let per_step = |k: &str| {
            let s = sim.profiler.get(k).unwrap_or_default();
            (
                s.bytes as f64 / n_steps as f64,
                s.flops as f64 / n_steps as f64,
            )
        };
        let mut cols = Vec::new();
        for (spec, system, counts) in [
            (DeviceSpec::mi250x_gcd(), SystemSpec::lumi_g(), [1usize, 8]),
            (DeviceSpec::v100(), SystemSpec::bede(), [1, 4]),
        ] {
            let move_rep = analyze_warps(
                spec.warp_size,
                n,
                |i| chains.get(i).copied().unwrap_or(1),
                |_, _| {},
            );
            let dep_rep = analyze_warps(
                spec.warp_size,
                n,
                |_| 0,
                |i, out| {
                    out.extend(c2n[cells[i] as usize].iter().map(|&x| x as u32));
                },
            );
            let mut busy = 0.0;
            for k in [
                "Inject",
                "CalcPosVel",
                "Move",
                "DepositCharge",
                "ComputeElectricField",
            ] {
                let (b, f) = per_step(k);
                busy += match k {
                    "Move" => move_rep.modeled_gather_seconds(&spec, AtomicFlavor::Safe, b, f),
                    "DepositCharge" => dep_rep.modeled_seconds(&spec, AtomicFlavor::Unsafe, b, f),
                    _ => spec.roofline_time(b, f),
                };
            }
            // FEM-PIC's node-charge halo is larger relative to its
            // particle work, and migration crosses ranks: more idle.
            let ghost_bytes = sim.mesh.n_nodes() as f64 * 8.0 * 0.3;
            for &nd in &counts {
                cols.push(utilization(&spec, &system, nd, busy, ghost_bytes, 0.20));
            }
        }
        rows.push((
            "Mini-FEM-PIC 48k cells, 70M particles".to_string(),
            cols[0],
            cols[1],
            cols[2],
            cols[3],
        ));
    }

    println!(
        "\n{:<42} {:>10} {:>10} {:>9} {:>9}",
        "mini-app (scaled sizes)", "1xMI250X", "8xMI250X", "1xV100", "4xV100"
    );
    for (label, a, b, c, d) in &rows {
        println!(
            "{:<42} {:>9.0}% {:>9.0}% {:>8.0}% {:>8.0}%",
            label,
            a * 100.0,
            b * 100.0,
            c * 100.0,
            d * 100.0
        );
    }
    println!(
        "\nShape checks vs Table 1: single-device ≈99%; multi-device lower (comm +\n\
         sync idle); higher particle counts push utilisation back up; FEM-PIC\n\
         drops harder on multi-GPU than CabanaPIC."
    );
}
