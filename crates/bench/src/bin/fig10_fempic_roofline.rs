//! Figure 10: Mini-FEM-PIC rooflines on the Intel 8268 CPU node, the
//! V100, and one MI250X GCD.
//!
//! Kernel arithmetic intensities come from the instrumented run (the
//! paper uses Advisor/Nsight/Omniperf counters; ours are the DSL's
//! traffic tallies). Achieved performance per machine is the modeled
//! kernel time — roofline base × divergence × atomic serialization —
//! which reproduces the paper's qualitative placement: everything
//! bandwidth-bound, Move near the roof, DepositCharge latency-bound on
//! GPUs (atomics serialization keeps it far under the roof).

use oppic_bench::report::{banner, scale_factor, steps};
use oppic_core::profile::KernelStats;
use oppic_core::ExecPolicy;
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig};
use oppic_model::RooflineChart;

fn main() {
    banner(
        "Figure 10",
        "Mini-FEM-PIC rooflines (CPU node, V100, MI250X GCD)",
    );
    let scale = scale_factor(0.02);
    let n_steps = steps(20);

    let mut cfg = FemPicConfig::paper_scaled(scale);
    cfg.policy = ExecPolicy::Par;
    cfg.record_move_chains = true;
    let mut sim = FemPic::new(cfg);
    sim.run(n_steps);

    let n = sim.ps.len();
    let chains = sim.last_move.chains.clone();
    let cells = sim.ps.cells().to_vec();
    let c2n = sim.mesh.c2n.clone();

    let kernels = [
        "CalcPosVel",
        "Move",
        "DepositCharge",
        "ComputeElectricField",
    ];

    for spec in [
        DeviceSpec::xeon_8268_x2(),
        DeviceSpec::v100(),
        DeviceSpec::mi250x_gcd(),
    ] {
        let mut chart = RooflineChart::new(spec.name, spec.mem_bw_gbs, spec.peak_gflops);
        let move_rep = analyze_warps(
            spec.warp_size,
            n,
            |i| chains.get(i).copied().unwrap_or(1),
            |_, _| {},
        );
        let dep_rep = analyze_warps(
            spec.warp_size,
            n,
            |_| 0,
            |i, out| {
                out.extend(c2n[cells[i] as usize].iter().map(|&x| x as u32));
            },
        );
        for k in kernels {
            let st = sim.profiler.get(k).unwrap_or_default();
            if st.bytes == 0 {
                continue;
            }
            // Modeled seconds on this machine.
            let (b, f) = (st.bytes as f64, st.flops as f64);
            let t = match k {
                "Move" => move_rep.modeled_seconds(&spec, AtomicFlavor::Safe, b, f),
                "DepositCharge" => {
                    // AT on NVIDIA (what the paper plots), UA-class on
                    // AMD would recover; show AT to expose the latency
                    // bound.
                    dep_rep.modeled_seconds(&spec, AtomicFlavor::Safe, b, f)
                }
                _ => spec.roofline_time(b, f),
            };
            let modeled = KernelStats {
                calls: st.calls,
                seconds: t,
                bytes: st.bytes,
                flops: st.flops,
                class: st.class,
            };
            chart.place(k, &modeled);
        }
        println!("\n{}", chart.table());
        // A few roofline-curve samples for plotting.
        let pts = chart.curve(0.01, 100.0, 7);
        let line: Vec<String> = pts
            .iter()
            .map(|(ai, g)| format!("({ai:.2},{g:.0})"))
            .collect();
        println!("roofline curve samples (AI, GFLOP/s): {}", line.join(" "));
    }

    println!(
        "\nShape checks vs Figure 10: all kernels sit at memory-bound intensities\n\
         (AI « ridge); Move/CalcPosVel near the bandwidth roof; DepositCharge on\n\
         GPUs is far below the roof at the same AI — the latency-bound signature."
    );
}
