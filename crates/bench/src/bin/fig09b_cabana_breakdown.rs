//! Figure 9(b): CabanaPIC runtime breakdown on a single node/device,
//! at two particle counts (the paper: 96k cells with 72M and 144M
//! particles, i.e. 750 and 1500 particles per cell).
//!
//! Host bars are measured; GPU bars are projected through the device
//! cost model, including the Move_Deposit kernel-divergence penalty the
//! paper highlights ("threads within a warp take different execution
//! paths") and the atomic current-deposit serialization.

use oppic_bench::report::{banner, bar_chart, scale_factor, steps, telemetry_from_env};
use oppic_cabana::{CabanaConfig, CabanaPic};
use oppic_core::ExecPolicy;
use oppic_device::{analyze_warps, AtomicFlavor, DeviceSpec};

const KERNELS: [&str; 6] = [
    "Interpolate",
    "Move_Deposit",
    "AccumulateCurrent",
    "AdvanceB",
    "AdvanceE",
    "Update_Ghosts",
];

fn run_case(label: &str, cfg: CabanaConfig, n_steps: usize) -> CabanaPic {
    let mut sim = CabanaPic::new_dsl(cfg);
    let sink = telemetry_from_env(
        &sim.profiler,
        "cabana",
        label,
        sim.cfg.policy.threads(),
        &format!("{:?}", sim.cfg),
    );
    sim.run(n_steps);
    if sink {
        let _ = sim.profiler.telemetry().finish();
    }
    let rows: Vec<(String, f64)> = KERNELS
        .iter()
        .map(|k| {
            (
                k.to_string(),
                sim.profiler.get(k).map_or(0.0, |s| s.seconds),
            )
        })
        .collect();
    println!(
        "\n--- {label}: {} cells × {} ppc = {} particles, {n_steps} steps ---",
        sim.cfg.n_cells(),
        sim.cfg.ppc,
        sim.ps.len()
    );
    print!("{}", bar_chart(&rows, "s"));
    sim
}

fn main() {
    banner(
        "Figure 9(b)",
        "CabanaPIC runtime breakdown — 96k-cell box, 72M/144M particles (scaled)",
    );
    let scale = scale_factor(0.02);
    let n_steps = steps(20);
    // The paper's two regimes: 750 and 1500 ppc, scaled down
    // proportionally (keep the 1:2 ratio).
    let ppc_lo = 16;
    let ppc_hi = 32;
    println!("scale={scale}, steps={n_steps}, ppc={ppc_lo}/{ppc_hi} (paper: 750/1500)\n");

    for (ppc, tag) in [(ppc_lo, "72M-equivalent"), (ppc_hi, "144M-equivalent")] {
        let mut cfg = CabanaConfig::paper_scaled(scale, ppc);
        cfg.policy = ExecPolicy::Par;
        cfg.record_visits = true;
        let sim = run_case(tag, cfg, n_steps);

        // GPU projections.
        let n = sim.ps.len();
        let visits = &sim.last_visited;
        let vel_col = sim.ps.col(sim.vel).to_vec();
        let cells = sim.ps.cells();
        println!("GPU projections ({tag}):");
        println!(
            "  {:<22} {:>14} {:>10} {:>12} {:>12}",
            "device", "Move_Deposit", "div.fac", "collisions%", "AdvanceE (s)"
        );
        for spec in [
            DeviceSpec::v100(),
            DeviceSpec::h100(),
            DeviceSpec::mi210(),
            DeviceSpec::mi250x_gcd(),
        ] {
            let rep = analyze_warps(
                spec.warp_size,
                n,
                |i| {
                    oppic_bench::analysis::move_path_signature(
                        visits.get(i).copied().unwrap_or(1),
                        &vel_col[i * 3..i * 3 + 3],
                    )
                },
                |i, out| {
                    let c = cells[i] as u32;
                    out.extend([c * 3, c * 3 + 1, c * 3 + 2]);
                },
            );
            let g = |k: &str| {
                let s = sim.profiler.get(k).unwrap_or_default();
                (
                    s.bytes as f64 / n_steps as f64,
                    s.flops as f64 / n_steps as f64,
                )
            };
            let (md_b, md_f) = g("Move_Deposit");
            let (ae_b, ae_f) = g("AdvanceE");
            let t_md = rep.modeled_seconds(&spec, AtomicFlavor::Unsafe, md_b, md_f);
            let t_ae = spec.roofline_time(ae_b, ae_f);
            println!(
                "  {:<22} {:>14.6} {:>10.3} {:>11.1}% {:>12.6}",
                spec.name,
                t_md,
                rep.divergence_factor(),
                100.0 * rep.collision_rate(),
                t_ae
            );
        }
    }
    println!(
        "\nShape checks vs the paper: Move_Deposit overwhelmingly dominates; the\n\
         higher-ppc case worsens atomic collisions (compounded serialization);\n\
         kernel divergence inflates GPU Move_Deposit beyond the pure roofline time\n\
         (the effect that lets a 2-socket EPYC beat a V100 at 144M particles)."
    );
}
