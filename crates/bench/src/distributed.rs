//! Distributed (multi-rank) drivers for both applications.
//!
//! These run the full distributed code path end to end on in-process
//! ranks: directional partitioning (the paper's custom scheme),
//! particle ownership and migration (pack / alltoallv / hole-fill /
//! unpack), and the per-step reductions that stand in for the halo
//! exchanges (see DESIGN.md — at the small mesh sizes we run in
//! process, field state is replicated and reduced; the *projection* to
//! paper scale uses the real halo-plan volumes from
//! `oppic_mpi::halo`).

use oppic_cabana::{CabanaConfig, StructuredCabana};
use oppic_core::ExecPolicy;
use oppic_fempic::{FemPic, FemPicConfig};
use oppic_mesh::Vec3;
use oppic_mpi::comm::{world_run, RankCtx};
use oppic_mpi::exchange::migrate_particles;
use oppic_mpi::partition::directional_partition;
use std::time::Instant;

/// Per-rank outcome of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RankReport {
    pub rank: usize,
    pub main_loop_seconds: f64,
    pub final_particles: usize,
    pub migrated_out: usize,
    pub comm_bytes: u64,
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedReport {
    pub n_ranks: usize,
    pub steps: usize,
    pub ranks: Vec<RankReport>,
    /// Global particle count at the end.
    pub total_particles: usize,
    /// Max per-rank main-loop time (the paper's MainLoop TotalTime).
    pub main_loop_seconds: f64,
    /// Global diagnostic scalar for cross-checking against single-rank
    /// runs (total charge for FEM-PIC, total energy for CabanaPIC).
    pub check_scalar: f64,
}

impl DistributedReport {
    /// Particle imbalance: max over mean.
    pub fn imbalance(&self) -> f64 {
        let mean = self.total_particles as f64 / self.n_ranks as f64;
        if mean == 0.0 {
            return 1.0;
        }
        self.ranks
            .iter()
            .map(|r| r.final_particles)
            .max()
            .unwrap_or(0) as f64
            / mean
    }

    pub fn total_comm_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.comm_bytes).sum()
    }
}

/// Run Mini-FEM-PIC on `n_ranks` in-process ranks for `steps` steps.
///
/// Cells are partitioned with the paper's directional scheme along y
/// (slabs parallel to the x flow, so the steady particle stream does
/// not cross rank boundaries — the "principal direction of motion"
/// rationale); each rank injects `inject_per_step / n_ranks` particles,
/// runs the local kernels, migrates strays, and the node-charge
/// reduction plays the role of the node-halo exchange.
pub fn run_fempic_distributed(
    base: &FemPicConfig,
    n_ranks: usize,
    steps: usize,
) -> DistributedReport {
    let rank_results = world_run(n_ranks, |ctx: &mut RankCtx| {
        let mut cfg = base.clone();
        cfg.inject_per_step = (base.inject_per_step / n_ranks).max(1);
        cfg.seed = base.seed.wrapping_add(ctx.rank as u64 * 0x9E37);
        cfg.policy = ExecPolicy::Seq; // ranks are threads already
        let mut sim = FemPic::new(cfg);

        // Directional partition, identical on every rank.
        let centroids: Vec<Vec3> = (0..sim.mesh.n_cells())
            .map(|c| sim.mesh.cell_centroid(c))
            .collect();
        let cell_rank = directional_partition(&centroids, 1, n_ranks);

        let mut migrated_out = 0usize;
        let t0 = Instant::now();
        for _ in 0..steps {
            sim.inject();
            sim.calc_pos_vel();
            sim.move_particles();

            // Ship particles that wandered into foreign-owned cells.
            let leavers: Vec<(usize, u32, i32)> = sim
                .ps
                .cells()
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| {
                    let owner = cell_rank[c as usize];
                    (owner != ctx.rank as u32).then_some((i, owner, c))
                })
                .collect();
            migrated_out += leavers.len();
            migrate_particles(ctx, &mut sim.ps, &leavers);

            sim.deposit_charge();
            // Node-halo stand-in: global reduction of deposited charge.
            let reduced = ctx.allreduce_vec_sum(sim.node_charge.raw());
            sim.node_charge.raw_mut().copy_from_slice(&reduced);

            sim.field_solve();
        }
        let main_loop_seconds = t0.elapsed().as_secs_f64();

        let total_charge = sim.node_charge.sum();
        (
            RankReport {
                rank: ctx.rank,
                main_loop_seconds,
                final_particles: sim.ps.len(),
                migrated_out,
                comm_bytes: ctx.sent_bytes(),
            },
            total_charge,
        )
    });

    let ranks: Vec<RankReport> = rank_results.iter().map(|(r, _)| r.clone()).collect();
    let check_scalar = rank_results[0].1; // identical on all ranks post-reduce
    let total_particles = ranks.iter().map(|r| r.final_particles).sum();
    let main_loop_seconds = ranks
        .iter()
        .map(|r| r.main_loop_seconds)
        .fold(0.0f64, f64::max);
    DistributedReport {
        n_ranks,
        steps,
        ranks,
        total_particles,
        main_loop_seconds,
        check_scalar,
    }
}

/// Like [`run_fempic_distributed`], but with a **distributed field
/// solve**: nodes are partitioned along the cell slabs and the Poisson
/// system runs through `oppic_mpi::solve::cg_solve_distributed`
/// (halo-exchanged SpMV + allreduce dot products) instead of the
/// replicated solve — the full PETSc-style distributed path.
pub fn run_fempic_distributed_solve(
    base: &FemPicConfig,
    n_ranks: usize,
    steps: usize,
) -> DistributedReport {
    use oppic_mpi::solve::{cg_solve_distributed, partition_system};

    // Build the (identical) FEM system and node partition up front;
    // every rank keeps its own share.
    let probe = FemPic::new(FemPicConfig {
        policy: ExecPolicy::Seq,
        ..base.clone()
    });
    let n_nodes = probe.mesh.n_nodes();
    // Node owner = owner of the lowest-rank adjacent cell under the
    // directional partition.
    let centroids: Vec<Vec3> = (0..probe.mesh.n_cells())
        .map(|c| probe.mesh.cell_centroid(c))
        .collect();
    let cell_rank = directional_partition(&centroids, 1, n_ranks);
    let mut node_owner = vec![u32::MAX; n_nodes];
    for (c, nd) in probe.mesh.c2n.iter().enumerate() {
        for &n in nd {
            node_owner[n] = node_owner[n].min(cell_rank[c]);
        }
    }
    let systems = partition_system(probe.fem.reduced_matrix(), &node_owner, n_ranks);
    let owned_nodes: Vec<Vec<usize>> = (0..n_ranks as u32)
        .map(|r| (0..n_nodes).filter(|&n| node_owner[n] == r).collect())
        .collect();
    drop(probe);

    let rank_results = world_run(n_ranks, |ctx: &mut RankCtx| {
        let mut cfg = base.clone();
        cfg.inject_per_step = (base.inject_per_step / n_ranks).max(1);
        cfg.seed = base.seed.wrapping_add(ctx.rank as u64 * 0x517C);
        cfg.policy = ExecPolicy::Seq;
        let mut sim = FemPic::new(cfg);
        let sys = &systems[ctx.rank];
        let mine = &owned_nodes[ctx.rank];
        let mut x_owned = vec![0.0; sys.n_owned];

        let mut migrated_out = 0usize;
        let t0 = Instant::now();
        for _ in 0..steps {
            sim.inject();
            sim.calc_pos_vel();
            sim.move_particles();

            let leavers: Vec<(usize, u32, i32)> = sim
                .ps
                .cells()
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| {
                    let owner = cell_rank[c as usize];
                    (owner != ctx.rank as u32).then_some((i, owner, c))
                })
                .collect();
            migrated_out += leavers.len();
            migrate_particles(ctx, &mut sim.ps, &leavers);

            sim.deposit_charge();
            // Global charge (node-halo stand-in for the RHS).
            let reduced = ctx.allreduce_vec_sum(sim.node_charge.raw());
            sim.node_charge.raw_mut().copy_from_slice(&reduced);

            // Distributed field solve: owned RHS rows, halo'd SpMV.
            let rhs_global = sim.fem.build_rhs(sim.node_charge.raw(), sim.cfg.epsilon0);
            let my_rhs: Vec<f64> = mine.iter().map(|&n| rhs_global[n]).collect();
            let out = cg_solve_distributed(ctx, sys, &my_rhs, &mut x_owned, sim.fem.cg_config)
                .expect("halo exchange in distributed solve");
            debug_assert!(out.converged, "{out:?}");
            // Assemble the global potential (allreduce of the disjoint
            // owned pieces) and push it into the app.
            let mut phi = vec![0.0; n_nodes];
            for (l, &n) in mine.iter().enumerate() {
                phi[n] = x_owned[l];
            }
            let phi = ctx.allreduce_vec_sum(&phi);
            sim.fem.set_potential(&phi);
            sim.fem.electric_field(&sim.mesh, sim.efield.raw_mut());
        }
        let main_loop_seconds = t0.elapsed().as_secs_f64();

        (
            RankReport {
                rank: ctx.rank,
                main_loop_seconds,
                final_particles: sim.ps.len(),
                migrated_out,
                comm_bytes: ctx.sent_bytes(),
            },
            sim.node_charge.sum(),
        )
    });

    let ranks: Vec<RankReport> = rank_results.iter().map(|(r, _)| r.clone()).collect();
    let check_scalar = rank_results[0].1;
    let total_particles = ranks.iter().map(|r| r.final_particles).sum();
    let main_loop_seconds = ranks
        .iter()
        .map(|r| r.main_loop_seconds)
        .fold(0.0f64, f64::max);
    DistributedReport {
        n_ranks,
        steps,
        ranks,
        total_particles,
        main_loop_seconds,
        check_scalar,
    }
}

/// Run CabanaPIC on `n_ranks` in-process ranks for `steps` steps.
///
/// Cells are partitioned along y (slabs parallel to the beam axis);
/// each rank initialises the *global* deterministic two-stream state
/// and keeps only its particles. The per-step accumulator reduction is
/// the `Update_Ghosts` stage of the distributed code path.
pub fn run_cabana_distributed(
    base: &CabanaConfig,
    n_ranks: usize,
    steps: usize,
) -> DistributedReport {
    let rank_results = world_run(n_ranks, |ctx: &mut RankCtx| {
        let mut cfg = base.clone();
        cfg.policy = ExecPolicy::Seq;
        let mut sim = StructuredCabana::new_structured(cfg);

        // y-slab partition over the structured cells.
        let ny = sim.geom.ny;
        let cell_rank: Vec<u32> = (0..sim.geom.n_cells())
            .map(|c| {
                let j = sim.geom.cell_ijk(c)[1];
                ((j * n_ranks) / ny) as u32
            })
            .collect();

        // Keep only owned particles.
        let holes: Vec<usize> = sim
            .ps
            .cells()
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (cell_rank[c as usize] != ctx.rank as u32).then_some(i))
            .collect();
        sim.ps.remove_fill(&holes);

        let mut migrated_out = 0usize;
        let t0 = Instant::now();
        for _ in 0..steps {
            sim.interpolate();
            sim.move_deposit();

            // Update_Ghosts: reduce the current accumulator globally.
            let local = sim.accumulator_snapshot();
            let global = ctx.allreduce_vec_sum(&local);
            sim.accumulator_overwrite(&global);

            sim.accumulate_current();
            sim.advance_b();
            sim.advance_e();

            // Migrate strays.
            let leavers = sim.extract_leavers(&cell_rank, ctx.rank as u32);
            migrated_out += leavers.len();
            migrate_particles(ctx, &mut sim.ps, &leavers);
        }
        let main_loop_seconds = t0.elapsed().as_secs_f64();

        // Field energy is identical on all ranks (replicated fields);
        // kinetic energy needs a reduction.
        let d = sim.energies();
        let kinetic_global = ctx.allreduce_sum(d.kinetic);
        let total_energy = d.e_field + d.b_field + kinetic_global;

        (
            RankReport {
                rank: ctx.rank,
                main_loop_seconds,
                final_particles: sim.ps.len(),
                migrated_out,
                comm_bytes: ctx.sent_bytes(),
            },
            total_energy,
        )
    });

    let ranks: Vec<RankReport> = rank_results.iter().map(|(r, _)| r.clone()).collect();
    let check_scalar = rank_results[0].1;
    let total_particles = ranks.iter().map(|r| r.final_particles).sum();
    let main_loop_seconds = ranks
        .iter()
        .map(|r| r.main_loop_seconds)
        .fold(0.0f64, f64::max);
    DistributedReport {
        n_ranks,
        steps,
        ranks,
        total_particles,
        main_loop_seconds,
        check_scalar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cabana_distributed_conserves_particles_and_energy() {
        let mut cfg = CabanaConfig::tiny();
        cfg.ppc = 8;
        let single = run_cabana_distributed(&cfg, 1, 6);
        let multi = run_cabana_distributed(&cfg, 4, 6);
        assert_eq!(single.total_particles, multi.total_particles);
        // Same physics to reduction-order tolerance.
        let scale = single.check_scalar.abs().max(1e-30);
        assert!(
            (single.check_scalar - multi.check_scalar).abs() / scale < 1e-9,
            "{} vs {}",
            single.check_scalar,
            multi.check_scalar
        );
        // y-slab partition + x-streaming: almost no migration.
        let migrated: usize = multi.ranks.iter().map(|r| r.migrated_out).sum();
        assert!(migrated == 0, "beams run along x, slabs cut y: {migrated}");
    }

    #[test]
    fn fempic_distributed_matches_charge_of_equivalent_run() {
        let mut cfg = FemPicConfig::tiny();
        cfg.inject_per_step = 64;
        let single = run_fempic_distributed(&cfg, 1, 5);
        let multi = run_fempic_distributed(&cfg, 3, 5);
        // Injection streams differ per rank, so particle positions
        // differ, but the *total injected count* matches (64 ≈ 63 via
        // 21×3) and charge per particle is fixed: compare charge per
        // particle instead.
        let q1 = single.check_scalar / single.total_particles as f64;
        let qn = multi.check_scalar / multi.total_particles as f64;
        assert!((q1 - qn).abs() < 1e-12, "{q1} vs {qn}");
        assert!(multi.total_particles > 0);
        assert!(multi.imbalance() < 2.0, "imbalance {}", multi.imbalance());
    }

    #[test]
    fn distributed_solve_matches_replicated_solve() {
        // The fully distributed field-solve path must produce the same
        // physics as the replicated-solve driver.
        let mut cfg = FemPicConfig::tiny();
        cfg.inject_per_step = 60;
        let a = run_fempic_distributed(&cfg, 3, 4);
        let b = run_fempic_distributed_solve(&cfg, 3, 4);
        assert_eq!(a.total_particles, b.total_particles);
        let qa = a.check_scalar / a.total_particles as f64;
        let qb = b.check_scalar / b.total_particles as f64;
        assert!((qa - qb).abs() < 1e-10, "{qa} vs {qb}");
        // The distributed solve sends more (per-iteration halos).
        assert!(b.total_comm_bytes() > 0);
    }

    #[test]
    fn comm_bytes_grow_with_ranks() {
        let cfg = CabanaConfig::tiny();
        let r2 = run_cabana_distributed(&cfg, 2, 3);
        let r4 = run_cabana_distributed(&cfg, 4, 3);
        assert!(r4.total_comm_bytes() > r2.total_comm_bytes());
    }
}
