//! # oppic-bench — the evaluation harness
//!
//! One binary per paper table/figure (see `src/bin/`), plus the
//! distributed drivers that run both applications over the in-process
//! rank runtime ([`distributed`]) and shared reporting helpers
//! ([`report`]).
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig09a_fempic_breakdown`   | Figure 9(a) runtime breakdown |
//! | `fig09b_cabana_breakdown`   | Figure 9(b) runtime breakdown |
//! | `table01_utilization`       | Table 1 device utilisation |
//! | `fig10_fempic_roofline`     | Figure 10 rooflines |
//! | `fig11_cabana_roofline`     | Figure 11 rooflines |
//! | `fig12_cabana_vs_original`  | Figure 12 DSL vs structured |
//! | `fig13_fempic_weak_scaling` | Figure 13 weak scaling |
//! | `fig14_cabana_weak_scaling` | Figure 14 weak scaling |
//! | `fig15_power_equivalent`    | Figure 15 power equivalence |
//! | `ablation_move_strategies`  | §4.2 MH vs DH (~20% claim) |
//! | `ablation_deposit_strategies` | §3.3/§4.1.1 AT/UA/SR/SA |
//! | `oppic-report`              | telemetry JSONL → breakdown / roofline CSV / step timings |

pub mod analysis;
pub mod distributed;
pub mod report;
pub mod telemetry_report;
