//! AutoTuner regression against the recorded ablation sweep.
//!
//! Table-driven over `results/BENCH_ablation_deposit_matrix.json` (the
//! committed artifact of `ablation_deposit_strategies`): for every
//! recorded (threads, ppc) regime the tuner is probed in the two
//! states the sweep actually measured — a fresh cell index and a fully
//! dirty store — and its decision is costed with the recorded
//! milliseconds. The tuner must never pick a strategy materially
//! slower than the best recorded option for that regime, so a
//! heuristic edit that starts selecting a losing strategy fails here
//! without re-running the bench.

use oppic_core::json::{self, Json};
use oppic_core::{AutoTuner, DepositMethod, TunerInput};

/// Accepted slack over the best recorded strategy. The sweep is a
/// best-of-3 on a shared machine, so near-ties jitter by ~25%; the
/// bound still rejects any structurally wrong pick (the cheapest
/// mistakes in the table cost 1.5x, most cost 3-10x).
const TOLERANCE: f64 = 1.35;

struct Regime {
    threads: usize,
    ppc: f64,
    n_particles: usize,
    sa: f64,
    at: f64,
    ss: f64,
    mx: f64,
    sort: f64,
}

fn load_table() -> (usize, usize, Vec<Regime>) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_ablation_deposit_matrix.json"
    );
    let src = std::fs::read_to_string(path).expect("committed bench artifact must exist");
    let doc = json::parse(&src).expect("bench artifact must be valid JSON");
    let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).expect(k);
    let n_cells = num(&doc, "n_cells") as usize;
    let n_targets = num(&doc, "n_targets") as usize;
    let mut regimes = Vec::new();
    for sweep in doc.get("sweeps").and_then(Json::as_arr).expect("sweeps") {
        let threads = num(sweep, "threads") as usize;
        for r in sweep
            .get("regimes")
            .and_then(Json::as_arr)
            .expect("regimes")
        {
            let ms = r.get("ms").expect("ms");
            regimes.push(Regime {
                threads,
                ppc: num(r, "ppc"),
                n_particles: num(r, "n_particles") as usize,
                sa: num(ms, "scatter_arrays"),
                at: num(ms, "atomics"),
                ss: num(ms, "sorted_segments"),
                mx: num(ms, "matrix"),
                sort: num(ms, "sort"),
            });
        }
    }
    (n_cells, n_targets, regimes)
}

/// Cost of a tuner decision in regime `r`, in recorded milliseconds.
/// `Serial` is costed as the scatter-arrays column: on one thread SA
/// is the serial scatter plus a private-copy merge, the closest
/// recorded upper bound (the sweep records no plain-serial column).
fn cost(r: &Regime, method: DepositMethod, sort_first: bool) -> f64 {
    let sort = if sort_first { r.sort } else { 0.0 };
    match method {
        DepositMethod::Serial | DepositMethod::ScatterArrays => r.sa + sort,
        DepositMethod::Atomics | DepositMethod::UnsafeAtomics => r.at + sort,
        DepositMethod::SortedSegments => r.ss + sort,
        DepositMethod::Matrix => r.mx + sort,
        DepositMethod::SegmentedReduction => {
            panic!("tuner picked {method:?}, which the sweep does not record")
        }
    }
}

#[test]
fn tuner_never_picks_a_recorded_loser() {
    let (n_cells, n_targets, regimes) = load_table();
    assert!(regimes.len() >= 9, "sweep must cover threads x ppc grid");
    let mut tuner = AutoTuner::new();
    for r in &regimes {
        // The two states the sweep measured: deposit straight off a
        // fresh index, and deposit on a fully dirty store (where the
        // sorted paths must first pay the recorded sort).
        let probes = [
            (true, 0.0, [r.sa, r.at, r.ss, r.mx]),
            (false, 1.0, [r.sa, r.at, r.ss + r.sort, r.mx + r.sort]),
        ];
        for (index_fresh, dirty_fraction, options) in probes {
            let d = tuner.choose(TunerInput {
                n_particles: r.n_particles,
                n_cells,
                n_targets,
                dirty_fraction,
                index_fresh,
                threads: r.threads,
            });
            // A sorted-path pick over a dirty store must re-sort.
            if !index_fresh {
                assert!(
                    d.sort_first
                        || !matches!(
                            d.method,
                            DepositMethod::SortedSegments | DepositMethod::Matrix
                        ),
                    "threads {} ppc {}: {:?} on a dirty store without a sort",
                    r.threads,
                    r.ppc,
                    d.method
                );
            }
            let picked = cost(r, d.method, d.sort_first);
            let best = options.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                picked <= TOLERANCE * best,
                "threads {} ppc {} fresh {index_fresh}: tuner picked {:?} \
                 ({picked:.1} ms) but best recorded is {best:.1} ms ({})",
                r.threads,
                r.ppc,
                d.method,
                d.reason
            );
        }
    }
}

#[test]
fn matrix_is_selected_exactly_where_it_wins_single_thread() {
    let (n_cells, n_targets, regimes) = load_table();
    let mut tuner = AutoTuner::new();
    for r in regimes.iter().filter(|r| r.threads == 1) {
        // Acceptance row of the ablation: on one thread the cell-major
        // streaming schedule beats sorted segments across the sweep...
        assert!(
            r.mx < r.ss,
            "ppc {}: matrix {} ms must beat sorted segments {} ms single-thread",
            r.ppc,
            r.mx,
            r.ss
        );
        // ...and the tuner routes fresh dense deposits to it.
        let d = tuner.choose(TunerInput {
            n_particles: r.n_particles,
            n_cells,
            n_targets,
            dirty_fraction: 0.0,
            index_fresh: true,
            threads: 1,
        });
        if r.ppc >= AutoTuner::MX_SEQ_MIN_PPC {
            assert_eq!(d.method, DepositMethod::Matrix, "ppc {}", r.ppc);
            assert!(!d.sort_first);
        }
    }
}
