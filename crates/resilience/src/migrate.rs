//! Particle migration over the reliable link — the fault-tolerant
//! counterpart of [`oppic_mpi::exchange::migrate_particles`].
//!
//! Same pack/ship/hole-fill/unpack shape as the raw alltoallv version,
//! but every per-destination buffer travels as a checksummed envelope
//! with ack/retry, so dropped, duplicated, reordered, delayed, or
//! bit-flipped migration traffic either converges to the exact
//! fault-free particle distribution or aborts with a typed error.
//! Arrivals are validated *before* the source store is hole-filled:
//! a failed exchange leaves the local particle store untouched.

use crate::retry::{ExchangeError, ReliableLink};
use oppic_core::particles::ParticleDats;
use oppic_core::telemetry;
use oppic_mpi::comm::RankCtx;
use oppic_mpi::exchange::MigrationStats;
use std::fmt;

/// Why a reliable migration failed. The particle store is unmodified
/// in every error case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The underlying exchange gave up.
    Exchange(ExchangeError),
    /// A verified payload is not a whole number of particle records —
    /// sender/receiver disagree on the dat layout.
    RaggedPayload {
        src: usize,
        len: usize,
        stride: usize,
    },
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::Exchange(e) => write!(f, "migration exchange failed: {e}"),
            MigrateError::RaggedPayload { src, len, stride } => write!(
                f,
                "ragged migration payload from rank {src}: {len} values, stride {stride}"
            ),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<ExchangeError> for MigrateError {
    fn from(e: ExchangeError) -> Self {
        MigrateError::Exchange(e)
    }
}

/// Migrate `leavers = (particle index, destination rank, destination
/// local cell)` between ranks over `link`. Collective: every rank must
/// call this (with an empty leaver list if it has nothing to send) —
/// each rank exchanges one (possibly empty) buffer with every other.
pub fn migrate_particles_reliable(
    ctx: &mut RankCtx,
    link: &mut ReliableLink,
    ps: &mut ParticleDats,
    leavers: &[(usize, u32, i32)],
) -> Result<MigrationStats, MigrateError> {
    let dofs = ps.dofs();
    let stride = dofs + 1;
    let n_ranks = ctx.n_ranks;

    // Pack one buffer per destination: [cell0, dofs0..., cell1, ...].
    let mut buffers: Vec<Vec<f64>> = vec![Vec::new(); n_ranks];
    for &(idx, dst, cell) in leavers {
        debug_assert_ne!(dst as usize, ctx.rank, "leaver staying home");
        let buf = &mut buffers[dst as usize];
        buf.push(cell as f64);
        ps.pack_one(idx, buf);
    }
    let shipped_values: usize = buffers.iter().map(Vec::len).sum();

    let others: Vec<usize> = (0..n_ranks).filter(|&r| r != ctx.rank).collect();
    let sends: Vec<(usize, Vec<f64>)> = others
        .iter()
        .map(|&d| (d, std::mem::take(&mut buffers[d])))
        .collect();
    let recvs = link.exchange(ctx, &sends, &others)?;

    // Validate every arrival before mutating anything.
    for (&src, payload) in others.iter().zip(&recvs) {
        if payload.len() % stride != 0 {
            return Err(MigrateError::RaggedPayload {
                src,
                len: payload.len(),
                stride,
            });
        }
    }

    // Hole-fill the source store (indices sorted ascending).
    let mut holes: Vec<usize> = leavers.iter().map(|&(i, _, _)| i).collect();
    holes.sort_unstable();
    ps.remove_fill(&holes);

    // Unpack arrivals at the end of the dats.
    let mut received = 0usize;
    for payload in &recvs {
        for chunk in payload.chunks_exact(stride) {
            ps.unpack_one(&chunk[1..], chunk[0] as i32);
            received += 1;
        }
    }
    telemetry::count("resilience.migrated_in", received as u64);

    Ok(MigrationStats {
        sent: leavers.len(),
        received,
        shipped_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use oppic_mpi::{world_run_faulty, FaultKind, FaultSchedule};
    use std::sync::Arc;
    use std::time::Duration;

    fn local_store(rank: usize, n: usize) -> ParticleDats {
        let mut ps = ParticleDats::new();
        let tag = ps.decl_dat("tag", 2);
        ps.inject(n, 0);
        for i in 0..n {
            let e = ps.el_mut(tag, i);
            e[0] = rank as f64;
            e[1] = i as f64;
            ps.cells_mut()[i] = i as i32;
        }
        ps
    }

    /// Ship odd-indexed particles to the next rank; verify the exact
    /// post-migration census on every rank.
    fn round_trip(n_ranks: usize, sched: Option<Arc<FaultSchedule>>) {
        let per_rank = 10;
        let out = world_run_faulty(n_ranks, sched, |ctx| {
            let mut ps = local_store(ctx.rank, per_rank);
            let mut link = ReliableLink::default();
            let dst = ((ctx.rank + 1) % n_ranks) as u32;
            let leavers: Vec<(usize, u32, i32)> = (0..per_rank)
                .filter(|i| i % 2 == 1)
                .map(|i| (i, dst, 100 + i as i32))
                .collect();
            let stats = migrate_particles_reliable(ctx, &mut link, &mut ps, &leavers)
                .expect("bounded retry absorbs the schedule");
            (ps, stats)
        });

        let total: usize = out.iter().map(|(ps, _)| ps.len()).sum();
        assert_eq!(total, n_ranks * per_rank, "global particle count conserved");
        for (r, (ps, stats)) in out.iter().enumerate() {
            assert_eq!(stats.sent, 5);
            assert_eq!(stats.received, 5, "rank {r}: exactly-once delivery");
            let tag = ps.col_id("tag").unwrap();
            let prev = (r + n_ranks - 1) % n_ranks;
            for i in 0..ps.len() {
                let e = ps.el(tag, i);
                if e[0] as usize != r {
                    assert_eq!(e[0] as usize, prev, "immigrants come from prev rank");
                    assert_eq!(e[1] as usize % 2, 1);
                    assert_eq!(ps.cells()[i], 100 + e[1] as i32);
                }
            }
        }
    }

    #[test]
    fn fault_free_migration_matches_raw_path_semantics() {
        round_trip(3, None);
    }

    #[test]
    fn migration_survives_each_fault_kind() {
        for (seed, kind) in [
            (31, FaultKind::Drop),
            (32, FaultKind::Duplicate),
            (33, FaultKind::Reorder),
            (34, FaultKind::Delay),
            (35, FaultKind::BitFlip),
        ] {
            let sched = Arc::new(FaultSchedule::single(seed, kind, 1.0).with_budget(3));
            round_trip(3, Some(sched));
        }
    }

    #[test]
    fn no_leavers_is_stable_under_faults() {
        let sched = Arc::new(FaultSchedule::single(8, FaultKind::Drop, 1.0).with_budget(2));
        let out = world_run_faulty(2, Some(sched), |ctx| {
            let mut ps = local_store(ctx.rank, 4);
            let mut link = ReliableLink::default();
            let stats = migrate_particles_reliable(ctx, &mut link, &mut ps, &[]).unwrap();
            (ps.len(), stats)
        });
        for (len, stats) in out {
            assert_eq!(len, 4);
            assert_eq!(stats, MigrationStats::default());
        }
    }

    #[test]
    fn total_loss_aborts_without_touching_the_store() {
        let sched = Arc::new(FaultSchedule::single(9, FaultKind::Drop, 1.0));
        let policy = RetryPolicy {
            max_retries: 0,
            base_timeout: Duration::from_millis(5),
            backoff: 2.0,
        };
        let out = world_run_faulty(2, Some(sched), |ctx| {
            let mut ps = local_store(ctx.rank, 6);
            let mut link = ReliableLink::new(policy.clone());
            let leavers: Vec<(usize, u32, i32)> = if ctx.rank == 0 {
                vec![(0, 1, 3), (2, 1, 4)]
            } else {
                vec![]
            };
            let err = migrate_particles_reliable(ctx, &mut link, &mut ps, &leavers)
                .expect_err("total loss with no retries must abort");
            assert!(matches!(err, MigrateError::Exchange(_)));
            // The store is exactly as it was: nothing removed, nothing
            // unpacked.
            ps.len()
        });
        assert_eq!(out, vec![6, 6]);
    }
}
