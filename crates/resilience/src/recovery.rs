//! Checkpoint-based auto-recovery: rollback-and-replay over any
//! [`Recoverable`] simulation.
//!
//! The driver owns the simulation, snapshots it every
//! `checkpoint_every` steps (in memory, optionally mirrored to disk),
//! and advances it through [`RecoveryDriver::step_checked`]: after
//! each step a caller-supplied health check inspects the state, and on
//! failure the driver restores the last good checkpoint, silently
//! replays the steps that had already passed their checks, and
//! re-attempts the failing step. Snapshots are self-validating
//! (`save_state` streams end in a CRC-64 footer, `restore_state`
//! verifies it before mutating anything), so a corrupted in-memory
//! snapshot falls back to the disk mirror rather than resurrecting
//! garbage. Every rollback is published as a [`RecoveryEvent`] and
//! through the telemetry hub (counter `resilience.recoveries` plus a
//! `recovery` decision trace — see DESIGN.md §6 for the event schema).
//!
//! Replay assumes the simulation is deterministic from a snapshot
//! (that is the [`Recoverable`] contract: RNG state is part of the
//! state), so recovery converges to the exact trajectory an
//! undisturbed run would have produced whenever the underlying fault
//! was transient.

use oppic_core::telemetry;
use oppic_core::Recoverable;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Knobs for one [`RecoveryDriver`].
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Snapshot cadence in steps (a step-0 snapshot is always taken).
    pub checkpoint_every: usize,
    /// Rollbacks allowed over the driver's lifetime before it gives
    /// up with [`RecoveryError::RecoveriesExhausted`].
    pub max_recoveries: usize,
    /// Optional on-disk mirror of the latest snapshot — the fallback
    /// when the in-memory copy itself fails its CRC.
    pub disk_path: Option<PathBuf>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 8,
            max_recoveries: 4,
            disk_path: None,
        }
    }
}

/// One completed rollback-and-replay cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Step whose post-step check failed.
    pub detected_at_step: usize,
    /// Step the simulation was rolled back to.
    pub checkpoint_step: usize,
    /// Steps re-run between the checkpoint and the failing step.
    pub steps_replayed: usize,
    /// The check's description of what it saw.
    pub fault: String,
    /// Wall-clock seconds between the checkpoint being taken and the
    /// fault being detected.
    pub detection_latency_s: f64,
}

/// Why the driver gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// The same (or successive) faults burned the whole rollback
    /// budget.
    RecoveriesExhausted {
        step: usize,
        recoveries: usize,
        last_fault: String,
    },
    /// Neither the in-memory snapshot nor the disk mirror restored
    /// cleanly.
    CheckpointUnusable {
        memory: String,
        disk: Option<String>,
    },
    /// Writing the disk mirror failed.
    Io(std::io::Error),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::RecoveriesExhausted {
                step,
                recoveries,
                last_fault,
            } => write!(
                f,
                "recovery budget exhausted at step {step} after {recoveries} rollbacks \
                 (last fault: {last_fault})"
            ),
            RecoveryError::CheckpointUnusable { memory, disk } => match disk {
                Some(d) => write!(
                    f,
                    "no usable checkpoint: in-memory copy failed ({memory}), disk mirror failed ({d})"
                ),
                None => write!(
                    f,
                    "no usable checkpoint: in-memory copy failed ({memory}), no disk mirror configured"
                ),
            },
            RecoveryError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Owns a [`Recoverable`] simulation and drives it under checkpoint
/// protection.
pub struct RecoveryDriver<S: Recoverable> {
    sim: S,
    cfg: RecoveryConfig,
    snapshot: Vec<u8>,
    snapshot_step: usize,
    snapshot_taken: Instant,
    recoveries: usize,
    events: Vec<RecoveryEvent>,
}

impl<S: Recoverable> RecoveryDriver<S> {
    /// Wrap `sim`, taking the initial snapshot immediately.
    pub fn new(sim: S, cfg: RecoveryConfig) -> Result<Self, RecoveryError> {
        let mut driver = RecoveryDriver {
            sim,
            cfg,
            snapshot: Vec::new(),
            snapshot_step: 0,
            snapshot_taken: Instant::now(),
            recoveries: 0,
            events: Vec::new(),
        };
        driver.take_checkpoint()?;
        Ok(driver)
    }

    pub fn sim(&self) -> &S {
        &self.sim
    }

    /// Mutable access to the wrapped simulation. Chaos tests use this
    /// to poke soft errors directly into live state.
    pub fn sim_mut(&mut self) -> &mut S {
        &mut self.sim
    }

    pub fn into_inner(self) -> S {
        self.sim
    }

    /// Rollbacks performed so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Every rollback performed, in order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Snapshot the current state (and mirror it to disk if
    /// configured), making it the rollback target.
    pub fn take_checkpoint(&mut self) -> Result<(), RecoveryError> {
        let mut bytes = Vec::new();
        self.sim.save_state(&mut bytes)?;
        if let Some(path) = &self.cfg.disk_path {
            // Write-then-rename so a crash mid-write can't destroy the
            // previous good mirror.
            let tmp = path.with_extension("ckpt.tmp");
            std::fs::write(&tmp, &bytes)?;
            std::fs::rename(&tmp, path)?;
        }
        self.snapshot = bytes;
        self.snapshot_step = self.sim.step_count();
        self.snapshot_taken = Instant::now();
        telemetry::count("resilience.checkpoints", 1);
        Ok(())
    }

    /// Restore from the in-memory snapshot, falling back to the disk
    /// mirror when the in-memory copy fails its integrity check.
    fn restore_latest(&mut self) -> Result<(), RecoveryError> {
        let memory = match self.sim.restore_state(&self.snapshot) {
            Ok(()) => return Ok(()),
            Err(e) => e.to_string(),
        };
        telemetry::count("resilience.checkpoint_memory_corrupt", 1);
        let Some(path) = self.cfg.disk_path.clone() else {
            return Err(RecoveryError::CheckpointUnusable { memory, disk: None });
        };
        let disk = match std::fs::read(&path).and_then(|bytes| {
            self.sim.restore_state(&bytes)?;
            Ok(bytes)
        }) {
            Ok(bytes) => {
                // The disk copy is good; re-adopt it in memory.
                self.snapshot = bytes;
                telemetry::count("resilience.checkpoint_disk_fallbacks", 1);
                return Ok(());
            }
            Err(e) => e.to_string(),
        };
        Err(RecoveryError::CheckpointUnusable {
            memory,
            disk: Some(disk),
        })
    }

    /// Advance one step under guard. `check` runs after the step; on
    /// `Err(description)` the driver rolls back to the last good
    /// snapshot, replays the intermediate steps, and re-attempts —
    /// until the step passes or the recovery budget is gone. On
    /// success the step is (possibly) checkpointed per the cadence.
    pub fn step_checked(
        &mut self,
        mut check: impl FnMut(&S) -> Result<(), String>,
    ) -> Result<(), RecoveryError> {
        let target = self.sim.step_count() + 1;
        loop {
            self.sim.advance();
            match check(&self.sim) {
                Ok(()) => break,
                Err(fault) => {
                    let detected_at = self.sim.step_count();
                    let latency = self.snapshot_taken.elapsed().as_secs_f64();
                    self.recoveries += 1;
                    if self.recoveries > self.cfg.max_recoveries {
                        return Err(RecoveryError::RecoveriesExhausted {
                            step: detected_at,
                            recoveries: self.recoveries - 1,
                            last_fault: fault,
                        });
                    }
                    self.restore_latest()?;
                    let rollback_to = self.sim.step_count();
                    debug_assert_eq!(rollback_to, self.snapshot_step);
                    // Replay the steps that already passed their
                    // checks; only the failing step is re-checked (by
                    // the loop).
                    while self.sim.step_count() < target - 1 {
                        self.sim.advance();
                    }
                    let replayed = detected_at - rollback_to;
                    telemetry::count("resilience.recoveries", 1);
                    telemetry::count("resilience.steps_replayed", replayed as u64);
                    if let Some(hub) = telemetry::current() {
                        hub.trace(
                            "recovery",
                            format!(
                                "fault=\"{fault}\" detected_at={detected_at} \
                                 rollback_to={rollback_to} replayed={replayed} \
                                 latency_s={latency:.6}"
                            ),
                        );
                        // A rollback is always alert-worthy: the run
                        // survived, but something corrupted live state.
                        // Publishing through the hub also triggers the
                        // observability plane's flight-recorder dump,
                        // capturing the events leading up to the fault.
                        hub.alert(
                            "recovery_rollback",
                            telemetry::AlertSeverity::Warn,
                            &format!(
                                "rolled back step {detected_at} -> {rollback_to} \
                                 ({replayed} replayed): {fault}"
                            ),
                        );
                    }
                    self.events.push(RecoveryEvent {
                        detected_at_step: detected_at,
                        checkpoint_step: rollback_to,
                        steps_replayed: replayed,
                        fault,
                        detection_latency_s: latency,
                    });
                }
            }
        }
        if self.cfg.checkpoint_every > 0
            && self
                .sim
                .step_count()
                .is_multiple_of(self.cfg.checkpoint_every)
        {
            self.take_checkpoint()?;
        }
        Ok(())
    }

    /// [`step_checked`](Self::step_checked) in a loop.
    pub fn run_checked(
        &mut self,
        steps: usize,
        mut check: impl FnMut(&S) -> Result<(), String>,
    ) -> Result<(), RecoveryError> {
        for _ in 0..steps {
            self.step_checked(&mut check)?;
        }
        Ok(())
    }

    /// Flip one bit in the in-memory snapshot — test hook for proving
    /// the CRC catches snapshot corruption and the disk fallback
    /// engages.
    #[doc(hidden)]
    pub fn corrupt_memory_snapshot(&mut self, byte: usize, mask: u8) {
        let n = self.snapshot.len();
        if n > 0 {
            self.snapshot[byte % n] ^= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppic_core::{BinReader, BinWriter, Observable, Simulation};

    /// Deterministic toy simulation with RNG-bearing state: each step
    /// advances a SplitMix64 stream and folds it into a small field.
    #[derive(Clone, PartialEq, Debug)]
    struct LcgSim {
        steps: u64,
        rng: u64,
        field: Vec<f64>,
    }

    impl LcgSim {
        fn new(seed: u64) -> Self {
            LcgSim {
                steps: 0,
                rng: seed,
                field: vec![0.0; 8],
            }
        }

        fn next(&mut self) -> f64 {
            self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Simulation for LcgSim {
        fn advance(&mut self) {
            self.steps += 1;
            for i in 0..self.field.len() {
                let r = self.next();
                self.field[i] = 0.9 * self.field[i] + r;
            }
        }
        fn step_count(&self) -> usize {
            self.steps as usize
        }
        fn n_particles(&self) -> usize {
            self.field.len()
        }
        fn last_step_flux(&self) -> (usize, usize) {
            (0, 0)
        }
        fn observables(&self) -> Vec<Observable> {
            vec![Observable::new("field", self.field.clone())]
        }
        fn invariants(&self) -> Result<(), String> {
            if self.field.iter().all(|v| v.is_finite()) {
                Ok(())
            } else {
                Err("non-finite field value".into())
            }
        }
    }

    impl Recoverable for LcgSim {
        fn save_state(&self, out: &mut Vec<u8>) -> std::io::Result<()> {
            let mut w = BinWriter::new(out)?;
            w.u64(self.steps)?;
            w.u64(self.rng)?;
            w.f64_slice(&self.field)?;
            w.finish()?;
            Ok(())
        }
        fn restore_state(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            let mut r = BinReader::new(bytes)?;
            let steps = r.u64()?;
            let rng = r.u64()?;
            let field = r.f64_slice()?;
            r.verify_footer()?;
            self.steps = steps;
            self.rng = rng;
            self.field = field;
            Ok(())
        }
    }

    fn reference_after(steps: usize) -> LcgSim {
        let mut s = LcgSim::new(99);
        for _ in 0..steps {
            s.advance();
        }
        s
    }

    #[test]
    fn clean_run_takes_checkpoints_and_matches_reference() {
        let mut d = RecoveryDriver::new(LcgSim::new(99), RecoveryConfig::default()).unwrap();
        d.run_checked(20, |s| s.invariants()).unwrap();
        assert_eq!(d.sim(), &reference_after(20));
        assert!(d.events().is_empty());
        assert_eq!(d.recoveries(), 0);
    }

    #[test]
    fn transient_fault_rolls_back_and_converges_to_reference() {
        let cfg = RecoveryConfig {
            checkpoint_every: 4,
            ..RecoveryConfig::default()
        };
        let mut d = RecoveryDriver::new(LcgSim::new(99), cfg).unwrap();
        d.run_checked(10, |s| s.invariants()).unwrap();
        // Soft error: poison live state between steps.
        d.sim_mut().field[3] = f64::NAN;
        // The next checked step detects it (the NaN decays into the
        // whole update), recovery replays from step 8.
        d.run_checked(10, |s| s.invariants()).unwrap();
        assert_eq!(d.sim(), &reference_after(20), "recovery must be exact");
        assert_eq!(d.recoveries(), 1);
        let ev = &d.events()[0];
        assert_eq!(ev.detected_at_step, 11);
        assert_eq!(ev.checkpoint_step, 8);
        assert_eq!(ev.steps_replayed, 3);
        assert!(ev.fault.contains("non-finite"));
    }

    #[test]
    fn recovery_emits_telemetry_events() {
        use std::sync::Arc;
        let hub = Arc::new(oppic_core::telemetry::Telemetry::new());
        let _guard = hub.make_current();
        let mut d = RecoveryDriver::new(LcgSim::new(1), RecoveryConfig::default()).unwrap();
        d.run_checked(3, |s| s.invariants()).unwrap();
        d.sim_mut().field[0] = f64::INFINITY;
        d.run_checked(1, |s| s.invariants()).unwrap();
        assert_eq!(hub.counter("resilience.recoveries"), 1);
        assert!(hub.counter("resilience.checkpoints") >= 1);
        let traces = hub.traces();
        let rec = traces.iter().find(|(k, _)| k == "recovery").unwrap();
        assert!(rec.1.contains("detected_at=4"), "trace: {}", rec.1);
    }

    #[test]
    fn persistent_fault_exhausts_budget_with_typed_error() {
        let cfg = RecoveryConfig {
            max_recoveries: 2,
            ..RecoveryConfig::default()
        };
        let mut d = RecoveryDriver::new(LcgSim::new(5), cfg).unwrap();
        // A check that always fails models persistent corruption.
        let err = d
            .step_checked(|_| Err("stuck-at fault".into()))
            .unwrap_err();
        match err {
            RecoveryError::RecoveriesExhausted {
                recoveries,
                last_fault,
                ..
            } => {
                assert_eq!(recoveries, 2);
                assert_eq!(last_fault, "stuck-at fault");
            }
            other => panic!("expected RecoveriesExhausted, got {other}"),
        }
    }

    #[test]
    fn corrupt_memory_snapshot_falls_back_to_disk_mirror() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("oppic_recovery_{}.ckpt", std::process::id()));
        let cfg = RecoveryConfig {
            checkpoint_every: 2,
            disk_path: Some(path.clone()),
            ..RecoveryConfig::default()
        };
        let mut d = RecoveryDriver::new(LcgSim::new(7), cfg).unwrap();
        d.run_checked(4, |s| s.invariants()).unwrap();
        // Flip a payload bit in the in-memory snapshot; the CRC footer
        // must reject it and the disk mirror must take over.
        d.corrupt_memory_snapshot(20, 0x40);
        d.sim_mut().field[1] = f64::NAN;
        d.run_checked(2, |s| s.invariants()).unwrap();
        let mut reference = LcgSim::new(7);
        for _ in 0..6 {
            reference.advance();
        }
        assert_eq!(d.sim(), &reference);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_without_mirror_is_a_typed_error() {
        let mut d = RecoveryDriver::new(LcgSim::new(3), RecoveryConfig::default()).unwrap();
        d.corrupt_memory_snapshot(12, 0x01);
        d.sim_mut().field[0] = f64::NAN;
        let err = d.step_checked(|s| s.invariants()).unwrap_err();
        assert!(matches!(
            err,
            RecoveryError::CheckpointUnusable { disk: None, .. }
        ));
    }
}
