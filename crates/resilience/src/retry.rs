//! [`ReliableLink`]: detection and bounded retry over the envelope
//! protocol.
//!
//! One link per rank turns the shim's faulty data plane into an
//! exactly-once exchange primitive: every payload is wrapped in a
//! checksummed [`Frame`](crate::envelope::Frame), receipt is
//! acknowledged on the reliable control plane (plain `send` — the
//! fault injector only touches `send_faulty`), corrupt frames are
//! nack'd for immediate retransmission, and a timeout with
//! exponential backoff re-sends anything unacknowledged. Delivery is
//! deduplicated by `(source, round)`, so duplication and reordering
//! faults collapse to the fault-free result. When the retry budget
//! runs out the exchange returns a typed [`ExchangeError`] — never a
//! hang, never silently-partial data.

use crate::envelope::{decode, encode_ack, encode_data, encode_nack, Frame};
use oppic_core::telemetry;
use oppic_mpi::comm::{Message, RankCtx};
use std::fmt;
use std::time::{Duration, Instant};

/// Retry/backoff knobs for one [`ReliableLink`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retransmissions allowed per destination after the initial send
    /// (0 = detection only, first loss aborts the exchange).
    pub max_retries: usize,
    /// Timeout before the first retransmission; grows by `backoff`
    /// after each expiry.
    pub base_timeout: Duration,
    /// Multiplier applied to the timeout on every expiry.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_timeout: Duration::from_millis(5),
            backoff: 2.0,
        }
    }
}

/// Longest the backoff is allowed to stretch a single wait.
const MAX_TIMEOUT: Duration = Duration::from_millis(500);

/// Typed failure of a reliable exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// The retry budget ran out with peers still unheard-from or
    /// unacknowledged.
    RetriesExhausted {
        rank: usize,
        round: u64,
        /// Sources whose payload never arrived intact.
        missing_from: Vec<usize>,
        /// Destinations that never acknowledged our payload.
        unacked_to: Vec<usize>,
        /// Retransmission attempts spent.
        attempts: usize,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::RetriesExhausted {
                rank,
                round,
                missing_from,
                unacked_to,
                attempts,
            } => write!(
                f,
                "rank {rank} round {round}: retries exhausted after {attempts} attempts \
                 (missing from {missing_from:?}, unacked to {unacked_to:?})"
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// Per-rank reliable exchange endpoint. Rounds are implicit: every
/// call to [`exchange`](ReliableLink::exchange) (directly or through
/// [`allreduce_vec_sum`](ReliableLink::allreduce_vec_sum) /
/// [`migrate_particles_reliable`](crate::migrate_particles_reliable))
/// consumes the next round number, so SPMD code that makes the same
/// sequence of collective calls on every rank stays tag-aligned
/// automatically.
pub struct ReliableLink {
    policy: RetryPolicy,
    next_round: u64,
    /// Data frames that arrived for a round we haven't entered yet
    /// (the peer raced ahead); delivered when their round starts.
    stashed: Vec<(usize, u64, Vec<f64>)>,
}

impl ReliableLink {
    pub fn new(policy: RetryPolicy) -> Self {
        ReliableLink {
            policy,
            next_round: 0,
            stashed: Vec::new(),
        }
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Rounds completed or started so far.
    pub fn rounds(&self) -> u64 {
        self.next_round
    }

    /// One reliable exchange round: ship `sends[i] = (dst, payload)`
    /// and wait for exactly one payload from every rank in
    /// `recv_from`, returned in `recv_from` order.
    ///
    /// Collective in the pairwise sense: if rank A sends to B, rank B
    /// must list A in `recv_from` on its matching call. An entry with
    /// `dst == self` is delivered locally (and must then appear in
    /// `recv_from` to be observed).
    pub fn exchange(
        &mut self,
        ctx: &mut RankCtx,
        sends: &[(usize, Vec<f64>)],
        recv_from: &[usize],
    ) -> Result<Vec<Vec<f64>>, ExchangeError> {
        let round = self.next_round;
        self.next_round += 1;

        let mut got: Vec<Option<Vec<f64>>> = vec![None; recv_from.len()];
        let mut acked: Vec<bool> = vec![false; sends.len()];
        let mut tries: Vec<usize> = vec![0; sends.len()];

        for (si, (dst, payload)) in sends.iter().enumerate() {
            if *dst == ctx.rank {
                if let Some(ri) = recv_from.iter().position(|&s| s == ctx.rank) {
                    got[ri] = Some(payload.clone());
                }
                acked[si] = true;
            } else {
                ctx.send_faulty(*dst, Message::F64(encode_data(0, round, payload)));
            }
        }

        // Frames for this round that arrived while we were still in an
        // earlier one.
        self.stashed.retain(|(src, tag, payload)| {
            if *tag != round {
                return true;
            }
            if let Some(ri) = recv_from.iter().position(|s| s == src) {
                if got[ri].is_none() {
                    got[ri] = Some(payload.clone());
                }
            }
            false
        });

        let complete = |got: &[Option<Vec<f64>>], acked: &[bool]| {
            got.iter().all(Option::is_some) && acked.iter().all(|&a| a)
        };

        let mut timeout = self.policy.base_timeout;
        let mut attempt = 0usize;
        loop {
            if complete(&got, &acked) {
                return Ok(got.into_iter().flatten().collect());
            }
            let deadline = Instant::now() + timeout;
            while let Some((src, msg)) = ctx.recv_any_deadline(deadline) {
                self.handle(
                    ctx, round, src, &msg, sends, recv_from, &mut got, &mut acked, &mut tries,
                )?;
                if complete(&got, &acked) {
                    break;
                }
            }
            if complete(&got, &acked) {
                continue;
            }
            // Timeout with work outstanding: release anything a Delay
            // fault is holding, then retransmit every unacked payload.
            attempt += 1;
            if attempt > self.policy.max_retries {
                telemetry::count("resilience.exchange_failures", 1);
                return Err(self.exhausted(
                    ctx.rank,
                    round,
                    attempt - 1,
                    sends,
                    recv_from,
                    &got,
                    &acked,
                ));
            }
            ctx.flush_held();
            for (si, (dst, payload)) in sends.iter().enumerate() {
                if !acked[si] {
                    tries[si] += 1;
                    telemetry::count("resilience.retransmits", 1);
                    ctx.send_faulty(
                        *dst,
                        Message::F64(encode_data(tries[si] as u64, round, payload)),
                    );
                }
            }
            timeout = Duration::from_secs_f64(
                (timeout.as_secs_f64() * self.policy.backoff).min(MAX_TIMEOUT.as_secs_f64()),
            );
        }
    }

    /// Process one incoming message during `round`.
    #[allow(clippy::too_many_arguments)]
    fn handle(
        &mut self,
        ctx: &mut RankCtx,
        round: u64,
        src: usize,
        msg: &Message,
        sends: &[(usize, Vec<f64>)],
        recv_from: &[usize],
        got: &mut [Option<Vec<f64>>],
        acked: &mut [bool],
        tries: &mut [usize],
    ) -> Result<(), ExchangeError> {
        let Message::F64(words) = msg else {
            // Not envelope traffic; drop it rather than crash the
            // exchange. (Mixing raw and reliable traffic on one
            // context is a caller bug — surfaced by the peer timeout.)
            telemetry::count("resilience.foreign_messages", 1);
            return Ok(());
        };
        match decode(words) {
            Ok(Frame::Data { tag, payload, .. }) => {
                if tag == round {
                    match recv_from.iter().position(|&s| s == src) {
                        Some(ri) if got[ri].is_none() => got[ri] = Some(payload),
                        _ => telemetry::count("resilience.duplicates_dropped", 1),
                    }
                } else if tag > round {
                    // Peer is already in a later round; hold its
                    // payload until we get there.
                    if !self.stashed.iter().any(|(s, t, _)| *s == src && *t == tag) {
                        self.stashed.push((src, tag, payload));
                    }
                } else {
                    // Stale retransmit of a finished round; the ack
                    // below is all the peer needs.
                    telemetry::count("resilience.duplicates_dropped", 1);
                }
                // Acks ride the reliable control plane.
                ctx.send(src, Message::F64(encode_ack(0, tag)));
            }
            Ok(Frame::Ack { tag, .. }) => {
                if tag == round {
                    for (si, (dst, _)) in sends.iter().enumerate() {
                        if *dst == src {
                            acked[si] = true;
                        }
                    }
                }
            }
            Ok(Frame::Nack { tag, .. }) => {
                if tag == round {
                    // Our frame reached the peer corrupt: retransmit
                    // right away, charged against the same budget as
                    // timeout-driven retries.
                    for (si, (dst, payload)) in sends.iter().enumerate() {
                        if *dst == src && !acked[si] {
                            tries[si] += 1;
                            if tries[si] > self.policy.max_retries {
                                telemetry::count("resilience.exchange_failures", 1);
                                return Err(self.exhausted(
                                    ctx.rank,
                                    round,
                                    tries[si] - 1,
                                    sends,
                                    recv_from,
                                    got,
                                    acked,
                                ));
                            }
                            telemetry::count("resilience.retransmits", 1);
                            ctx.send_faulty(
                                *dst,
                                Message::F64(encode_data(tries[si] as u64, tag, payload)),
                            );
                        }
                    }
                }
            }
            Err(_) => {
                // Corrupt on arrival: ask for an immediate retransmit
                // of whatever the peer owes us this round.
                telemetry::count("resilience.frames_corrupt", 1);
                ctx.send(src, Message::F64(encode_nack(0, round)));
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exhausted(
        &self,
        rank: usize,
        round: u64,
        attempts: usize,
        sends: &[(usize, Vec<f64>)],
        recv_from: &[usize],
        got: &[Option<Vec<f64>>],
        acked: &[bool],
    ) -> ExchangeError {
        ExchangeError::RetriesExhausted {
            rank,
            round,
            missing_from: recv_from
                .iter()
                .zip(got)
                .filter(|(_, g)| g.is_none())
                .map(|(&s, _)| s)
                .collect(),
            unacked_to: sends
                .iter()
                .zip(acked)
                .filter(|(_, &a)| !a)
                .map(|((d, _), _)| *d)
                .collect(),
            attempts,
        }
    }

    /// Element-wise sum-allreduce over the reliable link (gather to
    /// rank 0, reduce, broadcast): two exchange rounds.
    pub fn allreduce_vec_sum(
        &mut self,
        ctx: &mut RankCtx,
        x: &[f64],
    ) -> Result<Vec<f64>, ExchangeError> {
        if ctx.n_ranks == 1 {
            // Keep the round counter aligned with multi-rank worlds.
            self.next_round += 2;
            return Ok(x.to_vec());
        }
        if ctx.rank == 0 {
            let others: Vec<usize> = (1..ctx.n_ranks).collect();
            let parts = self.exchange(ctx, &[], &others)?;
            let mut acc = x.to_vec();
            for p in &parts {
                debug_assert_eq!(p.len(), acc.len(), "allreduce length mismatch");
                for (a, b) in acc.iter_mut().zip(p) {
                    *a += b;
                }
            }
            let sends: Vec<(usize, Vec<f64>)> =
                (1..ctx.n_ranks).map(|d| (d, acc.clone())).collect();
            self.exchange(ctx, &sends, &[])?;
            Ok(acc)
        } else {
            self.exchange(ctx, &[(0, x.to_vec())], &[])?;
            let mut got = self.exchange(ctx, &[], &[0])?;
            Ok(got.pop().expect("broadcast payload present"))
        }
    }

    /// Scalar sum-allreduce over the reliable link.
    pub fn allreduce_sum(&mut self, ctx: &mut RankCtx, x: f64) -> Result<f64, ExchangeError> {
        Ok(self.allreduce_vec_sum(ctx, &[x])?[0])
    }
}

impl Default for ReliableLink {
    fn default() -> Self {
        ReliableLink::new(RetryPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppic_mpi::comm::world_run;
    use oppic_mpi::{world_run_faulty, FaultKind, FaultSchedule};
    use std::sync::Arc;

    fn ring_payload(rank: usize) -> Vec<f64> {
        vec![rank as f64, rank as f64 * 0.5, -1.0]
    }

    /// Each rank sends to the next and receives from the previous;
    /// returns true iff the received payload is exactly correct.
    fn ring_ok(ctx: &mut RankCtx, policy: RetryPolicy) -> Result<bool, ExchangeError> {
        let mut link = ReliableLink::new(policy);
        let next = (ctx.rank + 1) % ctx.n_ranks;
        let prev = (ctx.rank + ctx.n_ranks - 1) % ctx.n_ranks;
        let got = link.exchange(ctx, &[(next, ring_payload(ctx.rank))], &[prev])?;
        Ok(got.len() == 1 && got[0] == ring_payload(prev))
    }

    #[test]
    fn fault_free_ring_exchanges() {
        let out = world_run(3, |ctx| ring_ok(ctx, RetryPolicy::default()).unwrap());
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn survives_dropped_messages() {
        // Drop the first few data-plane sends; retransmits get fresh
        // draws outside the budget and go through.
        let sched = Arc::new(FaultSchedule::single(11, FaultKind::Drop, 1.0).with_budget(3));
        let out = world_run_faulty(3, Some(sched.clone()), |ctx| {
            ring_ok(ctx, RetryPolicy::default()).unwrap()
        });
        assert!(out.into_iter().all(|ok| ok));
        assert!(sched.injected() > 0, "schedule must actually fire");
    }

    #[test]
    fn survives_duplicates_delays_and_reorders() {
        for kind in [FaultKind::Duplicate, FaultKind::Delay, FaultKind::Reorder] {
            let sched = Arc::new(FaultSchedule::single(7, kind, 1.0).with_budget(4));
            let out = world_run_faulty(3, Some(sched), |ctx| {
                ring_ok(ctx, RetryPolicy::default()).unwrap()
            });
            assert!(out.into_iter().all(|ok| ok), "kind {kind:?}");
        }
    }

    #[test]
    fn corrupt_frames_are_nacked_and_retransmitted() {
        let sched = Arc::new(FaultSchedule::single(13, FaultKind::BitFlip, 1.0).with_budget(2));
        let out = world_run_faulty(2, Some(sched.clone()), |ctx| {
            ring_ok(ctx, RetryPolicy::default()).unwrap()
        });
        assert!(out.into_iter().all(|ok| ok));
        assert!(sched.injected() > 0);
    }

    #[test]
    fn retries_exhausted_is_a_clean_typed_abort() {
        // Unlimited total-loss link with retries disabled: every rank
        // must come back with RetriesExhausted, not hang or panic.
        let sched = Arc::new(FaultSchedule::single(3, FaultKind::Drop, 1.0));
        let policy = RetryPolicy {
            max_retries: 0,
            base_timeout: Duration::from_millis(5),
            backoff: 2.0,
        };
        let out = world_run_faulty(2, Some(sched), |ctx| ring_ok(ctx, policy.clone()));
        for (rank, r) in out.into_iter().enumerate() {
            match r {
                Err(ExchangeError::RetriesExhausted {
                    rank: r, attempts, ..
                }) => {
                    assert_eq!(r, rank);
                    assert_eq!(attempts, 0);
                }
                other => panic!("rank {rank}: expected RetriesExhausted, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_round_exchanges_stay_tag_aligned() {
        let sched = Arc::new(FaultSchedule::single(21, FaultKind::Drop, 0.3).with_budget(6));
        let rounds = 5usize;
        let out = world_run_faulty(3, Some(sched), |ctx| {
            let mut link = ReliableLink::default();
            let next = (ctx.rank + 1) % ctx.n_ranks;
            let prev = (ctx.rank + ctx.n_ranks - 1) % ctx.n_ranks;
            let mut all_ok = true;
            for round in 0..rounds {
                let sent = vec![ctx.rank as f64, round as f64];
                let got = link
                    .exchange(ctx, &[(next, sent)], &[prev])
                    .expect("bounded retry succeeds under budgeted loss");
                all_ok &= got[0] == vec![prev as f64, round as f64];
            }
            all_ok && link.rounds() == rounds as u64
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn allreduce_matches_fault_free_reference() {
        let reference: Vec<f64> = vec![0.0 + 1.0 + 2.0 + 3.0, 4.0 * 10.0];
        for sched in [
            None,
            Some(Arc::new(
                FaultSchedule::single(5, FaultKind::Drop, 0.5).with_budget(8),
            )),
            Some(Arc::new(
                FaultSchedule::single(6, FaultKind::BitFlip, 0.5).with_budget(8),
            )),
        ] {
            let out = world_run_faulty(4, sched, |ctx| {
                let mut link = ReliableLink::default();
                link.allreduce_vec_sum(ctx, &[ctx.rank as f64, 10.0])
                    .unwrap()
            });
            for v in out {
                assert_eq!(v, reference);
            }
        }
    }

    #[test]
    fn self_send_delivers_locally() {
        let out = world_run(1, |ctx| {
            let mut link = ReliableLink::default();
            link.exchange(ctx, &[(0, vec![5.0])], &[0]).unwrap()
        });
        assert_eq!(out[0], vec![vec![5.0]]);
    }
}
