//! Resilience layer: surviving a faulty interconnect and transient
//! data corruption without silently corrupting physics.
//!
//! The production OP-PIC backends run on machines where messages are
//! effectively reliable; this layer exists for the *other* regime —
//! fault-injection campaigns, soft-error studies, and the conformance
//! harness's chaos stage — and is built from four pieces:
//!
//! * [`envelope`] — sequence-numbered, CRC-64-checksummed frames
//!   carried over the MPI shim's fault-injectable data plane
//!   ([`oppic_mpi::comm::RankCtx::send_faulty`]). Corruption is
//!   detected at decode; drops are detected by timeout.
//! * [`retry`] — [`ReliableLink`], an ack/nack + bounded-retry
//!   exchange protocol over those envelopes: exponential backoff,
//!   duplicate suppression, and typed [`ExchangeError`]s instead of
//!   hangs when the retry budget runs out.
//! * [`migrate`] — particle migration re-expressed over the reliable
//!   link, the drop/duplication/corruption-tolerant counterpart of
//!   [`oppic_mpi::exchange::migrate_particles`].
//! * [`recovery`] — [`RecoveryDriver`], checkpoint-based
//!   rollback-and-replay over any [`oppic_core::Recoverable`]
//!   simulation: periodic in-memory + on-disk checkpoints, a guarded
//!   step that restores and replays when a check fails, and recovery
//!   events published through the telemetry hub.
//!
//! Numeric guards live next to the code they protect and are
//! re-exported here: [`cg_solve_guarded`] (divergence / stagnation /
//! non-finite detection with a cold-restart fallback, from
//! `oppic-linalg`) and `ParticleDats::quarantine_nonfinite` (NaN/Inf
//! particle quarantine, from `oppic-core`).

pub mod envelope;
pub mod migrate;
pub mod recovery;
pub mod retry;

pub use envelope::{decode, Frame, FrameError};
pub use migrate::{migrate_particles_reliable, MigrateError};
pub use recovery::{RecoveryConfig, RecoveryDriver, RecoveryError, RecoveryEvent};
pub use retry::{ExchangeError, ReliableLink, RetryPolicy};

// The numeric-guard half of the layer, re-exported from the crates
// that own it so chaos drivers need one dependency only.
pub use oppic_linalg::{cg_solve_guarded, CgGuardReport, CgOutcome, CgStop};
pub use oppic_mpi::{world_run_faulty, FaultAction, FaultKind, FaultSchedule, FaultSpec};
