//! Self-describing message envelopes for the fault-injectable data
//! plane.
//!
//! Every frame is a `Vec<f64>` (so it rides the shim's `Message::F64`
//! data plane, where the fault injector operates) whose first five
//! words are u64 bit patterns: magic+kind, sequence number, tag (the
//! exchange round), payload length, and a CRC-64/XZ over header and
//! payload. Any single corruption — a mantissa bit-flip in the
//! payload, a flipped kind, a truncated buffer, a mangled length —
//! surfaces as a typed [`FrameError`] at decode rather than as silent
//! physics corruption downstream.

use oppic_core::Crc64;
use std::fmt;

/// Bit pattern of header word 0, xor'd with the [`FrameKind`]
/// discriminant. ASCII "OPPIC-RE".
pub const MAGIC: u64 = 0x4F50_5049_432D_5245;

/// Words of header before the payload.
pub const HEADER_WORDS: usize = 5;

/// Decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A payload-carrying frame; `seq` counts retransmission attempts
    /// (diagnostic only — delivery is deduplicated by `(src, tag)`).
    Data {
        seq: u64,
        tag: u64,
        payload: Vec<f64>,
    },
    /// Receipt acknowledgement for round `tag`.
    Ack { seq: u64, tag: u64 },
    /// "Your frame arrived corrupt — retransmit round `tag` now."
    Nack { seq: u64, tag: u64 },
}

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer words than a header.
    TooShort { words: usize },
    /// Header word 0 does not carry the magic.
    BadMagic { word: u64 },
    /// Magic ok but the kind discriminant is unknown.
    BadKind { kind: u64 },
    /// Stated payload length disagrees with the buffer.
    LengthMismatch { stated: u64, actual: usize },
    /// CRC-64 over header + payload does not match.
    ChecksumMismatch { stored: u64, computed: u64 },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort { words } => {
                write!(
                    f,
                    "frame too short: {words} words, header needs {HEADER_WORDS}"
                )
            }
            FrameError::BadMagic { word } => write!(f, "bad frame magic: {word:#018x}"),
            FrameError::BadKind { kind } => write!(f, "unknown frame kind: {kind}"),
            FrameError::LengthMismatch { stated, actual } => {
                write!(
                    f,
                    "payload length mismatch: header says {stated}, buffer has {actual}"
                )
            }
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame CRC-64 mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-64 over the first four header words and the payload bits.
/// Word 0 is included so a flipped kind discriminant is caught.
fn frame_crc(header: &[u64; 4], payload: &[f64]) -> u64 {
    let mut crc = Crc64::new();
    for w in header {
        crc.update(&w.to_le_bytes());
    }
    for v in payload {
        crc.update(&v.to_bits().to_le_bytes());
    }
    crc.value()
}

fn encode_raw(kind: u64, seq: u64, tag: u64, payload: &[f64]) -> Vec<f64> {
    let header = [MAGIC ^ kind, seq, tag, payload.len() as u64];
    let crc = frame_crc(&header, payload);
    let mut out = Vec::with_capacity(HEADER_WORDS + payload.len());
    out.extend(header.iter().map(|&w| f64::from_bits(w)));
    out.push(f64::from_bits(crc));
    out.extend_from_slice(payload);
    out
}

/// Encode a data frame.
pub fn encode_data(seq: u64, tag: u64, payload: &[f64]) -> Vec<f64> {
    encode_raw(0, seq, tag, payload)
}

/// Encode an ack frame (no payload).
pub fn encode_ack(seq: u64, tag: u64) -> Vec<f64> {
    encode_raw(1, seq, tag, &[])
}

/// Encode a nack frame (no payload).
pub fn encode_nack(seq: u64, tag: u64) -> Vec<f64> {
    encode_raw(2, seq, tag, &[])
}

/// Decode and integrity-check a frame buffer.
pub fn decode(words: &[f64]) -> Result<Frame, FrameError> {
    if words.len() < HEADER_WORDS {
        return Err(FrameError::TooShort { words: words.len() });
    }
    let w0 = words[0].to_bits();
    let kind = w0 ^ MAGIC;
    // The kind discriminant lives in the low bits; anything with high
    // bits set means the magic itself is wrong.
    if kind > 0xFF {
        return Err(FrameError::BadMagic { word: w0 });
    }
    let seq = words[1].to_bits();
    let tag = words[2].to_bits();
    let stated = words[3].to_bits();
    let stored = words[4].to_bits();
    let payload = &words[HEADER_WORDS..];
    if stated != payload.len() as u64 {
        return Err(FrameError::LengthMismatch {
            stated,
            actual: payload.len(),
        });
    }
    let computed = frame_crc(&[w0, seq, tag, stated], payload);
    if computed != stored {
        return Err(FrameError::ChecksumMismatch { stored, computed });
    }
    match kind {
        0 => Ok(Frame::Data {
            seq,
            tag,
            payload: payload.to_vec(),
        }),
        1 => Ok(Frame::Ack { seq, tag }),
        2 => Ok(Frame::Nack { seq, tag }),
        k => Err(FrameError::BadKind { kind: k }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frame_round_trips() {
        let payload = [1.5, -2.25, f64::MAX, 0.0, 1e-300];
        let buf = encode_data(3, 42, &payload);
        assert_eq!(buf.len(), HEADER_WORDS + payload.len());
        assert_eq!(
            decode(&buf).unwrap(),
            Frame::Data {
                seq: 3,
                tag: 42,
                payload: payload.to_vec()
            }
        );
    }

    #[test]
    fn ack_and_nack_round_trip() {
        assert_eq!(
            decode(&encode_ack(0, 7)).unwrap(),
            Frame::Ack { seq: 0, tag: 7 }
        );
        assert_eq!(
            decode(&encode_nack(1, 9)).unwrap(),
            Frame::Nack { seq: 1, tag: 9 }
        );
    }

    #[test]
    fn empty_payload_is_valid() {
        let buf = encode_data(0, 0, &[]);
        assert_eq!(
            decode(&buf).unwrap(),
            Frame::Data {
                seq: 0,
                tag: 0,
                payload: vec![]
            }
        );
    }

    #[test]
    fn payload_bit_flip_is_caught() {
        let mut buf = encode_data(0, 5, &[3.25, 4.5]);
        let i = HEADER_WORDS + 1;
        buf[i] = f64::from_bits(buf[i].to_bits() ^ (1 << 17));
        assert!(matches!(
            decode(&buf),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn kind_flip_is_caught_by_checksum() {
        // Data -> Ack is a single low-bit flip in word 0; the CRC
        // covers word 0, so the masquerade fails integrity.
        let mut buf = encode_data(0, 5, &[1.0]);
        buf[0] = f64::from_bits(buf[0].to_bits() ^ 1);
        assert!(matches!(
            decode(&buf),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_garbage_are_caught() {
        let buf = encode_data(0, 5, &[1.0, 2.0]);
        assert!(matches!(
            decode(&buf[..buf.len() - 1]),
            Err(FrameError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decode(&buf[..3]),
            Err(FrameError::TooShort { words: 3 })
        ));
        assert!(matches!(
            decode(&[0.0; 8]),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn length_word_corruption_is_caught() {
        let mut buf = encode_data(0, 5, &[1.0, 2.0]);
        buf[3] = f64::from_bits(buf[3].to_bits() ^ 1);
        assert!(matches!(
            decode(&buf),
            Err(FrameError::LengthMismatch { .. })
        ));
    }
}
