//! Property tests for the NaN/Inf particle quarantine — the numeric
//! guard at the deposit boundary (satellite of the resilience layer).
//!
//! For any population and any poisoned subset: quarantine removes
//! exactly the poisoned particles, conserves every healthy particle's
//! payload and cell binding bit-exactly, and fires the telemetry
//! counter with the exact removal count.

use oppic_core::particles::ParticleDats;
use oppic_core::telemetry::Telemetry;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Build a store of `n` particles with a 3-dim "pos" and 1-dim "w"
/// column, each particle carrying a unique fingerprint in `w`.
fn build_store(n: usize) -> ParticleDats {
    let mut ps = ParticleDats::new();
    let pos = ps.decl_dat("pos", 3);
    let w = ps.decl_dat("w", 1);
    ps.inject(n, 0);
    for i in 0..n {
        let e = ps.el_mut(pos, i);
        e[0] = i as f64 * 0.25;
        e[1] = -(i as f64);
        e[2] = 1.0 / (i as f64 + 1.0);
        ps.el_mut(w, i)[0] = 1_000.0 + i as f64;
        ps.cells_mut()[i] = (i * 7 % 13) as i32;
    }
    ps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quarantine_removes_exactly_the_poisoned_particles(
        n in 1usize..60,
        poison_picks in proptest::collection::vec((0usize..60, 0usize..3, any::<bool>()), 0..12),
    ) {
        let mut ps = build_store(n);
        let pos = ps.col_id("pos").unwrap();
        let w = ps.col_id("w").unwrap();

        // Poison k distinct particles: NaN or Inf in one position
        // component each.
        let mut poisoned: HashSet<usize> = HashSet::new();
        for &(pick, dim, use_inf) in &poison_picks {
            let i = pick % n;
            let v = if use_inf { f64::INFINITY } else { f64::NAN };
            ps.el_mut(pos, i)[dim] = v;
            poisoned.insert(i);
        }
        // Record the survivors' fingerprints and state before.
        let before: Vec<(f64, [f64; 3], i32)> = (0..n)
            .filter(|i| !poisoned.contains(i))
            .map(|i| {
                let p = ps.el(pos, i);
                (ps.el(w, i)[0], [p[0], p[1], p[2]], ps.cells()[i])
            })
            .collect();

        let hub = Arc::new(Telemetry::new());
        let removed = {
            let _guard = hub.make_current();
            ps.quarantine_nonfinite(&[pos])
        };

        // Exactly the poisoned set was removed...
        prop_assert_eq!(removed.len(), poisoned.len());
        let removed_set: HashSet<usize> = removed.iter().copied().collect();
        prop_assert_eq!(&removed_set, &poisoned);
        // ...the survivors are conserved bit-exactly (hole-filling may
        // permute order, so compare as fingerprint-keyed sets)...
        prop_assert_eq!(ps.len(), n - poisoned.len());
        let mut after: Vec<(f64, [f64; 3], i32)> = (0..ps.len())
            .map(|i| {
                let p = ps.el(pos, i);
                (ps.el(w, i)[0], [p[0], p[1], p[2]], ps.cells()[i])
            })
            .collect();
        let mut expected = before;
        after.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        prop_assert_eq!(after, expected);
        // ...no survivor is non-finite and the counter is exact.
        prop_assert!((0..ps.len()).all(|i| ps.el(pos, i).iter().all(|v| v.is_finite())));
        prop_assert_eq!(hub.counter("resilience.quarantined"), poisoned.len() as u64);
    }

    #[test]
    fn quarantine_is_a_no_op_on_healthy_populations(n in 0usize..40) {
        let mut ps = build_store(n);
        let pos = ps.col_id("pos").unwrap();
        let cells_before = ps.cells().to_vec();
        let col_before = ps.col(pos).to_vec();
        let removed = ps.quarantine_nonfinite(&[pos]);
        prop_assert!(removed.is_empty());
        prop_assert_eq!(ps.cells(), &cells_before[..]);
        prop_assert_eq!(ps.col(pos), &col_before[..]);
    }

    #[test]
    fn quarantine_only_scans_the_requested_columns(
        n in 1usize..30,
        victim in 0usize..30,
    ) {
        // A NaN in a column we are NOT guarding must not remove
        // anything.
        let mut ps = build_store(n);
        let pos = ps.col_id("pos").unwrap();
        let w = ps.col_id("w").unwrap();
        ps.el_mut(w, victim % n)[0] = f64::NAN;
        let removed = ps.quarantine_nonfinite(&[pos]);
        prop_assert!(removed.is_empty());
        prop_assert_eq!(ps.len(), n);
    }
}
