//! Cuboid-cell mesh expressed through unstructured maps — the CabanaPIC
//! domain.
//!
//! The original CabanaPIC is a structured-mesh code; the paper ports it
//! to OP-PIC by *expressing* the structured topology through explicit
//! integer neighbour maps ("implemented with unstructured-mesh mappings
//! solving the same physics as the original", Section 4). This module
//! builds exactly those maps: a periodic box of `nx × ny × nz` cuboid
//! cells with
//!
//! * `c2c6` — the face-neighbour map (arity 6, order `[-x,+x,-y,+y,-z,+z]`),
//!   used by the FDTD field update (`AdvanceE` needs the `-` side,
//!   `AdvanceB` the `+` side), and
//! * `c2c27` — the full 3×3×3 neighbourhood (arity 27), used by the
//!   current accumulation step which gathers the accumulator from the
//!   cells a particle touched.
//!
//! Because the box is fully periodic there are no `-1` entries: the
//! maps are total.

use crate::geometry::{BoundingBox, Vec3};

/// Face-neighbour directions for [`HexMesh::c2c6`].
pub const XM: usize = 0;
pub const XP: usize = 1;
pub const YM: usize = 2;
pub const YP: usize = 3;
pub const ZM: usize = 4;
pub const ZP: usize = 5;

/// A periodic cuboid mesh with explicit (unstructured-style) maps.
#[derive(Debug, Clone)]
pub struct HexMesh {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Physical cell sizes.
    pub dx: f64,
    pub dy: f64,
    pub dz: f64,
    /// Face-neighbour map, arity 6, order `[-x,+x,-y,+y,-z,+z]`.
    pub c2c6: Vec<[i32; 6]>,
    /// Full 3×3×3 neighbourhood, arity 27; index
    /// `(di+1) + 3*(dj+1) + 9*(dk+1)` for offsets `di,dj,dk ∈ {-1,0,1}`.
    pub c2c27: Vec<[i32; 27]>,
}

impl HexMesh {
    /// Build the periodic box. The paper's CabanaPIC single-node runs
    /// use `nx=40, ny=40, nz=60` → 96 000 cells.
    pub fn periodic_box(nx: usize, ny: usize, nz: usize, dx: f64, dy: f64, dz: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "box dims must be positive");
        let n = nx * ny * nz;
        let mut c2c6 = vec![[0i32; 6]; n];
        let mut c2c27 = vec![[0i32; 27]; n];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = i + nx * (j + ny * k);
                    let idx = |ii: isize, jj: isize, kk: isize| -> i32 {
                        let ii = ii.rem_euclid(nx as isize) as usize;
                        let jj = jj.rem_euclid(ny as isize) as usize;
                        let kk = kk.rem_euclid(nz as isize) as usize;
                        (ii + nx * (jj + ny * kk)) as i32
                    };
                    let (i, j, k) = (i as isize, j as isize, k as isize);
                    c2c6[c] = [
                        idx(i - 1, j, k),
                        idx(i + 1, j, k),
                        idx(i, j - 1, k),
                        idx(i, j + 1, k),
                        idx(i, j, k - 1),
                        idx(i, j, k + 1),
                    ];
                    for dk in -1isize..=1 {
                        for dj in -1isize..=1 {
                            for di in -1isize..=1 {
                                let slot = ((di + 1) + 3 * (dj + 1) + 9 * (dk + 1)) as usize;
                                c2c27[c][slot] = idx(i + di, j + dj, k + dk);
                            }
                        }
                    }
                }
            }
        }
        HexMesh {
            nx,
            ny,
            nz,
            dx,
            dy,
            dz,
            c2c6,
            c2c27,
        }
    }

    #[inline]
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Domain extents.
    pub fn lengths(&self) -> [f64; 3] {
        [
            self.nx as f64 * self.dx,
            self.ny as f64 * self.dy,
            self.nz as f64 * self.dz,
        ]
    }

    pub fn bounding_box(&self) -> BoundingBox {
        let [lx, ly, lz] = self.lengths();
        BoundingBox {
            lo: Vec3::ZERO,
            hi: Vec3::new(lx, ly, lz),
        }
    }

    /// Linear cell id from (i, j, k).
    #[inline]
    pub fn cell_id(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// (i, j, k) from a linear cell id.
    #[inline]
    pub fn cell_ijk(&self, c: usize) -> (usize, usize, usize) {
        let i = c % self.nx;
        let j = (c / self.nx) % self.ny;
        let k = c / (self.nx * self.ny);
        (i, j, k)
    }

    /// Neighbour at offset `(di, dj, dk)` via the 27-map.
    #[inline]
    pub fn neighbor(&self, c: usize, di: isize, dj: isize, dk: isize) -> usize {
        debug_assert!((-1..=1).contains(&di) && (-1..=1).contains(&dj) && (-1..=1).contains(&dk));
        let slot = ((di + 1) + 3 * (dj + 1) + 9 * (dk + 1)) as usize;
        self.c2c27[c][slot] as usize
    }

    /// Low corner of cell `c`.
    #[inline]
    pub fn cell_origin(&self, c: usize) -> Vec3 {
        let (i, j, k) = self.cell_ijk(c);
        Vec3::new(i as f64 * self.dx, j as f64 * self.dy, k as f64 * self.dz)
    }

    /// Centroid of cell `c`.
    #[inline]
    pub fn cell_centroid(&self, c: usize) -> Vec3 {
        self.cell_origin(c) + Vec3::new(self.dx * 0.5, self.dy * 0.5, self.dz * 0.5)
    }

    /// The cell containing a (periodically wrapped) point.
    #[inline]
    pub fn locate(&self, p: Vec3) -> usize {
        let [lx, ly, lz] = self.lengths();
        let wrap = |x: f64, l: f64| x.rem_euclid(l);
        let i = ((wrap(p.x, lx) / self.dx) as usize).min(self.nx - 1);
        let j = ((wrap(p.y, ly) / self.dy) as usize).min(self.ny - 1);
        let k = ((wrap(p.z, lz) / self.dz) as usize).min(self.nz - 1);
        self.cell_id(i, j, k)
    }

    /// Wrap a point into the primary periodic image.
    #[inline]
    pub fn wrap_point(&self, p: Vec3) -> Vec3 {
        let [lx, ly, lz] = self.lengths();
        Vec3::new(p.x.rem_euclid(lx), p.y.rem_euclid(ly), p.z.rem_euclid(lz))
    }

    /// Validation used by tests: maps must be total, periodic and
    /// mutually inverse (`+x` of `-x` is identity).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let n = self.n_cells() as i32;
        for (c, nb) in self.c2c6.iter().enumerate() {
            for (d, &m) in nb.iter().enumerate() {
                if m < 0 || m >= n {
                    errs.push(format!("cell {c} dir {d}: neighbour {m} out of range"));
                }
            }
            // +x then -x returns to c.
            let xp = self.c2c6[c][XP] as usize;
            if self.c2c6[xp][XM] as usize != c {
                errs.push(format!("cell {c}: +x/-x not inverse"));
            }
            let yp = self.c2c6[c][YP] as usize;
            if self.c2c6[yp][YM] as usize != c {
                errs.push(format!("cell {c}: +y/-y not inverse"));
            }
            let zp = self.c2c6[c][ZP] as usize;
            if self.c2c6[zp][ZM] as usize != c {
                errs.push(format!("cell {c}: +z/-z not inverse"));
            }
            // Central entry of the 27-map is the cell itself.
            if self.c2c27[c][13] as usize != c {
                errs.push(format!("cell {c}: 27-map centre is not self"));
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_counts_and_valid() {
        let m = HexMesh::periodic_box(4, 3, 5, 1.0, 1.0, 1.0);
        assert_eq!(m.n_cells(), 60);
        assert!(m.validate().is_empty(), "{:?}", m.validate());
    }

    #[test]
    fn id_ijk_round_trip() {
        let m = HexMesh::periodic_box(4, 3, 5, 1.0, 1.0, 1.0);
        for c in 0..m.n_cells() {
            let (i, j, k) = m.cell_ijk(c);
            assert_eq!(m.cell_id(i, j, k), c);
        }
    }

    #[test]
    fn periodic_wraparound() {
        let m = HexMesh::periodic_box(4, 3, 5, 1.0, 1.0, 1.0);
        // -x neighbour of the i=0 column is the i=nx-1 column.
        let c = m.cell_id(0, 1, 2);
        assert_eq!(m.c2c6[c][XM] as usize, m.cell_id(3, 1, 2));
        let c = m.cell_id(3, 2, 4);
        assert_eq!(m.c2c6[c][XP] as usize, m.cell_id(0, 2, 4));
        assert_eq!(m.c2c6[c][YP] as usize, m.cell_id(3, 0, 4));
        assert_eq!(m.c2c6[c][ZP] as usize, m.cell_id(3, 2, 0));
    }

    #[test]
    fn c2c27_matches_neighbor_arithmetic() {
        let m = HexMesh::periodic_box(3, 3, 3, 1.0, 1.0, 1.0);
        for c in 0..m.n_cells() {
            let (i, j, k) = m.cell_ijk(c);
            for dk in -1isize..=1 {
                for dj in -1isize..=1 {
                    for di in -1isize..=1 {
                        let nb = m.neighbor(c, di, dj, dk);
                        let ii = (i as isize + di).rem_euclid(3) as usize;
                        let jj = (j as isize + dj).rem_euclid(3) as usize;
                        let kk = (k as isize + dk).rem_euclid(3) as usize;
                        assert_eq!(nb, m.cell_id(ii, jj, kk));
                    }
                }
            }
        }
    }

    #[test]
    fn locate_and_wrap() {
        let m = HexMesh::periodic_box(4, 4, 4, 0.5, 0.5, 0.5);
        assert_eq!(m.locate(Vec3::new(0.1, 0.1, 0.1)), m.cell_id(0, 0, 0));
        assert_eq!(m.locate(Vec3::new(1.9, 0.1, 0.1)), m.cell_id(3, 0, 0));
        // Outside the box wraps around.
        assert_eq!(m.locate(Vec3::new(2.1, 0.1, 0.1)), m.cell_id(0, 0, 0));
        assert_eq!(m.locate(Vec3::new(-0.1, 0.1, 0.1)), m.cell_id(3, 0, 0));
        let w = m.wrap_point(Vec3::new(-0.1, 2.3, 4.05));
        assert!((w.x - 1.9).abs() < 1e-12);
        assert!((w.y - 0.3).abs() < 1e-12);
        assert!((w.z - 0.05).abs() < 1e-12);
    }

    #[test]
    fn locate_centroids() {
        let m = HexMesh::periodic_box(5, 4, 3, 0.3, 0.7, 1.1);
        for c in 0..m.n_cells() {
            assert_eq!(m.locate(m.cell_centroid(c)), c);
        }
    }

    #[test]
    fn paper_mesh_size() {
        // nx=40, ny=40, nz=60 -> 96 000 cells (Section 4.1.1).
        let m = HexMesh::periodic_box(40, 40, 60, 1.0, 1.0, 1.0);
        assert_eq!(m.n_cells(), 96_000);
    }
}
