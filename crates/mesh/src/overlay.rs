//! The structured overlay used by the *direct-hop* particle move.
//!
//! Section 3.2.2 of the paper: "OP-PIC creates two structured meshes,
//! overlaid over the unstructured mesh: (1) mapping from structured-mesh
//! cell to unstructured-mesh cells (cell-map), (2) mapping from
//! structured-mesh cell to MPI rank of which the unstructured-mesh cell
//! belongs to (rank-map)."
//!
//! A particle that has moved far from its cell first jumps *directly*
//! to the overlay's best-guess cell for its new position and only then
//! falls back to multi-hop to reach the exact destination. The overlay
//! trades memory for hop count — the trade-off the paper calls out.

use crate::geometry::{bary_inside, barycentric, BoundingBox, Vec3};
use crate::tet::TetMesh;

/// A regular grid over the mesh bounding box mapping points to a good
/// starting unstructured cell (the *cell-map*) and, in distributed
/// runs, to the owning rank (the *rank-map*).
#[derive(Debug, Clone)]
pub struct StructuredOverlay {
    pub bbox: BoundingBox,
    pub dims: [usize; 3],
    cell_size: Vec3,
    /// For each overlay voxel: an unstructured cell whose interior
    /// intersects (or is nearest to) the voxel centre.
    pub cell_map: Vec<u32>,
    /// For each overlay voxel: the rank owning `cell_map[v]`; all zeros
    /// until [`StructuredOverlay::attach_ranks`] is called.
    pub rank_map: Vec<u32>,
}

impl StructuredOverlay {
    /// Build an overlay with roughly `res_per_axis` voxels per axis
    /// over a tetrahedral mesh. Every voxel centre is located exactly
    /// (containment test against candidate tets rasterised into the
    /// voxel grid, nearest-centroid fallback for voxels outside the
    /// mesh), so `locate` always returns a *valid* starting cell.
    pub fn build(mesh: &TetMesh, res_per_axis: [usize; 3]) -> Self {
        let bbox = mesh.bounding_box().inflated(1e-9);
        let dims = [
            res_per_axis[0].max(1),
            res_per_axis[1].max(1),
            res_per_axis[2].max(1),
        ];
        let ext = bbox.extent();
        let cell_size = Vec3::new(
            ext.x / dims[0] as f64,
            ext.y / dims[1] as f64,
            ext.z / dims[2] as f64,
        );
        let nvox = dims[0] * dims[1] * dims[2];

        // Rasterise each tet's bounding box into the voxel grid,
        // recording candidate cells per voxel; then resolve each voxel
        // centre by containment, falling back to nearest centroid.
        let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); nvox];
        for c in 0..mesh.n_cells() {
            let verts = mesh.cell_vertices(c);
            let tb = BoundingBox::of_points(verts.iter());
            let (lo, hi) = (
                Self::clamp_index(&bbox, cell_size, dims, tb.lo),
                Self::clamp_index(&bbox, cell_size, dims, tb.hi),
            );
            for k in lo[2]..=hi[2] {
                for j in lo[1]..=hi[1] {
                    for i in lo[0]..=hi[0] {
                        candidates[i + dims[0] * (j + dims[1] * k)].push(c as u32);
                    }
                }
            }
        }

        let mut cell_map = vec![u32::MAX; nvox];
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    let v = i + dims[0] * (j + dims[1] * k);
                    let centre = Vec3::new(
                        bbox.lo.x + (i as f64 + 0.5) * cell_size.x,
                        bbox.lo.y + (j as f64 + 0.5) * cell_size.y,
                        bbox.lo.z + (k as f64 + 0.5) * cell_size.z,
                    );
                    // Exact containment among candidates.
                    let mut chosen = None;
                    for &c in &candidates[v] {
                        let l = barycentric(centre, &mesh.cell_vertices(c as usize));
                        if bary_inside(&l, 1e-12) {
                            chosen = Some(c);
                            break;
                        }
                    }
                    // Fallback: nearest candidate centroid, else global
                    // nearest (voxel fully outside the mesh).
                    let chosen = chosen.unwrap_or_else(|| {
                        let pool: Box<dyn Iterator<Item = u32>> = if candidates[v].is_empty() {
                            Box::new(0..mesh.n_cells() as u32)
                        } else {
                            Box::new(candidates[v].iter().copied())
                        };
                        pool.min_by(|&a, &b| {
                            let da = (mesh.cell_centroid(a as usize) - centre).norm2();
                            let db = (mesh.cell_centroid(b as usize) - centre).norm2();
                            da.partial_cmp(&db).unwrap()
                        })
                        .expect("mesh has no cells")
                    });
                    cell_map[v] = chosen;
                }
            }
        }

        StructuredOverlay {
            bbox,
            dims,
            cell_size,
            cell_map,
            rank_map: vec![0; nvox],
        }
    }

    fn clamp_index(bbox: &BoundingBox, cell_size: Vec3, dims: [usize; 3], p: Vec3) -> [usize; 3] {
        let rel = p - bbox.lo;
        let f = |x: f64, s: f64, n: usize| -> usize {
            if s <= 0.0 {
                return 0;
            }
            ((x / s).floor().max(0.0) as usize).min(n - 1)
        };
        [
            f(rel.x, cell_size.x, dims[0]),
            f(rel.y, cell_size.y, dims[1]),
            f(rel.z, cell_size.z, dims[2]),
        ]
    }

    /// Attach rank ownership: `cell_rank[c]` is the owning rank of
    /// unstructured cell `c`. Populates the rank-map.
    pub fn attach_ranks(&mut self, cell_rank: &[u32]) {
        for (v, &c) in self.cell_map.iter().enumerate() {
            self.rank_map[v] = cell_rank[c as usize];
        }
    }

    /// Voxel index of a point (clamped into the grid).
    #[inline]
    pub fn voxel_of(&self, p: Vec3) -> usize {
        let [i, j, k] = Self::clamp_index(&self.bbox, self.cell_size, self.dims, p);
        i + self.dims[0] * (j + self.dims[1] * k)
    }

    /// Direct-hop seed: the unstructured cell to start the multi-hop
    /// search from for a particle at `p`.
    #[inline]
    pub fn locate(&self, p: Vec3) -> usize {
        self.cell_map[self.voxel_of(p)] as usize
    }

    /// Direct-hop rank guess for a particle at `p` (distributed runs).
    #[inline]
    pub fn locate_rank(&self, p: Vec3) -> u32 {
        self.rank_map[self.voxel_of(p)]
    }

    /// Memory footprint of the overlay book-keeping in bytes — the
    /// "higher memory footprint required for bookkeeping" the paper
    /// attributes to direct-hop.
    pub fn memory_bytes(&self) -> usize {
        self.cell_map.len() * std::mem::size_of::<u32>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_seeds_are_valid_cells() {
        let mesh = TetMesh::duct(3, 3, 3, 1.0, 1.0, 1.0);
        let ov = StructuredOverlay::build(&mesh, [6, 6, 6]);
        for &c in &ov.cell_map {
            assert!((c as usize) < mesh.n_cells());
        }
    }

    #[test]
    fn overlay_locates_interior_points_exactly_or_nearby() {
        let mesh = TetMesh::duct(4, 4, 4, 1.0, 1.0, 1.0);
        let ov = StructuredOverlay::build(&mesh, [12, 12, 12]);
        // Using resolution >= mesh resolution, a voxel-centre query for
        // a point *at* a voxel centre must return the containing cell.
        for k in 0..12 {
            for j in 0..12 {
                for i in 0..12 {
                    let p = Vec3::new(
                        (i as f64 + 0.5) / 12.0,
                        (j as f64 + 0.5) / 12.0,
                        (k as f64 + 0.5) / 12.0,
                    );
                    let seed = ov.locate(p);
                    // The seed must *contain* the point (points on
                    // shared faces may legitimately resolve to either
                    // incident cell).
                    let l = crate::geometry::barycentric(p, &mesh.cell_vertices(seed));
                    assert!(
                        crate::geometry::bary_inside(&l, 1e-9),
                        "point {p:?} not inside seed cell {seed}: {l:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlay_out_of_box_clamps() {
        let mesh = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        let ov = StructuredOverlay::build(&mesh, [4, 4, 4]);
        // Far outside points clamp to boundary voxels and still return
        // a valid cell.
        let c = ov.locate(Vec3::new(55.0, -3.0, 0.5));
        assert!(c < mesh.n_cells());
    }

    #[test]
    fn rank_map_attach() {
        let mesh = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        let mut ov = StructuredOverlay::build(&mesh, [4, 4, 4]);
        // Rank by x-halves.
        let ranks: Vec<u32> = (0..mesh.n_cells())
            .map(|c| if mesh.cell_centroid(c).x < 0.5 { 0 } else { 1 })
            .collect();
        ov.attach_ranks(&ranks);
        assert_eq!(ov.locate_rank(Vec3::new(0.1, 0.5, 0.5)), 0);
        assert_eq!(ov.locate_rank(Vec3::new(0.9, 0.5, 0.5)), 1);
    }

    #[test]
    fn memory_accounting() {
        let mesh = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        let ov = StructuredOverlay::build(&mesh, [10, 10, 10]);
        assert_eq!(ov.memory_bytes(), 1000 * 4 * 2);
    }
}
