//! Generic connectivity builders shared by the mesh generators and the
//! distributed-memory halo machinery.

use std::collections::HashMap;

/// Order-independent key identifying a triangular face by its three
/// node ids (stored sorted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaceKey([usize; 3]);

impl FaceKey {
    pub fn new(mut nodes: [usize; 3]) -> Self {
        nodes.sort_unstable();
        FaceKey(nodes)
    }

    pub fn nodes(&self) -> [usize; 3] {
        self.0
    }
}

/// The four faces of a tetrahedron, `faces[i]` being the face opposite
/// local vertex `i`. Winding is chosen so the normal points *outward*
/// for a positively oriented tet.
#[inline]
pub fn tet_faces(c2n: &[usize; 4]) -> [[usize; 3]; 4] {
    [
        [c2n[1], c2n[3], c2n[2]],
        [c2n[0], c2n[2], c2n[3]],
        [c2n[0], c2n[3], c2n[1]],
        [c2n[0], c2n[1], c2n[2]],
    ]
}

/// Build the cells→cells adjacency (arity 4, `-1` on boundaries) by
/// matching shared faces, plus the list of unmatched (boundary) faces
/// as `(cell, local_face)` pairs.
///
/// Panics if a face is shared by more than two cells (non-manifold
/// input), which would make the particle move ill-defined.
pub fn build_c2c_from_faces(c2n: &[[usize; 4]]) -> (Vec<[i32; 4]>, Vec<(usize, usize)>) {
    /// Face state while pairing: still waiting for a partner, or already
    /// matched (a third occurrence is a non-manifold error).
    enum FaceState {
        Open(usize, usize),
        Closed,
    }
    let mut face_map: HashMap<FaceKey, FaceState> = HashMap::with_capacity(c2n.len() * 2);
    let mut c2c = vec![[-1i32; 4]; c2n.len()];
    for (c, nd) in c2n.iter().enumerate() {
        for (f, fnodes) in tet_faces(nd).into_iter().enumerate() {
            let key = FaceKey::new(fnodes);
            match face_map.get_mut(&key) {
                None => {
                    face_map.insert(key, FaceState::Open(c, f));
                }
                Some(state @ FaceState::Open(..)) => {
                    let FaceState::Open(c2, f2) = *state else {
                        unreachable!()
                    };
                    c2c[c][f] = c2 as i32;
                    c2c[c2][f2] = c as i32;
                    *state = FaceState::Closed;
                }
                Some(FaceState::Closed) => {
                    panic!("non-manifold mesh: face {key:?} shared by >2 cells");
                }
            }
        }
    }
    let mut boundary: Vec<(usize, usize)> = face_map
        .into_values()
        .filter_map(|s| match s {
            FaceState::Open(c, f) => Some((c, f)),
            FaceState::Closed => None,
        })
        .collect();
    boundary.sort_unstable();
    (c2c, boundary)
}

/// Build the reverse node→cells map from a cells→nodes map in CSR form:
/// `(offsets, cells)` where the cells adjacent to node `n` are
/// `cells[offsets[n]..offsets[n+1]]`.
pub fn build_n2c(c2n: &[[usize; 4]], n_nodes: usize) -> (Vec<usize>, Vec<usize>) {
    let mut counts = vec![0usize; n_nodes + 1];
    for nd in c2n {
        for &n in nd {
            counts[n + 1] += 1;
        }
    }
    for i in 0..n_nodes {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut fill = counts;
    let mut cells = vec![0usize; offsets[n_nodes]];
    for (c, nd) in c2n.iter().enumerate() {
        for &n in nd {
            cells[fill[n]] = c;
            fill[n] += 1;
        }
    }
    (offsets, cells)
}

/// Breadth-first distance (in c2c hops) from a seed cell. Used by tests
/// and by the graph-growing partitioner in `oppic-mpi`.
pub fn bfs_distance(c2c: &[[i32; 4]], seed: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; c2c.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[seed] = 0;
    queue.push_back(seed);
    while let Some(c) = queue.pop_front() {
        for &nb in &c2c[c] {
            if nb >= 0 {
                let nb = nb as usize;
                if dist[nb] == u32::MAX {
                    dist[nb] = dist[c] + 1;
                    queue.push_back(nb);
                }
            }
        }
    }
    dist
}

/// True when the cell graph described by `c2c` is connected.
pub fn is_connected(c2c: &[[i32; 4]]) -> bool {
    if c2c.is_empty() {
        return true;
    }
    bfs_distance(c2c, 0).iter().all(|&d| d != u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tets sharing the face {1,2,3}.
    fn two_tets() -> Vec<[usize; 4]> {
        vec![[0, 1, 2, 3], [4, 1, 3, 2]]
    }

    #[test]
    fn face_key_is_order_independent() {
        assert_eq!(FaceKey::new([3, 1, 2]), FaceKey::new([2, 3, 1]));
        assert_ne!(FaceKey::new([0, 1, 2]), FaceKey::new([0, 1, 3]));
        assert_eq!(FaceKey::new([3, 1, 2]).nodes(), [1, 2, 3]);
    }

    #[test]
    fn c2c_two_tets() {
        let (c2c, boundary) = build_c2c_from_faces(&two_tets());
        // They share exactly one face: opposite vertex 0 in both.
        assert_eq!(c2c[0][0], 1);
        assert_eq!(c2c[1][0], 0);
        // Remaining 6 faces are boundary.
        assert_eq!(boundary.len(), 6);
        let interior: usize = c2c.iter().flatten().filter(|&&x| x >= 0).count();
        assert_eq!(interior, 2);
    }

    #[test]
    #[should_panic(expected = "non-manifold")]
    fn c2c_rejects_nonmanifold() {
        // Three tets all claiming face {1,2,3}.
        let cells = vec![[0, 1, 2, 3], [4, 1, 3, 2], [5, 1, 2, 3]];
        let _ = build_c2c_from_faces(&cells);
    }

    #[test]
    fn n2c_round_trip() {
        let c2n = two_tets();
        let (off, cells) = build_n2c(&c2n, 5);
        // node 0 belongs only to cell 0; node 4 only to cell 1.
        assert_eq!(&cells[off[0]..off[1]], &[0]);
        assert_eq!(&cells[off[4]..off[5]], &[1]);
        // Shared nodes 1,2,3 belong to both.
        for n in 1..4 {
            let mut v = cells[off[n]..off[n + 1]].to_vec();
            v.sort_unstable();
            assert_eq!(v, vec![0, 1]);
        }
        // Total adjacency entries = 4 per cell.
        assert_eq!(cells.len(), 8);
    }

    #[test]
    fn bfs_and_connected() {
        let (c2c, _) = build_c2c_from_faces(&two_tets());
        let d = bfs_distance(&c2c, 0);
        assert_eq!(d, vec![0, 1]);
        assert!(is_connected(&c2c));
        // Two disjoint tets are not connected.
        let cells = vec![[0, 1, 2, 3], [4, 5, 6, 7]];
        let (c2c2, _) = build_c2c_from_faces(&cells);
        assert!(!is_connected(&c2c2));
    }
}
