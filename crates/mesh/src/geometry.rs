//! Small geometric primitives used throughout the mesh and the PIC apps.
//!
//! Everything here is deliberately plain `f64` / fixed-size-array code:
//! these routines sit on the hot path of the particle move kernel, so we
//! keep them inline-friendly and allocation-free.

/// A 3-component vector. Thin wrapper over `[f64; 3]` so the particle
/// columns can be reinterpreted as flat `f64` slices with `dim = 3`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn from_slice(s: &[f64]) -> Self {
        Vec3 {
            x: s[0],
            y: s[1],
            z: s[2],
        }
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3 {
            x: self.x * s,
            y: self.y * s,
            z: self.z * s,
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(o.x),
            y: self.y.min(o.y),
            z: self.z.min(o.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(o.x),
            y: self.y.max(o.y),
            z: self.z.max(o.z),
        }
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        self.scale(s)
    }
}

impl std::ops::Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::ops::Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl std::ops::IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl BoundingBox {
    /// The empty box: `lo = +inf`, `hi = -inf`; absorbs any point on
    /// [`BoundingBox::expand`].
    pub fn empty() -> Self {
        BoundingBox {
            lo: Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            hi: Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    pub fn of_points<'a, I: IntoIterator<Item = &'a Vec3>>(pts: I) -> Self {
        let mut b = Self::empty();
        for p in pts {
            b.expand(*p);
        }
        b
    }

    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }

    /// Grow symmetrically by `eps` in every direction.
    pub fn inflated(&self, eps: f64) -> Self {
        let d = Vec3::new(eps, eps, eps);
        BoundingBox {
            lo: self.lo - d,
            hi: self.hi + d,
        }
    }

    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi).scale(0.5)
    }
}

/// Signed volume of the tetrahedron `(a, b, c, d)`.
///
/// Positive when `(b-a, c-a, d-a)` is a right-handed frame. The duct
/// generator orients all tets positively, which the barycentric routine
/// below relies on.
#[inline]
pub fn tet_signed_volume(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Barycentric coordinates of point `p` in tetrahedron `(v0..v3)`.
///
/// `lambda[i]` is the (signed) sub-volume ratio associated with vertex
/// `i`: replace vertex `i` by `p` and divide by the total volume. The
/// four coordinates always sum to exactly `1.0` up to round-off; the
/// point is inside the tet iff all four are `>= 0`.
#[inline]
pub fn barycentric(p: Vec3, v: &[Vec3; 4]) -> [f64; 4] {
    let vol = tet_signed_volume(v[0], v[1], v[2], v[3]);
    let inv = 1.0 / vol;
    [
        tet_signed_volume(p, v[1], v[2], v[3]) * inv,
        tet_signed_volume(v[0], p, v[2], v[3]) * inv,
        tet_signed_volume(v[0], v[1], p, v[3]) * inv,
        tet_signed_volume(v[0], v[1], v[2], p) * inv,
    ]
}

/// Returns `true` when every barycentric coordinate is non-negative
/// (within `-tol`), i.e. the point lies in the closed tetrahedron.
#[inline]
pub fn bary_inside(lambda: &[f64; 4], tol: f64) -> bool {
    lambda.iter().all(|&l| l >= -tol)
}

/// Index of the most negative barycentric coordinate — the face to exit
/// through when hopping towards a point outside the tet (the paper's
/// "next most probable cell" rule, Section 3.1.3).
#[inline]
pub fn bary_min_index(lambda: &[f64; 4]) -> usize {
    let mut k = 0;
    for i in 1..4 {
        if lambda[i] < lambda[k] {
            k = i;
        }
    }
    k
}

/// Gradients of the four linear (P1) basis functions on a tetrahedron.
///
/// `grad[i]` is constant over the element and satisfies
/// `grad[i] . (v[j] - v[i]) = -1 for j != i` scaled appropriately;
/// these are the "shape derivatives" Mini-FEM-PIC stores per cell.
pub fn p1_gradients(v: &[Vec3; 4]) -> [Vec3; 4] {
    let vol6 = 6.0 * tet_signed_volume(v[0], v[1], v[2], v[3]);
    // Gradient of lambda_i = (opposite face normal) / (6 * volume),
    // oriented so that lambda_i = 1 at v[i].
    let mut g = [Vec3::ZERO; 4];
    // Opposite faces, ordered so the normal points away from vertex i.
    const F: [[usize; 3]; 4] = [[1, 3, 2], [0, 2, 3], [0, 3, 1], [0, 1, 2]];
    for i in 0..4 {
        let [a, b, c] = F[i];
        let n = (v[b] - v[a]).cross(v[c] - v[a]);
        g[i] = n.scale(1.0 / vol6);
    }
    g
}

/// Area-weighted outward normal of triangle `(a, b, c)` (norm = area).
#[inline]
pub fn triangle_area_normal(a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    (b - a).cross(c - a).scale(0.5)
}

/// Centroid of a triangle.
#[inline]
pub fn triangle_centroid(a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    (a + b + c).scale(1.0 / 3.0)
}

/// Centroid of a tetrahedron.
#[inline]
pub fn tet_centroid(v: &[Vec3; 4]) -> Vec3 {
    (v[0] + v[1] + v[2] + v[3]).scale(0.25)
}

/// Sample a uniformly distributed point inside a tetrahedron from four
/// unit-interval random numbers, using the folding method of Rocchini &
/// Cignoni. Exact (no rejection), which matters for deterministic tests.
pub fn sample_tet(v: &[Vec3; 4], r: [f64; 4]) -> Vec3 {
    let (mut s, mut t, mut u) = (r[0], r[1], r[2]);
    if s + t > 1.0 {
        s = 1.0 - s;
        t = 1.0 - t;
    }
    if t + u > 1.0 {
        let tmp = u;
        u = 1.0 - s - t;
        t = 1.0 - tmp;
    } else if s + t + u > 1.0 {
        let tmp = u;
        u = s + t + u - 1.0;
        s = 1.0 - t - tmp;
    }
    let a = 1.0 - s - t - u;
    v[0].scale(a) + v[1].scale(s) + v[2].scale(t) + v[3].scale(u)
}

/// Sample a uniform point on a triangle from two unit-interval randoms.
pub fn sample_triangle(a: Vec3, b: Vec3, c: Vec3, r: [f64; 2]) -> Vec3 {
    let (mut u, mut v) = (r[0], r[1]);
    if u + v > 1.0 {
        u = 1.0 - u;
        v = 1.0 - v;
    }
    a + (b - a).scale(u) + (c - a).scale(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> [Vec3; 4] {
        [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ]
    }

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert!((a.dot(b) - (-1.0 + 1.0 + 6.0)).abs() < 1e-15);
        let c = a.cross(b);
        // Cross product is orthogonal to both inputs.
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_indexing() {
        let mut a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[2], 3.0);
        a[1] = 9.0;
        assert_eq!(a.y, 9.0);
    }

    #[test]
    #[should_panic]
    fn vec3_index_out_of_range_panics() {
        let a = Vec3::ZERO;
        let _ = a[3];
    }

    #[test]
    fn unit_tet_volume() {
        let v = unit_tet();
        let vol = tet_signed_volume(v[0], v[1], v[2], v[3]);
        assert!((vol - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn barycentric_at_vertices() {
        let v = unit_tet();
        for i in 0..4 {
            let l = barycentric(v[i], &v);
            for (j, &lj) in l.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((lj - expect).abs() < 1e-12, "vertex {i} coord {j}");
            }
        }
    }

    #[test]
    fn barycentric_centroid() {
        let v = unit_tet();
        let l = barycentric(tet_centroid(&v), &v);
        for lj in l {
            assert!((lj - 0.25).abs() < 1e-12);
        }
        assert!(bary_inside(&l, 0.0));
    }

    #[test]
    fn barycentric_outside_detects_exit_face() {
        let v = unit_tet();
        // Point beyond the face opposite vertex 0 (the x+y+z=1 plane).
        let p = Vec3::new(1.0, 1.0, 1.0);
        let l = barycentric(p, &v);
        assert!(!bary_inside(&l, 1e-12));
        assert_eq!(bary_min_index(&l), 0);
    }

    #[test]
    fn p1_gradients_partition_of_unity() {
        let v = [
            Vec3::new(0.1, 0.2, 0.0),
            Vec3::new(1.3, 0.1, 0.2),
            Vec3::new(0.2, 1.1, -0.1),
            Vec3::new(0.3, 0.4, 1.2),
        ];
        let g = p1_gradients(&v);
        // Gradients of a partition of unity sum to zero.
        let s = g[0] + g[1] + g[2] + g[3];
        assert!(s.norm() < 1e-12);
        // grad(lambda_i) . (v_i - v_j) should be 1 for any j != i.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    let d = g[i].dot(v[i] - v[j]);
                    assert!((d - 1.0).abs() < 1e-9, "i={i} j={j} d={d}");
                }
            }
        }
    }

    #[test]
    fn sample_tet_inside() {
        let v = unit_tet();
        let mut state = 123456789u64;
        let mut nextf = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            let p = sample_tet(&v, [nextf(), nextf(), nextf(), nextf()]);
            let l = barycentric(p, &v);
            assert!(bary_inside(&l, 1e-12), "sample escaped: {l:?}");
        }
    }

    #[test]
    fn sample_triangle_inside() {
        let (a, b, c) = (
            Vec3::ZERO,
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        );
        for i in 0..50 {
            for j in 0..50 {
                let p = sample_triangle(a, b, c, [i as f64 / 49.0, j as f64 / 49.0]);
                assert!(p.x >= -1e-12 && p.y >= -1e-12);
                assert!(p.x / 2.0 + p.y / 3.0 <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn bbox_basics() {
        let mut b = BoundingBox::empty();
        assert!(!b.contains(Vec3::ZERO));
        b.expand(Vec3::new(1.0, 2.0, 3.0));
        b.expand(Vec3::new(-1.0, 0.0, 5.0));
        assert!(b.contains(Vec3::new(0.0, 1.0, 4.0)));
        assert!(!b.contains(Vec3::new(0.0, 3.0, 4.0)));
        assert_eq!(b.extent(), Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(b.center(), Vec3::new(0.0, 1.0, 4.0));
        let bi = b.inflated(0.5);
        assert!(bi.contains(Vec3::new(1.4, 2.4, 3.0)));
    }

    #[test]
    fn triangle_helpers() {
        let (a, b, c) = (
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let n = triangle_area_normal(a, b, c);
        assert!((n.norm() - 0.5).abs() < 1e-15);
        assert!((n.z - 0.5).abs() < 1e-15);
        let cen = triangle_centroid(a, b, c);
        assert!((cen.x - 1.0 / 3.0).abs() < 1e-15);
    }
}
