//! Derived mesh entities: unique faces and edges with their maps.
//!
//! Mini-FEM-PIC's duct mesh "is based on tetrahedral mesh cells, nodes,
//! and faces"; electromagnetic FEM-PIC stores field DOFs on edges
//! (Nédélec elements, Eq. 5 of the paper) and faces (Raviart–Thomas,
//! Eq. 6). This module enumerates those sets once from the cells→nodes
//! map and provides the `opp_decl_map`-shaped connectivity an
//! application declares over them:
//!
//! * [`FaceSet`] — unique triangular faces: `f2n` (3), `c2f` (4),
//!   `f2c` (2, −1 on the boundary), boundary flags;
//! * [`EdgeSet`] — unique edges: `e2n` (2), `c2e` (6).

use crate::connectivity::tet_faces;
use std::collections::HashMap;

/// The unique faces of a tetrahedral mesh.
#[derive(Debug, Clone)]
pub struct FaceSet {
    /// Face → nodes (sorted within each face), arity 3.
    pub f2n: Vec<[usize; 3]>,
    /// Cell → faces, arity 4; `c2f[c][k]` is the face opposite local
    /// vertex `k` (matching [`crate::connectivity::tet_faces`] order).
    pub c2f: Vec<[usize; 4]>,
    /// Face → cells, arity 2; second entry −1 on the boundary.
    pub f2c: Vec<[i32; 2]>,
}

impl FaceSet {
    /// Enumerate the unique faces of `c2n`.
    pub fn build(c2n: &[[usize; 4]]) -> Self {
        let mut index: HashMap<[usize; 3], usize> = HashMap::with_capacity(c2n.len() * 2);
        let mut f2n: Vec<[usize; 3]> = Vec::new();
        let mut f2c: Vec<[i32; 2]> = Vec::new();
        let mut c2f = vec![[usize::MAX; 4]; c2n.len()];
        for (c, nd) in c2n.iter().enumerate() {
            for (k, fnodes) in tet_faces(nd).into_iter().enumerate() {
                let mut key = fnodes;
                key.sort_unstable();
                let f = *index.entry(key).or_insert_with(|| {
                    f2n.push(key);
                    f2c.push([-1, -1]);
                    f2n.len() - 1
                });
                c2f[c][k] = f;
                if f2c[f][0] == -1 {
                    f2c[f][0] = c as i32;
                } else {
                    debug_assert_eq!(f2c[f][1], -1, "non-manifold face");
                    f2c[f][1] = c as i32;
                }
            }
        }
        FaceSet { f2n, c2f, f2c }
    }

    pub fn n_faces(&self) -> usize {
        self.f2n.len()
    }

    /// Is `f` a boundary face (one incident cell)?
    pub fn is_boundary(&self, f: usize) -> bool {
        self.f2c[f][1] == -1
    }

    pub fn n_boundary(&self) -> usize {
        (0..self.n_faces()).filter(|&f| self.is_boundary(f)).count()
    }

    /// The cell on the other side of face `f` from cell `c` (−1 at the
    /// boundary) — an alternative route to the c2c adjacency.
    pub fn neighbor_via(&self, f: usize, c: usize) -> i32 {
        let [a, b] = self.f2c[f];
        if a == c as i32 {
            b
        } else {
            debug_assert_eq!(b, c as i32);
            a
        }
    }
}

/// The unique edges of a tetrahedral mesh.
#[derive(Debug, Clone)]
pub struct EdgeSet {
    /// Edge → nodes (sorted), arity 2.
    pub e2n: Vec<[usize; 2]>,
    /// Cell → edges, arity 6, in the local pair order
    /// `(0,1) (0,2) (0,3) (1,2) (1,3) (2,3)`.
    pub c2e: Vec<[usize; 6]>,
}

/// Local vertex pairs of a tet's six edges.
pub const TET_EDGES: [[usize; 2]; 6] = [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]];

impl EdgeSet {
    pub fn build(c2n: &[[usize; 4]]) -> Self {
        let mut index: HashMap<[usize; 2], usize> = HashMap::with_capacity(c2n.len() * 4);
        let mut e2n: Vec<[usize; 2]> = Vec::new();
        let mut c2e = vec![[usize::MAX; 6]; c2n.len()];
        for (c, nd) in c2n.iter().enumerate() {
            for (k, [a, b]) in TET_EDGES.into_iter().enumerate() {
                let mut key = [nd[a], nd[b]];
                key.sort_unstable();
                let e = *index.entry(key).or_insert_with(|| {
                    e2n.push(key);
                    e2n.len() - 1
                });
                c2e[c][k] = e;
            }
        }
        EdgeSet { e2n, c2e }
    }

    pub fn n_edges(&self) -> usize {
        self.e2n.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tet::TetMesh;

    #[test]
    fn single_tet_entities() {
        let c2n = vec![[0usize, 1, 2, 3]];
        let faces = FaceSet::build(&c2n);
        assert_eq!(faces.n_faces(), 4);
        assert_eq!(faces.n_boundary(), 4);
        let edges = EdgeSet::build(&c2n);
        assert_eq!(edges.n_edges(), 6);
        // Every c2f/c2e entry filled.
        assert!(faces.c2f[0].iter().all(|&f| f != usize::MAX));
        assert!(edges.c2e[0].iter().all(|&e| e != usize::MAX));
    }

    #[test]
    fn two_tets_share_one_face_and_three_edges() {
        let c2n = vec![[0usize, 1, 2, 3], [4, 1, 3, 2]];
        let faces = FaceSet::build(&c2n);
        assert_eq!(faces.n_faces(), 7); // 4 + 4 − 1 shared
        assert_eq!(faces.n_boundary(), 6);
        let shared = (0..faces.n_faces())
            .find(|&f| !faces.is_boundary(f))
            .unwrap();
        assert_eq!(faces.f2n[shared], [1, 2, 3]);
        assert_eq!(faces.neighbor_via(shared, 0), 1);
        assert_eq!(faces.neighbor_via(shared, 1), 0);

        let edges = EdgeSet::build(&c2n);
        assert_eq!(edges.n_edges(), 9); // 6 + 6 − 3 shared
    }

    #[test]
    fn duct_euler_consistency() {
        // On a duct mesh, faces counted per cell (4 each) double-count
        // interior faces: F = (4C + B) / 2 where B = boundary faces.
        let m = TetMesh::duct(3, 2, 2, 1.0, 1.0, 1.0);
        let faces = FaceSet::build(&m.c2n);
        let b = faces.n_boundary();
        assert_eq!(faces.n_faces(), (4 * m.n_cells() + b) / 2);
        assert_eq!(b, m.boundary.len(), "matches the generator's boundary list");
        // Euler characteristic of a solid box triangulation:
        // V - E + F - C = 1.
        let edges = EdgeSet::build(&m.c2n);
        let euler = m.n_nodes() as i64 - edges.n_edges() as i64 + faces.n_faces() as i64
            - m.n_cells() as i64;
        assert_eq!(euler, 1);
    }

    #[test]
    fn face_route_matches_c2c() {
        // neighbor_via over c2f reproduces exactly the generator's c2c.
        let m = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        let faces = FaceSet::build(&m.c2n);
        for c in 0..m.n_cells() {
            for k in 0..4 {
                let via_faces = faces.neighbor_via(faces.c2f[c][k], c);
                assert_eq!(via_faces, m.c2c[c][k], "cell {c} face {k}");
            }
        }
    }

    #[test]
    fn edge_nodes_belong_to_their_cells() {
        let m = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        let edges = EdgeSet::build(&m.c2n);
        for c in 0..m.n_cells() {
            for (k, &e) in edges.c2e[c].iter().enumerate() {
                let [a, b] = edges.e2n[e];
                let nd = m.c2n[c];
                assert!(nd.contains(&a) && nd.contains(&b), "cell {c} edge {k}");
            }
        }
    }
}
