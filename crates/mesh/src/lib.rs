//! # oppic-mesh — unstructured mesh substrate for OP-PIC
//!
//! This crate provides everything the OP-PIC DSL reproduction needs to
//! stand up an unstructured mesh without external mesh files:
//!
//! * [`geometry`] — small 3-vector algebra, tetrahedron volumes,
//!   barycentric coordinates via signed determinants, bounding boxes.
//! * [`tet`] — a tetrahedral *duct* mesh generator (the Mini-FEM-PIC
//!   domain): a box of hexahedra, each split into six conforming
//!   tetrahedra (Kuhn subdivision), with cell→node and cell→cell
//!   connectivity and classified boundary faces (inlet / outlet / wall).
//! * [`hex`] — a cuboid-cell mesh expressed through *unstructured*
//!   mappings (the CabanaPIC domain): periodic neighbour maps in all
//!   six directions, exactly mirroring what the paper does when it
//!   re-expresses the structured CabanaPIC with OP-PIC maps.
//! * [`connectivity`] — generic builders: shared-face adjacency,
//!   node→cell reverse maps, mesh validation.
//! * [`overlay`] — the structured overlay used by the *direct-hop*
//!   particle move (Section 3.2.2 of the paper): a regular grid mapping
//!   points to the unstructured cell containing them (cell-map) and to
//!   the owning rank (rank-map).
//! * [`io`] — a small ASCII mesh format reader/writer standing in for
//!   the paper's HDF5/`.dat` mesh files.

pub mod connectivity;
pub mod entities;
pub mod geometry;
pub mod hex;
pub mod io;
pub mod overlay;
pub mod tet;

pub use entities::{EdgeSet, FaceSet};
pub use geometry::{BoundingBox, Vec3};
pub use hex::HexMesh;
pub use overlay::StructuredOverlay;
pub use tet::{BoundaryKind, TetMesh};
