//! ASCII mesh I/O — a small plain-text format standing in for the
//! paper artifact's HDF5 / `.dat` mesh files.
//!
//! Format (whitespace separated):
//! ```text
//! oppic-tet-mesh 1
//! nodes <n_nodes>
//! <x> <y> <z>            # n_nodes lines
//! cells <n_cells>
//! <n0> <n1> <n2> <n3>    # n_cells lines
//! dims <nx> <ny> <nz>
//! lengths <lx> <ly> <lz>
//! ```

use crate::geometry::Vec3;
use crate::tet::TetMesh;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from the ASCII mesh reader.
#[derive(Debug)]
pub enum MeshIoError {
    Io(io::Error),
    Parse(String),
}

impl std::fmt::Display for MeshIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshIoError::Io(e) => write!(f, "I/O error: {e}"),
            MeshIoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for MeshIoError {}

impl From<io::Error> for MeshIoError {
    fn from(e: io::Error) -> Self {
        MeshIoError::Io(e)
    }
}

fn perr(msg: impl Into<String>) -> MeshIoError {
    MeshIoError::Parse(msg.into())
}

/// Serialize a [`TetMesh`] to the ASCII format.
pub fn write_tet_mesh<W: Write>(mesh: &TetMesh, mut w: W) -> Result<(), MeshIoError> {
    let mut s = String::new();
    writeln!(s, "oppic-tet-mesh 1").unwrap();
    writeln!(s, "nodes {}", mesh.n_nodes()).unwrap();
    for p in &mesh.node_pos {
        writeln!(s, "{:.17} {:.17} {:.17}", p.x, p.y, p.z).unwrap();
    }
    writeln!(s, "cells {}", mesh.n_cells()).unwrap();
    for c in &mesh.c2n {
        writeln!(s, "{} {} {} {}", c[0], c[1], c[2], c[3]).unwrap();
    }
    writeln!(s, "dims {} {} {}", mesh.dims[0], mesh.dims[1], mesh.dims[2]).unwrap();
    writeln!(
        s,
        "lengths {:.17} {:.17} {:.17}",
        mesh.lengths[0], mesh.lengths[1], mesh.lengths[2]
    )
    .unwrap();
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Read a [`TetMesh`] from the ASCII format. Connectivity and geometry
/// (c2c, boundary classification, volumes, shape derivatives) are
/// rebuilt from the node/cell data, exactly as the paper's backend does
/// after loading a mesh file.
pub fn read_tet_mesh<R: Read>(r: R) -> Result<TetMesh, MeshIoError> {
    let reader = BufReader::new(r);
    let mut tokens: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("");
        tokens.extend(body.split_whitespace().map(str::to_owned));
    }
    let mut it = tokens.into_iter();
    let mut next = |what: &str| -> Result<String, MeshIoError> {
        it.next()
            .ok_or_else(|| perr(format!("unexpected EOF, wanted {what}")))
    };

    if next("magic")? != "oppic-tet-mesh" {
        return Err(perr("bad magic; expected 'oppic-tet-mesh'"));
    }
    let version: u32 = next("version")?
        .parse()
        .map_err(|e| perr(format!("version: {e}")))?;
    if version != 1 {
        return Err(perr(format!("unsupported version {version}")));
    }

    if next("'nodes'")? != "nodes" {
        return Err(perr("expected 'nodes'"));
    }
    let n_nodes: usize = next("node count")?
        .parse()
        .map_err(|e| perr(format!("node count: {e}")))?;
    let mut node_pos = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let mut coord = [0.0f64; 3];
        for c in &mut coord {
            *c = next("coordinate")?
                .parse()
                .map_err(|e| perr(format!("node {i} coordinate: {e}")))?;
        }
        node_pos.push(Vec3::new(coord[0], coord[1], coord[2]));
    }

    if next("'cells'")? != "cells" {
        return Err(perr("expected 'cells'"));
    }
    let n_cells: usize = next("cell count")?
        .parse()
        .map_err(|e| perr(format!("cell count: {e}")))?;
    let mut c2n = Vec::with_capacity(n_cells);
    for i in 0..n_cells {
        let mut nd = [0usize; 4];
        for n in &mut nd {
            *n = next("node id")?
                .parse()
                .map_err(|e| perr(format!("cell {i} node: {e}")))?;
            if *n >= n_nodes {
                return Err(perr(format!(
                    "cell {i} references node {n} >= {n_nodes}",
                    n = *n
                )));
            }
        }
        c2n.push(nd);
    }

    if next("'dims'")? != "dims" {
        return Err(perr("expected 'dims'"));
    }
    let mut dims = [0usize; 3];
    for d in &mut dims {
        *d = next("dim")?
            .parse()
            .map_err(|e| perr(format!("dims: {e}")))?;
    }
    if next("'lengths'")? != "lengths" {
        return Err(perr("expected 'lengths'"));
    }
    let mut lengths = [0.0f64; 3];
    for l in &mut lengths {
        *l = next("length")?
            .parse()
            .map_err(|e| perr(format!("lengths: {e}")))?;
    }

    Ok(TetMesh::from_cells(node_pos, c2n, dims, lengths))
}

/// Convenience: write to a file path.
pub fn save_tet_mesh<P: AsRef<Path>>(mesh: &TetMesh, path: P) -> Result<(), MeshIoError> {
    let f = std::fs::File::create(path)?;
    write_tet_mesh(mesh, io::BufWriter::new(f))
}

/// Convenience: read from a file path.
pub fn load_tet_mesh<P: AsRef<Path>>(path: P) -> Result<TetMesh, MeshIoError> {
    let f = std::fs::File::open(path)?;
    read_tet_mesh(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_mesh() {
        let mesh = TetMesh::duct(3, 2, 4, 1.5, 1.0, 2.0);
        let mut buf = Vec::new();
        write_tet_mesh(&mesh, &mut buf).unwrap();
        let back = read_tet_mesh(buf.as_slice()).unwrap();
        assert_eq!(back.n_cells(), mesh.n_cells());
        assert_eq!(back.n_nodes(), mesh.n_nodes());
        assert_eq!(back.c2n, mesh.c2n);
        assert_eq!(back.c2c, mesh.c2c);
        assert_eq!(back.dims, mesh.dims);
        for (a, b) in back.node_pos.iter().zip(&mesh.node_pos) {
            assert_eq!(a, b, "17-sig-digit round trip must be exact");
        }
        for (a, b) in back.volume.iter().zip(&mesh.volume) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_tet_mesh("not-a-mesh 1".as_bytes()).unwrap_err();
        assert!(matches!(err, MeshIoError::Parse(_)));
    }

    #[test]
    fn rejects_bad_version() {
        let err = read_tet_mesh("oppic-tet-mesh 2 nodes 0 cells 0".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_out_of_range_node() {
        let text = "oppic-tet-mesh 1\nnodes 3\n0 0 0\n1 0 0\n0 1 0\ncells 1\n0 1 2 9\ndims 1 1 1\nlengths 1 1 1\n";
        let err = read_tet_mesh(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("references node"));
    }

    #[test]
    fn rejects_truncation() {
        let mesh = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        let mut buf = Vec::new();
        write_tet_mesh(&mesh, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_tet_mesh(buf.as_slice()).is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let text = "oppic-tet-mesh 1 # magic\nnodes 4 # four nodes\n0 0 0\n1 0 0\n0 1 0\n0 0 1\ncells 1\n0 1 2 3\ndims 1 1 1\nlengths 1 1 1\n";
        let m = read_tet_mesh(text.as_bytes()).unwrap();
        assert_eq!(m.n_cells(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("oppic_mesh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("duct.txt");
        let mesh = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        save_tet_mesh(&mesh, &path).unwrap();
        let back = load_tet_mesh(&path).unwrap();
        assert_eq!(back.c2n, mesh.c2n);
        std::fs::remove_file(&path).ok();
    }
}
