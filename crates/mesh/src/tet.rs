//! Tetrahedral duct mesh generator — the Mini-FEM-PIC domain.
//!
//! The paper's Mini-FEM-PIC runs on a tetrahedral mesh "forming a duct":
//! inlet faces on one end, a fixed-potential outer wall, particles
//! injected at the inlet and removed at the outlet. The reference
//! artifact ships these as HDF5/ASCII files; here we generate them
//! programmatically at any resolution (a documented substitution in
//! DESIGN.md) by laying down an `nx × ny × nz` grid of hexahedra over a
//! box and splitting every hexahedron into six conforming tetrahedra
//! (the Kuhn / Freudenthal subdivision, all six tets sharing the main
//! diagonal, which guarantees matching faces across hexahedron
//! boundaries).

use crate::connectivity::{build_c2c_from_faces, tet_faces, FaceKey};
use crate::geometry::{p1_gradients, tet_centroid, tet_signed_volume, BoundingBox, Vec3};
use std::collections::HashMap;

/// Classification of a boundary face of the duct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// `x == 0` plane: particles are injected here.
    Inlet,
    /// `x == Lx` plane: particles leaving through here are removed.
    Outlet,
    /// The four lateral walls, held at a fixed potential.
    Wall,
}

/// A boundary face record: owning cell, the local face index within
/// that cell (0..4, the face opposite local vertex `face`), and its
/// classification.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryFace {
    pub cell: usize,
    pub face: usize,
    pub nodes: [usize; 3],
    pub kind: BoundaryKind,
}

/// An unstructured tetrahedral mesh of a rectangular duct.
///
/// Connectivity follows the OP-PIC conventions: `c2n` is the
/// cells→nodes map (arity 4) and `c2c` the cells→cells map (arity 4,
/// `-1` marking a domain boundary), exactly the `opp_decl_map` payloads
/// of Figure 4 in the paper.
#[derive(Debug, Clone)]
pub struct TetMesh {
    /// Number of hex cells per axis used by the generator.
    pub dims: [usize; 3],
    /// Physical box extents.
    pub lengths: [f64; 3],
    /// Node coordinates.
    pub node_pos: Vec<Vec3>,
    /// Cells→nodes map, arity 4.
    pub c2n: Vec<[usize; 4]>,
    /// Cells→cells map, arity 4; entry `f` is the neighbour across the
    /// face opposite local vertex `f`, or `-1` on the boundary.
    pub c2c: Vec<[i32; 4]>,
    /// Classified boundary faces.
    pub boundary: Vec<BoundaryFace>,
    /// Signed volume per cell (all positive by construction).
    pub volume: Vec<f64>,
    /// Gradients of the four P1 basis functions per cell
    /// ("shape derivatives" in Mini-FEM-PIC, 4 × 3 values per cell).
    pub shape_deriv: Vec<[Vec3; 4]>,
    /// Nodes lying on the fixed-potential wall (Dirichlet set).
    pub wall_nodes: Vec<bool>,
    /// Node "volume" (sum of 1/4 of each adjacent tet volume) used to
    /// convert deposited charge to charge density.
    pub node_volume: Vec<f64>,
}

/// The six Kuhn tetrahedra of the unit cube, as corner indices into the
/// cube's 8 corners (bit k of the corner index = offset along axis k).
/// Every tet contains the main diagonal 0 → 7, making the subdivision
/// conforming across neighbouring cubes.
const KUHN_TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
    [0, 5, 1, 7],
];

impl TetMesh {
    /// Generate a duct mesh of `nx × ny × nz` hexahedra (so
    /// `6 * nx * ny * nz` tetrahedra) over the box
    /// `[0, lx] × [0, ly] × [0, lz]`.
    ///
    /// The paper's single-node runs use a 48 000-cell mesh; that is
    /// `TetMesh::duct(20, 20, 20, ...)` (6·8000 = 48 000 tets).
    pub fn duct(nx: usize, ny: usize, nz: usize, lx: f64, ly: f64, lz: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "duct dims must be positive");
        let (px, py, pz) = (nx + 1, ny + 1, nz + 1);
        let node_id = |i: usize, j: usize, k: usize| i + px * (j + py * k);

        let mut node_pos = Vec::with_capacity(px * py * pz);
        for k in 0..pz {
            for j in 0..py {
                for i in 0..px {
                    node_pos.push(Vec3::new(
                        lx * i as f64 / nx as f64,
                        ly * j as f64 / ny as f64,
                        lz * k as f64 / nz as f64,
                    ));
                }
            }
        }
        // Note: node_id uses i-fastest ordering; the push order above is
        // also i-fastest, so the two agree.

        let mut c2n: Vec<[usize; 4]> = Vec::with_capacity(6 * nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    // Cube corner node ids; bit 0 → x, bit 1 → y, bit 2 → z.
                    let corner =
                        |c: usize| node_id(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1));
                    for tet in KUHN_TETS {
                        let mut nd = [
                            corner(tet[0]),
                            corner(tet[1]),
                            corner(tet[2]),
                            corner(tet[3]),
                        ];
                        // Orient positively.
                        let v = [
                            node_pos[nd[0]],
                            node_pos[nd[1]],
                            node_pos[nd[2]],
                            node_pos[nd[3]],
                        ];
                        if tet_signed_volume(v[0], v[1], v[2], v[3]) < 0.0 {
                            nd.swap(2, 3);
                        }
                        c2n.push(nd);
                    }
                }
            }
        }

        Self::from_cells(node_pos, c2n, [nx, ny, nz], [lx, ly, lz])
    }

    /// Build the full mesh (adjacency, boundary classification, geometry)
    /// from raw node positions and cell→node connectivity.
    pub fn from_cells(
        node_pos: Vec<Vec3>,
        c2n: Vec<[usize; 4]>,
        dims: [usize; 3],
        lengths: [f64; 3],
    ) -> Self {
        let ncells = c2n.len();
        let nnodes = node_pos.len();

        let (c2c, boundary_faces) = build_c2c_from_faces(&c2n);

        // Geometry.
        let mut volume = Vec::with_capacity(ncells);
        let mut shape_deriv = Vec::with_capacity(ncells);
        for nd in &c2n {
            let v = [
                node_pos[nd[0]],
                node_pos[nd[1]],
                node_pos[nd[2]],
                node_pos[nd[3]],
            ];
            let vol = tet_signed_volume(v[0], v[1], v[2], v[3]);
            debug_assert!(vol > 0.0, "negatively oriented tet");
            volume.push(vol);
            shape_deriv.push(p1_gradients(&v));
        }

        // Classify boundary faces by their centroid position.
        let [lx, _ly, _lz] = lengths;
        let eps = 1e-9 * lx.max(1.0);
        let mut boundary = Vec::with_capacity(boundary_faces.len());
        let mut wall_nodes = vec![false; nnodes];
        for (cell, face) in boundary_faces {
            let fnodes = tet_faces(&c2n[cell])[face];
            let cen =
                (node_pos[fnodes[0]] + node_pos[fnodes[1]] + node_pos[fnodes[2]]).scale(1.0 / 3.0);
            let kind = if cen.x.abs() < eps {
                BoundaryKind::Inlet
            } else if (cen.x - lx).abs() < eps {
                BoundaryKind::Outlet
            } else {
                BoundaryKind::Wall
            };
            if kind == BoundaryKind::Wall {
                for n in fnodes {
                    wall_nodes[n] = true;
                }
            }
            boundary.push(BoundaryFace {
                cell,
                face,
                nodes: fnodes,
                kind,
            });
        }

        // Lumped node volumes.
        let mut node_volume = vec![0.0; nnodes];
        for (c, nd) in c2n.iter().enumerate() {
            let q = volume[c] * 0.25;
            for &n in nd {
                node_volume[n] += q;
            }
        }

        TetMesh {
            dims,
            lengths,
            node_pos,
            c2n,
            c2c,
            boundary,
            volume,
            shape_deriv,
            wall_nodes,
            node_volume,
        }
    }

    pub fn n_cells(&self) -> usize {
        self.c2n.len()
    }

    pub fn n_nodes(&self) -> usize {
        self.node_pos.len()
    }

    /// Vertex positions of cell `c`.
    #[inline]
    pub fn cell_vertices(&self, c: usize) -> [Vec3; 4] {
        let nd = self.c2n[c];
        [
            self.node_pos[nd[0]],
            self.node_pos[nd[1]],
            self.node_pos[nd[2]],
            self.node_pos[nd[3]],
        ]
    }

    /// Centroid of cell `c`.
    pub fn cell_centroid(&self, c: usize) -> Vec3 {
        tet_centroid(&self.cell_vertices(c))
    }

    /// Bounding box of the whole mesh.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::of_points(self.node_pos.iter())
    }

    /// All inlet faces (for particle injection).
    pub fn inlet_faces(&self) -> impl Iterator<Item = &BoundaryFace> {
        self.boundary
            .iter()
            .filter(|f| f.kind == BoundaryKind::Inlet)
    }

    /// Locate the cell containing point `p` by brute force. O(n_cells);
    /// test/setup use only — the particle mover and the structured
    /// overlay handle the hot path.
    pub fn locate_brute_force(&self, p: Vec3) -> Option<usize> {
        for c in 0..self.n_cells() {
            let l = crate::geometry::barycentric(p, &self.cell_vertices(c));
            if crate::geometry::bary_inside(&l, 1e-12) {
                return Some(c);
            }
        }
        None
    }

    /// Consistency checks used by tests and by `io` after reading a
    /// mesh from disk. Returns a list of human-readable violations.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let nn = self.n_nodes();
        for (c, nd) in self.c2n.iter().enumerate() {
            for &n in nd {
                if n >= nn {
                    errs.push(format!("cell {c} references node {n} >= {nn}"));
                }
            }
            if self.volume[c] <= 0.0 {
                errs.push(format!(
                    "cell {c} has non-positive volume {}",
                    self.volume[c]
                ));
            }
        }
        // c2c symmetry: if a says b is a neighbour, b must list a.
        for (c, nb) in self.c2c.iter().enumerate() {
            for &m in nb {
                if m >= 0 {
                    let m = m as usize;
                    if !self.c2c[m].contains(&(c as i32)) {
                        errs.push(format!("c2c asymmetry: {c} -> {m} but not {m} -> {c}"));
                    }
                }
            }
        }
        // Every boundary face must belong to a cell with a -1 in c2c.
        for bf in &self.boundary {
            if self.c2c[bf.cell][bf.face] != -1 {
                errs.push(format!(
                    "boundary face of cell {} face {} has neighbour {}",
                    bf.cell, bf.face, self.c2c[bf.cell][bf.face]
                ));
            }
        }
        errs
    }

    /// A map from sorted face keys to (cell, local face) — used by the
    /// distributed halo builder.
    pub fn face_index(&self) -> HashMap<FaceKey, Vec<(usize, usize)>> {
        let mut m: HashMap<FaceKey, Vec<(usize, usize)>> = HashMap::new();
        for (c, nd) in self.c2n.iter().enumerate() {
            for (f, fnodes) in tet_faces(nd).into_iter().enumerate() {
                m.entry(FaceKey::new(fnodes)).or_default().push((c, f));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{bary_inside, barycentric};

    #[test]
    fn duct_counts() {
        let m = TetMesh::duct(3, 2, 2, 3.0, 2.0, 2.0);
        assert_eq!(m.n_cells(), 6 * 3 * 2 * 2);
        assert_eq!(m.n_nodes(), 4 * 3 * 3);
        assert!(m.validate().is_empty(), "{:?}", m.validate());
    }

    #[test]
    fn duct_volume_sums_to_box() {
        let m = TetMesh::duct(4, 3, 5, 2.0, 1.5, 2.5);
        let total: f64 = m.volume.iter().sum();
        assert!((total - 2.0 * 1.5 * 2.5).abs() < 1e-10, "total={total}");
    }

    #[test]
    fn duct_node_volume_sums_to_box() {
        let m = TetMesh::duct(3, 3, 3, 1.0, 1.0, 1.0);
        let total: f64 = m.node_volume.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kuhn_subdivision_is_conforming() {
        // In a conforming mesh every interior face is shared by exactly
        // two tets, so for an n³ duct: #boundary faces = surface area
        // triangles = 2 faces/quad * (6n²) quads... just check via c2c:
        // each cell has 4 faces, boundary count must equal total faces
        // minus 2*interior.
        let m = TetMesh::duct(3, 3, 3, 1.0, 1.0, 1.0);
        let nbound = m.c2c.iter().flatten().filter(|&&x| x == -1).count();
        assert_eq!(nbound, m.boundary.len());
        // Surface of the cube: 6 faces * 9 quads * 2 triangles = 108.
        assert_eq!(nbound, 108);
    }

    #[test]
    fn boundary_classification() {
        let m = TetMesh::duct(4, 2, 2, 4.0, 1.0, 1.0);
        let inlets = m.inlet_faces().count();
        let outlets = m
            .boundary
            .iter()
            .filter(|f| f.kind == BoundaryKind::Outlet)
            .count();
        let walls = m
            .boundary
            .iter()
            .filter(|f| f.kind == BoundaryKind::Wall)
            .count();
        // x faces: ny*nz quads * 2 tris each per end.
        assert_eq!(inlets, 2 * 2 * 2);
        assert_eq!(outlets, 2 * 2 * 2);
        assert_eq!(walls, m.boundary.len() - inlets - outlets);
        // Inlet faces truly lie on x = 0.
        for f in m.inlet_faces() {
            for n in f.nodes {
                assert!(m.node_pos[n].x.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wall_nodes_marked() {
        let m = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        // A node in the middle of a lateral wall must be marked; an
        // interior node must not be.
        let wall_count = m.wall_nodes.iter().filter(|&&w| w).count();
        assert!(wall_count > 0);
        // Find the interior node (0.5, 0.5, 0.5).
        let interior = m
            .node_pos
            .iter()
            .position(|p| {
                (p.x - 0.5).abs() < 1e-12 && (p.y - 0.5).abs() < 1e-12 && (p.z - 0.5).abs() < 1e-12
            })
            .unwrap();
        assert!(!m.wall_nodes[interior]);
    }

    #[test]
    fn centroids_inside_their_cells() {
        let m = TetMesh::duct(2, 3, 2, 1.0, 1.0, 1.0);
        for c in 0..m.n_cells() {
            let l = barycentric(m.cell_centroid(c), &m.cell_vertices(c));
            assert!(bary_inside(&l, 1e-12));
        }
    }

    #[test]
    fn locate_brute_force_agrees_with_centroid() {
        let m = TetMesh::duct(2, 2, 2, 1.0, 1.0, 1.0);
        for c in 0..m.n_cells() {
            let found = m.locate_brute_force(m.cell_centroid(c)).unwrap();
            // The centroid of a cell is strictly interior, so it can
            // only be found in that cell.
            assert_eq!(found, c);
        }
    }

    #[test]
    fn paper_mesh_size_formula() {
        // The paper's 48k-cell mesh: 20x20x20 hexes * 6 tets.
        let m = TetMesh::duct(4, 4, 4, 1.0, 1.0, 1.0); // scaled-down check
        assert_eq!(m.n_cells(), 6 * 64);
    }
}
