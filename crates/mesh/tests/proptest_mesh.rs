//! Property-based tests on the mesh substrate.

use oppic_mesh::geometry::{bary_inside, barycentric, p1_gradients, sample_tet, tet_signed_volume};
use oppic_mesh::{HexMesh, StructuredOverlay, TetMesh, Vec3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Duct volumes always sum to the box volume, for any resolution
    /// and extent.
    #[test]
    fn duct_volume_exact(
        nx in 1usize..5, ny in 1usize..5, nz in 1usize..5,
        lx in 0.1f64..4.0, ly in 0.1f64..4.0, lz in 0.1f64..4.0,
    ) {
        let m = TetMesh::duct(nx, ny, nz, lx, ly, lz);
        let total: f64 = m.volume.iter().sum();
        let expect = lx * ly * lz;
        prop_assert!((total - expect).abs() < 1e-9 * expect);
        prop_assert!(m.validate().is_empty());
    }

    /// P1 gradients reproduce linear fields exactly on every cell of a
    /// random duct: grad(a·x + b·y + c·z) recovered from nodal values.
    #[test]
    fn p1_gradients_reproduce_linear_fields(
        a in -3.0f64..3.0, b in -3.0f64..3.0, c in -3.0f64..3.0,
    ) {
        let m = TetMesh::duct(2, 2, 2, 1.0, 1.3, 0.7);
        for cell in 0..m.n_cells() {
            let verts = m.cell_vertices(cell);
            let g = p1_gradients(&verts);
            let mut grad = Vec3::ZERO;
            for k in 0..4 {
                let phi = a * verts[k].x + b * verts[k].y + c * verts[k].z;
                grad = grad + g[k].scale(phi);
            }
            prop_assert!((grad.x - a).abs() < 1e-9);
            prop_assert!((grad.y - b).abs() < 1e-9);
            prop_assert!((grad.z - c).abs() < 1e-9);
        }
    }

    /// sample_tet always lands inside, and barycentric() confirms it,
    /// for random valid tets.
    #[test]
    fn sampling_and_containment_agree(
        r in prop::array::uniform4(0.0f64..1.0),
        jitter in prop::array::uniform3(-0.4f64..0.4),
    ) {
        let v = [
            Vec3::new(0.0 + jitter[0], 0.0, 0.0),
            Vec3::new(1.0, 0.0 + jitter[1], 0.0),
            Vec3::new(0.0, 1.0, 0.0 + jitter[2]),
            Vec3::new(0.2, 0.3, 1.0),
        ];
        prop_assume!(tet_signed_volume(v[0], v[1], v[2], v[3]).abs() > 1e-3);
        let p = sample_tet(&v, r);
        let l = barycentric(p, &v);
        prop_assert!(bary_inside(&l, 1e-9), "{l:?}");
    }

    /// HexMesh periodic maps are mutually inverse and locate() agrees
    /// with cell bounds for interior points.
    #[test]
    fn hex_mesh_maps_consistent(
        nx in 1usize..6, ny in 1usize..6, nz in 1usize..6,
        fx in 0.01f64..0.99, fy in 0.01f64..0.99, fz in 0.01f64..0.99,
    ) {
        let m = HexMesh::periodic_box(nx, ny, nz, 0.5, 0.25, 0.75);
        prop_assert!(m.validate().is_empty());
        let [lx, ly, lz] = m.lengths();
        let p = Vec3::new(fx * lx, fy * ly, fz * lz);
        let c = m.locate(p);
        let lo = m.cell_origin(c);
        prop_assert!(p.x >= lo.x - 1e-12 && p.x <= lo.x + m.dx + 1e-12);
        prop_assert!(p.y >= lo.y - 1e-12 && p.y <= lo.y + m.dy + 1e-12);
        prop_assert!(p.z >= lo.z - 1e-12 && p.z <= lo.z + m.dz + 1e-12);
    }

    /// Overlay locate always returns a cell whose inflated bounding
    /// box contains interior query points.
    #[test]
    fn overlay_seed_is_nearby(
        px in 0.01f64..0.99, py in 0.01f64..0.99, pz in 0.01f64..0.99,
    ) {
        let mesh = TetMesh::duct(3, 3, 3, 1.0, 1.0, 1.0);
        let ov = StructuredOverlay::build(&mesh, [9, 9, 9]);
        let p = Vec3::new(px, py, pz);
        let c = ov.locate(p);
        prop_assert!(c < mesh.n_cells());
        // The seed is within one voxel of the point.
        let verts = mesh.cell_vertices(c);
        let centroid = (verts[0] + verts[1] + verts[2] + verts[3]).scale(0.25);
        prop_assert!((centroid - p).norm() < 0.75, "seed too far: {centroid:?} vs {p:?}");
    }
}
