//! # oppic-model — machine models for the evaluation harness
//!
//! The paper's evaluation runs on four clusters (Table 2) at scales —
//! 16k cores, 1024 GPUs — that a reproduction cannot rent. Following
//! the substitution policy in DESIGN.md, this crate captures those
//! systems as explicit performance models, calibrated by the *measured*
//! per-kernel byte/FLOP counts from the instrumented DSL runs:
//!
//! * [`system`] — the Table 2 systems (Avon, ARCHER2, Bede, LUMI-G):
//!   node compute/bandwidth, interconnect bandwidth and latency, power;
//! * [`roofline`] — the Empirical-Roofline-Tool substitute: attainable
//!   performance curves and kernel placement (Figures 10–11);
//! * [`scaling`] — the weak-scaling projection
//!   (compute + halo + synchronisation terms, Figures 13–14);
//! * [`power`] — the power-equivalence study (Figure 15): how many
//!   nodes of each system fit a 12 kW envelope and what speed-ups
//!   follow.

pub mod power;
pub mod roofline;
pub mod scaling;
pub mod system;

pub use power::{power_equivalent_nodes, PowerStudy};
pub use roofline::{Boundedness, RooflineChart, RooflinePoint};
pub use scaling::{weak_scaling_curve, ScalingPoint, WorkloadModel};
pub use system::SystemSpec;
