//! Weak-scaling projection — Figures 13 and 14.
//!
//! The paper weak-scales both apps to 128 CPU nodes / 1024 GPUs with a
//! constant per-unit workload. The reproduction measures the real
//! per-unit compute time and per-step communication volume at small
//! rank counts (in-process ranks), then projects to paper scale with a
//! standard weak-scaling model:
//!
//! ```text
//! T(R) = T_compute                          (constant per unit)
//!      + halo_bytes / net_bw + msgs·lat     (neighbour exchanges)
//!      + migration_bytes / net_bw           (particle flux)
//!      + α·log2(R)·lat                      (synchronising collectives)
//!      + imbalance(R)·T_compute             (load imbalance growth)
//! ```
//!
//! All terms except `T_compute` are per-step; the model reports the
//! main-loop total for a configured iteration count.

use crate::system::SystemSpec;

/// Per-unit workload description, measured by the instrumented runs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    /// Measured compute seconds per step per unit (at R=1).
    pub compute_s_per_step: f64,
    /// Halo bytes exchanged per step per unit (both directions).
    pub halo_bytes_per_step: f64,
    /// Point-to-point messages per step per unit.
    pub msgs_per_step: f64,
    /// Particle-migration bytes per step per unit.
    pub migration_bytes_per_step: f64,
    /// Fractional load imbalance at scale (the paper: "scaling is also
    /// affected by load-balancing of particles"); applied as
    /// `imbalance · (1 − 1/R)` growth.
    pub imbalance: f64,
    /// Main-loop iterations.
    pub steps: usize,
}

/// One point of a weak-scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    pub units: usize,
    /// Projected main-loop seconds.
    pub total_s: f64,
    /// Parallel efficiency vs one unit.
    pub efficiency: f64,
}

/// Project the weak-scaling curve of `workload` on `system` for each
/// unit count in `unit_counts`.
pub fn weak_scaling_curve(
    system: &SystemSpec,
    workload: &WorkloadModel,
    unit_counts: &[usize],
) -> Vec<ScalingPoint> {
    let t1 = step_time(system, workload, 1);
    unit_counts
        .iter()
        .map(|&units| {
            let ts = step_time(system, workload, units);
            ScalingPoint {
                units,
                total_s: ts * workload.steps as f64,
                efficiency: t1 / ts,
            }
        })
        .collect()
}

fn step_time(system: &SystemSpec, w: &WorkloadModel, units: usize) -> f64 {
    let r = units as f64;
    let compute = w.compute_s_per_step;
    // Neighbour comm only exists with >1 unit.
    let comm = if units > 1 {
        system.net_time(
            w.halo_bytes_per_step + w.migration_bytes_per_step,
            w.msgs_per_step,
        )
    } else {
        0.0
    };
    let sync = if units > 1 {
        // Tree collectives: one barrier/allreduce tier per log2 level.
        r.log2().ceil() * system.net_latency_s * 4.0
    } else {
        0.0
    };
    let imbalance = w.imbalance * (1.0 - 1.0 / r) * compute;
    compute + comm + sync + imbalance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_workload() -> WorkloadModel {
        WorkloadModel {
            compute_s_per_step: 0.1,
            halo_bytes_per_step: 50e6,
            msgs_per_step: 8.0,
            migration_bytes_per_step: 10e6,
            imbalance: 0.05,
            steps: 250,
        }
    }

    #[test]
    fn single_unit_has_no_comm() {
        let sys = SystemSpec::archer2();
        let w = toy_workload();
        let curve = weak_scaling_curve(&sys, &w, &[1]);
        assert!((curve[0].total_s - 0.1 * 250.0).abs() < 1e-9);
        assert_eq!(curve[0].efficiency, 1.0);
    }

    #[test]
    fn weak_scaling_is_flat_ish_and_monotone() {
        let sys = SystemSpec::archer2();
        let w = toy_workload();
        let units: Vec<usize> = (0..8).map(|k| 1 << k).collect();
        let curve = weak_scaling_curve(&sys, &w, &units);
        // Monotone non-decreasing runtime.
        for pair in curve.windows(2) {
            assert!(pair[1].total_s >= pair[0].total_s);
        }
        // "Good weak scaling": ≥70% efficiency at 128 units for this
        // comm-light workload.
        let last = curve.last().unwrap();
        assert_eq!(last.units, 128);
        assert!(last.efficiency > 0.7, "eff={}", last.efficiency);
        assert!(last.efficiency <= 1.0);
    }

    #[test]
    fn comm_heavy_workload_scales_worse() {
        let sys = SystemSpec::bede();
        let light = toy_workload();
        let mut heavy = toy_workload();
        heavy.halo_bytes_per_step *= 50.0;
        let el = weak_scaling_curve(&sys, &light, &[64])[0].efficiency;
        let eh = weak_scaling_curve(&sys, &heavy, &[64])[0].efficiency;
        assert!(eh < el);
    }

    #[test]
    fn faster_interconnect_scales_better() {
        let w = toy_workload();
        let slingshot = weak_scaling_curve(&SystemSpec::archer2(), &w, &[128])[0];
        // Same workload on a hypothetical 10x slower network.
        let mut slow = SystemSpec::archer2();
        slow.net_bw_gbs /= 10.0;
        let slow_pt = weak_scaling_curve(&slow, &w, &[128])[0];
        assert!(slingshot.efficiency > slow_pt.efficiency);
    }

    #[test]
    fn imbalance_term_grows_with_ranks() {
        let sys = SystemSpec::archer2();
        let mut w = toy_workload();
        w.halo_bytes_per_step = 0.0;
        w.migration_bytes_per_step = 0.0;
        w.msgs_per_step = 0.0;
        w.imbalance = 0.2;
        let c = weak_scaling_curve(&sys, &w, &[1, 2, 1024]);
        // R→∞ limit adds the full 20%.
        assert!(c[2].total_s > c[1].total_s);
        let limit = 0.1 * 250.0 * 1.2;
        assert!((c[2].total_s - limit).abs() / limit < 0.01);
    }
}
