//! The systems of the paper's Table 2.
//!
//! Per-node compute/bandwidth numbers are public figures for the listed
//! parts; interconnects and node power are quoted straight from the
//! table (ARCHER2: Slingshot 2×100 Gb/s, ≈660 W/node; Bede: EDR
//! InfiniBand 100 Gb/s, ≈1500 W/node; LUMI-G: Slingshot 50 Gb/s
//! bidirectional per GPU, ≈2390 W/node; Avon: HDR100, ≈475 W/node).

/// One cluster system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    pub name: &'static str,
    /// What one "execution unit" is in the scaling plots: a CPU node,
    /// one V100, or one MI250X GCD (the paper scales per-GCD).
    pub unit_name: &'static str,
    /// Units per node (1 for CPU nodes, 4 V100s on Bede, 8 GCDs on
    /// LUMI-G).
    pub units_per_node: usize,
    /// Sustained memory bandwidth per unit, GB/s.
    pub unit_mem_bw_gbs: f64,
    /// FP64 peak per unit, GFLOP/s.
    pub unit_peak_gflops: f64,
    /// Injection bandwidth per unit, GB/s (payload direction).
    pub net_bw_gbs: f64,
    /// Network latency per message, seconds.
    pub net_latency_s: f64,
    /// Node power, watts.
    pub node_power_w: f64,
}

impl SystemSpec {
    /// Avon: Dell C6420, 2× Xeon 8268 / node, HDR100.
    pub fn avon() -> Self {
        SystemSpec {
            name: "Avon",
            unit_name: "node (2x Xeon 8268)",
            units_per_node: 1,
            unit_mem_bw_gbs: 220.0,
            unit_peak_gflops: 3200.0,
            net_bw_gbs: 12.5, // 100 Gb/s
            net_latency_s: 1.5e-6,
            node_power_w: 475.0,
        }
    }

    /// ARCHER2: HPE Cray EX, 2× EPYC 7742 / node, Slingshot.
    pub fn archer2() -> Self {
        SystemSpec {
            name: "ARCHER2",
            unit_name: "node (2x EPYC 7742)",
            units_per_node: 1,
            unit_mem_bw_gbs: 380.0,
            unit_peak_gflops: 4600.0,
            net_bw_gbs: 25.0, // 2x100 Gb/s bi-directional
            net_latency_s: 1.7e-6,
            node_power_w: 660.0,
        }
    }

    /// Bede: IBM AC922, 4× V100 / node, EDR InfiniBand.
    pub fn bede() -> Self {
        SystemSpec {
            name: "Bede",
            unit_name: "V100 GPU",
            units_per_node: 4,
            unit_mem_bw_gbs: 900.0,
            unit_peak_gflops: 7800.0,
            net_bw_gbs: 12.5 / 4.0, // node EDR shared by 4 GPUs
            net_latency_s: 1.5e-6,
            node_power_w: 1500.0,
        }
    }

    /// LUMI-G: HPE Cray EX, 4× MI250X (8 GCDs) / node, Slingshot.
    pub fn lumi_g() -> Self {
        SystemSpec {
            name: "LUMI-G",
            unit_name: "MI250X GCD",
            units_per_node: 8,
            unit_mem_bw_gbs: 1600.0,
            unit_peak_gflops: 23_900.0,
            net_bw_gbs: 6.25, // 50 Gb/s per GPU ≈ per 2 GCDs
            net_latency_s: 1.7e-6,
            node_power_w: 2390.0,
        }
    }

    /// The four systems of Table 2.
    pub fn table2() -> Vec<SystemSpec> {
        vec![Self::avon(), Self::archer2(), Self::bede(), Self::lumi_g()]
    }

    /// Roofline time for a kernel on one unit.
    pub fn unit_roofline_time(&self, bytes: f64, flops: f64) -> f64 {
        (bytes / (self.unit_mem_bw_gbs * 1e9)).max(flops / (self.unit_peak_gflops * 1e9))
    }

    /// Time to ship `bytes` in `messages` point-to-point messages.
    pub fn net_time(&self, bytes: f64, messages: f64) -> f64 {
        messages * self.net_latency_s + bytes / (self.net_bw_gbs * 1e9)
    }

    /// Units that fit a power envelope (Figure 15 sizing).
    pub fn units_in_power_envelope(&self, watts: f64) -> usize {
        let nodes = (watts / self.node_power_w).floor() as usize;
        nodes * self.units_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_complete() {
        let sys = SystemSpec::table2();
        assert_eq!(sys.len(), 4);
        let names: Vec<_> = sys.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["Avon", "ARCHER2", "Bede", "LUMI-G"]);
    }

    #[test]
    fn paper_power_envelope_node_counts() {
        // Paper, Section 4.2.1: "18 ARCHER2 nodes, 8 Bede nodes
        // (consisting of 32 V100 GPUs) and 5 LUMI-G nodes (consisting
        // of 20 MI250X GPUs) consume roughly 12 kW".
        let kw12 = 12_000.0;
        assert_eq!(
            (kw12 / SystemSpec::archer2().node_power_w).floor() as usize,
            18
        );
        assert_eq!((kw12 / SystemSpec::bede().node_power_w).floor() as usize, 8);
        assert_eq!(SystemSpec::bede().units_in_power_envelope(kw12), 32);
        assert_eq!(
            (kw12 / SystemSpec::lumi_g().node_power_w).floor() as usize,
            5
        );
        // 5 LUMI nodes = 20 MI250X GPUs = 40 GCDs.
        assert_eq!(SystemSpec::lumi_g().units_in_power_envelope(kw12), 40);
    }

    #[test]
    fn roofline_and_net_times() {
        let s = SystemSpec::archer2();
        // 380 GB at 380 GB/s = 1 s.
        assert!((s.unit_roofline_time(380e9, 0.0) - 1.0).abs() < 1e-12);
        // Latency-dominated small messages.
        let t = s.net_time(100.0, 10.0);
        assert!(t > 10.0 * s.net_latency_s && t < 10.0 * s.net_latency_s * 1.01);
        // Bandwidth-dominated large transfer: 25 GB at 25 GB/s.
        let t = s.net_time(25e9, 1.0);
        assert!((t - 1.0).abs() < 0.01);
    }

    #[test]
    fn gpu_units_are_faster_than_cpu_units() {
        // Single-unit sanity: a LUMI GCD has > 4x an ARCHER2 node's
        // bandwidth — the root of the paper's GPU speed-ups.
        assert!(SystemSpec::lumi_g().unit_mem_bw_gbs / SystemSpec::archer2().unit_mem_bw_gbs > 4.0);
    }
}
