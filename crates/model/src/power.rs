//! Power-equivalence study — Figure 15.
//!
//! "Using the node and GPU power consumption of the systems we estimate
//! that 18 ARCHER2 nodes, 8 Bede nodes (consisting of 32 V100 GPUs)
//! and 5 LUMI-G nodes (consisting of 20 MI250X GPUs) consume roughly
//! 12 kW of power." The study then runs a fixed global problem on each
//! fleet and compares runtimes.

use crate::scaling::{weak_scaling_curve, WorkloadModel};
use crate::system::SystemSpec;

/// How many whole nodes (and execution units) of `system` fit in a
/// power envelope.
pub fn power_equivalent_nodes(system: &SystemSpec, watts: f64) -> (usize, usize) {
    let nodes = (watts / system.node_power_w).floor() as usize;
    (nodes, nodes * system.units_per_node)
}

/// One system's entry in the power study.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerStudyEntry {
    pub system: String,
    pub nodes: usize,
    pub units: usize,
    pub runtime_s: f64,
    /// Speed-up relative to the reference system (ARCHER2 in the
    /// paper).
    pub speedup: f64,
}

/// The full study: fixed global problem, each system runs it on its
/// power-equivalent fleet.
#[derive(Debug, Clone)]
pub struct PowerStudy {
    pub watts: f64,
    pub entries: Vec<PowerStudyEntry>,
}

impl PowerStudy {
    /// Run the study. `workloads` pairs each system with its measured
    /// per-unit workload model *for the fixed global problem divided
    /// over that system's fleet* (i.e. `compute_s_per_step` already
    /// reflects global_work / units). The first system is the speed-up
    /// reference.
    pub fn run(watts: f64, workloads: &[(SystemSpec, WorkloadModel)]) -> PowerStudy {
        assert!(!workloads.is_empty());
        let mut entries: Vec<PowerStudyEntry> = workloads
            .iter()
            .map(|(sys, w)| {
                let (nodes, units) = power_equivalent_nodes(sys, watts);
                assert!(units > 0, "{} gets zero units in {watts} W", sys.name);
                let pt = weak_scaling_curve(sys, w, &[units])[0];
                PowerStudyEntry {
                    system: sys.name.to_string(),
                    nodes,
                    units,
                    runtime_s: pt.total_s,
                    speedup: 0.0,
                }
            })
            .collect();
        let reference = entries[0].runtime_s;
        for e in &mut entries {
            e.speedup = reference / e.runtime_s;
        }
        PowerStudy { watts, entries }
    }

    pub fn table(&self) -> String {
        let mut s = format!("Power-equivalent study at {:.1} kW\n", self.watts / 1000.0);
        s.push_str(&format!(
            "{:<10} {:>6} {:>6} {:>12} {:>9}\n",
            "system", "nodes", "units", "runtime (s)", "speedup"
        ));
        for e in &self.entries {
            s.push_str(&format!(
                "{:<10} {:>6} {:>6} {:>12.3} {:>8.2}x\n",
                e.system, e.nodes, e.units, e.runtime_s, e.speedup
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_sizing_matches_paper() {
        let (nodes, units) = power_equivalent_nodes(&SystemSpec::archer2(), 12_000.0);
        assert_eq!((nodes, units), (18, 18));
        let (nodes, units) = power_equivalent_nodes(&SystemSpec::bede(), 12_000.0);
        assert_eq!((nodes, units), (8, 32));
        let (nodes, units) = power_equivalent_nodes(&SystemSpec::lumi_g(), 12_000.0);
        assert_eq!((nodes, units), (5, 40));
    }

    #[test]
    fn study_computes_speedups_vs_first_entry() {
        // Synthetic: bandwidth-bound kernel, work split over each fleet.
        let global_bytes_per_step = 5e12;
        let workloads: Vec<(SystemSpec, WorkloadModel)> = SystemSpec::table2()
            .into_iter()
            .filter(|s| s.name != "Avon")
            .map(|sys| {
                let (_, units) = power_equivalent_nodes(&sys, 12_000.0);
                let per_unit_bytes = global_bytes_per_step / units as f64;
                let w = WorkloadModel {
                    compute_s_per_step: sys.unit_roofline_time(per_unit_bytes, 0.0),
                    halo_bytes_per_step: 1e6,
                    msgs_per_step: 8.0,
                    migration_bytes_per_step: 1e5,
                    imbalance: 0.05,
                    steps: 250,
                };
                (sys, w)
            })
            .collect();
        let study = PowerStudy::run(12_000.0, &workloads);
        assert_eq!(study.entries[0].speedup, 1.0);
        // GPUs beat the CPU fleet under an equal power envelope — the
        // paper's headline 1.4x–3.5x band.
        for e in &study.entries[1..] {
            assert!(e.speedup > 1.0, "{e:?}");
            assert!(e.speedup < 10.0, "{e:?}");
        }
        let t = study.table();
        assert!(t.contains("ARCHER2") && t.contains("speedup"));
    }
}
