//! Roofline analysis — the ERT/Advisor/Nsight substitute behind
//! Figures 10 and 11.
//!
//! The paper instruments each OP-PIC kernel for FP64 operation counts
//! and arithmetic intensity, then places the kernels under rooflines
//! measured with the Berkeley ERT. Here the kernel counts come from
//! [`oppic_core::profile::Profiler`] traffic tallies and the rooflines
//! from the [`crate::system::SystemSpec`] bandwidth/peak numbers.

use oppic_core::profile::KernelStats;

/// Which resource bounds a kernel at its operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundedness {
    Bandwidth,
    Compute,
    /// Achieving well under the roofline at its intensity — the
    /// signature the paper assigns to the atomically-serialized
    /// DepositCharge kernel ("latency bound").
    Latency,
}

/// One kernel placed on the roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    pub kernel: String,
    /// FLOP per byte.
    pub ai: f64,
    /// Achieved GFLOP/s.
    pub achieved_gflops: f64,
    /// Attainable GFLOP/s at this AI under the machine roofline.
    pub attainable_gflops: f64,
    pub bound: Boundedness,
}

impl RooflinePoint {
    /// Fraction of attainable performance achieved.
    pub fn efficiency(&self) -> f64 {
        if self.attainable_gflops > 0.0 {
            self.achieved_gflops / self.attainable_gflops
        } else {
            0.0
        }
    }
}

/// A machine roofline plus kernels placed under it.
#[derive(Debug, Clone)]
pub struct RooflineChart {
    pub machine: String,
    pub mem_bw_gbs: f64,
    pub peak_gflops: f64,
    pub points: Vec<RooflinePoint>,
}

impl RooflineChart {
    pub fn new(machine: impl Into<String>, mem_bw_gbs: f64, peak_gflops: f64) -> Self {
        RooflineChart {
            machine: machine.into(),
            mem_bw_gbs,
            peak_gflops,
            points: Vec::new(),
        }
    }

    /// Attainable GFLOP/s at an arithmetic intensity.
    pub fn attainable(&self, ai: f64) -> f64 {
        (self.mem_bw_gbs * ai).min(self.peak_gflops)
    }

    /// The AI where bandwidth and compute roofs intersect.
    pub fn ridge(&self) -> f64 {
        self.peak_gflops / self.mem_bw_gbs
    }

    /// Place a kernel from profiler statistics (needs time + traffic).
    /// Returns `None` when the stats carry no byte/flop counts.
    pub fn place(&mut self, name: &str, stats: &KernelStats) -> Option<&RooflinePoint> {
        let ai = stats.arithmetic_intensity()?;
        let achieved = stats.gflops()?;
        let attainable = self.attainable(ai);
        // Classification: within 60% of the roof counts as hitting it
        // (roofline studies conventionally allow a wide band); far
        // below at memory-bound intensity = latency bound.
        let bound = if achieved >= 0.6 * attainable {
            if ai < self.ridge() {
                Boundedness::Bandwidth
            } else {
                Boundedness::Compute
            }
        } else {
            Boundedness::Latency
        };
        self.points.push(RooflinePoint {
            kernel: name.to_string(),
            ai,
            achieved_gflops: achieved,
            attainable_gflops: attainable,
            bound,
        });
        self.points.last()
    }

    /// Sampled roofline curve for plotting: `(ai, gflops)` pairs over a
    /// log range.
    pub fn curve(&self, ai_min: f64, ai_max: f64, samples: usize) -> Vec<(f64, f64)> {
        assert!(samples >= 2 && ai_min > 0.0 && ai_max > ai_min);
        let la = ai_min.ln();
        let lb = ai_max.ln();
        (0..samples)
            .map(|k| {
                let ai = (la + (lb - la) * k as f64 / (samples - 1) as f64).exp();
                (ai, self.attainable(ai))
            })
            .collect()
    }

    /// Render an ASCII table of the placed kernels (the harness prints
    /// this as the figure's data).
    pub fn table(&self) -> String {
        let mut s = format!(
            "Roofline: {} (BW {:.0} GB/s, peak {:.0} GFLOP/s, ridge {:.2} F/B)\n",
            self.machine,
            self.mem_bw_gbs,
            self.peak_gflops,
            self.ridge()
        );
        s.push_str(&format!(
            "{:<28} {:>10} {:>12} {:>12} {:>6}  bound\n",
            "kernel", "AI (F/B)", "achieved", "attainable", "eff%"
        ));
        for p in &self.points {
            s.push_str(&format!(
                "{:<28} {:>10.4} {:>12.2} {:>12.2} {:>5.1}%  {:?}\n",
                p.kernel,
                p.ai,
                p.achieved_gflops,
                p.attainable_gflops,
                100.0 * p.efficiency(),
                p.bound
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(seconds: f64, bytes: u64, flops: u64) -> KernelStats {
        KernelStats {
            calls: 1,
            seconds,
            bytes,
            flops,
            class: None,
        }
    }

    #[test]
    fn curve_shape() {
        let c = RooflineChart::new("toy", 100.0, 1000.0);
        assert_eq!(c.ridge(), 10.0);
        assert_eq!(c.attainable(1.0), 100.0);
        assert_eq!(c.attainable(100.0), 1000.0);
        let pts = c.curve(0.01, 100.0, 16);
        assert_eq!(pts.len(), 16);
        assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1), "monotone");
        assert!((pts[0].0 - 0.01).abs() < 1e-12);
        assert!((pts[15].0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_bound_kernel() {
        let mut c = RooflineChart::new("toy", 100.0, 1000.0);
        // AI = 0.5 F/B, achieving 45 of attainable 50 GFLOP/s.
        let p = c
            .place("Move", &stats(1.0, 100_000_000_000, 45_000_000_000))
            .unwrap();
        assert!((p.ai - 0.45).abs() < 1e-12);
        assert_eq!(p.bound, Boundedness::Bandwidth);
        assert!(p.efficiency() > 0.9);
    }

    #[test]
    fn compute_bound_kernel() {
        let mut c = RooflineChart::new("toy", 100.0, 1000.0);
        // AI = 100 F/B, achieving 900 of 1000.
        let p = c
            .place("dense", &stats(1.0, 10_000_000_000, 1_000_000_000_000))
            .unwrap();
        assert_eq!(p.bound, Boundedness::Compute);
    }

    #[test]
    fn latency_bound_kernel() {
        let mut c = RooflineChart::new("toy", 100.0, 1000.0);
        // AI = 0.5, but only 5 GFLOP/s of attainable 50 — the
        // serialized-atomics signature.
        let p = c
            .place("DepositCharge", &stats(1.0, 10_000_000_000, 5_000_000_000))
            .unwrap();
        assert_eq!(p.bound, Boundedness::Latency);
    }

    #[test]
    fn placement_requires_traffic_counts() {
        let mut c = RooflineChart::new("toy", 100.0, 1000.0);
        assert!(c.place("untraced", &stats(1.0, 0, 0)).is_none());
        assert!(c.points.is_empty());
    }

    #[test]
    fn table_renders() {
        let mut c = RooflineChart::new("V100", 900.0, 7800.0);
        c.place("Move", &stats(0.5, 50_000_000_000, 10_000_000_000));
        let t = c.table();
        assert!(t.contains("Move"));
        assert!(t.contains("ridge"));
    }
}
