//! Properties of the whole-step dataflow audit.
//!
//! A schedule is generated as a sequence of self-contained *rounds*,
//! each the canonical deposit pattern: an owned-scope loop increments
//! a mesh dat through the particle→cell map, a `reduce_sum` exchange
//! folds the partial sums, a replicated-scope loop reads the result.
//! Any such composition is communication-correct by construction, so:
//!
//! 1. the audit must raise **zero Error verdicts** on it, however many
//!    rounds, steps, or shared dats it has;
//! 2. deleting **any single required exchange** (one instance, from
//!    the last recorded step — an `INC` is a read-modify-write, so a
//!    *persistently* missing exchange also poisons the dat's next
//!    writer) must produce **exactly one** `dataflow/halo-stale`
//!    Error, and it must land on the skipped round's reader.

use oppic_analyzer::{audit_schedule, check_report_schema, Severity};
use oppic_core::access::{Access, ArgDecl, LoopDecl};
use oppic_core::plan::{LoopPlan, PlanRegistry};
use oppic_core::schedule::{ExchangeDir, LoopScope, ScheduleRecorder, ScheduleTrace};
use oppic_core::ExecPolicy;
use proptest::prelude::*;

/// Build the registry, scopes, and trace for the given rounds (each
/// entry an index into a small shared dat pool — rounds may reuse a
/// dat) replayed over `steps` steps, optionally deleting round
/// `skip`'s exchange from the final step.
fn trace_of(rounds: &[usize], steps: u32, skip: Option<usize>) -> ScheduleTrace {
    let n_dats = rounds.iter().copied().max().unwrap_or(0) + 1;
    let mut plans = PlanRegistry::new();
    let mut scopes: Vec<(String, LoopScope, bool)> = Vec::new();
    for (i, d) in rounds.iter().enumerate() {
        let dat = format!("d{d}");
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                format!("W{i}"),
                "particles",
                vec![ArgDecl::double_indirect(&dat, 1, Access::Inc, "p2c.c2n")],
            ),
            &ExecPolicy::Seq,
        ));
        scopes.push((format!("W{i}"), LoopScope::Owned, false));
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                format!("R{i}"),
                "nodes",
                vec![ArgDecl::direct(&dat, 1, Access::Read)],
            ),
            &ExecPolicy::Seq,
        ));
        scopes.push((format!("R{i}"), LoopScope::Replicated, false));
    }
    let rec = ScheduleRecorder::new();
    for s in 0..steps {
        rec.begin_step();
        let last = s + 1 == steps;
        for (i, d) in rounds.iter().enumerate() {
            rec.record_loop(&format!("W{i}"));
            if !(last && skip == Some(i)) {
                rec.record_exchange(&format!("d{d}"), ExchangeDir::ReduceSum, &format!("t{i}"));
            }
            rec.record_loop(&format!("R{i}"));
        }
    }
    let scope_refs: Vec<(&str, LoopScope, bool)> = scopes
        .iter()
        .map(|(n, s, b)| (n.as_str(), *s, *b))
        .collect();
    let dat_names: Vec<String> = (0..n_dats).map(|d| format!("d{d}")).collect();
    let mut dat_sets: Vec<(&str, &str)> = dat_names.iter().map(|d| (d.as_str(), "nodes")).collect();
    dat_sets.push(("pos", "particles"));
    ScheduleTrace::from_recording("prop", &plans, &scope_refs, &["particles"], &dat_sets, &rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn valid_random_schedules_audit_error_free(
        rounds in prop::collection::vec(0usize..3, 1..5),
        steps in 1u32..4,
    ) {
        let audit = audit_schedule(&trace_of(&rounds, steps, None));
        prop_assert!(
            !audit.report.has_errors(),
            "valid schedule must be error-free:\n{}",
            audit.report
        );
        // The report round-trips through its committed schema.
        prop_assert!(check_report_schema(&audit.report_json()).is_ok());
    }

    #[test]
    fn deleting_any_required_exchange_yields_exactly_one_staleness_error(
        n_rounds in 1usize..5,
        steps in 1u32..4,
        which in 0usize..64,
    ) {
        // Distinct dats per round: reuse would put the later round's
        // read-modify-write *writer* in the blast radius too, and this
        // property pins the blame to exactly the skipped reader.
        let rounds: Vec<usize> = (0..n_rounds).collect();
        let skip = which % n_rounds;
        let audit = audit_schedule(&trace_of(&rounds, steps, Some(skip)));
        let stale = audit.report.with_code("dataflow/halo-stale");
        prop_assert_eq!(
            stale.len(), 1,
            "deleting round {}'s exchange must stale exactly its reader:\n{}",
            skip, audit.report
        );
        prop_assert_eq!(stale[0].severity, Severity::Error);
        prop_assert!(
            stale[0].subject.ends_with(&format!("@R{skip}")),
            "the staleness must land on the skipped round's reader, got '{}'",
            &stale[0].subject
        );
        // No collateral errors elsewhere: the defect count is exactly 1.
        prop_assert_eq!(audit.report.count(Severity::Error), 1, "{}", audit.report);
    }
}
