//! `oppic-analyzer` — command-line front-end of the loop-plan checker.
//!
//! The binary runs the built-in self-test (CI's smoke check of the
//! plan/shadow/map passes) and the offline telemetry-stream audit;
//! applications embed the library directly via their `--validate`
//! flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => {
            let results = oppic_analyzer::self_test();
            let mut failed = 0usize;
            for (desc, ok) in &results {
                println!("{} {desc}", if *ok { "PASS" } else { "FAIL" });
                if !*ok {
                    failed += 1;
                }
            }
            println!(
                "{}/{} scenarios passed",
                results.len() - failed,
                results.len()
            );
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("--audit-telemetry") => {
            let Some(path) = args.get(1) else {
                eprintln!("oppic-analyzer: --audit-telemetry requires a JSONL file path");
                return ExitCode::FAILURE;
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("oppic-analyzer: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = oppic_analyzer::audit_telemetry(&src);
            println!("{report}");
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("--help") | None => {
            println!(
                "oppic-analyzer: loop-plan checker for the OP-PIC DSL\n\
                 \n\
                 Usage:\n\
                 \x20 oppic-analyzer --self-test                run the plan/shadow/map passes on canned plans\n\
                 \x20 oppic-analyzer --audit-telemetry <file>   audit a telemetry JSONL event stream\n\
                 \n\
                 Applications run the analyzer on their own plans via\n\
                 `fempic --validate` / `cabana --validate`; telemetry\n\
                 streams come from their `--telemetry <file>` flag."
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("oppic-analyzer: unknown argument '{other}' (try --help)");
            ExitCode::FAILURE
        }
    }
}
