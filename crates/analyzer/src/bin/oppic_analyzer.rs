//! `oppic-analyzer` — command-line front-end of the loop-plan checker.
//!
//! Currently the binary runs the built-in self-test (CI's smoke check
//! of all three analysis passes); applications embed the library
//! directly via their `--validate` flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => {
            let results = oppic_analyzer::self_test();
            let mut failed = 0usize;
            for (desc, ok) in &results {
                println!("{} {desc}", if *ok { "PASS" } else { "FAIL" });
                if !*ok {
                    failed += 1;
                }
            }
            println!(
                "{}/{} scenarios passed",
                results.len() - failed,
                results.len()
            );
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("--help") | None => {
            println!(
                "oppic-analyzer: loop-plan checker for the OP-PIC DSL\n\
                 \n\
                 Usage:\n\
                 \x20 oppic-analyzer --self-test   run all three analysis passes on canned plans\n\
                 \n\
                 Applications run the analyzer on their own plans via\n\
                 `fempic --validate` / `cabana --validate`."
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("oppic-analyzer: unknown argument '{other}' (try --help)");
            ExitCode::FAILURE
        }
    }
}
