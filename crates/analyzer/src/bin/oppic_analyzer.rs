//! `oppic-analyzer` — command-line front-end of the loop-plan checker.
//!
//! The binary runs the built-in self-test (CI's smoke check of the
//! plan/shadow/map passes) and the offline telemetry-stream audit;
//! applications embed the library directly via their `--validate`
//! flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => {
            let results = oppic_analyzer::self_test();
            let mut failed = 0usize;
            for (desc, ok) in &results {
                println!("{} {desc}", if *ok { "PASS" } else { "FAIL" });
                if !*ok {
                    failed += 1;
                }
            }
            println!(
                "{}/{} scenarios passed",
                results.len() - failed,
                results.len()
            );
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("--audit-telemetry") => {
            let Some(path) = args.get(1) else {
                eprintln!("oppic-analyzer: --audit-telemetry requires a JSONL file path");
                return ExitCode::FAILURE;
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("oppic-analyzer: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let strict = args.iter().any(|a| a == "--strict");
            let report = oppic_analyzer::audit_telemetry(&src);
            println!("{report}");
            ExitCode::from(report.exit_code_strict(strict) as u8)
        }
        Some("--audit-schedule") => audit_schedule_cmd(&args[1..]),
        Some("--audit-metrics") => {
            let Some(path) = args.get(1) else {
                eprintln!("oppic-analyzer: --audit-metrics requires an exposition file path");
                return ExitCode::FAILURE;
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("oppic-analyzer: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match oppic_obs::metrics::audit_exposition(&src) {
                Ok(samples) => {
                    println!(
                        "PASS {path}: {samples} sample(s), all series match the \
                         oppic metric schema (DESIGN.md \u{a7}6)"
                    );
                    ExitCode::SUCCESS
                }
                Err(problems) => {
                    println!("FAIL {path}: {} problem(s)", problems.len());
                    for p in &problems {
                        println!("  {p}");
                    }
                    ExitCode::FAILURE
                }
            }
        }
        Some("--help") | None => {
            println!(
                "oppic-analyzer: loop-plan checker for the OP-PIC DSL\n\
                 \n\
                 Usage:\n\
                 \x20 oppic-analyzer --self-test                run the plan/shadow/map passes on canned plans\n\
                 \x20 oppic-analyzer --audit-telemetry <file> [--strict]\n\
                 \x20                                           audit a telemetry JSONL event stream\n\
                 \x20 oppic-analyzer --audit-schedule <trace.json> [--report <out.json>] [--dot <out.dot>] [--strict]\n\
                 \x20                                           audit a recorded step schedule (dataflow passes)\n\
                 \x20 oppic-analyzer --audit-metrics <file>     validate a Prometheus exposition snapshot\n\
                 \x20                                           against the oppic metric schema\n\
                 \n\
                 Schedule traces come from `fempic --record-schedule <file>` /\n\
                 `cabana --record-schedule <file>`; applications run the plan\n\
                 analyzer on their own loops via their `--validate` flags.\n\
                 `--strict` promotes Warn findings to a failing exit code."
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("oppic-analyzer: unknown argument '{other}' (try --help)");
            ExitCode::FAILURE
        }
    }
}

/// `--audit-schedule <trace.json> [--report <out>] [--dot <out>]
/// [--strict]`: run the dataflow passes over a recorded schedule,
/// print the verdicts, optionally write the machine-readable report
/// and the Graphviz dependence graph.
fn audit_schedule_cmd(args: &[String]) -> ExitCode {
    let mut trace_path: Option<&str> = None;
    let mut report_path: Option<&str> = None;
    let mut dot_path: Option<&str> = None;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => match it.next() {
                Some(p) => report_path = Some(p),
                None => {
                    eprintln!("oppic-analyzer: --report requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--dot" => match it.next() {
                Some(p) => dot_path = Some(p),
                None => {
                    eprintln!("oppic-analyzer: --dot requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--strict" => strict = true,
            other if trace_path.is_none() && !other.starts_with("--") => {
                trace_path = Some(other);
            }
            other => {
                eprintln!("oppic-analyzer: unexpected argument '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = trace_path else {
        eprintln!("oppic-analyzer: --audit-schedule requires a trace file path");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oppic-analyzer: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let audit = match oppic_analyzer::audit_schedule_json(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("oppic-analyzer: bad schedule trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "schedule audit: app '{}', {} step(s), {} event(s)",
        audit.app,
        audit.steps,
        audit.labels.len()
    );
    println!("{}", audit.report);
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(p, audit.report_json()) {
            eprintln!("oppic-analyzer: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {p}");
    }
    if let Some(p) = dot_path {
        if let Err(e) = std::fs::write(p, audit.dot()) {
            eprintln!("oppic-analyzer: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {p}");
    }
    ExitCode::from(audit.report.exit_code_strict(strict) as u8)
}
