//! Whole-step dataflow analysis — inter-loop dependence auditing over
//! a recorded [`ScheduleTrace`].
//!
//! The static pass ([`crate::static_check`]) proves each loop plan
//! coherent *in isolation*; the hazards that remain live *between*
//! loops: a deposit whose halo contributions are consumed before the
//! exchange that folds them home, an exchange nothing dirtied, a
//! fusion that would reorder a producer past its consumer. This module
//! lifts a recorded schedule (the sequence of loops, halo exchanges,
//! and global reductions one or more steps executed — see
//! `oppic_core::schedule`) plus the static access descriptors into a
//! per-dat dependence DAG and runs four verdict passes on the usual
//! Info/Warn/Error lattice:
//!
//! 1. **halo-staleness** (`dataflow/halo-stale`, Error) — a loop reads
//!    a halo region a prior loop dirtied with no intervening exchange,
//!    or reads a dat whose ghost-side increments are still unfolded.
//! 2. **redundant-comm** (`dataflow/redundant-comm`, Warn) — an
//!    exchange whose dat was not written since the last exchange.
//! 3. **overlap legality** ([`OverlapProof`], reported as
//!    `dataflow/overlap` Info) — per exchange, which subsequent loops
//!    provably touch only owned/interior data and may run concurrently
//!    with the communication. ROADMAP item 3 (async halo overlap)
//!    consumes these proofs as its static contract.
//! 4. **fusion legality** (`dataflow/fusable`, Info) — adjacent loops
//!    over the same set with no dependence edge between them.
//!
//! The dependence model distinguishes *owned* writes (each rank
//! updates its owned region; foreign ghost copies of those elements go
//! stale) from *partial* increments (an owned-scope indirect `INC`
//! lands contributions in ghost copies; every rank's value is a
//! partial sum until a reverse/reduce folds them). Replicated-scope
//! plain writes re-establish consistency: every rank overwrites the
//! full array with identical values (provided its inputs were
//! consistent — which pass 1 checks).

use crate::diag::{Diagnostic, Report, Severity};
use oppic_core::json::{self, Json};
use oppic_core::schedule::{
    ExchangeDir, LoopScope, ScheduleEvent, ScheduleLoop, ScheduleTrace, TraceEvent,
};
use oppic_core::{Access, Indirection};
use std::collections::BTreeMap;

/// Report format identifier; `ci.sh` gates on it to detect drift.
pub const REPORT_SCHEMA: &str = "oppic-schedule-report-v1";

/// Dependence edge kind between two schedule events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write: true dataflow.
    Raw,
    /// Write-after-read: anti-dependence.
    War,
    /// Write-after-write: output dependence.
    Waw,
}

impl DepKind {
    pub fn label(self) -> &'static str {
        match self {
            DepKind::Raw => "raw",
            DepKind::War => "war",
            DepKind::Waw => "waw",
        }
    }
}

/// One dependence edge, indexing into [`ScheduleTrace::events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub dat: String,
    pub kind: DepKind,
}

/// Per-exchange overlap-legality proof: the loops after this exchange
/// (through the end of the following step) partitioned into those that
/// provably touch only data the exchange does not move — safe to run
/// concurrently with it — and those blocked, with the blocking reason.
#[derive(Debug, Clone)]
pub struct OverlapProof {
    pub dat: String,
    pub dir: ExchangeDir,
    pub tag: String,
    /// Loop names legal to overlap with this exchange.
    pub legal: Vec<String>,
    /// `(loop name, reason)` for loops that must wait.
    pub blocked: Vec<(String, String)>,
}

/// Two adjacent loops over the same set with no dependence between
/// them — a legal fusion (one kernel launch, one sweep over the set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionCandidate {
    pub first: String,
    pub second: String,
    pub set: String,
}

/// The full audit result: verdicts plus the artifacts the verdicts
/// were derived from.
#[derive(Debug, Clone)]
pub struct ScheduleAudit {
    pub app: String,
    pub steps: u32,
    pub report: Report,
    /// Raw per-event dependence edges (every occurrence, not deduped).
    pub edges: Vec<Edge>,
    pub overlaps: Vec<OverlapProof>,
    pub fusions: Vec<FusionCandidate>,
    /// Display label per event (loop name or `dir(dat)`).
    pub labels: Vec<String>,
}

/// What one event does to one dat, merged across arguments.
#[derive(Debug, Clone, Default)]
struct Touch {
    reads: bool,
    writes: bool,
}

fn event_label(ev: &TraceEvent) -> String {
    match &ev.event {
        ScheduleEvent::Loop { name } => name.clone(),
        ScheduleEvent::Exchange { dat, dir, .. } => format!("{}({dat})", dir.label()),
    }
}

/// Merged dat footprint of an event. Loops touch their declared args;
/// point-data exchanges read+write their dat; a migration re-homes
/// every dat on the particle set (plus the set itself, standing in for
/// the particle→cell binding).
fn event_touches(trace: &ScheduleTrace, ev: &TraceEvent) -> BTreeMap<String, Touch> {
    let mut touches: BTreeMap<String, Touch> = BTreeMap::new();
    match &ev.event {
        ScheduleEvent::Loop { name } => {
            if let Some(l) = trace.loop_named(name) {
                for a in &l.decl.args {
                    let t = touches.entry(a.dat.clone()).or_default();
                    t.reads |= a.access.reads();
                    t.writes |= a.access.writes();
                }
            }
        }
        ScheduleEvent::Exchange { dat, dir, .. } => {
            if *dir == ExchangeDir::Migrate {
                for (d, s) in &trace.dat_sets {
                    if s == dat {
                        touches.insert(
                            d.clone(),
                            Touch {
                                reads: true,
                                writes: true,
                            },
                        );
                    }
                }
            }
            touches.insert(
                dat.clone(),
                Touch {
                    reads: true,
                    writes: true,
                },
            );
        }
    }
    touches
}

/// Build the per-dat dependence DAG over the whole event sequence.
fn build_edges(trace: &ScheduleTrace) -> Vec<Edge> {
    let mut edges = Vec::new();
    let mut last_writer: BTreeMap<String, usize> = BTreeMap::new();
    let mut readers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, ev) in trace.events.iter().enumerate() {
        for (dat, t) in event_touches(trace, ev) {
            if t.reads {
                if let Some(&w) = last_writer.get(&dat) {
                    edges.push(Edge {
                        from: w,
                        to: i,
                        dat: dat.clone(),
                        kind: DepKind::Raw,
                    });
                }
            }
            if t.writes {
                if let Some(&w) = last_writer.get(&dat) {
                    edges.push(Edge {
                        from: w,
                        to: i,
                        dat: dat.clone(),
                        kind: DepKind::Waw,
                    });
                }
                for &r in readers.get(&dat).map_or(&[][..], |v| v) {
                    if r != i {
                        edges.push(Edge {
                            from: r,
                            to: i,
                            dat: dat.clone(),
                            kind: DepKind::War,
                        });
                    }
                }
                last_writer.insert(dat.clone(), i);
                readers.remove(&dat);
            }
            if t.reads {
                readers.entry(dat).or_default().push(i);
            }
        }
    }
    edges
}

/// Per-dat halo state carried across the event walk. Both fields name
/// the event that put the dat in that state, for the diagnostics.
#[derive(Debug, Clone, Default)]
struct DatState {
    /// Foreign ghost copies of this dat are stale: an owned-scope loop
    /// (or a reverse_add, which zeroes ghosts) rewrote owner values
    /// and no forward/reduce has refreshed the halo since.
    stale_halo: Option<String>,
    /// Ghost-side increments are unfolded: an owned-scope indirect INC
    /// left every rank holding a partial sum.
    pending_partial: Option<String>,
}

fn scoped_read_touches_halo(scope: LoopScope, ind: Indirection) -> bool {
    // An owned-scope *direct* read touches only the reader's owned
    // region, which its own writes keep fresh. Any indirect access can
    // land in the ghost layer, and a replicated-scope loop sweeps the
    // full (conceptually ghost-inclusive) array.
    ind != Indirection::Direct || scope == LoopScope::Replicated
}

/// Walk the event sequence with the halo state machine, producing the
/// staleness/redundancy/migration verdicts.
fn verdict_walk(trace: &ScheduleTrace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut dats: BTreeMap<String, DatState> = BTreeMap::new();
    // Particle sets with particles sitting in foreign-owned cells
    // (a mover ran, no migration yet), with the mover's name.
    let mut unmigrated: BTreeMap<String, String> = BTreeMap::new();

    for ev in &trace.events {
        match &ev.event {
            ScheduleEvent::Loop { name } => {
                let Some(l) = trace.loop_named(name) else {
                    diags.push(Diagnostic::error(
                        "dataflow/unknown-loop",
                        name.clone(),
                        format!(
                            "step {}: trace event names a loop with no declared plan",
                            ev.step
                        ),
                    ));
                    continue;
                };
                check_loop(trace, l, ev.step, &mut dats, &unmigrated, &mut diags);
                if l.rebinds {
                    unmigrated.insert(l.decl.iter_set.clone(), l.decl.name.clone());
                }
            }
            ScheduleEvent::Exchange { dat, dir, tag } => {
                check_exchange(
                    trace,
                    ev.step,
                    dat,
                    *dir,
                    tag,
                    &mut dats,
                    &mut unmigrated,
                    &mut diags,
                );
            }
        }
    }
    diags
}

fn check_loop(
    trace: &ScheduleTrace,
    l: &ScheduleLoop,
    step: u32,
    dats: &mut BTreeMap<String, DatState>,
    unmigrated: &BTreeMap<String, String>,
    diags: &mut Vec<Diagnostic>,
) {
    let name = &l.decl.name;
    // Particle dats are owned outright; the migration hazard is any
    // *indirect* access from a particle-set loop — it resolves through
    // a particle→cell binding that no migration has re-homed yet, so
    // foreign-cell accesses land on the wrong rank.
    if let Some(mover) = unmigrated.get(&l.decl.iter_set) {
        if let Some(a) = l
            .decl
            .args
            .iter()
            .find(|a| a.indirection != Indirection::Direct)
        {
            diags.push(Diagnostic::warn(
                "dataflow/unmigrated",
                format!("{}@{name}", l.decl.iter_set),
                format!(
                    "step {step}: '{name}' accesses '{}' through the particle→cell \
                     map, but '{mover}' moved particles and no migration has \
                     re-homed them; foreign-cell accesses resolve on the wrong rank",
                    a.dat
                ),
            ));
        }
    }
    for a in &l.decl.args {
        if trace.is_particle_data(&a.dat) {
            continue;
        }
        let st = dats.entry(a.dat.clone()).or_default();
        // Reads first: a RW/INC arg observes the pre-write state.
        if a.access.reads() {
            if let Some(writer) = &st.pending_partial {
                diags.push(Diagnostic::error(
                    "dataflow/halo-stale",
                    format!("{}@{name}", a.dat),
                    format!(
                        "step {step}: '{name}' reads '{}' while ghost increments from \
                         '{writer}' are unfolded — every rank holds a partial sum; a \
                         reverse_add or reduce_sum exchange must run first",
                        a.dat
                    ),
                ));
            } else if let Some(writer) = &st.stale_halo {
                if scoped_read_touches_halo(l.scope, a.indirection) {
                    diags.push(Diagnostic::error(
                        "dataflow/halo-stale",
                        format!("{}@{name}", a.dat),
                        format!(
                            "step {step}: '{name}' reads the halo region of '{}' dirtied \
                             by '{writer}' with no forward exchange in between",
                            a.dat
                        ),
                    ));
                }
            }
        }
        if a.access.writes() {
            match l.scope {
                LoopScope::Replicated => {
                    // Every rank applies the identical full-array
                    // update: the dat is consistent again.
                    st.stale_halo = None;
                    st.pending_partial = None;
                }
                LoopScope::Owned => {
                    if a.access == Access::Inc && a.indirection != Indirection::Direct {
                        st.pending_partial = Some(name.clone());
                    } else {
                        st.stale_halo = Some(name.clone());
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_exchange(
    trace: &ScheduleTrace,
    step: u32,
    dat: &str,
    dir: ExchangeDir,
    tag: &str,
    dats: &mut BTreeMap<String, DatState>,
    unmigrated: &mut BTreeMap<String, String>,
    diags: &mut Vec<Diagnostic>,
) {
    let subject = format!("{dat}@{tag}");
    if dir == ExchangeDir::Migrate {
        if !trace.particle_sets.iter().any(|s| s == dat) {
            diags.push(Diagnostic::error(
                "dataflow/unknown-dat",
                subject,
                format!("step {step}: migrate exchange names '{dat}', not a declared particle set"),
            ));
            return;
        }
        if unmigrated.remove(dat).is_none() {
            diags.push(Diagnostic::warn(
                "dataflow/redundant-comm",
                subject,
                format!(
                    "step {step}: migration of '{dat}' with no particle mover since the \
                     last migration — nothing can have left its rank"
                ),
            ));
        }
        return;
    }
    if trace.set_of(dat).is_none() {
        diags.push(Diagnostic::error(
            "dataflow/unknown-dat",
            subject,
            format!("step {step}: exchange names undeclared dat '{dat}'"),
        ));
        return;
    }
    let st = dats.entry(dat.to_string()).or_default();
    match dir {
        ExchangeDir::Forward => {
            if let Some(writer) = &st.pending_partial {
                diags.push(Diagnostic::error(
                    "dataflow/lost-update",
                    subject,
                    format!(
                        "step {step}: forward exchange of '{dat}' while ghost increments \
                         from '{writer}' are unfolded — owners push partial sums and \
                         overwrite the ghost-side contributions, losing them"
                    ),
                ));
                st.pending_partial = None;
            } else if st.stale_halo.is_none() {
                diags.push(Diagnostic::warn(
                    "dataflow/redundant-comm",
                    subject,
                    format!(
                        "step {step}: forward exchange of '{dat}', but no loop wrote it \
                         since its halo was last refreshed"
                    ),
                ));
            }
            st.stale_halo = None;
        }
        ExchangeDir::ReverseAdd => {
            if st.pending_partial.is_none() {
                diags.push(Diagnostic::warn(
                    "dataflow/redundant-comm",
                    subject,
                    format!(
                        "step {step}: reverse_add exchange of '{dat}' with no unfolded \
                         ghost increments to fold"
                    ),
                ));
            }
            st.pending_partial = None;
            // reverse_add zeroes the ghost copies after folding: owner
            // values are total, the halo is stale until a forward runs.
            st.stale_halo = Some(format!("reverse_add@{tag}"));
        }
        ExchangeDir::ReduceSum => {
            if st.pending_partial.is_none() && st.stale_halo.is_none() {
                diags.push(Diagnostic::warn(
                    "dataflow/redundant-comm",
                    subject,
                    format!(
                        "step {step}: reduce_sum of '{dat}', but no loop wrote it since \
                         the last exchange"
                    ),
                ));
            }
            st.stale_halo = None;
            st.pending_partial = None;
        }
        ExchangeDir::Migrate => unreachable!("handled above"),
    }
}

/// Why a loop may not overlap a given exchange, or `None` if it
/// provably may.
fn overlap_block_reason(
    trace: &ScheduleTrace,
    dat: &str,
    dir: ExchangeDir,
    l: &ScheduleLoop,
) -> Option<String> {
    match dir {
        ExchangeDir::Migrate => {
            if l.decl.iter_set == dat {
                return Some(format!("iterates migrating set '{dat}'"));
            }
            for a in &l.decl.args {
                if trace.set_of(&a.dat) == Some(dat) {
                    return Some(format!("accesses '{}' on migrating set '{dat}'", a.dat));
                }
            }
            None
        }
        ExchangeDir::Forward => {
            // Forward rewrites ghost copies only: owned-region direct
            // reads are safe, anything touching the halo is not.
            for a in &l.decl.args {
                if a.dat != dat {
                    continue;
                }
                if a.access.writes() {
                    return Some(format!("writes '{dat}' during its exchange"));
                }
                if scoped_read_touches_halo(l.scope, a.indirection) {
                    return Some(format!("reads the in-flight halo of '{dat}'"));
                }
            }
            None
        }
        ExchangeDir::ReverseAdd | ExchangeDir::ReduceSum => {
            // Owner values mutate mid-flight: any access at all races.
            for a in &l.decl.args {
                if a.dat == dat {
                    return Some(format!("accesses '{dat}' while the exchange rewrites it"));
                }
            }
            None
        }
    }
}

/// Per exchange, classify every loop from the exchange to the end of
/// the *following* step (communication latency is hidden across the
/// step boundary). Deduped by `(dat, dir, tag)` across recorded steps.
fn prove_overlaps(trace: &ScheduleTrace) -> Vec<OverlapProof> {
    let mut proofs: Vec<OverlapProof> = Vec::new();
    for (i, ev) in trace.events.iter().enumerate() {
        let ScheduleEvent::Exchange { dat, dir, tag } = &ev.event else {
            continue;
        };
        if proofs
            .iter()
            .any(|p| p.dat == *dat && p.dir == *dir && p.tag == *tag)
        {
            continue;
        }
        let mut legal = Vec::new();
        let mut blocked = Vec::new();
        for later in &trace.events[i + 1..] {
            if later.step > ev.step + 1 {
                break;
            }
            let ScheduleEvent::Loop { name } = &later.event else {
                continue;
            };
            let Some(l) = trace.loop_named(name) else {
                continue;
            };
            match overlap_block_reason(trace, dat, *dir, l) {
                None => {
                    if !legal.contains(name) {
                        legal.push(name.clone());
                    }
                }
                Some(reason) => {
                    if !blocked.iter().any(|(n, _)| n == name) {
                        blocked.push((name.clone(), reason));
                    }
                }
            }
        }
        proofs.push(OverlapProof {
            dat: dat.clone(),
            dir: *dir,
            tag: tag.clone(),
            legal,
            blocked,
        });
    }
    proofs
}

/// Adjacent same-set loop pairs with no dependence between them.
fn find_fusions(trace: &ScheduleTrace) -> Vec<FusionCandidate> {
    let mut out: Vec<FusionCandidate> = Vec::new();
    for w in trace.events.windows(2) {
        let (ScheduleEvent::Loop { name: a }, ScheduleEvent::Loop { name: b }) =
            (&w[0].event, &w[1].event)
        else {
            continue;
        };
        if w[0].step != w[1].step {
            continue;
        }
        let (Some(la), Some(lb)) = (trace.loop_named(a), trace.loop_named(b)) else {
            continue;
        };
        if la.decl.iter_set != lb.decl.iter_set || la.rebinds || lb.rebinds {
            continue;
        }
        let conflicts = la.decl.args.iter().any(|x| {
            lb.decl
                .args
                .iter()
                .any(|y| x.dat == y.dat && (x.access.writes() || y.access.writes()))
        });
        if conflicts {
            continue;
        }
        if !out.iter().any(|f| f.first == *a && f.second == *b) {
            out.push(FusionCandidate {
                first: a.clone(),
                second: b.clone(),
                set: la.decl.iter_set.clone(),
            });
        }
    }
    out
}

/// Run the full audit: DAG, verdict walk, overlap proofs, fusion scan.
pub fn audit_schedule(trace: &ScheduleTrace) -> ScheduleAudit {
    let edges = build_edges(trace);
    let mut report = Report::new();

    // Dedup verdicts by (code, subject): a 2-step recording raises each
    // schedule defect once per step, but it is one defect.
    let mut seen: Vec<(&'static str, String)> = Vec::new();
    for d in verdict_walk(trace) {
        let key = (d.code, d.subject.clone());
        if !seen.contains(&key) {
            seen.push(key);
            report.push(d);
        }
    }

    let overlaps = prove_overlaps(trace);
    for p in &overlaps {
        let subject = format!("{}@{}", p.dat, p.tag);
        if p.legal.is_empty() {
            report.push(Diagnostic::warn(
                "dataflow/overlap-none",
                subject,
                format!(
                    "no loop within a step of the {} exchange of '{}' can legally \
                     overlap it; the exchange latency cannot be hidden",
                    p.dir.label(),
                    p.dat
                ),
            ));
        } else {
            report.push(Diagnostic::info(
                "dataflow/overlap",
                subject,
                format!(
                    "{} exchange of '{}' may overlap: {}",
                    p.dir.label(),
                    p.dat,
                    p.legal.join(", ")
                ),
            ));
        }
    }

    let fusions = find_fusions(trace);
    for f in &fusions {
        report.push(Diagnostic::info(
            "dataflow/fusable",
            format!("{}+{}", f.first, f.second),
            format!(
                "adjacent loops over '{}' with no dependence between them: \
                 candidates for fusion into one sweep",
                f.set
            ),
        ));
    }

    let labels = trace.events.iter().map(event_label).collect();
    ScheduleAudit {
        app: trace.app.clone(),
        steps: trace.steps,
        report,
        edges,
        overlaps,
        fusions,
        labels,
    }
}

impl ScheduleAudit {
    /// Name-level edges, deduped (the per-step repeats collapse).
    fn edge_rows(&self) -> Vec<(String, String, &str, &str)> {
        let mut rows: Vec<(String, String, &str, &str)> = Vec::new();
        for e in &self.edges {
            let row = (
                self.labels[e.from].clone(),
                self.labels[e.to].clone(),
                e.dat.as_str(),
                e.kind.label(),
            );
            if !rows.contains(&row) {
                rows.push(row);
            }
        }
        rows
    }

    /// The machine-readable `schedule-report.json` document.
    /// Deterministic for a given trace: no timestamps, no hash-order
    /// iteration — CI diffs it against the committed artifact.
    pub fn report_json(&self) -> String {
        let mut s = String::with_capacity(8192);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", json::quote(REPORT_SCHEMA)));
        s.push_str(&format!("  \"app\": {},\n", json::quote(&self.app)));
        s.push_str(&format!("  \"steps\": {},\n", self.steps));
        s.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"notes\": {}}},\n",
            self.report.count(Severity::Error),
            self.report.count(Severity::Warn),
            self.report.count(Severity::Info)
        ));
        s.push_str("  \"verdicts\": [");
        for (i, d) in self.report.diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"severity\": {}, \"code\": {}, \"subject\": {}, \"message\": {}}}",
                json::quote(&d.severity.to_string()),
                json::quote(d.code),
                json::quote(&d.subject),
                json::quote(&d.message)
            ));
        }
        s.push_str("\n  ],\n  \"edges\": [");
        for (i, (from, to, dat, kind)) in self.edge_rows().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"from\": {}, \"to\": {}, \"dat\": {}, \"kind\": {}}}",
                json::quote(from),
                json::quote(to),
                json::quote(dat),
                json::quote(kind)
            ));
        }
        s.push_str("\n  ],\n  \"overlaps\": [");
        for (i, p) in self.overlaps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"dat\": {}, \"dir\": {}, \"tag\": {}, \"legal\": [",
                json::quote(&p.dat),
                json::quote(p.dir.label()),
                json::quote(&p.tag)
            ));
            for (k, l) in p.legal.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json::quote(l));
            }
            s.push_str("], \"blocked\": [");
            for (k, (l, why)) in p.blocked.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"loop\": {}, \"reason\": {}}}",
                    json::quote(l),
                    json::quote(why)
                ));
            }
            s.push_str("]}");
        }
        s.push_str("\n  ],\n  \"fusions\": [");
        for (i, f) in self.fusions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"first\": {}, \"second\": {}, \"set\": {}}}",
                json::quote(&f.first),
                json::quote(&f.second),
                json::quote(&f.set)
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Graphviz rendering of the deduped dependence DAG: loops as
    /// boxes, exchanges as ellipses, edge style per dependence kind.
    pub fn dot(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("digraph schedule {\n  rankdir=LR;\n  node [fontsize=10];\n");
        let mut nodes: Vec<&String> = Vec::new();
        for l in &self.labels {
            if !nodes.contains(&l) {
                nodes.push(l);
                let shape = if l.contains('(') {
                    "ellipse, style=filled, fillcolor=lightblue"
                } else {
                    "box"
                };
                s.push_str(&format!("  \"{l}\" [shape={shape}];\n"));
            }
        }
        for (from, to, dat, kind) in self.edge_rows() {
            let style = match kind {
                "raw" => "solid",
                "war" => "dashed",
                _ => "dotted",
            };
            s.push_str(&format!(
                "  \"{from}\" -> \"{to}\" [label=\"{dat}\", style={style}];\n"
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Parse and audit a trace file's contents (the `--audit-schedule`
/// entry point's core).
pub fn audit_schedule_json(src: &str) -> Result<ScheduleAudit, String> {
    let trace = ScheduleTrace::from_json(src)?;
    Ok(audit_schedule(&trace))
}

/// Quick structural check that a report document still matches
/// [`REPORT_SCHEMA`] — the CI schema-drift gate.
pub fn check_report_schema(src: &str) -> Result<(), String> {
    let doc = json::parse(src)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == REPORT_SCHEMA => {}
        Some(s) => return Err(format!("report schema is {s:?}, want {REPORT_SCHEMA:?}")),
        None => return Err("report missing \"schema\" field".into()),
    }
    for key in [
        "app", "steps", "summary", "verdicts", "edges", "overlaps", "fusions",
    ] {
        if doc.get(key).is_none() {
            return Err(format!("report missing {key:?} section"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppic_core::access::{ArgDecl, LoopDecl};
    use oppic_core::plan::LoopPlan;
    use oppic_core::schedule::ScheduleRecorder;
    use oppic_core::{ExecPolicy, PlanRegistry};

    /// A miniature PIC step: an owned particle deposit into a mesh dat,
    /// a replicated solve reading it, a replicated field update reading
    /// the solve's output.
    fn registry() -> PlanRegistry {
        let mut plans = PlanRegistry::new();
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "Move",
                "particles",
                vec![ArgDecl::direct("pos", 3, Access::ReadWrite)],
            ),
            &ExecPolicy::Seq,
        ));
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "Deposit",
                "particles",
                vec![
                    ArgDecl::direct("lc", 4, Access::Read),
                    ArgDecl::double_indirect("charge", 1, Access::Inc, "p2c.c2n"),
                ],
            ),
            &ExecPolicy::Seq,
        ));
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "Solve",
                "nodes",
                vec![
                    ArgDecl::direct("charge", 1, Access::Read),
                    ArgDecl::direct("phi", 1, Access::Write),
                ],
            ),
            &ExecPolicy::Seq,
        ));
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "FieldUpdate",
                "cells",
                vec![
                    ArgDecl::indirect("phi", 1, Access::Read, "c2n"),
                    ArgDecl::direct("efield", 3, Access::Write),
                ],
            ),
            &ExecPolicy::Seq,
        ));
        plans
    }

    fn scopes() -> Vec<(&'static str, LoopScope, bool)> {
        vec![
            ("Move", LoopScope::Owned, true),
            ("Deposit", LoopScope::Owned, false),
            ("Solve", LoopScope::Replicated, false),
            ("FieldUpdate", LoopScope::Replicated, false),
        ]
    }

    fn trace_of(steps: u32, per_step: &dyn Fn(&ScheduleRecorder)) -> ScheduleTrace {
        let rec = ScheduleRecorder::new();
        for _ in 0..steps {
            rec.begin_step();
            per_step(&rec);
        }
        ScheduleTrace::from_recording(
            "test",
            &registry(),
            &scopes(),
            &["particles"],
            &[
                ("pos", "particles"),
                ("lc", "particles"),
                ("charge", "nodes"),
                ("phi", "nodes"),
                ("efield", "cells"),
            ],
            &rec,
        )
    }

    fn full_step(rec: &ScheduleRecorder) {
        rec.record_loop("Move");
        rec.record_exchange("particles", ExchangeDir::Migrate, "t/mig");
        rec.record_loop("Deposit");
        rec.record_exchange("charge", ExchangeDir::ReduceSum, "t/charge");
        rec.record_loop("Solve");
        rec.record_loop("FieldUpdate");
    }

    #[test]
    fn valid_schedule_is_error_free() {
        let audit = audit_schedule(&trace_of(2, &full_step));
        assert!(
            !audit.report.has_errors(),
            "valid schedule must not error:\n{}",
            audit.report
        );
        assert_eq!(audit.report.count(Severity::Warn), 0, "{}", audit.report);
    }

    #[test]
    fn missing_reduce_is_a_halo_staleness_error() {
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Move");
            rec.record_exchange("particles", ExchangeDir::Migrate, "t/mig");
            rec.record_loop("Deposit");
            rec.record_loop("Solve"); // reads partial charge
        }));
        let stale = audit.report.with_code("dataflow/halo-stale");
        assert_eq!(stale.len(), 1, "{}", audit.report);
        assert_eq!(stale[0].severity, Severity::Error);
        assert!(stale[0].subject.contains("charge"), "{}", stale[0]);
    }

    #[test]
    fn duplicate_exchange_is_redundant_comm() {
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Move");
            rec.record_exchange("particles", ExchangeDir::Migrate, "t/mig");
            rec.record_loop("Deposit");
            rec.record_exchange("charge", ExchangeDir::ReduceSum, "t/charge");
            rec.record_exchange("charge", ExchangeDir::ReduceSum, "t/charge2");
            rec.record_loop("Solve");
            rec.record_loop("FieldUpdate");
        }));
        assert!(!audit.report.has_errors(), "{}", audit.report);
        let red = audit.report.with_code("dataflow/redundant-comm");
        assert_eq!(red.len(), 1, "{}", audit.report);
        assert!(red[0].subject.contains("t/charge2"), "{}", red[0]);
    }

    #[test]
    fn migration_without_mover_is_redundant_and_absent_migration_warns() {
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_exchange("particles", ExchangeDir::Migrate, "t/mig");
        }));
        assert_eq!(
            audit.report.with_code("dataflow/redundant-comm").len(),
            1,
            "{}",
            audit.report
        );

        // Mover, then an indirect particle loop with no migration.
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Move");
            rec.record_loop("Deposit");
            rec.record_exchange("charge", ExchangeDir::ReduceSum, "t/charge");
        }));
        let un = audit.report.with_code("dataflow/unmigrated");
        assert_eq!(un.len(), 1, "{}", audit.report);
        assert_eq!(un[0].severity, Severity::Warn);
    }

    #[test]
    fn unknown_loop_and_dat_are_errors() {
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Nope");
            rec.record_exchange("mystery", ExchangeDir::Forward, "t/x");
        }));
        assert_eq!(audit.report.with_code("dataflow/unknown-loop").len(), 1);
        assert_eq!(audit.report.with_code("dataflow/unknown-dat").len(), 1);
        assert!(audit.report.has_errors());
    }

    #[test]
    fn forward_while_increments_pending_loses_updates() {
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Deposit");
            rec.record_exchange("charge", ExchangeDir::Forward, "t/charge");
            rec.record_loop("Solve");
            rec.record_loop("FieldUpdate");
        }));
        assert_eq!(
            audit.report.with_code("dataflow/lost-update").len(),
            1,
            "{}",
            audit.report
        );
    }

    #[test]
    fn reverse_add_leaves_halo_stale_until_forward() {
        // reverse_add folds increments home but zeroes ghosts: an
        // indirect read right after must error, and a forward fixes it.
        let broken = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Deposit");
            rec.record_exchange("charge", ExchangeDir::ReverseAdd, "t/charge");
            rec.record_loop("Solve"); // replicated read of zeroed ghosts
        }));
        assert_eq!(broken.report.with_code("dataflow/halo-stale").len(), 1);

        let fixed = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Deposit");
            rec.record_exchange("charge", ExchangeDir::ReverseAdd, "t/charge");
            rec.record_exchange("charge", ExchangeDir::Forward, "t/charge-fwd");
            rec.record_loop("Solve");
            rec.record_loop("FieldUpdate");
        }));
        assert!(!fixed.report.has_errors(), "{}", fixed.report);
    }

    #[test]
    fn dag_has_the_expected_dependences() {
        let audit = audit_schedule(&trace_of(1, &full_step));
        let rows = audit.edge_rows();
        // Deposit produces charge, the reduce moves it, Solve consumes.
        assert!(rows.iter().any(|(f, t, d, k)| f == "Deposit"
            && t == "reduce_sum(charge)"
            && *d == "charge"
            && *k == "raw"));
        assert!(rows.iter().any(|(f, t, d, k)| f == "reduce_sum(charge)"
            && t == "Solve"
            && *d == "charge"
            && *k == "raw"));
        // Solve's phi feeds FieldUpdate.
        assert!(rows
            .iter()
            .any(|(f, t, d, k)| f == "Solve" && t == "FieldUpdate" && *d == "phi" && *k == "raw"));
    }

    #[test]
    fn overlap_proofs_find_legal_loops_per_exchange() {
        let audit = audit_schedule(&trace_of(2, &full_step));
        assert_eq!(audit.overlaps.len(), 2, "one proof per distinct exchange");
        for p in &audit.overlaps {
            assert!(
                !p.legal.is_empty(),
                "exchange {}({}) has no overlap-legal loop",
                p.dir.label(),
                p.dat
            );
        }
        let mig = audit
            .overlaps
            .iter()
            .find(|p| p.dir == ExchangeDir::Migrate)
            .unwrap();
        // Field loops don't touch particle data: legal under migration.
        assert!(mig.legal.contains(&"Solve".to_string()), "{mig:?}");
        assert!(mig.legal.contains(&"FieldUpdate".to_string()), "{mig:?}");
        assert!(mig.blocked.iter().any(|(n, _)| n == "Deposit"), "{mig:?}");
        let red = audit
            .overlaps
            .iter()
            .find(|p| p.dir == ExchangeDir::ReduceSum)
            .unwrap();
        // Solve reads charge: blocked. FieldUpdate doesn't touch it.
        assert!(red.blocked.iter().any(|(n, _)| n == "Solve"), "{red:?}");
        assert!(red.legal.contains(&"FieldUpdate".to_string()), "{red:?}");
    }

    #[test]
    fn fusion_scan_respects_dependences() {
        // Solve writes phi, FieldUpdate reads it: never fusable; and
        // they iterate different sets anyway. Two independent
        // replicated node loops are.
        let mut plans = registry();
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "Damp",
                "nodes",
                vec![ArgDecl::direct("efield_n", 3, Access::Write)],
            ),
            &ExecPolicy::Seq,
        ));
        let rec = ScheduleRecorder::new();
        rec.begin_step();
        rec.record_loop("Solve");
        rec.record_loop("Damp");
        let mut scopes = scopes();
        scopes.push(("Damp", LoopScope::Replicated, false));
        let trace = ScheduleTrace::from_recording(
            "test",
            &plans,
            &scopes,
            &["particles"],
            &[("charge", "nodes"), ("phi", "nodes"), ("efield_n", "nodes")],
            &rec,
        );
        let audit = audit_schedule(&trace);
        assert_eq!(
            audit.fusions,
            vec![FusionCandidate {
                first: "Solve".into(),
                second: "Damp".into(),
                set: "nodes".into(),
            }]
        );

        // No candidate when the pair conflicts.
        let audit = audit_schedule(&trace_of(1, &|rec| {
            rec.record_loop("Solve");
            rec.record_loop("FieldUpdate");
        }));
        assert!(audit.fusions.is_empty());
    }

    #[test]
    fn report_json_is_schema_valid_and_deterministic() {
        let audit = audit_schedule(&trace_of(2, &full_step));
        let a = audit.report_json();
        let b = audit_schedule(&trace_of(2, &full_step)).report_json();
        assert_eq!(a, b, "report must be deterministic");
        check_report_schema(&a).expect("schema-valid report");
        assert!(check_report_schema("{\"schema\": \"bogus\"}").is_err());
        let doc = json::parse(&a).expect("parseable report");
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("errors"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn dot_renders_nodes_and_edges() {
        let audit = audit_schedule(&trace_of(1, &full_step));
        let dot = audit.dot();
        assert!(dot.starts_with("digraph schedule {"), "{dot}");
        assert!(dot.contains("\"Deposit\""), "{dot}");
        assert!(dot.contains("reduce_sum(charge)"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
    }
}
