//! Diagnostics — the analyzer's structured findings.
//!
//! Every pass (static plan validation, shadow race detection, map
//! audits) reports through the same [`Diagnostic`] record with a
//! three-level severity lattice, so drivers can aggregate the passes
//! into one [`Report`] and derive a single exit code.

/// Severity lattice: `Info < Warn < Error`. Only `Error` findings make
/// `--validate` exit non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation: nothing wrong, worth knowing (e.g. an unused race
    /// strategy).
    Info,
    /// Legal but suspicious: the plan is sound yet probably not what
    /// was meant (e.g. a serial deposit under a parallel policy).
    Warn,
    /// Incoherent plan or violated invariant: running it risks wrong
    /// answers or undefined behaviour.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding, attributed to a loop, map, or set by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable machine-readable code, `pass/rule` shaped (e.g.
    /// `"plan/racy-inc"`, `"map/out-of-range"`, `"race/conflict"`).
    pub code: &'static str,
    /// The loop / map / set the finding is about.
    pub subject: String,
    pub message: String,
}

impl Diagnostic {
    pub fn error(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            subject: subject.into(),
            message: message.into(),
        }
    }

    pub fn warn(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warn,
            code,
            subject: subject.into(),
            message: message.into(),
        }
    }

    pub fn info(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Info,
            code,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.subject, self.message
        )
    }
}

/// An ordered collection of findings from one or more passes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub diags: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Self {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(diags);
    }

    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// The worst severity present, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Findings with the given code (test convenience).
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diags.iter().filter(|d| d.code == code).collect()
    }

    /// Process exit code for `--validate`-style drivers: 1 when any
    /// `Error` finding exists, else 0.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_errors())
    }

    /// Exit code under an optional `--strict` policy: strict runs also
    /// fail on `Warn` findings (a clean-but-for-notes report still
    /// exits 0 either way).
    pub fn exit_code_strict(&self, strict: bool) -> i32 {
        if strict {
            i32::from(self.max_severity().is_some_and(|s| s >= Severity::Warn))
        } else {
            self.exit_code()
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_as_a_lattice() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(
            [Severity::Warn, Severity::Error, Severity::Info]
                .iter()
                .max(),
            Some(&Severity::Error)
        );
    }

    #[test]
    fn report_aggregates_and_exits() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.exit_code(), 0);
        r.push(Diagnostic::info("plan/unused-strategy", "L", "note"));
        // Notes alone never fail, strict or not.
        assert_eq!(r.exit_code_strict(true), 0);
        r.push(Diagnostic::warn("plan/serialised-deposit", "L", "warn"));
        assert_eq!(r.max_severity(), Some(Severity::Warn));
        assert_eq!(r.exit_code(), 0);
        // Regression: --strict must promote Warn findings to failure.
        assert_eq!(r.exit_code_strict(true), 1);
        assert_eq!(r.exit_code_strict(false), 0);
        r.push(Diagnostic::error("plan/racy-inc", "L", "boom"));
        assert!(r.has_errors());
        assert_eq!(r.exit_code(), 1);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.with_code("plan/racy-inc").len(), 1);
        let text = r.to_string();
        assert!(text.contains("error[plan/racy-inc]"), "{text}");
        assert!(
            text.contains("1 error(s), 1 warning(s), 1 note(s)"),
            "{text}"
        );
    }
}
