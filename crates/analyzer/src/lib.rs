//! # oppic-analyzer — the OP-PIC loop-plan checker.
//!
//! The C++ OP-PIC gets correctness by construction: its clang
//! translator reads every loop's access descriptors and emits code
//! that is race-free for the chosen backend. This Rust reproduction
//! dispatches loops by hand, so the same knowledge must be *checked*
//! rather than generated. This crate is that checker, in three passes:
//!
//! 1. **Static plan validation** ([`static_check`]) — given each
//!    loop's [`oppic_core::plan::LoopPlan`] (descriptors + executor +
//!    race strategy), reject incoherent pairings: an indirect `INC`
//!    under a parallel policy with no race strategy, scattered plain
//!    writes from particle loops, aliasing access routes, and — with a
//!    declaration [`oppic_core::decl::Registry`] — dim mismatches and
//!    maps that don't compose from the iteration set to the dat.
//! 2. **Shadow race detection** ([`shadow`]) — replay a kernel
//!    sequentially, record per-iteration read/write/inc footprints,
//!    and report iteration pairs that conflict under the *intended*
//!    parallel schedule (all-parallel or colored rounds).
//! 3. **Map-invariant audits** ([`audit`]) — bounds/validity checks
//!    for static mesh maps, the dynamic particle→cell map after
//!    move/hole-fill, and deposit colorings.
//! 4. **Telemetry audit** ([`telemetry_audit`]) — offline replay of a
//!    telemetry JSONL event stream (`--telemetry` runs): span/path
//!    coherence, step ordering, and per-step counter invariants.
//!
//! All passes report [`diag::Diagnostic`]s on an Info/Warn/Error
//! lattice; only errors fail a `--validate` run.

pub mod audit;
pub mod dataflow;
pub mod diag;
pub mod shadow;
pub mod static_check;
pub mod telemetry_audit;

pub use audit::{
    audit_cell_index, audit_coloring, audit_mesh_map, audit_particle_cells, audit_report,
};
pub use dataflow::{
    audit_schedule, audit_schedule_json, check_report_schema, DepKind, Edge, FusionCandidate,
    OverlapProof, ScheduleAudit, REPORT_SCHEMA,
};
pub use diag::{Diagnostic, Report, Severity};
pub use shadow::{shadow_record, AccessKind, Race, RaceOptions, Schedule, ShadowCtx, ShadowRun};
pub use static_check::{check_plan, check_plans};
pub use telemetry_audit::audit_telemetry;

use oppic_core::access::{Access, ArgDecl, LoopDecl};
use oppic_core::deposit::{greedy_color_cells, DepositMethod};
use oppic_core::parloop::ExecPolicy;
use oppic_core::plan::{LoopPlan, RaceStrategy};

/// End-to-end self-check of all three passes on canned plans — run by
/// `oppic-analyzer --self-test` and callable from tests. Returns one
/// `(description, passed)` entry per scenario.
pub fn self_test() -> Vec<(&'static str, bool)> {
    let mut results = Vec::new();
    let mut check = |desc: &'static str, ok: bool| results.push((desc, ok));

    let deposit_decl = LoopDecl::new(
        "DepositCharge",
        "particles",
        vec![
            ArgDecl::direct("lc", 4, Access::Read),
            ArgDecl::double_indirect("node_charge", 1, Access::Inc, "p2c.c2n"),
        ],
    );

    // Pass 1: a racy parallel plan must be rejected...
    let racy = LoopPlan::new(deposit_decl.clone(), &ExecPolicy::Par, RaceStrategy::None);
    let diags = check_plan(&racy, None);
    check(
        "static: parallel double-indirect INC without a strategy is an Error",
        diags
            .iter()
            .any(|d| d.code == "plan/racy-inc" && d.severity == Severity::Error),
    );
    // ...and the same loop with a real strategy accepted.
    let safe = LoopPlan::new(
        deposit_decl.clone(),
        &ExecPolicy::Par,
        RaceStrategy::Deposit(DepositMethod::ScatterArrays),
    );
    check(
        "static: the same plan with scatter arrays is clean",
        check_plan(&safe, None).is_empty(),
    );

    // Pass 1b: the cell-locality engine's plan rule — SortedSegments
    // with no fresh-index attestation is a data race in waiting.
    let ss = RaceStrategy::Deposit(DepositMethod::SortedSegments);
    let stale = LoopPlan::new(deposit_decl.clone(), &ExecPolicy::Par, ss);
    check(
        "static: parallel SortedSegments without a fresh cell index is an Error",
        check_plan(&stale, None)
            .iter()
            .any(|d| d.code == "plan/stale-index" && d.severity == Severity::Error),
    );
    let attested =
        LoopPlan::new(deposit_decl.clone(), &ExecPolicy::Par, ss).with_index_freshness(true);
    check(
        "static: the same plan attesting a fresh index is clean",
        !check_plan(&attested, None)
            .iter()
            .any(|d| d.code == "plan/stale-index"),
    );

    // Pass 2: shadow replay of a 2-cell deposit sharing one node.
    let cell_targets = [vec![0usize, 1], vec![1, 2]];
    let particle_cells = [0usize, 0, 1, 1];
    let record = || {
        shadow_record(particle_cells.len(), |i, ctx| {
            for &t in &cell_targets[particle_cells[i]] {
                ctx.inc("node_charge", t);
            }
        })
    };
    let run = record();
    check(
        "shadow: unsynchronised parallel increments conflict on the shared node",
        !run.detect_races(Schedule::AllParallel, &RaceOptions::default())
            .is_empty(),
    );
    // The colored deposit's schedule: colors barrier the rounds and
    // each same-color *cell* is one serial group.
    let (colors, n_colors) = greedy_color_cells(&cell_targets, 3);
    let particle_colors: Vec<u32> = particle_cells.iter().map(|&c| colors[c]).collect();
    let particle_groups: Vec<u32> = particle_cells.iter().map(|&c| c as u32).collect();
    let colored = Schedule::ColoredGroups {
        colors: &particle_colors,
        groups: &particle_groups,
    };
    check(
        "shadow: a greedy distance-2 coloring separates the writers",
        n_colors >= 2
            && run
                .detect_races(colored, &RaceOptions::default())
                .is_empty(),
    );
    let merged = vec![0u32; particle_cells.len()];
    let collapsed = Schedule::ColoredGroups {
        colors: &merged,
        groups: &particle_groups,
    };
    check(
        "shadow: collapsing the color rounds reintroduces the conflict",
        !run.detect_races(collapsed, &RaceOptions::default())
            .is_empty(),
    );

    // Pass 2b: the sorted-segments owner-computes schedule is race-free
    // on the owned dat even where all-parallel conflicts.
    check(
        "shadow: owner-computes accepts the segment schedule as race-free",
        run.detect_races(
            Schedule::OwnerComputes {
                owned: "node_charge",
            },
            &RaceOptions::default(),
        )
        .is_empty(),
    );

    // Pass 3: map audits.
    let good_map = [0, 1, 1, 2];
    check(
        "audit: an in-range mesh map is clean",
        !audit_mesh_map("c2n", &good_map, 2, 2, 3, false)
            .iter()
            .any(|d| d.severity == Severity::Error),
    );
    let bad_map = [0, 1, 7, 2];
    check(
        "audit: an out-of-range map entry is an Error",
        audit_mesh_map("c2n", &bad_map, 2, 2, 3, false)
            .iter()
            .any(|d| d.code == "map/out-of-range"),
    );
    check(
        "audit: a dangling particle cell is an Error",
        audit_particle_cells("p2c", &[0, -1, 2], 3)
            .iter()
            .any(|d| d.code == "pmap/dangling"),
    );
    check(
        "audit: a CSR cell index agreeing with the cell column is clean",
        !audit_cell_index("p2c-index", &[0, 2, 4], &[0, 0, 1, 1], 2)
            .iter()
            .any(|d| d.severity == Severity::Error),
    );
    check(
        "audit: a CSR segment disagreeing with the cell column is an Error",
        audit_cell_index("p2c-index", &[0, 2, 4], &[0, 1, 1, 1], 2)
            .iter()
            .any(|d| d.code == "index/mismatch"),
    );

    // Satellite: per-argument descriptor validation.
    let mut direct_with_map = ArgDecl::direct("x", 1, Access::Read);
    direct_with_map.map = "c2n".into();
    check(
        "decl: a direct arg naming a map fails ArgDecl::validate",
        direct_with_map.validate().is_err(),
    );

    results
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        for (desc, ok) in super::self_test() {
            assert!(ok, "self-test scenario failed: {desc}");
        }
    }
}
