//! Pass 1 — static loop-plan validation.
//!
//! Given a [`LoopPlan`] (the declared access descriptors plus the
//! executor and race strategy the application actually chose), reject
//! incoherent pairings *before* any iteration runs. This is the
//! runtime analogue of what OP-PIC's clang translator guarantees by
//! construction: a generated loop can never pair an indirect increment
//! with a race-oblivious executor, so a hand-planned loop must be
//! checked for the same property.
//!
//! With a declaration [`Registry`] available, the pass additionally
//! cross-checks each descriptor against the declared mesh: dat dims,
//! dat home sets, map endpoints, and map-chain composition.

use crate::diag::{Diagnostic, Report};
use oppic_core::access::{Access, ArgDecl, Indirection};
use oppic_core::decl::Registry;
use oppic_core::deposit::DepositMethod;
use oppic_core::plan::{has_indirect_inc, LoopPlan, PlanRegistry, RaceStrategy};

/// Check one plan; returns all findings (empty = coherent).
pub fn check_plan(plan: &LoopPlan, reg: Option<&Registry>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let name = plan.name().to_string();

    // Per-argument descriptor coherence (satellite rules: Direct ⇔ no
    // map, Indirect/Double ⇒ map, no double-indirect plain WRITE).
    for a in &plan.decl.args {
        if let Err(e) = a.validate() {
            out.push(Diagnostic::error("arg/invalid", name.clone(), e));
        }
    }

    // Indirect increments under a parallel policy need a strategy.
    if plan.parallel && has_indirect_inc(&plan.decl) && !plan.race_strategy.handles_races() {
        out.push(Diagnostic::error(
            "plan/racy-inc",
            name.clone(),
            "indirect INC under a parallel policy with no race strategy \
             (pick scatter arrays, atomics, segmented reduction, or coloring)",
        ));
    }

    // SortedSegments and Matrix are only race-free when particles are
    // grouped by cell: the plan must attest a fresh CSR cell index at
    // dispatch time. Without it the plain `+=` per segment has no
    // ownership argument and races exactly like a strategy-less
    // deposit.
    if plan.parallel
        && matches!(
            plan.race_strategy,
            RaceStrategy::Deposit(DepositMethod::SortedSegments | DepositMethod::Matrix)
        )
        && plan.index_fresh != Some(true)
    {
        let method = match plan.race_strategy {
            RaceStrategy::Deposit(m) => m.label(),
            _ => unreachable!("matched Deposit above"),
        };
        out.push(Diagnostic::error(
            "plan/stale-index",
            name.clone(),
            match plan.index_fresh {
                None => format!(
                    "{method} deposit under a parallel policy with no cell-index \
                     freshness attestation (call with_index_freshness after \
                     sort_by_cell)"
                ),
                _ => format!(
                    "{method} deposit under a parallel policy on a stale CSR cell \
                     index; re-sort (sort_by_cell) before the deposit"
                ),
            },
        ));
    }

    // An indirect WRITE / RW from a particle loop scatters plain
    // stores through a dynamic map — nondeterministic even with a
    // deposit strategy (those only make *increments* safe).
    let from_particles = reg
        .and_then(|r| r.set(&plan.decl.iter_set))
        .map(|s| s.cells_set.is_some());
    for a in &plan.decl.args {
        let scattered_store =
            a.indirection != Indirection::Direct && a.access.writes() && a.access != Access::Inc;
        if scattered_store && (a.indirection == Indirection::Double || from_particles == Some(true))
        {
            out.push(Diagnostic::error(
                "plan/scattered-write",
                name.clone(),
                format!(
                    "{:?} on '{}' through map '{}' from a particle loop is a \
                     nondeterministic scatter; only INC composes through this route",
                    a.access, a.dat, a.map
                ),
            ));
        }
    }

    // A serial deposit under a parallel policy silently serialises the
    // loop: sound, but the parallelism the plan asks for never happens.
    if plan.parallel {
        if let RaceStrategy::Deposit(m) = plan.race_strategy {
            if !m.is_race_safe(true) {
                out.push(Diagnostic::warn(
                    "plan/serialised-deposit",
                    name.clone(),
                    format!(
                        "deposit method {} ignores the parallel policy and runs \
                         sequentially",
                        m.label()
                    ),
                ));
            }
        }
    }

    // A race strategy on a loop with no indirect increment is dead
    // configuration (harmless, worth flagging).
    if plan.race_strategy.handles_races() && !has_indirect_inc(&plan.decl) {
        out.push(Diagnostic::info(
            "plan/unused-strategy",
            name.clone(),
            format!(
                "race strategy '{}' configured but the loop has no indirect INC",
                plan.race_strategy.label()
            ),
        ));
    }

    // Aliasing: two descriptors reaching the same dat through
    // different routes, at least one writing — the executor cannot see
    // that the windows overlap.
    for (i, a) in plan.decl.args.iter().enumerate() {
        for b in plan.decl.args.iter().skip(i + 1) {
            if a.dat != b.dat {
                continue;
            }
            let same_route = a.indirection == b.indirection && a.map == b.map;
            let any_writes = a.access.writes() || b.access.writes();
            if !same_route && any_writes {
                out.push(Diagnostic::error(
                    "plan/alias",
                    name.clone(),
                    format!(
                        "dat '{}' is accessed through two routes ({} and {}) with a \
                         writer; overlapping windows cannot be proven disjoint",
                        a.dat,
                        route_label(a),
                        route_label(b)
                    ),
                ));
            } else if same_route
                && a.access.writes()
                && b.access.writes()
                && (a.access != Access::Inc || b.access != Access::Inc)
            {
                out.push(Diagnostic::error(
                    "plan/alias",
                    name.clone(),
                    format!(
                        "dat '{}' is written twice through the same route with \
                         non-INC access; the two stores are unordered",
                        a.dat
                    ),
                ));
            }
        }
    }

    // Registry cross-checks.
    if let Some(r) = reg {
        if r.set(&plan.decl.iter_set).is_none() && plan.decl.iter_set != "<direct>" {
            out.push(Diagnostic::warn(
                "set/unknown",
                name.clone(),
                format!("iteration set '{}' is not declared", plan.decl.iter_set),
            ));
        }
        for a in &plan.decl.args {
            check_arg_against_registry(&name, plan, a, r, &mut out);
        }
    }

    out
}

fn route_label(a: &ArgDecl) -> String {
    match a.indirection {
        Indirection::Direct => "direct".to_string(),
        Indirection::Indirect => format!("via {}", a.map),
        Indirection::Double => format!("double via {}", a.map),
    }
}

/// Registry-dependent checks for one argument: known dat, matching
/// dim, known map hops, and a map chain that actually composes from
/// the iteration set to the dat's home set.
fn check_arg_against_registry(
    name: &str,
    plan: &LoopPlan,
    a: &ArgDecl,
    r: &Registry,
    out: &mut Vec<Diagnostic>,
) {
    let dat = match r.dat(&a.dat) {
        Some(d) => d,
        None => {
            out.push(Diagnostic::warn(
                "arg/unknown-dat",
                name.to_string(),
                format!("dat '{}' is not declared", a.dat),
            ));
            return;
        }
    };
    if dat.dim != a.dim {
        out.push(Diagnostic::error(
            "arg/dim-mismatch",
            name.to_string(),
            format!(
                "dat '{}' declared dim {} but the loop argument says {}",
                a.dat, dat.dim, a.dim
            ),
        ));
    }

    if a.indirection == Indirection::Direct {
        if r.set(&plan.decl.iter_set).is_some() && dat.set != plan.decl.iter_set {
            out.push(Diagnostic::error(
                "arg/wrong-set",
                name.to_string(),
                format!(
                    "direct arg '{}' lives on set '{}' but the loop iterates '{}'",
                    a.dat, dat.set, plan.decl.iter_set
                ),
            ));
        }
        return;
    }

    // Indirect: the map field may be a dot-joined chain ("p2c.c2n").
    let hops: Vec<&str> = a.map.split('.').filter(|s| !s.is_empty()).collect();
    let expected_hops = match a.indirection {
        Indirection::Indirect => 1,
        Indirection::Double => 2,
        Indirection::Direct => unreachable!(),
    };
    if hops.len() != expected_hops {
        out.push(Diagnostic::warn(
            "map/hop-count",
            name.to_string(),
            format!(
                "arg '{}' declares {:?} indirection but names {} map hop(s) ('{}')",
                a.dat,
                a.indirection,
                hops.len(),
                a.map
            ),
        ));
    }
    let mut cursor = plan.decl.iter_set.clone();
    for hop in &hops {
        match r.map(hop) {
            None => {
                out.push(Diagnostic::warn(
                    "map/unknown",
                    name.to_string(),
                    format!("map '{hop}' is not declared"),
                ));
                return;
            }
            Some(m) => {
                if r.set(&cursor).is_some() && m.from != cursor {
                    out.push(Diagnostic::error(
                        "map/wrong-source",
                        name.to_string(),
                        format!(
                            "map '{}' maps from '{}' but the chain reaches it from '{}'",
                            m.name, m.from, cursor
                        ),
                    ));
                }
                cursor = m.to.clone();
            }
        }
    }
    if cursor != dat.set {
        out.push(Diagnostic::error(
            "map/wrong-target",
            name.to_string(),
            format!(
                "map chain '{}' ends on set '{}' but dat '{}' lives on '{}'",
                a.map, cursor, a.dat, dat.set
            ),
        ));
    }
}

/// Check every registered plan, aggregating findings into one report.
pub fn check_plans(plans: &PlanRegistry, reg: Option<&Registry>) -> Report {
    let mut report = Report::new();
    for p in plans.plans() {
        report.extend(check_plan(p, reg));
    }
    report
}

/// Convenience used by both apps' `--validate` drivers: also verify
/// that every *configured* deposit method is safe under the plan's
/// parallelism (the dynamic counterpart of `plan/serialised-deposit`).
pub fn deposit_method_summary(method: DepositMethod, parallel: bool) -> Diagnostic {
    if method.is_race_safe(parallel) {
        Diagnostic::info(
            "plan/deposit-method",
            "deposit",
            format!("method {} is coherent under this policy", method.label()),
        )
    } else {
        Diagnostic::warn(
            "plan/serialised-deposit",
            "deposit",
            format!("method {} serialises the parallel deposit", method.label()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppic_core::access::LoopDecl;
    use oppic_core::parloop::ExecPolicy;

    fn fem_registry() -> Registry {
        let mut r = Registry::new();
        r.decl_set("cells", 10).unwrap();
        r.decl_set("nodes", 8).unwrap();
        r.decl_particle_set("particles", "cells", 0).unwrap();
        r.decl_map("c2n", "cells", "nodes", 4, None).unwrap();
        r.decl_map("p2c", "particles", "cells", 1, None).unwrap();
        r.decl_dat("node_charge", "nodes", 1).unwrap();
        r.decl_dat("efield", "cells", 3).unwrap();
        r.decl_dat("lc", "particles", 4).unwrap();
        r
    }

    fn deposit_decl() -> LoopDecl {
        LoopDecl::new(
            "DepositCharge",
            "particles",
            vec![
                ArgDecl::direct("lc", 4, Access::Read),
                ArgDecl::double_indirect("node_charge", 1, Access::Inc, "p2c.c2n"),
            ],
        )
    }

    #[test]
    fn racy_parallel_inc_is_an_error() {
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, RaceStrategy::None);
        let diags = check_plan(&plan, None);
        assert!(diags.iter().any(|d| d.code == "plan/racy-inc"), "{diags:?}");
    }

    #[test]
    fn strategies_and_sequential_clear_the_race_error() {
        for (policy, strat) in [
            (ExecPolicy::Seq, RaceStrategy::None),
            (ExecPolicy::Par, RaceStrategy::Colored),
            (
                ExecPolicy::Par,
                RaceStrategy::Deposit(DepositMethod::Atomics),
            ),
        ] {
            let plan = LoopPlan::new(deposit_decl(), &policy, strat);
            let diags = check_plan(&plan, Some(&fem_registry()));
            assert!(
                !diags.iter().any(|d| d.code == "plan/racy-inc"),
                "{strat:?}: {diags:?}"
            );
        }
    }

    #[test]
    fn sorted_segments_without_fresh_index_is_an_error() {
        let strat = RaceStrategy::Deposit(DepositMethod::SortedSegments);
        // No attestation at all.
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            diags.iter().any(|d| d.code == "plan/stale-index"
                && d.severity == crate::diag::Severity::Error),
            "{diags:?}"
        );
        // Explicitly stale.
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(false);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            diags.iter().any(|d| d.code == "plan/stale-index"),
            "{diags:?}"
        );
        // Fresh index: clean.
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(true);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            !diags.iter().any(|d| d.code == "plan/stale-index"),
            "{diags:?}"
        );
        // Sequential execution is the serial fold regardless of index.
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Seq, strat);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            !diags.iter().any(|d| d.code == "plan/stale-index"),
            "{diags:?}"
        );
    }

    #[test]
    fn matrix_without_fresh_index_is_an_error() {
        // The matrixized deposit inherits SortedSegments' ownership
        // argument — and therefore its freshness precondition.
        let strat = RaceStrategy::Deposit(DepositMethod::Matrix);
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            diags.iter().any(|d| d.code == "plan/stale-index"
                && d.severity == crate::diag::Severity::Error
                && d.message.contains("MX")),
            "{diags:?}"
        );
        // Explicitly stale.
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(false);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            diags.iter().any(|d| d.code == "plan/stale-index"),
            "{diags:?}"
        );
        // Fresh index: clean.
        let plan =
            LoopPlan::new(deposit_decl(), &ExecPolicy::Par, strat).with_index_freshness(true);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            !diags.iter().any(|d| d.code == "plan/stale-index"),
            "{diags:?}"
        );
        // Sequential execution owns every target trivially.
        let plan = LoopPlan::new(deposit_decl(), &ExecPolicy::Seq, strat);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            !diags.iter().any(|d| d.code == "plan/stale-index"),
            "{diags:?}"
        );
    }

    #[test]
    fn matrix_plan_with_aliased_target_still_reports_the_alias() {
        // A hand-built plan that reaches the deposit target through a
        // second route: the Matrix schedule (owner-computes, fresh
        // index attested) must not silence the alias rule — exactly
        // one plan/alias Error.
        let decl = LoopDecl::new(
            "DepositCharge",
            "particles",
            vec![
                ArgDecl::direct("lc", 4, Access::Read),
                ArgDecl::double_indirect("node_charge", 1, Access::Inc, "p2c.c2n"),
                ArgDecl::indirect("node_charge", 1, Access::Read, "p2n"),
            ],
        );
        let plan = LoopPlan::new(
            decl,
            &ExecPolicy::Par,
            RaceStrategy::Deposit(DepositMethod::Matrix),
        )
        .with_index_freshness(true);
        let diags = check_plan(&plan, None);
        let aliases: Vec<_> = diags.iter().filter(|d| d.code == "plan/alias").collect();
        assert_eq!(aliases.len(), 1, "{diags:?}");
        assert_eq!(aliases[0].severity, crate::diag::Severity::Error);
        assert!(
            !diags.iter().any(|d| d.code == "plan/stale-index"),
            "freshness was attested: {diags:?}"
        );
    }

    #[test]
    fn serial_deposit_under_parallel_policy_warns() {
        let plan = LoopPlan::new(
            deposit_decl(),
            &ExecPolicy::Par,
            RaceStrategy::Deposit(DepositMethod::Serial),
        );
        let diags = check_plan(&plan, None);
        assert!(
            diags.iter().any(|d| d.code == "plan/serialised-deposit"),
            "{diags:?}"
        );
        assert!(
            !diags
                .iter()
                .any(|d| d.severity == crate::diag::Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn unused_strategy_is_only_info() {
        let decl = LoopDecl::new(
            "CalcPosVel",
            "particles",
            vec![ArgDecl::direct("lc", 4, Access::ReadWrite)],
        );
        let plan = LoopPlan::new(decl, &ExecPolicy::Par, RaceStrategy::Colored);
        let diags = check_plan(&plan, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "plan/unused-strategy");
        assert_eq!(diags[0].severity, crate::diag::Severity::Info);
    }

    #[test]
    fn indirect_write_from_particle_loop_is_rejected() {
        let decl = LoopDecl::new(
            "BadScatter",
            "particles",
            vec![ArgDecl::indirect("efield", 3, Access::Write, "p2c")],
        );
        let plan = LoopPlan::new(decl, &ExecPolicy::Seq, RaceStrategy::None);
        let diags = check_plan(&plan, Some(&fem_registry()));
        assert!(
            diags.iter().any(|d| d.code == "plan/scattered-write"),
            "{diags:?}"
        );
    }

    #[test]
    fn dim_mismatch_and_unknown_names_are_reported() {
        let reg = fem_registry();
        let decl = LoopDecl::new(
            "Weird",
            "particles",
            vec![
                ArgDecl::direct("lc", 3, Access::Read), // declared dim 4
                ArgDecl::indirect("ghost", 1, Access::Read, "p2c"),
                ArgDecl::double_indirect("node_charge", 1, Access::Inc, "p2c.nope"),
            ],
        );
        let plan = LoopPlan::new(
            decl,
            &ExecPolicy::Seq,
            RaceStrategy::Deposit(DepositMethod::Serial),
        );
        let diags = check_plan(&plan, Some(&reg));
        assert!(
            diags.iter().any(|d| d.code == "arg/dim-mismatch"),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.code == "arg/unknown-dat"),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == "map/unknown"), "{diags:?}");
    }

    #[test]
    fn map_chain_composition_is_checked() {
        let reg = fem_registry();
        // c2n.p2c composes the hops in the wrong order.
        let decl = LoopDecl::new(
            "Backwards",
            "particles",
            vec![ArgDecl::double_indirect(
                "node_charge",
                1,
                Access::Inc,
                "c2n.p2c",
            )],
        );
        let plan = LoopPlan::new(decl, &ExecPolicy::Seq, RaceStrategy::None);
        let diags = check_plan(&plan, Some(&reg));
        assert!(
            diags.iter().any(|d| d.code == "map/wrong-source"),
            "{diags:?}"
        );

        // A single hop that lands on the wrong set for the dat.
        let decl = LoopDecl::new(
            "WrongHome",
            "particles",
            vec![ArgDecl::indirect("node_charge", 1, Access::Read, "p2c")],
        );
        let plan = LoopPlan::new(decl, &ExecPolicy::Seq, RaceStrategy::None);
        let diags = check_plan(&plan, Some(&reg));
        assert!(
            diags.iter().any(|d| d.code == "map/wrong-target"),
            "{diags:?}"
        );
    }

    #[test]
    fn aliasing_routes_with_a_writer_are_rejected() {
        let decl = LoopDecl::new(
            "Alias",
            "cells",
            vec![
                ArgDecl::direct("efield", 3, Access::Write),
                ArgDecl::indirect("efield", 3, Access::Read, "c2c"),
            ],
        );
        let plan = LoopPlan::new(decl, &ExecPolicy::Seq, RaceStrategy::None);
        let diags = check_plan(&plan, None);
        assert!(diags.iter().any(|d| d.code == "plan/alias"), "{diags:?}");

        // Two reads through different routes are fine.
        let decl = LoopDecl::new(
            "Gather",
            "cells",
            vec![
                ArgDecl::direct("efield", 3, Access::Read),
                ArgDecl::indirect("efield", 3, Access::Read, "c2c"),
            ],
        );
        let plan = LoopPlan::new(decl, &ExecPolicy::Seq, RaceStrategy::None);
        assert!(check_plan(&plan, None).is_empty());
    }

    #[test]
    fn whole_registry_check_aggregates() {
        let mut plans = PlanRegistry::new();
        plans.register(LoopPlan::new(
            deposit_decl(),
            &ExecPolicy::Par,
            RaceStrategy::None,
        ));
        plans.register(LoopPlan::direct(
            LoopDecl::new(
                "CalcPosVel",
                "particles",
                vec![ArgDecl::direct("lc", 4, Access::Write)],
            ),
            &ExecPolicy::Par,
        ));
        let report = check_plans(&plans, Some(&fem_registry()));
        assert!(report.has_errors());
        assert_eq!(report.with_code("plan/racy-inc").len(), 1);
    }
}
