//! Pass 2 — the shadow race detector.
//!
//! The static pass reasons about descriptors; this pass reasons about
//! what a kernel *actually touches*. The loop body is replayed
//! sequentially against a [`ShadowCtx`] that records each iteration's
//! read/write/increment footprint per `(dat, element)` location. The
//! recorded run is then checked against the *parallel* schedule the
//! plan intends: two iterations that would run concurrently and touch
//! the same location with a conflicting access pair are reported as a
//! race.
//!
//! The detector validates the machinery the executors rely on — in
//! particular that a [`oppic_core::greedy_color_cells`] coloring
//! really separates every write-sharing pair, and that a scatter /
//! atomic deposit only ever conflicts through increments (which those
//! strategies make safe).

use crate::diag::Diagnostic;
use std::collections::HashMap;

/// How one iteration touched one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
    /// A commutative `+=` — safe under an atomic/scatter strategy,
    /// still a race when executed as plain read-modify-write.
    Inc,
}

/// Footprint recorder handed to the kernel for one iteration.
pub struct ShadowCtx<'a> {
    run: &'a mut ShadowRun,
    iter: u32,
}

impl ShadowCtx<'_> {
    pub fn read(&mut self, dat: &str, elem: usize) {
        self.touch(dat, elem, AccessKind::Read);
    }

    pub fn write(&mut self, dat: &str, elem: usize) {
        self.touch(dat, elem, AccessKind::Write);
    }

    pub fn inc(&mut self, dat: &str, elem: usize) {
        self.touch(dat, elem, AccessKind::Inc);
    }

    fn touch(&mut self, dat: &str, elem: usize, kind: AccessKind) {
        let dat_id = self.run.intern(dat);
        self.run
            .touches
            .entry((dat_id, elem as u32))
            .or_default()
            .push((self.iter, kind));
    }
}

/// A recorded sequential replay: every `(dat, element)` location with
/// the iterations that touched it.
#[derive(Debug, Default)]
pub struct ShadowRun {
    dat_names: Vec<String>,
    dat_ids: HashMap<String, u16>,
    touches: HashMap<(u16, u32), Vec<(u32, AccessKind)>>,
    n_iters: usize,
}

/// The parallel schedule a recording is checked against.
#[derive(Debug, Clone, Copy)]
pub enum Schedule<'a> {
    /// Iterations run one after another: nothing conflicts.
    Sequential,
    /// Every pair of distinct iterations may overlap.
    AllParallel,
    /// Iteration `i` runs in round `colors[i]`; only same-color pairs
    /// overlap (the executor barriers between colors).
    Colored(&'a [u32]),
    /// Colored rounds whose parallelism unit is a *group* rather than
    /// an iteration — the shape of
    /// [`oppic_core::deposit_loop_colored`], which barriers between
    /// colors and hands each same-color *cell* to one worker. Two
    /// iterations overlap iff they share a color but belong to
    /// different groups (same-group iterations are serialised).
    ColoredGroups {
        colors: &'a [u32],
        groups: &'a [u32],
    },
    /// Owner-computes gather — the shape of
    /// [`oppic_core::deposit_loop_sorted`] (SortedSegments) and
    /// [`oppic_core::deposit_loop_matrix`] (Matrix tiles): the
    /// parallel unit is a *target element* of the `owned` dat, and each
    /// owner serially folds every iteration that touches its element.
    /// Touches on the owned dat therefore never conflict (same element
    /// ⇒ same owner ⇒ serialised; different elements never collide).
    /// Everything else behaves like [`Schedule::AllParallel`]: an
    /// iteration's side effects may be replayed by several owners, so
    /// plain writes to non-owned dats still race.
    OwnerComputes { owned: &'a str },
}

/// Detection options.
#[derive(Debug, Clone, Copy)]
pub struct RaceOptions {
    /// Treat `Inc` touches as synchronised (atomics / scatter arrays /
    /// segmented reduction): `Inc`–`Inc` pairs stop conflicting.
    /// `Inc` against a plain `Read`/`Write` still conflicts.
    pub inc_is_synchronised: bool,
    /// Stop after this many reported races (one per location).
    pub max_reports: usize,
}

impl Default for RaceOptions {
    fn default() -> Self {
        RaceOptions {
            inc_is_synchronised: false,
            max_reports: 16,
        }
    }
}

/// One detected conflict: a location and a pair of concurrently
/// scheduled iterations whose accesses don't commute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    pub dat: String,
    pub elem: usize,
    pub iter_a: usize,
    pub kind_a: AccessKind,
    pub iter_b: usize,
    pub kind_b: AccessKind,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: iterations {} ({:?}) and {} ({:?}) overlap",
            self.dat, self.elem, self.iter_a, self.kind_a, self.iter_b, self.kind_b
        )
    }
}

impl ShadowRun {
    fn intern(&mut self, dat: &str) -> u16 {
        if let Some(&id) = self.dat_ids.get(dat) {
            return id;
        }
        let id = u16::try_from(self.dat_names.len()).expect("more than 65k shadow dats");
        self.dat_names.push(dat.to_string());
        self.dat_ids.insert(dat.to_string(), id);
        id
    }

    pub fn n_iters(&self) -> usize {
        self.n_iters
    }

    /// Total `(location, iteration)` touch records.
    pub fn n_touches(&self) -> usize {
        self.touches.values().map(Vec::len).sum()
    }

    /// Check the recording against a schedule. Reports at most one
    /// race per location, deterministically ordered by (dat, element).
    pub fn detect_races(&self, schedule: Schedule<'_>, opts: &RaceOptions) -> Vec<Race> {
        match schedule {
            Schedule::Sequential => return Vec::new(),
            Schedule::Colored(colors) => assert!(
                colors.len() >= self.n_iters,
                "colored schedule covers {} iterations, recording has {}",
                colors.len(),
                self.n_iters
            ),
            Schedule::ColoredGroups { colors, groups } => assert!(
                colors.len() >= self.n_iters && groups.len() >= self.n_iters,
                "colored-group schedule covers {}/{} iterations, recording has {}",
                colors.len(),
                groups.len(),
                self.n_iters
            ),
            Schedule::AllParallel | Schedule::OwnerComputes { .. } => {}
        }

        // Locations on the owner-computes dat are serialised per
        // element by construction; every other dat falls through to
        // the all-parallel pairing below.
        let owned_id: Option<u16> = match schedule {
            Schedule::OwnerComputes { owned } => self.dat_ids.get(owned).copied(),
            _ => None,
        };

        let conflicts = |a: AccessKind, b: AccessKind| -> bool {
            match (a, b) {
                (AccessKind::Read, AccessKind::Read) => false,
                (AccessKind::Inc, AccessKind::Inc) => !opts.inc_is_synchronised,
                _ => true, // any pairing involving a plain Write, or Inc vs Read
            }
        };
        let concurrent = |a: u32, b: u32| -> bool {
            match schedule {
                Schedule::Sequential => false,
                Schedule::AllParallel => true,
                Schedule::Colored(colors) => colors[a as usize] == colors[b as usize],
                Schedule::ColoredGroups { colors, groups } => {
                    colors[a as usize] == colors[b as usize]
                        && groups[a as usize] != groups[b as usize]
                }
                Schedule::OwnerComputes { .. } => true,
            }
        };

        let mut locations: Vec<&(u16, u32)> = self.touches.keys().collect();
        locations.sort_unstable();

        let mut races = Vec::new();
        'locations: for loc in locations {
            if owned_id == Some(loc.0) {
                continue;
            }
            let touchers = &self.touches[loc];
            if touchers.len() < 2 {
                continue;
            }
            // First concurrently scheduled conflicting pair, if any.
            for (i, &(ia, ka)) in touchers.iter().enumerate() {
                for &(ib, kb) in touchers.iter().skip(i + 1) {
                    if ia != ib && concurrent(ia, ib) && conflicts(ka, kb) {
                        races.push(Race {
                            dat: self.dat_names[loc.0 as usize].clone(),
                            elem: loc.1 as usize,
                            iter_a: ia as usize,
                            kind_a: ka,
                            iter_b: ib as usize,
                            kind_b: kb,
                        });
                        if races.len() >= opts.max_reports {
                            break 'locations;
                        }
                        continue 'locations;
                    }
                }
            }
        }
        races
    }

    /// Render detected races as analyzer diagnostics (all `Error`).
    pub fn races_to_diagnostics(loop_name: &str, races: &[Race]) -> Vec<Diagnostic> {
        races
            .iter()
            .map(|r| Diagnostic::error("race/conflict", loop_name.to_string(), r.to_string()))
            .collect()
    }
}

/// Replay `kernel` sequentially for `n_iters` iterations, recording
/// every footprint the kernel reports through its [`ShadowCtx`].
pub fn shadow_record<F>(n_iters: usize, mut kernel: F) -> ShadowRun
where
    F: FnMut(usize, &mut ShadowCtx<'_>),
{
    let mut run = ShadowRun {
        n_iters,
        ..ShadowRun::default()
    };
    for i in 0..n_iters {
        let mut ctx = ShadowCtx {
            run: &mut run,
            iter: i as u32,
        };
        kernel(i, &mut ctx);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deposit-shaped recording: particle i increments the slot of
    /// cell `cells[i]`.
    fn deposit_run(cells: &[usize]) -> ShadowRun {
        shadow_record(cells.len(), |i, ctx| {
            ctx.read("lc", i);
            ctx.inc("node_charge", cells[i]);
        })
    }

    #[test]
    fn sequential_schedule_never_conflicts() {
        let run = deposit_run(&[0, 0, 0, 0]);
        assert!(run
            .detect_races(Schedule::Sequential, &RaceOptions::default())
            .is_empty());
    }

    #[test]
    fn plain_increments_race_in_parallel() {
        let run = deposit_run(&[0, 1, 0]);
        let races = run.detect_races(Schedule::AllParallel, &RaceOptions::default());
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].dat, "node_charge");
        assert_eq!(races[0].elem, 0);
        assert_eq!((races[0].iter_a, races[0].iter_b), (0, 2));
    }

    #[test]
    fn synchronised_increments_do_not_race() {
        let run = deposit_run(&[0, 1, 0]);
        let opts = RaceOptions {
            inc_is_synchronised: true,
            ..Default::default()
        };
        assert!(run.detect_races(Schedule::AllParallel, &opts).is_empty());
    }

    #[test]
    fn inc_against_plain_read_still_races() {
        // Iteration 1 reads the element iteration 0 is atomically
        // incrementing: the read observes a torn intermediate order.
        let run = shadow_record(2, |i, ctx| {
            if i == 0 {
                ctx.inc("x", 7);
            } else {
                ctx.read("x", 7);
            }
        });
        let opts = RaceOptions {
            inc_is_synchronised: true,
            ..Default::default()
        };
        let races = run.detect_races(Schedule::AllParallel, &opts);
        assert_eq!(races.len(), 1, "{races:?}");
    }

    #[test]
    fn valid_coloring_separates_writers() {
        // Cells 0 and 2 share node 5; a correct coloring puts them in
        // different rounds.
        let cells = [0usize, 1, 2];
        let targets = [vec![4usize, 5], vec![6], vec![5, 7]];
        let run = shadow_record(cells.len(), |i, ctx| {
            for &t in &targets[cells[i]] {
                ctx.inc("node_charge", t);
            }
        });
        let good_colors = [0u32, 0, 1];
        assert!(run
            .detect_races(Schedule::Colored(&good_colors), &RaceOptions::default())
            .is_empty());

        // Collapsing the rounds reintroduces the conflict.
        let bad_colors = [0u32, 0, 0];
        let races = run.detect_races(Schedule::Colored(&bad_colors), &RaceOptions::default());
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].elem, 5);
    }

    #[test]
    fn same_group_iterations_are_serialised() {
        // Two particles in the same cell both increment the same node:
        // under the colored deposit they run on one worker, so no race.
        let particle_cells = [0usize, 0, 1];
        let node_of_cell = [5usize, 5];
        let run = shadow_record(particle_cells.len(), |i, ctx| {
            ctx.inc("node_charge", node_of_cell[particle_cells[i]]);
        });
        let groups: Vec<u32> = particle_cells.iter().map(|&c| c as u32).collect();
        // Same color round for everyone, but cells 0 and 1 share node
        // 5 — a cross-group conflict the coloring should have split.
        let same_round = [0u32, 0, 0];
        let races = run.detect_races(
            Schedule::ColoredGroups {
                colors: &same_round,
                groups: &groups,
            },
            &RaceOptions::default(),
        );
        assert_eq!(races.len(), 1, "{races:?}");
        // The reported pair spans the two cells (0 or 1 vs 2), never
        // the same-cell pair (0, 1).
        assert_eq!(races[0].iter_b, 2);

        // A coloring that separates the two cells is clean.
        let split = [0u32, 0, 1];
        assert!(run
            .detect_races(
                Schedule::ColoredGroups {
                    colors: &split,
                    groups: &groups
                },
                &RaceOptions::default()
            )
            .is_empty());
    }

    #[test]
    fn owner_computes_serialises_the_owned_dat() {
        // Three particles pile onto cell slot 0 — a race under plain
        // AllParallel, clean under owner-computes because slot 0 is
        // folded by exactly one owner.
        let run = deposit_run(&[0, 1, 0, 0]);
        assert!(!run
            .detect_races(Schedule::AllParallel, &RaceOptions::default())
            .is_empty());
        assert!(run
            .detect_races(
                Schedule::OwnerComputes {
                    owned: "node_charge"
                },
                &RaceOptions::default()
            )
            .is_empty());
    }

    #[test]
    fn owner_computes_does_not_bless_other_dats() {
        // The kernel also increments a *different* dat: the
        // owner-computes argument only covers the owned one.
        let run = shadow_record(3, |i, ctx| {
            ctx.inc("node_charge", i % 2);
            ctx.inc("diag_counter", 0);
        });
        let races = run.detect_races(
            Schedule::OwnerComputes {
                owned: "node_charge",
            },
            &RaceOptions::default(),
        );
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].dat, "diag_counter");

        // Naming a dat the kernel never touched blesses nothing.
        let races = run.detect_races(
            Schedule::OwnerComputes { owned: "absent" },
            &RaceOptions::default(),
        );
        assert_eq!(races.len(), 2, "{races:?}");
    }

    #[test]
    fn matrix_schedule_keeps_aliased_deposit_target_racy() {
        // The matrixized deposit runs owner-computes over its target
        // dat, exactly like SortedSegments. A kernel that also
        // scatters into an *alias* of that target (a second dat
        // viewing the same storage) gets no blessing from the
        // schedule: the aliased writes must surface as exactly one
        // race Error, not be silenced by the owner-computes argument.
        let run = shadow_record(4, |i, ctx| {
            ctx.inc("node_charge", i % 2);
            ctx.write("node_charge_alias", 0);
        });
        let races = run.detect_races(
            Schedule::OwnerComputes {
                owned: "node_charge",
            },
            &RaceOptions::default(),
        );
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].dat, "node_charge_alias");
        let diags = ShadowRun::races_to_diagnostics("DepositCharge[MX]", &races);
        let errors: Vec<_> = diags.iter().filter(|d| d.code == "race/conflict").collect();
        assert_eq!(errors.len(), 1, "{diags:?}");
        assert!(
            errors[0].message.contains("node_charge_alias"),
            "{:?}",
            errors[0]
        );
    }

    #[test]
    fn report_cap_is_respected() {
        let cells: Vec<usize> = (0..20).map(|i| i % 10).collect(); // every slot contested
        let run = deposit_run(&cells);
        let opts = RaceOptions {
            max_reports: 3,
            ..Default::default()
        };
        assert_eq!(run.detect_races(Schedule::AllParallel, &opts).len(), 3);
    }

    #[test]
    fn diagnostics_render() {
        let run = deposit_run(&[0, 0]);
        let races = run.detect_races(Schedule::AllParallel, &RaceOptions::default());
        let diags = ShadowRun::races_to_diagnostics("DepositCharge", &races);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "race/conflict");
        assert!(
            diags[0].message.contains("node_charge[0]"),
            "{}",
            diags[0].message
        );
    }
}
