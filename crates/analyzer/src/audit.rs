//! Pass 3 — map-invariant audits.
//!
//! Static mesh maps are validated once at declaration time; the
//! dynamic particle→cell map is rewritten by every `move_loop` and
//! compacted by hole filling, so its invariants can silently rot.
//! These audits re-establish them on demand: every map entry in range
//! for its target set, no dangling particles after hole filling, and
//! colorings that actually separate target-sharing cells.

use crate::diag::{Diagnostic, Report};
use oppic_core::deposit::coloring_is_valid;

/// How many offending entries to cite individually before summarising.
const CITE_LIMIT: usize = 5;

/// Audit a static mesh map (`from_size × arity` entries into
/// `0..to_size`). Negative entries are the boundary convention
/// (`-1` = no neighbour) and are accepted iff `allow_negative`.
pub fn audit_mesh_map(
    name: &str,
    data: &[i32],
    from_size: usize,
    arity: usize,
    to_size: usize,
    allow_negative: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if data.len() != from_size * arity {
        out.push(Diagnostic::error(
            "map/shape",
            name.to_string(),
            format!(
                "payload has {} entries, expected {} elements × arity {arity}",
                data.len(),
                from_size
            ),
        ));
        return out;
    }
    let mut bad = 0usize;
    for (k, &v) in data.iter().enumerate() {
        let out_of_range = if v < 0 {
            !allow_negative
        } else {
            v as usize >= to_size
        };
        if out_of_range {
            bad += 1;
            if bad <= CITE_LIMIT {
                out.push(Diagnostic::error(
                    "map/out-of-range",
                    name.to_string(),
                    format!(
                        "entry {k} (element {}, slot {}) = {v}, target set has size {to_size}",
                        k / arity,
                        k % arity
                    ),
                ));
            }
        }
    }
    if bad > CITE_LIMIT {
        out.push(Diagnostic::error(
            "map/out-of-range",
            name.to_string(),
            format!("...and {} more out-of-range entries", bad - CITE_LIMIT),
        ));
    }
    if out.is_empty() {
        out.push(Diagnostic::info(
            "map/ok",
            name.to_string(),
            format!("{} entries within 0..{to_size}", data.len()),
        ));
    }
    out
}

/// Audit the dynamic particle→cell map after a move/hole-fill cycle:
/// a live particle must sit in a real cell — negative entries mean a
/// removed particle survived hole filling.
pub fn audit_particle_cells(name: &str, cells: &[i32], n_cells: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut dangling = 0usize;
    let mut oob = 0usize;
    for (i, &c) in cells.iter().enumerate() {
        if c < 0 {
            dangling += 1;
            if dangling <= CITE_LIMIT {
                out.push(Diagnostic::error(
                    "pmap/dangling",
                    name.to_string(),
                    format!("particle {i} has cell {c}: removed but not hole-filled"),
                ));
            }
        } else if c as usize >= n_cells {
            oob += 1;
            if oob <= CITE_LIMIT {
                out.push(Diagnostic::error(
                    "pmap/out-of-range",
                    name.to_string(),
                    format!("particle {i} maps to cell {c}, mesh has {n_cells} cells"),
                ));
            }
        }
    }
    for (count, label) in [(dangling, "dangling"), (oob, "out-of-range")] {
        if count > CITE_LIMIT {
            out.push(Diagnostic::error(
                "pmap/summary",
                name.to_string(),
                format!("...and {} more {label} particles", count - CITE_LIMIT),
            ));
        }
    }
    if out.is_empty() {
        out.push(Diagnostic::info(
            "pmap/ok",
            name.to_string(),
            format!("{} particles all within 0..{n_cells}", cells.len()),
        ));
    }
    out
}

/// Audit a CSR cell index against the particle→cell column it claims
/// to describe: offsets must be monotone, cover exactly `0..n`, and
/// every particle inside segment `c` must actually sit in cell `c`.
/// This is the invariant `SortedSegments` and the segment-batched
/// gather loops stake their race-freedom on.
pub fn audit_cell_index(
    name: &str,
    cell_start: &[usize],
    cells: &[i32],
    n_cells: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cell_start.len() != n_cells + 1 {
        out.push(Diagnostic::error(
            "index/shape",
            name.to_string(),
            format!(
                "index has {} offsets, expected {} cells + 1",
                cell_start.len(),
                n_cells
            ),
        ));
        return out;
    }
    if cell_start[0] != 0 || *cell_start.last().unwrap() != cells.len() {
        out.push(Diagnostic::error(
            "index/partition",
            name.to_string(),
            format!(
                "offsets span {}..{}, must span 0..{} to partition the store",
                cell_start[0],
                cell_start.last().unwrap(),
                cells.len()
            ),
        ));
        return out;
    }
    if let Some(c) = (0..n_cells).find(|&c| cell_start[c] > cell_start[c + 1]) {
        out.push(Diagnostic::error(
            "index/partition",
            name.to_string(),
            format!(
                "offsets decrease at cell {c}: {} > {}",
                cell_start[c],
                cell_start[c + 1]
            ),
        ));
        return out;
    }
    let mut bad = 0usize;
    for c in 0..n_cells {
        let seg = cell_start[c]..cell_start[c + 1];
        for (p, &cell) in cells[seg.clone()].iter().enumerate() {
            let p = p + seg.start;
            if cell != c as i32 {
                bad += 1;
                if bad <= CITE_LIMIT {
                    out.push(Diagnostic::error(
                        "index/mismatch",
                        name.to_string(),
                        format!("particle {p} lies in segment {c} but its cell column says {cell}"),
                    ));
                }
            }
        }
    }
    if bad > CITE_LIMIT {
        out.push(Diagnostic::error(
            "index/mismatch",
            name.to_string(),
            format!("...and {} more misplaced particles", bad - CITE_LIMIT),
        ));
    }
    if out.is_empty() {
        out.push(Diagnostic::info(
            "index/ok",
            name.to_string(),
            format!(
                "{} particles partitioned over {} cells, segments agree with the cell column",
                cells.len(),
                n_cells
            ),
        ));
    }
    out
}

/// Audit a cell coloring against the target-sharing relation it must
/// respect (wraps [`oppic_core::deposit::coloring_is_valid`], adding
/// round statistics).
pub fn audit_coloring<C: AsRef<[usize]>>(
    name: &str,
    cell_targets: &[C],
    n_targets: usize,
    colors: &[u32],
    n_colors: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if colors.len() != cell_targets.len() {
        out.push(Diagnostic::error(
            "color/shape",
            name.to_string(),
            format!("{} colors for {} cells", colors.len(), cell_targets.len()),
        ));
        return out;
    }
    if colors.iter().any(|&c| c as usize >= n_colors) {
        out.push(Diagnostic::error(
            "color/count",
            name.to_string(),
            format!("a color exceeds the declared {} rounds", n_colors),
        ));
    }
    if coloring_is_valid(cell_targets, n_targets, colors) {
        out.push(Diagnostic::info(
            "color/ok",
            name.to_string(),
            format!(
                "{} cells over {} rounds, no same-color pair shares a target",
                colors.len(),
                n_colors
            ),
        ));
    } else {
        out.push(Diagnostic::error(
            "color/conflict",
            name.to_string(),
            "two same-color cells share a target element".to_string(),
        ));
    }
    out
}

/// Aggregate a list of audit results into a report (drivers' helper).
pub fn audit_report(parts: Vec<Vec<Diagnostic>>) -> Report {
    let mut r = Report::new();
    for p in parts {
        r.extend(p);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn has_error(diags: &[Diagnostic]) -> bool {
        diags.iter().any(|d| d.severity == Severity::Error)
    }

    #[test]
    fn in_range_map_is_clean() {
        let c2n = [0, 1, 2, 3, 1, 2, 3, 4];
        let diags = audit_mesh_map("c2n", &c2n, 2, 4, 5, false);
        assert!(!has_error(&diags), "{diags:?}");
    }

    #[test]
    fn out_of_range_entry_is_an_error() {
        let c2n = [0, 1, 9, 3];
        let diags = audit_mesh_map("c2n", &c2n, 1, 4, 5, false);
        assert!(has_error(&diags), "{diags:?}");
        assert!(diags[0].message.contains("= 9"), "{diags:?}");
    }

    #[test]
    fn negative_entries_respect_the_boundary_convention() {
        let c2c = [-1, 1, 0, -1];
        assert!(!has_error(&audit_mesh_map("c2c", &c2c, 2, 2, 2, true)));
        assert!(has_error(&audit_mesh_map("c2c", &c2c, 2, 2, 2, false)));
    }

    #[test]
    fn wrong_shape_short_circuits() {
        let diags = audit_mesh_map("c2n", &[0, 1, 2], 2, 4, 5, false);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "map/shape");
    }

    #[test]
    fn excess_violations_are_summarised() {
        let data = vec![99i32; 20];
        let diags = audit_mesh_map("m", &data, 20, 1, 5, false);
        assert_eq!(diags.len(), CITE_LIMIT + 1, "{diags:?}");
        assert!(
            diags.last().unwrap().message.contains("15 more"),
            "{diags:?}"
        );
    }

    #[test]
    fn particle_cells_audit() {
        assert!(!has_error(&audit_particle_cells("p2c", &[0, 3, 2], 4)));
        let diags = audit_particle_cells("p2c", &[0, -1, 2], 4);
        assert!(diags.iter().any(|d| d.code == "pmap/dangling"), "{diags:?}");
        let diags = audit_particle_cells("p2c", &[0, 4, 2], 4);
        assert!(
            diags.iter().any(|d| d.code == "pmap/out-of-range"),
            "{diags:?}"
        );
    }

    #[test]
    fn fresh_cell_index_is_clean() {
        // 4 particles sorted into cells [0, 0, 2, 3] over 4 cells.
        let cells = [0, 0, 2, 3];
        let start = [0usize, 2, 2, 3, 4];
        let diags = audit_cell_index("p2c-index", &start, &cells, 4);
        assert!(!has_error(&diags), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "index/ok"), "{diags:?}");
    }

    #[test]
    fn cell_index_shape_and_partition_violations() {
        let cells = [0, 0, 2, 3];
        // Wrong offset count.
        let diags = audit_cell_index("idx", &[0, 2, 4], &cells, 4);
        assert!(diags.iter().any(|d| d.code == "index/shape"), "{diags:?}");
        // Last offset does not reach n.
        let diags = audit_cell_index("idx", &[0, 2, 2, 3, 3], &cells, 4);
        assert!(
            diags.iter().any(|d| d.code == "index/partition"),
            "{diags:?}"
        );
        // Non-monotone offsets.
        let diags = audit_cell_index("idx", &[0, 3, 2, 3, 4], &cells, 4);
        assert!(
            diags.iter().any(|d| d.code == "index/partition"),
            "{diags:?}"
        );
    }

    #[test]
    fn cell_index_disagreeing_with_cell_column_is_an_error() {
        // Segment 1 claims particle 1, but the column says cell 0.
        let cells = [0, 0, 2, 3];
        let start = [0usize, 1, 2, 3, 4];
        let diags = audit_cell_index("idx", &start, &cells, 4);
        assert!(
            diags.iter().any(|d| d.code == "index/mismatch"),
            "{diags:?}"
        );
    }

    #[test]
    fn coloring_audit_agrees_with_core() {
        let targets = [vec![0usize, 1], vec![2], vec![1, 3]];
        // Cells 0 and 2 share node 1: they need different colors.
        let good = [0u32, 0, 1];
        assert!(!has_error(&audit_coloring("cells", &targets, 4, &good, 2)));
        let bad = [0u32, 0, 0];
        let diags = audit_coloring("cells", &targets, 4, &bad, 1);
        assert!(
            diags.iter().any(|d| d.code == "color/conflict"),
            "{diags:?}"
        );
    }
}
