//! Pass 4: telemetry event-stream audit.
//!
//! The telemetry subsystem (`oppic_core::telemetry`) emits one JSON
//! Lines record per span close / step summary / run footer. This pass
//! replays such a stream offline and checks the structural invariants
//! the writer is supposed to maintain:
//!
//! - every line parses as a JSON object with a known `type`;
//! - the first record is a `run_header` with a supported schema;
//! - span records are internally coherent (`depth` matches the
//!   `path`, the `name` is the path's last segment, durations are
//!   non-negative);
//! - `step` summaries carry strictly increasing step indices;
//! - counter invariants hold per step: particles relocated by the
//!   mover never exceed the alive population, and the alive gauge is
//!   continuous (`alive_k = alive_{k-1} + injected - removed`);
//! - the `run_footer` reports zero open spans and an event count that
//!   matches the stream.
//!
//! Used by `oppic-analyzer --audit-telemetry <file>` and by the
//! applications' golden tests.

use crate::diag::{Diagnostic, Report};
use oppic_core::json::{self, Json};

/// Schema versions this audit knows how to interpret.
const SUPPORTED_SCHEMA: u64 = 1;

/// Audit a telemetry JSONL stream (the full file contents).
pub fn audit_telemetry(src: &str) -> Report {
    let mut report = Report::new();
    let mut events: Vec<(usize, Json)> = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(v @ Json::Obj(_)) => events.push((i + 1, v)),
            Ok(_) => report.push(Diagnostic::error(
                "telemetry/parse",
                format!("line {}", i + 1),
                "record is not a JSON object",
            )),
            Err(e) => report.push(Diagnostic::error(
                "telemetry/parse",
                format!("line {}", i + 1),
                e,
            )),
        }
    }
    if events.is_empty() {
        report.push(Diagnostic::error(
            "telemetry/no-header",
            "stream",
            "no telemetry records found",
        ));
        return report;
    }

    // Header: must be first, must carry a supported schema.
    let (first_line, first) = &events[0];
    if first.get("type").and_then(Json::as_str) != Some("run_header") {
        report.push(Diagnostic::error(
            "telemetry/no-header",
            format!("line {first_line}"),
            "first record is not a run_header",
        ));
    } else {
        match first.get("schema").and_then(Json::as_u64) {
            Some(SUPPORTED_SCHEMA) => {}
            Some(v) => report.push(Diagnostic::warn(
                "telemetry/schema",
                format!("line {first_line}"),
                format!("schema {v} is newer than this audit (knows {SUPPORTED_SCHEMA})"),
            )),
            None => report.push(Diagnostic::error(
                "telemetry/no-header",
                format!("line {first_line}"),
                "run_header has no numeric schema field",
            )),
        }
    }

    let mut last_step: Option<u64> = None;
    let mut prev_alive: Option<f64> = None;
    let mut n_steps = 0usize;
    let mut n_spans = 0usize;
    let mut footer: Option<(usize, &Json)> = None;

    for (line, ev) in &events {
        let line = *line;
        let ty = ev.get("type").and_then(Json::as_str).unwrap_or("");
        match ty {
            "run_header" | "decision" => {}
            "alert" => audit_alert(line, ev, &mut report),
            "span" => {
                n_spans += 1;
                audit_span(line, ev, &mut report);
            }
            "step" => {
                n_steps += 1;
                audit_step(line, ev, &mut last_step, &mut prev_alive, &mut report);
            }
            "run_footer" => footer = Some((line, ev)),
            other => report.push(Diagnostic::warn(
                "telemetry/unknown-type",
                format!("line {line}"),
                format!("unknown record type {other:?}"),
            )),
        }
    }

    match footer {
        None => report.push(Diagnostic::warn(
            "telemetry/truncated",
            "stream",
            "no run_footer record: the run did not finish its sink",
        )),
        Some((line, f)) => {
            if f.get("open_spans").and_then(Json::as_u64).unwrap_or(0) != 0 {
                report.push(Diagnostic::error(
                    "telemetry/unbalanced-spans",
                    format!("line {line}"),
                    format!(
                        "run_footer reports {} span(s) still open",
                        f.get("open_spans").and_then(Json::as_u64).unwrap_or(0)
                    ),
                ));
            }
            if let Some(n) = f.get("events").and_then(Json::as_u64) {
                if n as usize != events.len() {
                    report.push(Diagnostic::warn(
                        "telemetry/event-count",
                        format!("line {line}"),
                        format!(
                            "run_footer counts {n} event(s) but the stream holds {}",
                            events.len()
                        ),
                    ));
                }
            }
        }
    }

    report.push(Diagnostic::info(
        "telemetry/summary",
        "stream",
        format!(
            "{} event(s): {n_spans} span(s) over {n_steps} step(s){}",
            events.len(),
            if footer.is_some() {
                ", footer present"
            } else {
                ""
            }
        ),
    ));
    report
}

/// Alert record coherence: a non-empty `rule` and a known `severity`
/// (`warn` / `critical`). The alert itself is the watchdog's verdict,
/// not the audit's — its presence is not a finding.
fn audit_alert(line: usize, ev: &Json, report: &mut Report) {
    if ev
        .get("rule")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        report.push(Diagnostic::error(
            "telemetry/alert-schema",
            format!("line {line}"),
            "alert record has no non-empty rule field",
        ));
    }
    match ev.get("severity").and_then(Json::as_str) {
        Some("warn" | "critical") => {}
        other => report.push(Diagnostic::error(
            "telemetry/alert-schema",
            format!("line {line}"),
            format!("alert severity {other:?} is not warn/critical"),
        )),
    }
}

/// Span record coherence: `path` is `>`-joined, `depth` counts the
/// segments below the root, `name` is the last segment, `ms >= 0`.
fn audit_span(line: usize, ev: &Json, report: &mut Report) {
    let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
    let path = ev.get("path").and_then(Json::as_str).unwrap_or("");
    let segments: Vec<&str> = path.split('>').collect();
    if segments.last().copied() != Some(name) {
        report.push(Diagnostic::error(
            "telemetry/path-mismatch",
            format!("line {line}"),
            format!("span name {name:?} is not the last segment of path {path:?}"),
        ));
    }
    if let Some(depth) = ev.get("depth").and_then(Json::as_u64) {
        if depth as usize != segments.len().saturating_sub(1) {
            report.push(Diagnostic::error(
                "telemetry/path-mismatch",
                format!("line {line}"),
                format!(
                    "span depth {depth} disagrees with path {path:?} ({} segment(s))",
                    segments.len()
                ),
            ));
        }
    }
    match ev.get("ms").and_then(Json::as_f64) {
        Some(ms) if ms >= 0.0 => {}
        Some(ms) => report.push(Diagnostic::error(
            "telemetry/negative-time",
            format!("line {line}"),
            format!("span {name:?} has negative duration {ms} ms"),
        )),
        None => report.push(Diagnostic::error(
            "telemetry/negative-time",
            format!("line {line}"),
            format!("span {name:?} has no numeric ms field"),
        )),
    }
}

/// Step summary invariants: strictly increasing indices, relocations
/// bounded by the alive population, and alive-count continuity against
/// the per-step injection/removal counter deltas.
fn audit_step(
    line: usize,
    ev: &Json,
    last_step: &mut Option<u64>,
    prev_alive: &mut Option<f64>,
    report: &mut Report,
) {
    let step = ev.get("step").and_then(Json::as_u64);
    match (step, *last_step) {
        (Some(s), Some(prev)) if s <= prev => report.push(Diagnostic::error(
            "telemetry/step-order",
            format!("line {line}"),
            format!("step index {s} does not increase over {prev}"),
        )),
        (None, _) => report.push(Diagnostic::error(
            "telemetry/step-order",
            format!("line {line}"),
            "step record has no numeric step field",
        )),
        _ => {}
    }
    if let Some(s) = step {
        *last_step = Some(s);
    }

    let counter = |name: &str| {
        ev.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
    };
    let alive = ev
        .get("gauges")
        .and_then(|g| g.get("alive"))
        .and_then(Json::as_f64);

    if let (Some(moved), Some(alive)) = (counter("move.relocated"), alive) {
        if moved as f64 > alive {
            report.push(Diagnostic::error(
                "telemetry/counter-invariant",
                format!("line {line}"),
                format!("move.relocated = {moved} exceeds the alive population {alive}"),
            ));
        }
    }

    // Continuity: every change to the particle count must be accounted
    // for by the injection / hole-fill counters (absent keys mean 0).
    if let (Some(prev), Some(now)) = (*prev_alive, alive) {
        let injected = counter("inject.particles").unwrap_or(0) as f64;
        let removed = counter("holefill.removed").unwrap_or(0) as f64;
        let expect = prev + injected - removed;
        if (now - expect).abs() > 0.5 {
            report.push(Diagnostic::error(
                "telemetry/counter-invariant",
                format!("line {line}"),
                format!(
                    "alive = {now} but previous step implies {expect} \
                     ({prev} + {injected} injected - {removed} removed)"
                ),
            ));
        }
    }
    if alive.is_some() {
        *prev_alive = alive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    const HEADER: &str = r#"{"type":"run_header","schema":1,"app":"t","config_hash":"0","build":"debug","threads":1}"#;
    const FOOTER: &str = r#"{"type":"run_footer","open_spans":0,"total_ms":1.0,"events":4,"traces_dropped":0,"kernels":[],"counters":{},"histograms":{}}"#;

    fn stream(lines: &[&str]) -> String {
        lines.join("\n")
    }

    #[test]
    fn clean_stream_passes() {
        let src = stream(&[
            HEADER,
            r#"{"type":"span","step":1,"name":"Move","path":"step>Move","depth":1,"ms":0.5}"#,
            r#"{"type":"step","step":1,"ms":1.0,"gauges":{"alive":10},"counters":{"move.relocated":3}}"#,
            FOOTER,
        ]);
        let r = audit_telemetry(&src);
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.count(Severity::Warn), 0, "{r}");
    }

    #[test]
    fn parse_errors_are_reported_per_line() {
        let r = audit_telemetry(&stream(&[HEADER, "not json", FOOTER]));
        assert_eq!(r.with_code("telemetry/parse").len(), 1, "{r}");
    }

    #[test]
    fn missing_header_is_an_error() {
        let r = audit_telemetry(r#"{"type":"step","step":1,"ms":1.0}"#);
        assert!(!r.with_code("telemetry/no-header").is_empty(), "{r}");
    }

    #[test]
    fn span_path_and_depth_must_agree() {
        let bad_name =
            r#"{"type":"span","step":1,"name":"Move","path":"step>Inject","depth":1,"ms":0.1}"#;
        let bad_depth =
            r#"{"type":"span","step":1,"name":"Move","path":"step>Move","depth":3,"ms":0.1}"#;
        let r = audit_telemetry(&stream(&[HEADER, bad_name, bad_depth, FOOTER]));
        assert_eq!(r.with_code("telemetry/path-mismatch").len(), 2, "{r}");
    }

    #[test]
    fn negative_span_time_is_an_error() {
        let bad = r#"{"type":"span","step":1,"name":"Move","path":"step>Move","depth":1,"ms":-2}"#;
        let r = audit_telemetry(&stream(&[HEADER, bad, FOOTER]));
        assert!(!r.with_code("telemetry/negative-time").is_empty(), "{r}");
    }

    #[test]
    fn step_indices_must_strictly_increase() {
        let s2 = r#"{"type":"step","step":2,"ms":1.0,"gauges":{},"counters":{}}"#;
        let s1 = r#"{"type":"step","step":2,"ms":1.0,"gauges":{},"counters":{}}"#;
        let r = audit_telemetry(&stream(&[HEADER, s2, s1, FOOTER]));
        assert!(!r.with_code("telemetry/step-order").is_empty(), "{r}");
    }

    #[test]
    fn moved_exceeding_alive_is_an_error() {
        let s = r#"{"type":"step","step":1,"ms":1.0,"gauges":{"alive":5},"counters":{"move.relocated":9}}"#;
        let r = audit_telemetry(&stream(&[HEADER, s, FOOTER]));
        assert!(
            !r.with_code("telemetry/counter-invariant").is_empty(),
            "{r}"
        );
    }

    #[test]
    fn alive_continuity_is_checked_across_steps() {
        let s1 = r#"{"type":"step","step":1,"ms":1.0,"gauges":{"alive":10},"counters":{}}"#;
        let ok = r#"{"type":"step","step":2,"ms":1.0,"gauges":{"alive":12},"counters":{"inject.particles":3,"holefill.removed":1}}"#;
        let bad = r#"{"type":"step","step":3,"ms":1.0,"gauges":{"alive":99},"counters":{}}"#;
        let r = audit_telemetry(&stream(&[HEADER, s1, ok, bad, FOOTER]));
        let hits = r.with_code("telemetry/counter-invariant");
        assert_eq!(hits.len(), 1, "{r}");
        assert!(hits[0].subject.contains("line 4"), "{r}");
    }

    #[test]
    fn alert_records_are_known_and_schema_checked() {
        let span =
            r#"{"type":"span","step":1,"name":"Move","path":"step>Move","depth":1,"ms":0.5}"#;
        let ok = r#"{"type":"alert","step":1,"ts":12,"rule":"step_time_regression","severity":"critical","message":"stall"}"#;
        let r = audit_telemetry(&stream(&[HEADER, span, ok, FOOTER]));
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.count(Severity::Warn), 0, "{r}");
        let bad = r#"{"type":"alert","rule":"","severity":"fatal"}"#;
        let r = audit_telemetry(&stream(&[HEADER, span, bad, FOOTER]));
        assert_eq!(r.with_code("telemetry/alert-schema").len(), 2, "{r}");
    }

    #[test]
    fn open_spans_in_footer_is_an_error() {
        let f = r#"{"type":"run_footer","open_spans":2,"total_ms":1.0,"events":2,"traces_dropped":0,"kernels":[],"counters":{},"histograms":{}}"#;
        let r = audit_telemetry(&stream(&[HEADER, f]));
        assert!(!r.with_code("telemetry/unbalanced-spans").is_empty(), "{r}");
    }

    #[test]
    fn missing_footer_is_a_warning_not_an_error() {
        let r = audit_telemetry(HEADER);
        assert!(!r.has_errors(), "{r}");
        assert!(!r.with_code("telemetry/truncated").is_empty(), "{r}");
    }

    #[test]
    fn footer_event_count_mismatch_warns() {
        let f = r#"{"type":"run_footer","open_spans":0,"total_ms":1.0,"events":7,"traces_dropped":0,"kernels":[],"counters":{},"histograms":{}}"#;
        let r = audit_telemetry(&stream(&[HEADER, f]));
        assert!(!r.with_code("telemetry/event-count").is_empty(), "{r}");
        assert!(!r.has_errors(), "{r}");
    }
}
