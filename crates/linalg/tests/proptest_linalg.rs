//! Property-based tests on the sparse-solver substrate.

use oppic_linalg::dense::DenseMatrix;
use oppic_linalg::{cg_solve, CgConfig, CsrBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction (with random duplicate entries) matches a dense
    /// accumulation oracle, and SpMV matches dense matvec.
    #[test]
    fn csr_matches_dense_oracle(
        n in 1usize..12,
        triplets in prop::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 0..80),
    ) {
        let mut b = CsrBuilder::new(n, n);
        let mut dense = DenseMatrix::zeros(n, n);
        for &(r, c, v) in &triplets {
            let (r, c) = (r % n, c % n);
            b.add(r, c, v);
            dense.add(r, c, v);
        }
        let m = b.build();
        for r in 0..n {
            for c in 0..n {
                prop_assert!((m.get(r, c) - dense.get(r, c)).abs() < 1e-12);
            }
        }
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; n];
        m.spmv_serial(&x, &mut y);
        let y_dense = dense.matvec(&x);
        for (a, b) in y.iter().zip(&y_dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// Dirichlet elimination keeps the system symmetric and its
    /// solution honours the boundary values, vs a dense solve oracle.
    #[test]
    fn dirichlet_solution_matches_dense(
        n in 2usize..10,
        fixed_mask in prop::collection::vec(any::<bool>(), 2..10),
        seed in any::<u64>(),
    ) {
        let fixed: Vec<bool> = (0..n).map(|i| *fixed_mask.get(i).unwrap_or(&false)).collect();
        prop_assume!(fixed.iter().any(|&f| !f)); // at least one free unknown
        // SPD system: Laplacian + identity.
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 3.0);
            if i > 0 { b.add(i, i - 1, -1.0); }
            if i + 1 < n { b.add(i, i + 1, -1.0); }
        }
        let a = b.build();
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let g: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut rhs: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let rhs0 = rhs.clone();
        let ae = a.apply_dirichlet(&fixed, &g, &mut rhs);
        prop_assert!(ae.asymmetry() < 1e-12);
        let mut x = vec![0.0; n];
        let out = cg_solve(&ae, &rhs, &mut x, CgConfig::default());
        prop_assert!(out.converged);
        // Dirichlet values hold exactly.
        for i in 0..n {
            if fixed[i] {
                prop_assert!((x[i] - g[i]).abs() < 1e-8);
            }
        }
        // Free rows satisfy the ORIGINAL equations.
        let mut ax = vec![0.0; n];
        a.spmv_serial(&x, &mut ax);
        for i in 0..n {
            if !fixed[i] {
                prop_assert!((ax[i] - rhs0[i]).abs() < 1e-6, "row {i}");
            }
        }
    }

    /// Gaussian elimination (dense oracle itself) solves random
    /// well-conditioned systems: A * solve(A, b) == b.
    #[test]
    fn dense_solve_residual(
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, rnd() + if r == c { 4.0 } else { 0.0 }); // diagonally dominant
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = m.solve(&b).unwrap();
        let back = m.matvec(&x);
        for (p, q) in back.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }
}
