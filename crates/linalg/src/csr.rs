//! Compressed-sparse-row matrices with a triplet-accumulating builder.
//!
//! FEM assembly scatters 4×4 element blocks into the global matrix;
//! [`CsrBuilder`] accepts duplicate `(row, col)` entries and sums them
//! on [`CsrBuilder::build`], which is exactly the `MatSetValues(...,
//! ADD_VALUES)` workflow Mini-FEM-PIC uses with PETSc.

use rayon::prelude::*;

/// Builder accumulating `(row, col, value)` triplets.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    n_rows: usize,
    n_cols: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl CsrBuilder {
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CsrBuilder {
            n_rows,
            n_cols,
            triplets: Vec::new(),
        }
    }

    /// Add `value` at `(row, col)`; duplicates accumulate.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n_rows && col < self.n_cols);
        self.triplets.push((row as u32, col as u32, value));
    }

    /// Scatter a dense `k×k` block at the given global indices — the
    /// FEM element-assembly primitive.
    pub fn add_block(&mut self, rows: &[usize], cols: &[usize], block: &[f64]) {
        debug_assert_eq!(block.len(), rows.len() * cols.len());
        for (bi, &r) in rows.iter().enumerate() {
            for (bj, &c) in cols.iter().enumerate() {
                self.add(r, c, block[bi * cols.len() + bj]);
            }
        }
    }

    pub fn nnz_upper_bound(&self) -> usize {
        self.triplets.len()
    }

    /// Sort, merge duplicates, and freeze into a [`CsrMatrix`].
    pub fn build(mut self) -> CsrMatrix {
        self.triplets
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut row_count = vec![0usize; self.n_rows];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &self.triplets {
            if last == Some((r, c)) {
                *values.last_mut().expect("merge implies a previous entry") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_count[r as usize] += 1;
                last = Some((r, c));
            }
        }
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        for r in 0..self.n_rows {
            row_ptr[r + 1] = row_ptr[r] + row_count[r];
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// An immutable CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` of one row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Entry lookup (O(row nnz)); test/assembly use.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        cols.iter()
            .position(|&cc| cc as usize == c)
            .map_or(0.0, |k| vals[k])
    }

    /// `y = A x`, parallel over rows.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *yr = acc;
        });
    }

    /// `y = A x` single-threaded (used for small systems where rayon
    /// overhead dominates, and as the oracle in tests).
    pub fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            *yr = cols.iter().zip(vals).map(|(c, v)| v * x[*c as usize]).sum();
        }
    }

    /// The diagonal, for Jacobi preconditioning. Missing diagonal
    /// entries come back as 0.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n_rows.min(self.n_cols))
            .map(|r| self.get(r, r))
            .collect()
    }

    /// Symmetric Dirichlet elimination for boundary condition `x[i] =
    /// g[i]` on rows flagged in `fixed`: zero the row and column, put 1
    /// on the diagonal, and move the column's contribution to the RHS.
    /// Keeps the matrix symmetric so CG stays applicable — the standard
    /// FEM treatment (PETSc's `MatZeroRowsColumns`).
    pub fn apply_dirichlet(&self, fixed: &[bool], g: &[f64], rhs: &mut [f64]) -> CsrMatrix {
        assert_eq!(fixed.len(), self.n_rows);
        assert_eq!(self.n_rows, self.n_cols, "Dirichlet needs a square system");
        // RHS correction: rhs -= A[:, j] * g[j] for fixed j (over free rows).
        for r in 0..self.n_rows {
            if fixed[r] {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let c = *c as usize;
                if fixed[c] {
                    rhs[r] -= v * g[c];
                }
            }
        }
        for r in 0..self.n_rows {
            if fixed[r] {
                rhs[r] = g[r];
            }
        }
        // Rebuild with rows/cols eliminated.
        let mut b = CsrBuilder::new(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            if fixed[r] {
                b.add(r, r, 1.0);
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let c = *c as usize;
                if !fixed[c] {
                    b.add(r, c, *v);
                }
            }
        }
        b.build()
    }

    /// Frobenius-norm asymmetry `||A - A^T||_F`; tests use this to
    /// certify assembled stiffness matrices.
    pub fn asymmetry(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let d = v - self.get(*c as usize, r);
                s += d * d;
            }
        }
        s.sqrt()
    }

    /// Dense representation (tests only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n_rows * self.n_cols];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r * self.n_cols + *c as usize] += v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [2 1 0]
        // [1 3 1]
        // [0 1 4]
        let mut b = CsrBuilder::new(3, 3);
        b.add(0, 0, 2.0);
        b.add(0, 1, 1.0);
        b.add(1, 0, 1.0);
        b.add(1, 1, 3.0);
        b.add(1, 2, 1.0);
        b.add(2, 1, 1.0);
        b.add(2, 2, 4.0);
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = small();
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.get(1, 2), 1.0);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 1, 1.0);
        b.add(0, 1, -1.0);
        b.add(0, 1, 1.0);
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 3); // (0,0), (0,1) merged, (1,1)
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = CsrBuilder::new(4, 4);
        b.add(0, 0, 1.0);
        b.add(3, 3, 2.0);
        let m = b.build();
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row(2).0.len(), 0);
        assert_eq!(m.get(3, 3), 2.0);
        let mut y = vec![0.0; 4];
        m.spmv_serial(&[1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn block_scatter() {
        let mut b = CsrBuilder::new(3, 3);
        b.add_block(&[0, 2], &[0, 2], &[1.0, 2.0, 3.0, 4.0]);
        let m = b.build();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(2, 2), 4.0);
    }

    #[test]
    fn spmv_matches_serial_and_dense() {
        let m = small();
        let x = vec![1.0, -2.0, 0.5];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        m.spmv(&x, &mut y1);
        m.spmv_serial(&x, &mut y2);
        assert_eq!(y1, y2);
        // Dense oracle.
        let d = m.to_dense();
        for r in 0..3 {
            let want: f64 = (0..3).map(|c| d[r * 3 + c] * x[c]).sum();
            assert!((y1[r] - want).abs() < 1e-14);
        }
    }

    #[test]
    fn diagonal_extraction() {
        let m = small();
        assert_eq!(m.diagonal(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn symmetry_check() {
        let m = small();
        assert!(m.asymmetry() < 1e-15);
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 1, 1.0);
        let n = b.build();
        assert!(n.asymmetry() > 0.5);
    }

    #[test]
    fn dirichlet_elimination() {
        let m = small();
        let fixed = vec![true, false, false];
        let g = vec![5.0, 0.0, 0.0];
        let mut rhs = vec![1.0, 2.0, 3.0];
        let me = m.apply_dirichlet(&fixed, &g, &mut rhs);
        // Row 0 becomes identity.
        assert_eq!(me.get(0, 0), 1.0);
        assert_eq!(me.get(0, 1), 0.0);
        assert_eq!(me.get(1, 0), 0.0);
        // rhs[0] = g, rhs[1] -= A[1,0]*g = 2 - 5.
        assert_eq!(rhs[0], 5.0);
        assert_eq!(rhs[1], -3.0);
        assert_eq!(rhs[2], 3.0);
        // Still symmetric.
        assert!(me.asymmetry() < 1e-15);
    }
}
