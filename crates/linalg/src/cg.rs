//! Jacobi-preconditioned Conjugate Gradient — the KSP substitute.
//!
//! Mini-FEM-PIC's field solve is a Poisson problem: symmetric positive
//! definite after Dirichlet elimination. The paper delegates it to
//! PETSc's KSP; CG with Jacobi preconditioning is the default KSP
//! configuration for this matrix class and is what we implement here.

use crate::csr::CsrMatrix;
use rayon::prelude::*;

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Relative residual tolerance `||r|| <= rtol * ||b||`.
    pub rtol: f64,
    /// Absolute residual tolerance.
    pub atol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            rtol: 1e-10,
            atol: 1e-30,
            max_iters: 10_000,
        }
    }
}

/// What the solver did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcome {
    pub converged: bool,
    pub iterations: usize,
    /// Final (unpreconditioned) residual 2-norm.
    pub residual: f64,
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    if a.len() >= 4096 {
        a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum()
    } else {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

#[inline]
fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    if x.len() >= 4096 {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yi, xi)| *yi += alpha * xi);
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }
}

/// Solve `A x = b` with Jacobi-PCG, starting from the provided `x`
/// (warm starts matter: FEM-PIC solves a slowly varying system every
/// time step and the paper's PETSc setup does the same).
pub fn cg_solve(a: &CsrMatrix, b: &[f64], x: &mut [f64], cfg: CgConfig) -> CgOutcome {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "CG needs a square matrix");
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    // Jacobi preconditioner: M^-1 = 1/diag(A). Zero diagonals (possible
    // for all-Dirichlet corner cases) fall back to 1.
    let inv_diag: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
        .collect();

    let norm_b = dot(b, b).sqrt();
    let target = (cfg.rtol * norm_b).max(cfg.atol);

    let mut r = vec![0.0; n];
    a.spmv(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut res = dot(&r, &r).sqrt();
    if res <= target {
        return CgOutcome {
            converged: true,
            iterations: 0,
            residual: res,
        };
    }

    for it in 1..=cfg.max_iters {
        a.spmv(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 {
            // Matrix is not SPD (or we hit exact breakdown): stop and
            // report honestly rather than looping on NaNs.
            return CgOutcome {
                converged: false,
                iterations: it,
                residual: res,
            };
        }
        let alpha = rz / p_ap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        res = dot(&r, &r).sqrt();
        if res <= target {
            return CgOutcome {
                converged: true,
                iterations: it,
                residual: res,
            };
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    CgOutcome {
        converged: false,
        iterations: cfg.max_iters,
        residual: res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    /// 1-D Laplacian (tridiagonal 2,-1) of size n.
    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn solves_identity() {
        let mut b = CsrBuilder::new(5, 5);
        for i in 0..5 {
            b.add(i, i, 1.0);
        }
        let a = b.build();
        let rhs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged);
        for i in 0..5 {
            assert!((x[i] - rhs[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn solves_laplacian() {
        let n = 64;
        let a = laplacian_1d(n);
        // Manufactured solution.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut rhs = vec![0.0; n];
        a.spmv_serial(&x_true, &mut rhs);
        let mut x = vec![0.0; n];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged, "{out:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn zero_rhs_converges_immediately_from_zero() {
        let a = laplacian_1d(10);
        let rhs = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn warm_start_takes_fewer_iterations() {
        let n = 128;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut rhs = vec![0.0; n];
        a.spmv_serial(&x_true, &mut rhs);

        let mut cold = vec![0.0; n];
        let out_cold = cg_solve(&a, &rhs, &mut cold, CgConfig::default());

        // Warm start from a slightly perturbed exact solution.
        let mut warm: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let out_warm = cg_solve(&a, &rhs, &mut warm, CgConfig::default());
        assert!(out_warm.converged && out_cold.converged);
        assert!(
            out_warm.iterations < out_cold.iterations,
            "warm {} vs cold {}",
            out_warm.iterations,
            out_cold.iterations
        );
    }

    #[test]
    fn reports_nonconvergence_within_budget() {
        let n = 256;
        let a = laplacian_1d(n);
        let rhs = vec![1.0; n];
        let mut x = vec![0.0; n];
        let out = cg_solve(
            &a,
            &rhs,
            &mut x,
            CgConfig {
                rtol: 1e-14,
                atol: 0.0,
                max_iters: 3,
            },
        );
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert!(out.residual > 0.0);
    }

    #[test]
    fn detects_indefinite_matrix() {
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, -1.0);
        let a = b.build();
        let mut x = vec![0.0; 2];
        let out = cg_solve(&a, &[1.0, 1.0], &mut x, CgConfig::default());
        // Either converges by luck on the positive part or reports a
        // breakdown; must not produce NaNs.
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(out.residual.is_finite());
    }

    #[test]
    fn jacobi_helps_on_badly_scaled_system() {
        // diag(1, 1e6) — Jacobi equilibrates this instantly.
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1e6);
        let a = b.build();
        let mut x = vec![0.0; 2];
        let out = cg_solve(&a, &[1.0, 2e6], &mut x, CgConfig::default());
        assert!(out.converged);
        assert!(out.iterations <= 2);
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }
}
