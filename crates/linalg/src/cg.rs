//! Jacobi-preconditioned Conjugate Gradient — the KSP substitute.
//!
//! Mini-FEM-PIC's field solve is a Poisson problem: symmetric positive
//! definite after Dirichlet elimination. The paper delegates it to
//! PETSc's KSP; CG with Jacobi preconditioning is the default KSP
//! configuration for this matrix class and is what we implement here.

use crate::csr::CsrMatrix;
use rayon::prelude::*;

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Relative residual tolerance `||r|| <= rtol * ||b||`.
    pub rtol: f64,
    /// Absolute residual tolerance.
    pub atol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stagnation window: stop with [`CgStop::Stagnated`] after this
    /// many consecutive iterations without residual improvement
    /// (singular/inconsistent systems plateau instead of converging).
    /// `0` disables the detector.
    pub stagnation_window: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            rtol: 1e-10,
            atol: 1e-30,
            max_iters: 10_000,
            stagnation_window: 64,
        }
    }
}

/// Why the solver stopped — distinguishes honest convergence from the
/// three distinct failure modes that `converged: false` used to lump
/// together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgStop {
    /// Residual target reached.
    Converged,
    /// Iteration budget exhausted while still making progress.
    MaxIters,
    /// `p·Ap <= 0`: the matrix is not SPD (or exact breakdown).
    Breakdown,
    /// No residual improvement over a full stagnation window — the
    /// classic signature of a singular or inconsistent system.
    Stagnated,
    /// NaN/Inf encountered in the residual or iterates.
    NonFinite,
}

/// What the solver did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcome {
    pub converged: bool,
    /// Stop reason; `converged == (stop == CgStop::Converged)`.
    pub stop: CgStop,
    pub iterations: usize,
    /// Final (unpreconditioned) residual 2-norm.
    pub residual: f64,
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    if a.len() >= 4096 {
        a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum()
    } else {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

#[inline]
fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    if x.len() >= 4096 {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yi, xi)| *yi += alpha * xi);
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }
}

/// Solve `A x = b` with Jacobi-PCG, starting from the provided `x`
/// (warm starts matter: FEM-PIC solves a slowly varying system every
/// time step and the paper's PETSc setup does the same).
pub fn cg_solve(a: &CsrMatrix, b: &[f64], x: &mut [f64], cfg: CgConfig) -> CgOutcome {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "CG needs a square matrix");
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    // Jacobi preconditioner: M^-1 = 1/diag(A). Zero diagonals (possible
    // for all-Dirichlet corner cases) fall back to 1.
    let inv_diag: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
        .collect();

    let norm_b = dot(b, b).sqrt();
    let target = (cfg.rtol * norm_b).max(cfg.atol);

    let mut r = vec![0.0; n];
    a.spmv(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut res = dot(&r, &r).sqrt();
    if !res.is_finite() {
        return CgOutcome {
            converged: false,
            stop: CgStop::NonFinite,
            iterations: 0,
            residual: res,
        };
    }
    if res <= target {
        return CgOutcome {
            converged: true,
            stop: CgStop::Converged,
            iterations: 0,
            residual: res,
        };
    }

    // Stagnation tracking: best residual seen, and how many
    // iterations have gone by without beating it.
    let mut best_res = res;
    let mut since_improved = 0usize;

    for it in 1..=cfg.max_iters {
        a.spmv(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if !p_ap.is_finite() {
            return CgOutcome {
                converged: false,
                stop: CgStop::NonFinite,
                iterations: it,
                residual: res,
            };
        }
        if p_ap <= 0.0 {
            // Matrix is not SPD (or we hit exact breakdown): stop and
            // report honestly rather than looping on NaNs.
            return CgOutcome {
                converged: false,
                stop: CgStop::Breakdown,
                iterations: it,
                residual: res,
            };
        }
        let alpha = rz / p_ap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        res = dot(&r, &r).sqrt();
        if !res.is_finite() {
            return CgOutcome {
                converged: false,
                stop: CgStop::NonFinite,
                iterations: it,
                residual: res,
            };
        }
        if res <= target {
            return CgOutcome {
                converged: true,
                stop: CgStop::Converged,
                iterations: it,
                residual: res,
            };
        }
        if res < best_res * (1.0 - 1e-12) {
            best_res = res;
            since_improved = 0;
        } else {
            since_improved += 1;
            if cfg.stagnation_window > 0 && since_improved >= cfg.stagnation_window {
                return CgOutcome {
                    converged: false,
                    stop: CgStop::Stagnated,
                    iterations: it,
                    residual: res,
                };
            }
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    CgOutcome {
        converged: false,
        stop: CgStop::MaxIters,
        iterations: cfg.max_iters,
        residual: res,
    }
}

/// What [`cg_solve_guarded`] did beyond the plain solve, so callers
/// can publish telemetry (linalg itself has no telemetry dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CgGuardReport {
    /// The warm start contained NaN/Inf and was zeroed before solving.
    pub sanitized_warm_start: bool,
    /// A cold Jacobi-preconditioned restart was attempted after the
    /// first solve failed to converge.
    pub restarted: bool,
}

/// Guarded field-solve entry point: sanitises a poisoned warm start,
/// runs [`cg_solve`], and on any non-converged outcome retries once
/// from a cold (zero) start — the Jacobi preconditioner is rebuilt
/// inside the solve, so the retry is a genuine Jacobi-preconditioned
/// restart rather than a repeat of the same trajectory. Returns the
/// final outcome plus a report of which guards fired.
pub fn cg_solve_guarded(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: CgConfig,
) -> (CgOutcome, CgGuardReport) {
    let mut report = CgGuardReport::default();
    // A non-finite RHS means upstream state (deposit) is corrupt; no
    // amount of solver retrying fixes that. Report without iterating.
    if b.iter().any(|v| !v.is_finite()) {
        return (
            CgOutcome {
                converged: false,
                stop: CgStop::NonFinite,
                iterations: 0,
                residual: f64::NAN,
            },
            report,
        );
    }
    if x.iter().any(|v| !v.is_finite()) {
        x.iter_mut().for_each(|v| *v = 0.0);
        report.sanitized_warm_start = true;
    }
    let first = cg_solve(a, b, x, cfg);
    if first.converged {
        return (first, report);
    }
    report.restarted = true;
    x.iter_mut().for_each(|v| *v = 0.0);
    (cg_solve(a, b, x, cfg), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    /// 1-D Laplacian (tridiagonal 2,-1) of size n.
    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn solves_identity() {
        let mut b = CsrBuilder::new(5, 5);
        for i in 0..5 {
            b.add(i, i, 1.0);
        }
        let a = b.build();
        let rhs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged);
        for i in 0..5 {
            assert!((x[i] - rhs[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn solves_laplacian() {
        let n = 64;
        let a = laplacian_1d(n);
        // Manufactured solution.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut rhs = vec![0.0; n];
        a.spmv_serial(&x_true, &mut rhs);
        let mut x = vec![0.0; n];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged, "{out:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn zero_rhs_converges_immediately_from_zero() {
        let a = laplacian_1d(10);
        let rhs = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn warm_start_takes_fewer_iterations() {
        let n = 128;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut rhs = vec![0.0; n];
        a.spmv_serial(&x_true, &mut rhs);

        let mut cold = vec![0.0; n];
        let out_cold = cg_solve(&a, &rhs, &mut cold, CgConfig::default());

        // Warm start from a slightly perturbed exact solution.
        let mut warm: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let out_warm = cg_solve(&a, &rhs, &mut warm, CgConfig::default());
        assert!(out_warm.converged && out_cold.converged);
        assert!(
            out_warm.iterations < out_cold.iterations,
            "warm {} vs cold {}",
            out_warm.iterations,
            out_cold.iterations
        );
    }

    #[test]
    fn reports_nonconvergence_within_budget() {
        let n = 256;
        let a = laplacian_1d(n);
        let rhs = vec![1.0; n];
        let mut x = vec![0.0; n];
        let out = cg_solve(
            &a,
            &rhs,
            &mut x,
            CgConfig {
                rtol: 1e-14,
                atol: 0.0,
                max_iters: 3,
                ..CgConfig::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(out.stop, CgStop::MaxIters);
        assert_eq!(out.iterations, 3);
        assert!(out.residual > 0.0);
    }

    #[test]
    fn detects_indefinite_matrix() {
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, -1.0);
        let a = b.build();
        let mut x = vec![0.0; 2];
        let out = cg_solve(&a, &[1.0, 1.0], &mut x, CgConfig::default());
        // Either converges by luck on the positive part or reports a
        // breakdown; must not produce NaNs.
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(out.residual.is_finite());
    }

    /// 1-D periodic Laplacian — singular (nullspace = constants).
    fn periodic_laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            b.add(i, (i + 1) % n, -1.0);
            b.add(i, (i + n - 1) % n, -1.0);
        }
        b.build()
    }

    /// Satellite regression: an inconsistent singular system used to
    /// spin silently to `max_iters`; the stagnation detector must now
    /// stop it early with a distinct verdict.
    #[test]
    fn singular_system_stops_before_max_iters_with_distinct_verdict() {
        let n = 32;
        let a = periodic_laplacian_1d(n);
        // rhs with a nonzero mean is outside range(A): no solution,
        // the residual plateaus at the nullspace projection.
        let mut rhs = vec![0.0; n];
        rhs[0] = 1.0;
        let mut x = vec![0.0; n];
        let cfg = CgConfig::default();
        let out = cg_solve(&a, &rhs, &mut x, cfg);
        assert!(!out.converged);
        assert!(
            out.iterations < cfg.max_iters,
            "expected early stop, ran all {} iterations",
            out.iterations
        );
        assert!(
            matches!(out.stop, CgStop::Stagnated | CgStop::Breakdown),
            "want Stagnated/Breakdown, got {:?}",
            out.stop
        );
        assert!(out.residual.is_finite());
        // With the detector disabled the old silent behaviour returns.
        let mut x2 = vec![0.0; n];
        let out2 = cg_solve(
            &a,
            &rhs,
            &mut x2,
            CgConfig {
                stagnation_window: 0,
                max_iters: 500,
                ..CgConfig::default()
            },
        );
        assert!(!out2.converged);
        assert!(matches!(out2.stop, CgStop::MaxIters | CgStop::Breakdown));
    }

    #[test]
    fn stop_reason_matches_converged_flag() {
        let a = laplacian_1d(24);
        let rhs = vec![1.0; 24];
        let mut x = vec![0.0; 24];
        let out = cg_solve(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged);
        assert_eq!(out.stop, CgStop::Converged);
    }

    #[test]
    fn guarded_solve_sanitizes_poisoned_warm_start() {
        let a = laplacian_1d(16);
        let x_true: Vec<f64> = (0..16).map(|i| i as f64 * 0.3).collect();
        let mut rhs = vec![0.0; 16];
        a.spmv_serial(&x_true, &mut rhs);
        let mut x = vec![f64::NAN; 16];
        let (out, report) = cg_solve_guarded(&a, &rhs, &mut x, CgConfig::default());
        assert!(out.converged, "{out:?}");
        assert!(report.sanitized_warm_start);
        assert!(!report.restarted);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guarded_solve_rejects_nonfinite_rhs_without_iterating() {
        let a = laplacian_1d(8);
        let mut rhs = vec![1.0; 8];
        rhs[3] = f64::INFINITY;
        let mut x = vec![0.0; 8];
        let (out, _) = cg_solve_guarded(&a, &rhs, &mut x, CgConfig::default());
        assert!(!out.converged);
        assert_eq!(out.stop, CgStop::NonFinite);
        assert_eq!(out.iterations, 0);
        // x untouched: the guard must not smear NaNs into state.
        assert!(x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn guarded_solve_restarts_cold_after_failure() {
        // Tiny budget forces the warm attempt to fail; the cold
        // restart runs and is reported.
        let a = laplacian_1d(64);
        let rhs = vec![1.0; 64];
        let mut x = vec![0.5; 64];
        let cfg = CgConfig {
            max_iters: 2,
            ..CgConfig::default()
        };
        let (out, report) = cg_solve_guarded(&a, &rhs, &mut x, cfg);
        assert!(report.restarted);
        assert!(!out.converged);
        assert!(out.residual.is_finite());
    }

    #[test]
    fn jacobi_helps_on_badly_scaled_system() {
        // diag(1, 1e6) — Jacobi equilibrates this instantly.
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1e6);
        let a = b.build();
        let mut x = vec![0.0; 2];
        let out = cg_solve(&a, &[1.0, 2e6], &mut x, CgConfig::default());
        assert!(out.converged);
        assert!(out.iterations <= 2);
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }
}
