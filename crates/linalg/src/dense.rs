//! Small dense helpers: 4×4 element blocks for FEM assembly and a
//! pivoted Gaussian elimination used as the oracle in tests.

/// Row-major dense matrix view helpers over a flat `Vec<f64>`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    pub n_rows: usize,
    pub n_cols: usize,
    pub data: Vec<f64>,
}

impl DenseMatrix {
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            n_rows,
            n_cols,
            data,
        }
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n_cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] = v;
    }

    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] += v;
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols);
        (0..self.n_rows)
            .map(|r| (0..self.n_cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect()
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting.
    /// Returns `None` when the matrix is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(b.len(), self.n_rows);
        let n = self.n_rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Pivot.
            let piv = (col..n)
                .max_by(|&i, &j| {
                    a[i * n + col]
                        .abs()
                        .partial_cmp(&a[j * n + col].abs())
                        .unwrap()
                })
                .unwrap();
            if a[piv * n + col].abs() < 1e-300 {
                return None;
            }
            if piv != col {
                for k in 0..n {
                    a.swap(col * n + k, piv * n + k);
                }
                x.swap(col, piv);
            }
            let d = a[col * n + col];
            for row in (col + 1)..n {
                let f = a[row * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= f * a[col * n + k];
                }
                x[row] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for k in (col + 1)..n {
                s -= a[col * n + k] * x[k];
            }
            x[col] = s / a[col * n + col];
        }
        Some(x)
    }
}

/// The 4×4 P1 element stiffness block for a tetrahedron:
/// `K[i][j] = volume * grad(phi_i) . grad(phi_j)`.
/// `grads` are the four basis gradients, `volume` the tet volume.
pub fn p1_stiffness(grads: &[[f64; 3]; 4], volume: f64) -> [[f64; 4]; 4] {
    let mut k = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            let dot =
                grads[i][0] * grads[j][0] + grads[i][1] * grads[j][1] + grads[i][2] * grads[j][2];
            k[i][j] = volume * dot;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basics() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn solve_2x2() {
        let m = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let m = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_detects_singular() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn stiffness_rows_sum_to_zero() {
        // Gradients of a partition of unity sum to zero, so every
        // stiffness row/column must sum to zero.
        let grads = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [-1.0, -1.0, -1.0],
        ];
        let k = p1_stiffness(&grads, 0.5);
        for (i, k_row) in k.iter().enumerate() {
            let row: f64 = k_row.iter().sum();
            let col: f64 = (0..4).map(|j| k[j][i]).sum();
            assert!(row.abs() < 1e-14);
            assert!(col.abs() < 1e-14);
            // Diagonal must be positive.
            assert!(k[i][i] > 0.0);
        }
    }
}
