//! # oppic-linalg — sparse linear algebra substrate
//!
//! Mini-FEM-PIC in the paper assembles a finite-element system
//! (`ComputeJMatrix`, `ComputeF1Vector`) and hands it to a **PETSc KSP**
//! solver. This crate is the PETSc substitute documented in DESIGN.md:
//!
//! * [`csr`] — a compressed-sparse-row matrix with a two-phase
//!   (triplet insert → freeze) builder, parallel SpMV, and Dirichlet
//!   row/column elimination.
//! * [`cg`] — Jacobi-preconditioned Conjugate Gradient, the method KSP
//!   runs for the symmetric-positive-definite Poisson systems FEM-PIC
//!   produces.
//! * [`dense`] — small dense helpers used by tests and by element
//!   assembly (4×4 element stiffness blocks).

pub mod cg;
pub mod csr;
pub mod dense;

pub use cg::{cg_solve, cg_solve_guarded, CgConfig, CgGuardReport, CgOutcome, CgStop};
pub use csr::{CsrBuilder, CsrMatrix};
