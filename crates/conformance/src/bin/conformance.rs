//! Differential conformance runner.
//!
//! ```text
//! conformance --quick                  # CI smoke: ≥ 24 matrix cells
//! conformance --full                   # the entire backend matrix
//! conformance --replay <file>          # re-execute a shrunk reproducer
//! conformance --chaos [--quick|--full] # seeded fault schedules over the
//!                                      # resilient drivers (DESIGN.md §10)
//! conformance --chaos-replay <file>    # re-execute a chaos reproducer
//! ```
//!
//! Exit status 0 when every cell passes; 1 otherwise. On failure each
//! cell is shrunk to a minimal reproducer and written under
//! `results/conformance/<cell-id>.json` (CI fails on uncommitted
//! files there, so a red run leaves evidence behind). The chaos stage
//! fails only on *silent corruption* — a clean typed abort exits 0
//! but still writes its reproducer, which the CI porcelain check
//! surfaces.

use oppic_conformance::{
    cell_fails, chaos_cell_fails, chaos_full_matrix, chaos_quick_matrix, check_cell, full_matrix,
    parse_chaos_reproducer, parse_reproducer, quick_matrix, run_chaos_cell, run_matrix, shrink,
    shrink_chaos, verify_schedules, watchdog_control_checks, write_chaos_reproducer,
    write_reproducer, CellConfig, ChaosCell, ChaosVerdict,
};
use oppic_core::telemetry::Telemetry;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const REPRO_DIR: &str = "results/conformance";

fn usage() -> ! {
    eprintln!(
        "usage: conformance [--quick | --full | --schedules | --replay <file.json> | \
         --chaos [--quick|--full] | --chaos-replay <file.json>]"
    );
    std::process::exit(2);
}

fn replay(path: &str) -> i32 {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("conformance: cannot read {path}: {e}");
            return 2;
        }
    };
    let (cell, recorded) = match parse_reproducer(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("conformance: {e}");
            return 2;
        }
    };
    println!("replaying {cell}");
    if !recorded.is_empty() {
        println!("recorded failures:");
        for line in &recorded {
            println!("  {line}");
        }
    }
    let report = check_cell(&cell);
    if report.passed() {
        println!("PASS — the recorded failure no longer reproduces");
        0
    } else {
        println!("FAIL — reproduced:");
        for line in report.failure_lines() {
            println!("  {line}");
        }
        1
    }
}

fn run(cells: &[CellConfig], label: &str) -> i32 {
    let tel = Arc::new(Telemetry::new());
    let _guard = tel.make_current();
    let t0 = Instant::now();
    println!("conformance --{label}: {} matrix cells", cells.len());

    let reports = run_matrix(cells);
    let mut failed = Vec::new();
    for report in &reports {
        if report.passed() {
            println!(
                "  PASS {:<34} {:>6} values, oracle {:?}",
                report.cell.id(),
                report.comparison.compared,
                report.oracle
            );
        } else {
            println!("  FAIL {}", report.cell);
            for line in report.failure_lines() {
                println!("       {line}");
            }
            failed.push(report.cell.clone());
        }
    }

    for cell in &failed {
        println!("shrinking {} ...", cell.id());
        let (shrunk, spent) = shrink(cell, &mut cell_fails);
        let lines = check_cell(&shrunk).failure_lines();
        match write_reproducer(Path::new(REPRO_DIR), &shrunk, &lines) {
            Ok(path) => println!(
                "  minimal reproducer ({} steps, {} particles, {spent} attempts): {}\n  \
                 replay with: cargo run --release --bin conformance -- --replay {}",
                shrunk.steps,
                shrunk.particles,
                path.display(),
                path.display()
            ),
            Err(e) => eprintln!("  cannot write reproducer: {e}"),
        }
    }

    let counters = tel.counters_snapshot();
    let compared: u64 = counters
        .iter()
        .filter(|(k, _)| k.ends_with("/values_compared"))
        .map(|(_, v)| *v)
        .sum();
    // Per-cell keys are `conformance/<id>/divergent`; deeper keys are
    // the per-kernel attribution and would double-count.
    let divergent: u64 = counters
        .iter()
        .filter(|(k, _)| k.ends_with("/divergent") && k.matches('/').count() == 2)
        .map(|(_, v)| *v)
        .sum();
    println!(
        "{}/{} cells passed, {compared} values compared, {divergent} divergent, {:.2}s",
        reports.len() - failed.len(),
        reports.len(),
        t0.elapsed().as_secs_f64()
    );
    if failed.is_empty() {
        0
    } else {
        1
    }
}

/// Run one chaos cell and report it. Returns the verdict; anything
/// short of `Recovered` is shrunk into a reproducer.
fn chaos_cell_outcome(cell: &ChaosCell) -> ChaosVerdict {
    let report = run_chaos_cell(cell);
    // Flight-recorder evidence: recovery cells keep their event ring
    // whenever anything alerted or the run fell short of Recovered.
    if let Some(bytes) = &report.recorder_dump {
        let path = Path::new(REPRO_DIR).join(format!("{}.opfr", cell.id()));
        match std::fs::create_dir_all(REPRO_DIR).and_then(|()| std::fs::write(&path, bytes)) {
            Ok(()) => println!(
                "  flight recorder dump: {} ({} bytes; decode with oppic-report \
                 --decode-recorder)",
                path.display(),
                bytes.len()
            ),
            Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
        }
    }
    match &report.verdict {
        ChaosVerdict::Recovered {
            injected,
            retransmits,
            recoveries,
        } => println!(
            "  PASS  {:<40} recovered ({injected} injected, {retransmits} retransmits, \
             {recoveries} rollbacks)",
            cell.id()
        ),
        ChaosVerdict::CleanAbort { errors } => {
            println!("  ABORT {:<40} clean typed abort", cell.id());
            for line in errors {
                println!("        {line}");
            }
        }
        ChaosVerdict::SilentCorruption { failures } => {
            println!("  FAIL  {:<40} SILENT CORRUPTION", cell.id());
            for line in failures {
                println!("        {line}");
            }
        }
    }
    if !report.recovered() {
        println!("shrinking {} ...", cell.id());
        let (shrunk, spent) = shrink_chaos(cell, &mut chaos_cell_fails);
        let lines = run_chaos_cell(&shrunk).failure_lines();
        match write_chaos_reproducer(Path::new(REPRO_DIR), &shrunk, &lines) {
            Ok(path) => println!(
                "  minimal reproducer ({} steps, {} particles, {} ranks, {spent} attempts): {}\n  \
                 replay with: cargo run --release --bin conformance -- --chaos-replay {}",
                shrunk.steps,
                shrunk.particles,
                shrunk.ranks,
                path.display(),
                path.display()
            ),
            Err(e) => eprintln!("  cannot write reproducer: {e}"),
        }
    }
    report.verdict
}

fn run_chaos(cells: &[ChaosCell], label: &str) -> i32 {
    let t0 = Instant::now();
    println!(
        "conformance --chaos --{label}: {} seeded schedules",
        cells.len()
    );
    let (mut recovered, mut aborted, mut corrupted) = (0usize, 0usize, 0usize);
    for cell in cells {
        match chaos_cell_outcome(cell) {
            ChaosVerdict::Recovered { .. } => recovered += 1,
            ChaosVerdict::CleanAbort { .. } => aborted += 1,
            ChaosVerdict::SilentCorruption { .. } => corrupted += 1,
        }
    }
    // Watchdog negative controls (DESIGN.md §6): a fault-free
    // synthetic step series must raise zero alerts, and each injected
    // anomaly must trip exactly its own rule exactly once.
    let controls = watchdog_control_checks();
    println!("watchdog controls: {} checks", controls.len());
    let mut control_failures = 0usize;
    for check in &controls {
        match &check.result {
            Ok(()) => println!("  PASS  {}", check.name),
            Err(evidence) => {
                control_failures += 1;
                println!("  FAIL  {}", check.name);
                println!("        {evidence}");
            }
        }
    }
    println!(
        "{recovered} recovered, {aborted} clean aborts, {corrupted} silently corrupted, \
         {}/{} watchdog controls passed, {:.2}s",
        controls.len() - control_failures,
        controls.len(),
        t0.elapsed().as_secs_f64()
    );
    if corrupted == 0 && control_failures == 0 {
        0
    } else {
        1
    }
}

fn chaos_replay(path: &str) -> i32 {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("conformance: cannot read {path}: {e}");
            return 2;
        }
    };
    let (cell, recorded) = match parse_chaos_reproducer(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("conformance: {e}");
            return 2;
        }
    };
    println!("replaying {cell}");
    if !recorded.is_empty() {
        println!("recorded failures:");
        for line in &recorded {
            println!("  {line}");
        }
    }
    let report = run_chaos_cell(&cell);
    if report.recovered() {
        println!("PASS — the recorded misbehaviour no longer reproduces");
        0
    } else {
        let class = match &report.verdict {
            ChaosVerdict::CleanAbort { .. } => "clean abort",
            _ => "silent corruption",
        };
        println!("FAIL — reproduced ({class}):");
        for line in report.failure_lines() {
            println!("  {line}");
        }
        1
    }
}

/// Whole-step schedule conformance (DESIGN.md §11): both apps'
/// recorded communication schedules audit Error-free with at least
/// one overlap-legal loop per exchange, and the broken-schedule
/// negative control still trips the staleness detector.
fn run_schedule_checks() -> i32 {
    let t0 = Instant::now();
    let checks = verify_schedules();
    println!("conformance schedules: {} checks", checks.len());
    let mut failed = 0;
    for check in &checks {
        if check.passed() {
            println!("  PASS {:<34} {:>6} events", check.app, check.events);
        } else {
            failed += 1;
            println!("  FAIL {}", check.app);
            for line in &check.failures {
                println!("       {line}");
            }
        }
    }
    println!(
        "{}/{} schedule checks passed, {:.2}s",
        checks.len() - failed,
        checks.len(),
        t0.elapsed().as_secs_f64()
    );
    i32::from(failed > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--quick") | None => run(&quick_matrix(), "quick").max(run_schedule_checks()),
        Some("--full") => run(&full_matrix(), "full").max(run_schedule_checks()),
        Some("--schedules") => run_schedule_checks(),
        Some("--replay") => match args.get(1) {
            Some(path) => replay(path),
            None => usage(),
        },
        Some("--chaos") => match args.get(1).map(String::as_str) {
            Some("--quick") | None => run_chaos(&chaos_quick_matrix(), "quick"),
            Some("--full") => run_chaos(&chaos_full_matrix(), "full"),
            _ => usage(),
        },
        Some("--chaos-replay") => match args.get(1) {
            Some(path) => chaos_replay(path),
            None => usage(),
        },
        _ => usage(),
    };
    std::process::exit(code);
}
