//! The backend matrix: every axis the paper claims equivalence over,
//! mapped to this repo's analogue execution paths.
//!
//! A [`CellConfig`] names one point of the matrix — application ×
//! execution policy × deposit method × mover × runtime substrate —
//! plus the run size (steps, particles) and seed. The matrix runner
//! executes each cell and compares it against the reference cell of
//! its comparison class (see [`crate::runner`]).

use oppic_core::{DepositMethod, ExecPolicy};
use std::fmt;

/// Which application the cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Mini-FEM-PIC on the tetrahedral duct.
    FemPic,
    /// CabanaPIC two-stream on the structured grid.
    Cabana,
}

/// Execution policy axis (the OpenMP-backend analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    Seq,
    Pool2,
    Pool4,
}

impl Exec {
    pub fn policy(self) -> ExecPolicy {
        match self {
            Exec::Seq => ExecPolicy::Seq,
            Exec::Pool2 => ExecPolicy::pool(2),
            Exec::Pool4 => ExecPolicy::pool(4),
        }
    }
}

/// Particle relocation axis (Mini-FEM-PIC only; CabanaPIC's fused
/// `Move_Deposit` has a single mover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mover {
    MultiHop,
    DirectHop,
}

/// Runtime substrate axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Plain host execution.
    Host,
    /// The deposit scatter routed through the `oppic-device` SIMT
    /// model (CAS-exact atomics, divergence/collision accounting).
    DeviceModel,
    /// In-process MPI ranks (`oppic-mpi::world_run`) with particle
    /// migration and replicated-field reductions.
    Mpi(usize),
}

/// Deliberate fault injection for the harness's own mutation smoke
/// tests: proves a deposit bug is caught and shrunk. Never part of the
/// shipped matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// After every step, subtract half of one particle's charge from
    /// node 0 — the lost-update bug class a racy deposit produces.
    DepositLostUpdate,
}

/// One point of the backend matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    pub app: App,
    pub exec: Exec,
    /// Deposit race strategy (Mini-FEM-PIC only; ignored by CabanaPIC,
    /// whose current accumulator is always atomic).
    pub deposit: DepositMethod,
    pub mover: Mover,
    pub runtime: Runtime,
    /// Rebuild the CSR cell index every step (the cell-locality
    /// engine's gather-side sort — permutes the particle array).
    pub sort_always: bool,
    pub steps: usize,
    /// Injection rate per step (Mini-FEM-PIC) or particles per cell
    /// (CabanaPIC).
    pub particles: usize,
    pub seed: u64,
    pub mutation: Option<Mutation>,
}

impl CellConfig {
    /// The sequential/Serial reference configuration every host-class
    /// cell of `app` is compared against.
    pub fn reference(app: App) -> CellConfig {
        CellConfig {
            app,
            exec: Exec::Seq,
            deposit: DepositMethod::Serial,
            mover: Mover::MultiHop,
            runtime: Runtime::Host,
            sort_always: false,
            steps: 3,
            particles: match app {
                App::FemPic => 40,
                App::Cabana => 8,
            },
            seed: 0xC0FF0,
            mutation: None,
        }
    }

    /// The reference this cell is differenced against: host and
    /// device-model cells share the sequential/Serial host reference;
    /// an MPI cell's reference is the same driver on a single rank
    /// (per-rank injection streams make per-node state incomparable
    /// across rank counts — see DESIGN.md).
    pub fn reference_for(&self) -> CellConfig {
        let mut r = CellConfig::reference(self.app);
        r.steps = self.steps;
        r.particles = self.particles;
        r.seed = self.seed;
        if let Runtime::Mpi(_) = self.runtime {
            r.runtime = Runtime::Mpi(1);
            r.mover = self.mover;
        }
        r
    }

    /// Stable identifier, used for telemetry counters, reporting, and
    /// reproducer file names.
    pub fn id(&self) -> String {
        let app = match self.app {
            App::FemPic => "fempic",
            App::Cabana => "cabana",
        };
        let exec = match self.exec {
            Exec::Seq => "seq",
            Exec::Pool2 => "pool2",
            Exec::Pool4 => "pool4",
        };
        let mover = match self.mover {
            Mover::MultiHop => "mh",
            Mover::DirectHop => "dh",
        };
        let runtime = match self.runtime {
            Runtime::Host => "host".to_string(),
            Runtime::DeviceModel => "device".to_string(),
            Runtime::Mpi(r) => format!("mpi{r}"),
        };
        let sort = if self.sort_always { "-sorted" } else { "" };
        let mutated = if self.mutation.is_some() {
            "-mutated"
        } else {
            ""
        };
        format!(
            "{app}-{exec}-{}-{mover}-{runtime}{sort}{mutated}",
            self.deposit.label().to_lowercase()
        )
    }
}

impl fmt::Display for CellConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (steps={}, particles={}, seed={:#x})",
            self.id(),
            self.steps,
            self.particles,
            self.seed
        )
    }
}

/// The CI smoke subset: ≥ 24 cells spanning every axis at least once.
pub fn quick_matrix() -> Vec<CellConfig> {
    let mut cells = Vec::new();
    let fem = CellConfig::reference(App::FemPic);
    let cab = CellConfig::reference(App::Cabana);

    // FEM-PIC host: every deposit method under Seq, both movers.
    for deposit in [
        DepositMethod::Serial,
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::SortedSegments,
        DepositMethod::Matrix,
    ] {
        for mover in [Mover::MultiHop, Mover::DirectHop] {
            cells.push(CellConfig {
                deposit,
                mover,
                ..fem.clone()
            });
        }
    }
    // FEM-PIC host: parallel pools (multi-hop).
    for deposit in [
        DepositMethod::Serial,
        DepositMethod::ScatterArrays,
        DepositMethod::Atomics,
        DepositMethod::SortedSegments,
        DepositMethod::Matrix,
    ] {
        cells.push(CellConfig {
            exec: Exec::Pool2,
            deposit,
            ..fem.clone()
        });
    }
    cells.push(CellConfig {
        exec: Exec::Pool4,
        deposit: DepositMethod::ScatterArrays,
        ..fem.clone()
    });
    cells.push(CellConfig {
        exec: Exec::Pool4,
        deposit: DepositMethod::SortedSegments,
        ..fem.clone()
    });
    // FEM-PIC device model and MPI.
    cells.push(CellConfig {
        runtime: Runtime::DeviceModel,
        ..fem.clone()
    });
    for ranks in [1, 2] {
        cells.push(CellConfig {
            runtime: Runtime::Mpi(ranks),
            ..fem.clone()
        });
    }
    // CabanaPIC host: policies × sort.
    for exec in [Exec::Seq, Exec::Pool2, Exec::Pool4] {
        for sort_always in [false, true] {
            cells.push(CellConfig {
                exec,
                sort_always,
                ..cab.clone()
            });
        }
    }
    // CabanaPIC MPI.
    for ranks in [1, 2] {
        cells.push(CellConfig {
            runtime: Runtime::Mpi(ranks),
            ..cab.clone()
        });
    }
    cells
}

/// The full matrix: {Seq, pool(2), pool(4)} × deposit methods ×
/// movers × runtimes for Mini-FEM-PIC, plus the CabanaPIC axes.
pub fn full_matrix() -> Vec<CellConfig> {
    let mut cells = Vec::new();
    let mut fem = CellConfig::reference(App::FemPic);
    fem.steps = 5;
    let mut cab = CellConfig::reference(App::Cabana);
    cab.steps = 5;

    for exec in [Exec::Seq, Exec::Pool2, Exec::Pool4] {
        for deposit in [
            DepositMethod::Serial,
            DepositMethod::ScatterArrays,
            DepositMethod::Atomics,
            DepositMethod::SortedSegments,
            DepositMethod::Matrix,
        ] {
            for mover in [Mover::MultiHop, Mover::DirectHop] {
                cells.push(CellConfig {
                    exec,
                    deposit,
                    mover,
                    ..fem.clone()
                });
            }
        }
    }
    // The CSR-index-bound deposits × the sort-policy axis: the cell
    // engine's own pre-deposit sort (sort_always=false above) against
    // an every-step external rebuild.
    for exec in [Exec::Seq, Exec::Pool2, Exec::Pool4] {
        for deposit in [DepositMethod::SortedSegments, DepositMethod::Matrix] {
            cells.push(CellConfig {
                exec,
                deposit,
                sort_always: true,
                ..fem.clone()
            });
        }
    }
    // Device model (policy is the warp engine's own, movers differ).
    for mover in [Mover::MultiHop, Mover::DirectHop] {
        cells.push(CellConfig {
            runtime: Runtime::DeviceModel,
            mover,
            ..fem.clone()
        });
    }
    // MPI ranks × movers.
    for ranks in [1, 2, 4] {
        for mover in [Mover::MultiHop, Mover::DirectHop] {
            cells.push(CellConfig {
                runtime: Runtime::Mpi(ranks),
                mover,
                ..fem.clone()
            });
        }
    }
    // CabanaPIC: policies × sort, then MPI.
    for exec in [Exec::Seq, Exec::Pool2, Exec::Pool4] {
        for sort_always in [false, true] {
            cells.push(CellConfig {
                exec,
                sort_always,
                ..cab.clone()
            });
        }
    }
    for ranks in [1, 2, 4] {
        cells.push(CellConfig {
            runtime: Runtime::Mpi(ranks),
            ..cab.clone()
        });
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_at_least_24_cells_and_every_axis() {
        let cells = quick_matrix();
        assert!(cells.len() >= 24, "only {} cells", cells.len());
        assert!(cells.iter().any(|c| c.app == App::Cabana));
        assert!(cells.iter().any(|c| c.exec == Exec::Pool4));
        assert!(cells.iter().any(|c| c.runtime == Runtime::DeviceModel));
        assert!(cells.iter().any(|c| matches!(c.runtime, Runtime::Mpi(2))));
        assert!(cells.iter().any(|c| c.mover == Mover::DirectHop));
        assert!(cells
            .iter()
            .any(|c| c.deposit == DepositMethod::SortedSegments));
        assert!(
            cells.iter().any(|c| c.deposit == DepositMethod::Matrix),
            "the matrixized deposit must be exercised by the quick matrix"
        );
        // Cell ids are unique (they key telemetry counters and files).
        let mut ids: Vec<String> = cells.iter().map(CellConfig::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn full_matrix_is_a_superset_of_the_axes() {
        let cells = full_matrix();
        assert!(cells.len() > quick_matrix().len());
        assert!(cells
            .iter()
            .any(|c| c.runtime == Runtime::Mpi(4) && c.app == App::FemPic));
        assert!(cells
            .iter()
            .any(|c| c.exec == Exec::Pool4 && c.mover == Mover::DirectHop));
        assert!(
            cells
                .iter()
                .any(|c| c.deposit == DepositMethod::Matrix && c.sort_always),
            "the full matrix crosses the matrixized deposit with the sort axis"
        );
    }

    #[test]
    fn mpi_cells_reference_a_single_rank_run() {
        let mut cell = CellConfig::reference(App::FemPic);
        cell.runtime = Runtime::Mpi(4);
        cell.exec = Exec::Pool2;
        let r = cell.reference_for();
        assert_eq!(r.runtime, Runtime::Mpi(1));
        assert_eq!(r.exec, Exec::Seq);
        // Host cells reference the plain host run.
        let host = CellConfig::reference(App::FemPic).reference_for();
        assert_eq!(host.runtime, Runtime::Host);
    }
}
