//! Failing-configuration shrinker.
//!
//! Given a failing cell and a failure predicate, minimise in a fixed
//! order — steps first (halving, then linear), then particle count
//! (same), then each matrix axis back toward the reference — keeping
//! every candidate that still fails. The result is the smallest
//! reproducer this greedy walk can reach; for an injected deposit bug
//! it converges to one step and a handful of particles.

use crate::matrix::{CellConfig, Exec, Mover, Runtime};
use oppic_core::DepositMethod;

/// Upper bound on predicate evaluations during one shrink (each
/// evaluation reruns the cell and its reference).
pub const MAX_ATTEMPTS: usize = 64;

/// Shrink `start` (which must currently fail) to a minimal failing
/// configuration under `fails`. Returns the shrunk cell and how many
/// candidate evaluations were spent.
pub fn shrink(
    start: &CellConfig,
    fails: &mut dyn FnMut(&CellConfig) -> bool,
) -> (CellConfig, usize) {
    let mut cur = start.clone();
    let mut spent = 0usize;
    let mut try_keep = |cur: &mut CellConfig, spent: &mut usize, candidate: CellConfig| -> bool {
        if *spent >= MAX_ATTEMPTS || candidate == *cur {
            return false;
        }
        *spent += 1;
        if fails(&candidate) {
            *cur = candidate;
            true
        } else {
            false
        }
    };

    // 1. Steps: halve while the failure persists, then step down.
    while cur.steps > 1 {
        let mut c = cur.clone();
        c.steps = (cur.steps / 2).max(1);
        if !try_keep(&mut cur, &mut spent, c) {
            break;
        }
    }
    while cur.steps > 1 {
        let mut c = cur.clone();
        c.steps -= 1;
        if !try_keep(&mut cur, &mut spent, c) {
            break;
        }
    }

    // 2. Particles: same halving-then-linear walk.
    while cur.particles > 1 {
        let mut c = cur.clone();
        c.particles = (cur.particles / 2).max(1);
        if !try_keep(&mut cur, &mut spent, c) {
            break;
        }
    }
    while cur.particles > 1 {
        let mut c = cur.clone();
        c.particles -= 1;
        if !try_keep(&mut cur, &mut spent, c) {
            break;
        }
    }

    // 3. Matrix axes: move each one back toward the reference cell.
    if cur.exec != Exec::Seq {
        let mut c = cur.clone();
        c.exec = Exec::Seq;
        try_keep(&mut cur, &mut spent, c);
    }
    if cur.deposit != DepositMethod::Serial {
        let mut c = cur.clone();
        c.deposit = DepositMethod::Serial;
        try_keep(&mut cur, &mut spent, c);
    }
    if cur.mover != Mover::MultiHop {
        let mut c = cur.clone();
        c.mover = Mover::MultiHop;
        try_keep(&mut cur, &mut spent, c);
    }
    match cur.runtime {
        Runtime::Host => {}
        Runtime::DeviceModel => {
            let mut c = cur.clone();
            c.runtime = Runtime::Host;
            try_keep(&mut cur, &mut spent, c);
        }
        Runtime::Mpi(r) => {
            // MPI shrinks toward fewer ranks, then to the host path.
            if r > 1 {
                let mut c = cur.clone();
                c.runtime = Runtime::Mpi(1);
                try_keep(&mut cur, &mut spent, c);
            }
            let mut c = cur.clone();
            c.runtime = Runtime::Host;
            try_keep(&mut cur, &mut spent, c);
        }
    }
    if cur.sort_always {
        let mut c = cur.clone();
        c.sort_always = false;
        try_keep(&mut cur, &mut spent, c);
    }

    (cur, spent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::App;

    #[test]
    fn shrinks_sizes_and_axes_against_a_synthetic_predicate() {
        // "Fails whenever steps ≥ 2 or particles ≥ 5" — each size axis
        // must land exactly on its own boundary (particles ≥ 5 keeps
        // the predicate failing while steps collapse all the way).
        let mut start = CellConfig::reference(App::FemPic);
        start.steps = 13;
        start.particles = 40;
        start.exec = Exec::Pool4;
        start.deposit = DepositMethod::Atomics;
        start.sort_always = true;
        let mut calls = 0usize;
        let (shrunk, spent) = shrink(&start, &mut |c| {
            calls += 1;
            c.steps >= 2 || c.particles >= 5
        });
        assert_eq!(shrunk.steps, 1);
        assert_eq!(shrunk.particles, 5);
        // Axes shrink toward reference when the failure is size-driven.
        assert_eq!(shrunk.exec, Exec::Seq);
        assert_eq!(shrunk.deposit, DepositMethod::Serial);
        assert!(!shrunk.sort_always);
        assert_eq!(calls, spent);
        assert!(spent <= MAX_ATTEMPTS);
    }

    #[test]
    fn always_failing_predicate_reaches_the_floor() {
        let mut start = CellConfig::reference(App::FemPic);
        start.steps = 8;
        start.particles = 32;
        start.runtime = Runtime::Mpi(4);
        let (shrunk, _) = shrink(&start, &mut |_| true);
        assert_eq!(shrunk.steps, 1);
        assert_eq!(shrunk.particles, 1);
        assert_eq!(shrunk.runtime, Runtime::Host);
    }

    #[test]
    fn matrix_bound_failure_keeps_the_matrix_axis() {
        // A failure that only reproduces under the matrixized deposit:
        // sizes collapse but the deposit axis must NOT shrink to
        // Serial, so the written reproducer still names `mx`.
        let mut start = CellConfig::reference(App::FemPic);
        start.steps = 9;
        start.particles = 40;
        start.exec = Exec::Pool2;
        start.deposit = DepositMethod::Matrix;
        let (shrunk, _) = shrink(&start, &mut |c| c.deposit == DepositMethod::Matrix);
        assert_eq!(shrunk.deposit, DepositMethod::Matrix);
        assert_eq!(shrunk.steps, 1);
        assert_eq!(shrunk.particles, 1);
        assert_eq!(shrunk.exec, Exec::Seq, "unrelated axes still shrink");
        assert!(shrunk.id().contains("mx"), "{}", shrunk.id());
    }

    #[test]
    fn never_shrinks_into_a_passing_config() {
        let mut start = CellConfig::reference(App::FemPic);
        start.steps = 6;
        start.particles = 24;
        // Fails only at the original size: nothing can shrink.
        let orig = start.clone();
        let (shrunk, _) = shrink(&start, &mut |c| *c == orig);
        assert_eq!(shrunk, orig);
    }
}
