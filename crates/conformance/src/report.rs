//! Replayable failure reproducers.
//!
//! When a matrix cell fails and the shrinker has minimised it, the
//! harness writes a JSON case under `results/conformance/` that
//! `conformance --replay <file>` re-executes exactly. The schema is
//! versioned so stale reproducers fail loudly instead of replaying the
//! wrong configuration.

use crate::matrix::{App, CellConfig, Exec, Mover, Mutation, Runtime};
use oppic_core::json::{self, Json};
use oppic_core::DepositMethod;
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub const SCHEMA: &str = "oppic-conformance-repro-v1";

fn deposit_label(d: DepositMethod) -> &'static str {
    d.label()
}

fn deposit_from_label(label: &str) -> Result<DepositMethod, String> {
    Ok(match label {
        "SEQ" => DepositMethod::Serial,
        "SA" => DepositMethod::ScatterArrays,
        "AT" => DepositMethod::Atomics,
        "UA" => DepositMethod::UnsafeAtomics,
        "SR" => DepositMethod::SegmentedReduction,
        "SS" => DepositMethod::SortedSegments,
        other => return Err(format!("unknown deposit label '{other}'")),
    })
}

/// Serialise a shrunk failing cell plus its failure lines.
pub fn reproducer_json(cell: &CellConfig, failures: &[String]) -> String {
    let (runtime, ranks) = match cell.runtime {
        Runtime::Host => ("host", 0usize),
        Runtime::DeviceModel => ("device", 0),
        Runtime::Mpi(r) => ("mpi", r),
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {},\n", json::quote(SCHEMA)));
    out.push_str(&format!("  \"id\": {},\n", json::quote(&cell.id())));
    out.push_str(&format!(
        "  \"app\": {},\n",
        json::quote(match cell.app {
            App::FemPic => "fempic",
            App::Cabana => "cabana",
        })
    ));
    out.push_str(&format!(
        "  \"exec\": {},\n",
        json::quote(match cell.exec {
            Exec::Seq => "seq",
            Exec::Pool2 => "pool2",
            Exec::Pool4 => "pool4",
        })
    ));
    out.push_str(&format!(
        "  \"deposit\": {},\n",
        json::quote(deposit_label(cell.deposit))
    ));
    out.push_str(&format!(
        "  \"mover\": {},\n",
        json::quote(match cell.mover {
            Mover::MultiHop => "mh",
            Mover::DirectHop => "dh",
        })
    ));
    out.push_str(&format!("  \"runtime\": {},\n", json::quote(runtime)));
    out.push_str(&format!("  \"mpi_ranks\": {},\n", json::num(ranks as f64)));
    out.push_str(&format!("  \"sort_always\": {},\n", cell.sort_always));
    out.push_str(&format!("  \"steps\": {},\n", json::num(cell.steps as f64)));
    out.push_str(&format!(
        "  \"particles\": {},\n",
        json::num(cell.particles as f64)
    ));
    out.push_str(&format!("  \"seed\": {},\n", json::num(cell.seed as f64)));
    out.push_str(&format!(
        "  \"mutation\": {},\n",
        match cell.mutation {
            None => "null".to_string(),
            Some(Mutation::DepositLostUpdate) => json::quote("deposit-lost-update"),
        }
    ));
    out.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        let comma = if i + 1 == failures.len() { "" } else { "," };
        out.push_str(&format!("    {}{comma}\n", json::quote(f)));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"replay\": {}\n",
        json::quote(&format!(
            "cargo run --release --bin conformance -- --replay results/conformance/{}.json",
            cell.id()
        ))
    ));
    out.push_str("}\n");
    out
}

fn req_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("reproducer missing string field '{key}'"))
}

fn req_usize(obj: &Json, key: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("reproducer missing integer field '{key}'"))
}

/// Parse a reproducer back into the cell it captured and its recorded
/// failure lines.
pub fn parse_reproducer(src: &str) -> Result<(CellConfig, Vec<String>), String> {
    let doc = json::parse(src)?;
    let schema = req_str(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "reproducer schema '{schema}' is not '{SCHEMA}' — regenerate the case"
        ));
    }
    let app = match req_str(&doc, "app")? {
        "fempic" => App::FemPic,
        "cabana" => App::Cabana,
        other => return Err(format!("unknown app '{other}'")),
    };
    let exec = match req_str(&doc, "exec")? {
        "seq" => Exec::Seq,
        "pool2" => Exec::Pool2,
        "pool4" => Exec::Pool4,
        other => return Err(format!("unknown exec '{other}'")),
    };
    let deposit = deposit_from_label(req_str(&doc, "deposit")?)?;
    let mover = match req_str(&doc, "mover")? {
        "mh" => Mover::MultiHop,
        "dh" => Mover::DirectHop,
        other => return Err(format!("unknown mover '{other}'")),
    };
    let runtime = match req_str(&doc, "runtime")? {
        "host" => Runtime::Host,
        "device" => Runtime::DeviceModel,
        "mpi" => Runtime::Mpi(req_usize(&doc, "mpi_ranks")?.max(1)),
        other => return Err(format!("unknown runtime '{other}'")),
    };
    let sort_always = doc
        .get("sort_always")
        .and_then(|v| match v {
            Json::Bool(b) => Some(*b),
            _ => None,
        })
        .ok_or("reproducer missing boolean field 'sort_always'")?;
    let mutation = match doc.get("mutation") {
        Some(Json::Null) | None => None,
        Some(Json::Str(s)) if s == "deposit-lost-update" => Some(Mutation::DepositLostUpdate),
        Some(other) => return Err(format!("unknown mutation {other:?}")),
    };
    let failures = doc
        .get("failures")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    Ok((
        CellConfig {
            app,
            exec,
            deposit,
            mover,
            runtime,
            sort_always,
            steps: req_usize(&doc, "steps")?,
            particles: req_usize(&doc, "particles")?,
            seed: doc
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("reproducer missing integer field 'seed'")?,
            mutation,
        },
        failures,
    ))
}

/// Write the reproducer under `dir`, named after the cell id. Returns
/// the path written.
pub fn write_reproducer(
    dir: &Path,
    cell: &CellConfig,
    failures: &[String],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", cell.id()));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(reproducer_json(cell, failures).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducer_roundtrips_every_axis() {
        let mut cell = CellConfig::reference(App::FemPic);
        cell.exec = Exec::Pool4;
        cell.deposit = DepositMethod::SortedSegments;
        cell.mover = Mover::DirectHop;
        cell.runtime = Runtime::Mpi(2);
        cell.sort_always = true;
        cell.steps = 2;
        cell.particles = 7;
        cell.mutation = Some(Mutation::DepositLostUpdate);
        let failures = vec!["node_charge[0]: got 1e0, want 2e0".to_string()];
        let src = reproducer_json(&cell, &failures);
        let (back, back_failures) = parse_reproducer(&src).expect("parse");
        assert_eq!(back, cell);
        assert_eq!(back_failures, failures);
    }

    #[test]
    fn stale_schema_is_rejected() {
        let cell = CellConfig::reference(App::Cabana);
        let src = reproducer_json(&cell, &[]).replace(SCHEMA, "oppic-conformance-repro-v0");
        let err = parse_reproducer(&src).unwrap_err();
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn host_runtime_roundtrips_without_ranks() {
        let cell = CellConfig::reference(App::Cabana);
        let (back, _) = parse_reproducer(&reproducer_json(&cell, &[])).expect("parse");
        assert_eq!(back, cell);
        assert_eq!(back.runtime, Runtime::Host);
    }
}
