//! The differential matrix runner: execute one matrix cell, execute
//! its reference, and compare under the cell's equivalence oracle.
//!
//! Every run also enforces the physics invariants the paper's
//! applications must uphold regardless of backend: particle-count
//! conservation through inject/move/remove (checked after every step),
//! charge conservation after deposit (Mini-FEM-PIC), bounded energy
//! drift (CabanaPIC), and the application's own structural invariants.
//! Host Mini-FEM-PIC cells additionally register their loop plans with
//! the analyzer's static checker, so an incoherent configuration fails
//! the cell even when the numbers happen to agree.

use crate::matrix::{App, CellConfig, Mover, Mutation, Runtime};
use crate::oracle::{compare, Comparison, Oracle};
use oppic_analyzer::check_plans;
use oppic_bench::distributed::{run_cabana_distributed, run_fempic_distributed};
use oppic_cabana::{CabanaConfig, StructuredCabana};
use oppic_core::{telemetry, DepositMethod, Observable, Simulation, SortPolicy};
use oppic_device::{Device, DeviceBuffer, DeviceSpec};
use oppic_fempic::{FemPic, FemPicConfig, MoveStrategy};

/// Everything one cell execution produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub observables: Vec<Observable>,
    /// Invariant violations, flux imbalances, analyzer plan errors,
    /// broken bit-identity promises — any of these fails the cell.
    pub errors: Vec<String>,
}

/// One cell's verdict after differencing against its reference.
#[derive(Debug, Clone)]
pub struct CellReport {
    pub cell: CellConfig,
    pub oracle: Oracle,
    pub comparison: Comparison,
    pub errors: Vec<String>,
}

impl CellReport {
    pub fn passed(&self) -> bool {
        self.comparison.passed() && self.errors.is_empty()
    }

    /// Human-readable failure lines (empty when passed).
    pub fn failure_lines(&self) -> Vec<String> {
        let mut out = self.errors.clone();
        out.extend(self.comparison.structural.iter().cloned());
        out.extend(self.comparison.divergences.iter().map(|d| d.to_string()));
        if self.comparison.divergent > self.comparison.divergences.len() as u64 {
            out.push(format!(
                "... and {} more divergent values",
                self.comparison.divergent - self.comparison.divergences.len() as u64
            ));
        }
        out
    }
}

fn fempic_config(cell: &CellConfig) -> FemPicConfig {
    let mut fc = FemPicConfig::tiny();
    fc.inject_per_step = cell.particles.max(1);
    fc.policy = cell.exec.policy();
    fc.deposit = cell.deposit;
    fc.move_strategy = match cell.mover {
        Mover::MultiHop => MoveStrategy::MultiHop,
        Mover::DirectHop => MoveStrategy::DirectHop { overlay_res: 8 },
    };
    fc.sort_policy = if cell.sort_always {
        SortPolicy::Always
    } else {
        SortPolicy::Never
    };
    fc.seed = cell.seed;
    fc
}

fn cabana_config(cell: &CellConfig) -> CabanaConfig {
    let mut cc = CabanaConfig::tiny();
    // Two half-beams: ppc stays even and ≥ 2.
    cc.ppc = (cell.particles.max(2) + 1) & !1;
    cc.policy = cell.exec.policy();
    cc.sort_policy = if cell.sort_always {
        SortPolicy::Always
    } else {
        SortPolicy::Never
    };
    cc.seed = cell.seed;
    cc
}

/// Step a [`Simulation`], checking particle-count conservation after
/// every step. Returns per-step flux errors.
fn step_checked<S: Simulation>(sim: &mut S, steps: usize, errors: &mut Vec<String>) {
    for s in 0..steps {
        let before = sim.n_particles();
        sim.advance();
        let (injected, removed) = sim.last_step_flux();
        let expect = before + injected - removed;
        if sim.n_particles() != expect {
            errors.push(format!(
                "step {}: particle count not conserved: {} alive, expected \
                 {before} + {injected} injected - {removed} removed = {expect}",
                s + 1,
                sim.n_particles()
            ));
        }
    }
}

fn apply_mutation(sim: &mut FemPic, mutation: Mutation) {
    match mutation {
        Mutation::DepositLostUpdate => {
            // The lost-update bug class: one contribution silently
            // dropped from the deposit target.
            let q = sim.cfg.charge;
            sim.node_charge.raw_mut()[0] -= 0.5 * q;
        }
    }
}

fn run_fempic_host(cell: &CellConfig) -> RunResult {
    let mut sim = FemPic::new(fempic_config(cell));
    let mut errors = Vec::new();
    for s in 0..cell.steps {
        let before = Simulation::n_particles(&sim);
        sim.advance();
        let (injected, removed) = sim.last_step_flux();
        if Simulation::n_particles(&sim) != before + injected - removed {
            errors.push(format!("step {}: particle count not conserved", s + 1));
        }
        if let Some(m) = cell.mutation {
            apply_mutation(&mut sim, m);
        }
    }
    if let Err(e) = sim.invariants() {
        errors.push(format!("invariant: {e}"));
    }
    // Register this configuration's loop plans with the analyzer.
    let report = check_plans(&sim.loop_plans(), Some(&sim.decl_registry()));
    if report.has_errors() {
        errors.push(format!("loop-plan check:\n{report}"));
    }
    let observables = sim.observables();
    // The bit-identity promise DESIGN.md makes for the owner-computes
    // deposit, checked on this cell's own final store.
    if cell.deposit == DepositMethod::SortedSegments
        && cell.mutation.is_none()
        && !sim.sorted_segments_bit_identical()
    {
        errors.push(
            "SortedSegments deposit is not bit-identical to Serial on the same sorted store"
                .to_string(),
        );
    }
    // Same promise for the matrixized deposit's exact-accumulation
    // mode (the tile fold replays the Serial order).
    if cell.deposit == DepositMethod::Matrix
        && cell.mutation.is_none()
        && !sim.matrix_bit_identical()
    {
        errors.push(
            "Matrix deposit (exact mode) is not bit-identical to Serial on the same sorted store"
                .to_string(),
        );
    }
    RunResult {
        observables,
        errors,
    }
}

fn run_fempic_device(cell: &CellConfig) -> RunResult {
    let mut fc = fempic_config(cell);
    // The warp engine owns parallelism; the host stages run Seq.
    fc.policy = oppic_core::ExecPolicy::Seq;
    fc.deposit = DepositMethod::Serial;
    let mut sim = FemPic::new(fc);
    let device = Device::new(DeviceSpec::v100());
    let mut errors = Vec::new();
    let (mut atomic_ops, mut collisions) = (0u64, 0u64);
    for s in 0..cell.steps {
        let before = Simulation::n_particles(&sim);
        sim.advance();
        let (injected, removed) = sim.last_step_flux();
        if Simulation::n_particles(&sim) != before + injected - removed {
            errors.push(format!("step {}: particle count not conserved", s + 1));
        }
        // Re-execute the deposit scatter through the SIMT model and
        // adopt its (CAS-exact, differently-ordered) result, then
        // re-solve so the fields the next step sees flow from the
        // device-path deposit.
        let n = Simulation::n_particles(&sim);
        let buf = DeviceBuffer::zeros(sim.mesh.n_nodes());
        {
            let cells_col = sim.ps.cells();
            let lc = sim.ps.col(sim.lc);
            let c2n = &sim.mesh.c2n;
            let q = sim.cfg.charge;
            let report = device.launch(n, |lane| {
                let i = lane.tid;
                let c = cells_col[i] as usize;
                let nd = c2n[c];
                for k in 0..4 {
                    lane.atomic_add(&buf, nd[k], q * lc[i * 4 + k]);
                }
            });
            atomic_ops += report.atomic_ops;
            collisions += report.atomic_collisions;
        }
        sim.node_charge.raw_mut().copy_from_slice(&buf.to_vec());
        sim.field_solve();
    }
    if let Err(e) = sim.invariants() {
        errors.push(format!("invariant: {e}"));
    }
    if let Some(tel) = telemetry::current() {
        let id = cell.id();
        tel.counter_add(&format!("conformance/{id}/device_atomic_ops"), atomic_ops);
        tel.counter_add(
            &format!("conformance/{id}/device_atomic_collisions"),
            collisions,
        );
    }
    RunResult {
        observables: sim.observables(),
        errors,
    }
}

fn run_fempic_mpi(cell: &CellConfig, ranks: usize) -> RunResult {
    let base = fempic_config(cell);
    let rep = run_fempic_distributed(&base, ranks, cell.steps);
    let mut errors = Vec::new();
    if rep.total_particles == 0 {
        errors.push("distributed run lost every particle".to_string());
    }
    if rep.imbalance() > 3.0 {
        errors.push(format!(
            "rank imbalance {:.2} exceeds bound 3.0",
            rep.imbalance()
        ));
    }
    // Per-rank injection streams differ, so per-node fields are not
    // comparable across rank counts; charge *per particle* is exact.
    let per_particle = rep.check_scalar / rep.total_particles.max(1) as f64;
    RunResult {
        observables: vec![Observable::scalar("charge_per_particle", per_particle)],
        errors,
    }
}

fn run_cabana_host(cell: &CellConfig) -> RunResult {
    let mut sim = StructuredCabana::new_structured(cabana_config(cell));
    let mut errors = Vec::new();
    let e0 = sim.energies().total();
    step_checked(&mut sim, cell.steps, &mut errors);
    if let Err(e) = sim.invariants() {
        errors.push(format!("invariant: {e}"));
    }
    // Bounded energy drift: the collocated FDTD + Boris step conserves
    // total energy to discretisation error over a handful of steps.
    let e1 = sim.energies().total();
    let drift = (e1 - e0).abs() / e0.abs().max(1e-30);
    if drift > 0.05 {
        errors.push(format!(
            "energy drift {:.3e} exceeds bound 5e-2 ({e0:.6e} -> {e1:.6e})",
            drift
        ));
    }
    RunResult {
        observables: sim.observables(),
        errors,
    }
}

fn run_cabana_mpi(cell: &CellConfig, ranks: usize) -> RunResult {
    let base = cabana_config(cell);
    let expect_particles = base.n_particles();
    let rep = run_cabana_distributed(&base, ranks, cell.steps);
    let mut errors = Vec::new();
    if rep.total_particles != expect_particles {
        errors.push(format!(
            "particle count not conserved across ranks: {} alive, {} initialised",
            rep.total_particles, expect_particles
        ));
    }
    RunResult {
        observables: vec![
            Observable::scalar("total_energy", rep.check_scalar),
            Observable::scalar("n_particles", rep.total_particles as f64),
        ],
        errors,
    }
}

/// Execute one matrix cell.
pub fn run_cell(cell: &CellConfig) -> RunResult {
    match (cell.app, cell.runtime) {
        (App::FemPic, Runtime::Host) => run_fempic_host(cell),
        (App::FemPic, Runtime::DeviceModel) => run_fempic_device(cell),
        (App::FemPic, Runtime::Mpi(r)) => run_fempic_mpi(cell, r),
        (App::Cabana, Runtime::Host | Runtime::DeviceModel) => run_cabana_host(cell),
        (App::Cabana, Runtime::Mpi(r)) => run_cabana_mpi(cell, r),
    }
}

/// Which kernel a divergent observable points at — the attribution the
/// telemetry counters carry.
pub fn kernel_of(observable: &str) -> &'static str {
    match observable {
        "node_charge" => "DepositCharge",
        "efield" | "potential" => "FieldSolve",
        "cell_occupancy" => "Move",
        "kinetic_energy" => "CalcPosVel",
        "n_particles" | "charge_per_particle" => "Inject/Move",
        "e" => "Advance_E",
        "b" => "Advance_B",
        "j" => "Accumulate_Current",
        "energy" | "total_energy" => "Energies",
        _ => "Unknown",
    }
}

/// Difference `cell` against its reference and record per-cell
/// comparison counters on the current telemetry hub.
pub fn check_cell(cell: &CellConfig) -> CellReport {
    let reference = cell.reference_for();
    check_cell_against(cell, &run_cell(&reference), &reference)
}

/// [`check_cell`] with a pre-computed reference run (the matrix driver
/// caches reference runs; the shrinker re-runs them per attempt).
pub fn check_cell_against(
    cell: &CellConfig,
    reference_run: &RunResult,
    reference: &CellConfig,
) -> CellReport {
    let got = run_cell(cell);
    // A cell identical to its reference is the determinism gate: the
    // rerun must be *bit-identical*, not merely close.
    let oracle = if cell == reference {
        Oracle::BitIdentical
    } else {
        Oracle::field()
    };
    let comparison = compare(oracle, &got.observables, &reference_run.observables);
    let mut errors = got.errors;
    for e in &reference_run.errors {
        errors.push(format!("reference {}: {e}", reference.id()));
    }
    if let Some(tel) = telemetry::current() {
        let id = cell.id();
        tel.counter_add("conformance/cells_run", 1);
        tel.counter_add(
            &format!("conformance/{id}/values_compared"),
            comparison.compared,
        );
        if comparison.divergent > 0 {
            tel.counter_add(&format!("conformance/{id}/divergent"), comparison.divergent);
        }
        for (name, _, divergent) in &comparison.per_observable {
            if *divergent > 0 {
                tel.counter_add(
                    &format!("conformance/{id}/{}/divergent", kernel_of(name)),
                    *divergent,
                );
            }
        }
    }
    CellReport {
        cell: cell.clone(),
        oracle,
        comparison,
        errors,
    }
}

/// `true` when the cell currently fails its differential or physics
/// checks — the predicate the shrinker minimises against.
pub fn cell_fails(cell: &CellConfig) -> bool {
    !check_cell(cell).passed()
}

/// Run a whole matrix, caching reference runs per distinct reference
/// configuration.
pub fn run_matrix(cells: &[CellConfig]) -> Vec<CellReport> {
    let mut ref_cache: Vec<(CellConfig, RunResult)> = Vec::new();
    cells
        .iter()
        .map(|cell| {
            let reference = cell.reference_for();
            let cached = ref_cache.iter().find(|(c, _)| *c == reference);
            let reference_run = match cached {
                Some((_, r)) => r.clone(),
                None => {
                    let r = run_cell(&reference);
                    ref_cache.push((reference.clone(), r.clone()));
                    r
                }
            };
            check_cell_against(cell, &reference_run, &reference)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Exec;

    #[test]
    fn reference_cell_is_deterministic_bit_identical() {
        let cell = CellConfig::reference(App::FemPic);
        let report = check_cell(&cell);
        assert_eq!(report.oracle, Oracle::BitIdentical);
        assert!(report.passed(), "{:?}", report.failure_lines());
        assert!(report.comparison.compared > 100);
    }

    #[test]
    fn parallel_scatter_cell_matches_reference() {
        let mut cell = CellConfig::reference(App::FemPic);
        cell.exec = Exec::Pool2;
        cell.deposit = DepositMethod::ScatterArrays;
        let report = check_cell(&cell);
        assert_eq!(report.oracle, Oracle::field());
        assert!(report.passed(), "{:?}", report.failure_lines());
    }

    #[test]
    fn device_model_cell_matches_reference() {
        let mut cell = CellConfig::reference(App::FemPic);
        cell.runtime = Runtime::DeviceModel;
        let report = check_cell(&cell);
        assert!(report.passed(), "{:?}", report.failure_lines());
    }

    #[test]
    fn cabana_pool_cell_matches_reference() {
        let mut cell = CellConfig::reference(App::Cabana);
        cell.exec = Exec::Pool2;
        let report = check_cell(&cell);
        assert!(report.passed(), "{:?}", report.failure_lines());
    }

    #[test]
    fn mutated_deposit_fails_both_oracles() {
        let mut cell = CellConfig::reference(App::FemPic);
        cell.steps = 2;
        cell.particles = 16;
        cell.mutation = Some(Mutation::DepositLostUpdate);
        let report = check_cell(&cell);
        assert!(!report.passed());
        // The differential oracle sees the divergence...
        assert!(report.comparison.divergent > 0);
        // ...and the physics oracle independently flags conservation.
        assert!(
            report.errors.iter().any(|e| e.contains("charge")),
            "{:?}",
            report.errors
        );
    }
}
