//! Cross-backend conformance harness.
//!
//! The paper's central claim is that one DSL program produces
//! equivalent physics on every backend. This crate turns that claim
//! into an executable contract: a differential **matrix runner**
//! ([`matrix`], [`runner`]) executes seeded Mini-FEM-PIC and CabanaPIC
//! step sequences across execution policies × deposit methods × movers
//! × runtime substrates, compares each cell against its
//! sequential/Serial reference under explicit equivalence [`oracle`]s
//! (bit-identity where DESIGN.md promises it, tolerance elsewhere),
//! and enforces physics invariants independent of the reference. When
//! a cell fails, the [`shrink`]er minimises the configuration and
//! [`report`] writes a replayable JSON reproducer under
//! `results/conformance/`.
//!
//! The [`chaos`] stage extends the contract to a *faulty* substrate:
//! seeded fault schedules (drop / duplicate / reorder / delay /
//! bit-flip / stall) run against the resilience layer's reliable
//! drivers, asserting every run either converges bit-exactly to the
//! fault-free reference or aborts with a typed error and a shrunk
//! reproducer — silent corruption is the only failing outcome.
//!
//! See DESIGN.md §9 for the equivalence matrix and replay workflow,
//! §10 for the chaos stage.

pub mod chaos;
pub mod matrix;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod shrink;

pub use chaos::{
    chaos_cell_fails, chaos_full_matrix, chaos_quick_matrix, chaos_reproducer_json,
    parse_chaos_reproducer, run_chaos_cell, shrink_chaos, watchdog_control_checks,
    write_chaos_reproducer, ChaosCell, ChaosFault, ChaosReport, ChaosVerdict, WatchdogCheck,
    CHAOS_SCHEMA,
};
pub use matrix::{full_matrix, quick_matrix, App, CellConfig, Exec, Mover, Mutation, Runtime};
pub use oracle::{compare, Comparison, Divergence, Oracle};
pub use report::{parse_reproducer, reproducer_json, write_reproducer};
pub use runner::{cell_fails, check_cell, run_cell, run_matrix, CellReport};
pub use schedule::{verify_schedules, ScheduleCheck};
pub use shrink::shrink;

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criterion mutation smoke test: a deliberately
    /// injected deposit lost-update must be (a) caught by the
    /// differential + physics oracles and (b) shrunk to a reproducer
    /// of at most 2 steps and 8 particles that replays verbatim.
    #[test]
    fn injected_deposit_bug_is_caught_and_shrunk() {
        let mut cell = CellConfig::reference(App::FemPic);
        cell.steps = 4;
        cell.particles = 32;
        cell.mutation = Some(Mutation::DepositLostUpdate);

        let report = check_cell(&cell);
        assert!(!report.passed(), "mutated cell must fail");

        let mut evals = 0usize;
        let (shrunk, _) = shrink(&cell, &mut |c| {
            evals += 1;
            cell_fails(c)
        });
        assert!(evals > 0);
        assert!(
            shrunk.steps <= 2,
            "shrunk to {} steps, want ≤ 2",
            shrunk.steps
        );
        assert!(
            shrunk.particles <= 8,
            "shrunk to {} particles, want ≤ 8",
            shrunk.particles
        );
        assert_eq!(shrunk.mutation, Some(Mutation::DepositLostUpdate));
        assert!(cell_fails(&shrunk), "shrunk case must still fail");

        // The reproducer replays to the same failing cell.
        let lines = check_cell(&shrunk).failure_lines();
        let src = reproducer_json(&shrunk, &lines);
        let (replayed, recorded) = parse_reproducer(&src).expect("reproducer parses");
        assert_eq!(replayed, shrunk);
        assert_eq!(recorded, lines);
        assert!(cell_fails(&replayed), "replayed case must still fail");
    }

    /// An unmutated matrix cell sampled from every runtime passes, so
    /// the smoke test above fails because of the mutation and nothing
    /// else.
    #[test]
    fn clean_cells_on_every_runtime_pass() {
        for runtime in [Runtime::Host, Runtime::DeviceModel, Runtime::Mpi(2)] {
            let mut cell = CellConfig::reference(App::FemPic);
            cell.steps = 2;
            cell.particles = 16;
            cell.runtime = runtime;
            let report = check_cell(&cell);
            assert!(report.passed(), "{}: {:?}", cell, report.failure_lines());
        }
    }
}
